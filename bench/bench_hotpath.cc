/**
 * @file
 * Self-measuring perf harness for the simulator's hot paths.
 *
 * Unlike the figure benches (which measure the *simulated* system),
 * this driver measures the simulator itself: raw event-queue
 * throughput, packet pool recycling, GHASH bandwidth of the
 * table-driven path against the bit-serial reference, and the
 * end-to-end wall-clock of a reference workload. CI runs it on every
 * push so hot-path regressions show up as numbers, not vibes.
 *
 * Usage:
 *   bench_hotpath [--json FILE] [--scale S] [--quick]
 *                 [--crypto-impl I]
 *
 * --json FILE  also emit machine-readable results (BENCH_hotpath.json)
 * --scale S    workload size multiplier for the end-to-end run (0.2)
 * --quick      cut the microbench repetition counts ~8x (smoke runs)
 * --crypto-impl I  tier for the non-crypto sections (auto|portable|
 *              simd); the cryptoTiers section always measures both
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "core/json_out.hh"
#include "core/system.hh"
#include "crypto/dispatch.hh"
#include "crypto/gcm.hh"
#include "crypto/ghash.hh"
#include "crypto/otp.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace
{

using namespace mgsec;
using namespace mgsec::crypto;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Args
{
    std::string json;
    double scale = 0.2;
    bool quick = false;
    CryptoImpl cryptoImpl = CryptoImpl::Auto;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string f = argv[i];
        if (f == "--json" && i + 1 < argc) {
            a.json = argv[++i];
        } else if (f == "--scale" && i + 1 < argc) {
            a.scale = std::stod(argv[++i]);
        } else if (f == "--quick") {
            a.quick = true;
        } else if (f == "--crypto-impl" && i + 1 < argc) {
            if (!parseCryptoImpl(argv[++i], a.cryptoImpl)) {
                std::cerr << "bad --crypto-impl value '" << argv[i]
                          << "' (want auto|portable|simd)\n";
                std::exit(2);
            }
        } else {
            std::cerr << "usage: bench_hotpath [--json FILE] "
                         "[--scale S] [--quick] [--crypto-impl I]\n";
            std::exit(f == "--help" ? 0 : 2);
        }
    }
    return a;
}

/** Fold a digest into a sink so the work cannot be optimized away. */
std::uint64_t g_sink = 0;

void
consume(const Block &b)
{
    g_sink ^= load64be(b.data()) ^ load64be(b.data() + 8);
}

// --------------------------------------------------------------------
// GHASH: table-driven vs. bit-serial reference over the same buffer.
// --------------------------------------------------------------------

struct GhashResult
{
    double tableMBps = 0.0;
    double bitserialMBps = 0.0;
    double speedup = 0.0;
    std::uint64_t bytesHashed = 0;
};

/** The pre-table implementation: one gfmul (128 rounds) per block. */
Block
bitserialGhash(const Block &h, const std::uint8_t *data,
               std::size_t len)
{
    const U128 hw = blockToU128(h);
    U128 y{};
    for (std::size_t off = 0; off < len; off += 16) {
        Block blk{};
        std::memcpy(blk.data(), data + off,
                    std::min<std::size_t>(16, len - off));
        const U128 x = blockToU128(blk);
        y.hi ^= x.hi;
        y.lo ^= x.lo;
        y = gfmul(y, hw);
    }
    return u128ToBlock(y);
}

GhashResult
benchGhash(bool quick)
{
    // Pin the portable tier so "table" keeps meaning the Shoup
    // path whatever the process-wide selection is; the cryptoTiers
    // section measures the SIMD tier explicitly.
    const CryptoImpl prior = requestedCryptoImpl();
    setCryptoImpl(CryptoImpl::Portable);

    const std::size_t kBufBytes = 1u << 20; // 1 MiB per pass
    const int table_reps = quick ? 8 : 64;
    const int serial_reps = quick ? 1 : 4;

    std::vector<std::uint8_t> buf(kBufBytes);
    std::mt19937_64 rng(42);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng());

    Block h{};
    for (std::size_t i = 0; i < h.size(); ++i)
        h[i] = static_cast<std::uint8_t>(rng());
    const GhashKey key(h);

    GhashResult r;

    auto t0 = Clock::now();
    for (int i = 0; i < table_reps; ++i) {
        Ghash gh(key);
        gh.updateBytes(buf.data(), buf.size());
        consume(gh.digest());
    }
    const double table_s = secondsSince(t0);
    r.tableMBps = static_cast<double>(kBufBytes) * table_reps /
                  table_s / 1e6;

    t0 = Clock::now();
    for (int i = 0; i < serial_reps; ++i)
        consume(bitserialGhash(h, buf.data(), buf.size()));
    const double serial_s = secondsSince(t0);
    r.bitserialMBps = static_cast<double>(kBufBytes) * serial_reps /
                      serial_s / 1e6;

    r.speedup = r.tableMBps / r.bitserialMBps;
    r.bytesHashed =
        static_cast<std::uint64_t>(kBufBytes) * (table_reps + serial_reps);

    // Cross-check while we are here: both paths must agree.
    Ghash gh(key);
    gh.updateBytes(buf.data(), 4096);
    if (gh.digest() != bitserialGhash(h, buf.data(), 4096)) {
        std::cerr << "FATAL: table GHASH disagrees with reference\n";
        std::exit(1);
    }
    setCryptoImpl(prior);
    return r;
}

// --------------------------------------------------------------------
// Crypto tiers: portable vs. SIMD over the data-plane primitives —
// GHASH absorption, CTR keystream, and full pad derivation.
// --------------------------------------------------------------------

struct CryptoTiersResult
{
    bool aesniDetected = false;
    bool pclmulDetected = false;
    bool ssse3Detected = false;
    bool simdCompiledIn = false;
    bool simdAvailable = false;
    std::string requestedImpl;
    std::string activeImpl;

    double ghashPortableMBps = 0.0;
    double ghashSimdMBps = 0.0;
    double ghashSimdSpeedup = 0.0;
    double ctrPortableMBps = 0.0;
    double ctrSimdMBps = 0.0;
    double ctrSimdSpeedup = 0.0;
    double padDerivePortablePerSec = 0.0;
    double padDeriveSimdPerSec = 0.0;
    double padDeriveSpeedup = 0.0;
};

CryptoTiersResult
benchCryptoTiers(bool quick)
{
    const std::size_t kBufBytes = 1u << 20; // 1 MiB per pass
    std::vector<std::uint8_t> buf(kBufBytes);
    std::mt19937_64 rng(7);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng());

    std::array<std::uint8_t, 16> session_key{};
    for (auto &b : session_key)
        b = static_cast<std::uint8_t>(rng());
    Block h{};
    for (auto &b : h)
        b = static_cast<std::uint8_t>(rng());
    Iv96 iv{};
    for (auto &b : iv)
        b = static_cast<std::uint8_t>(rng());

    CryptoTiersResult r;
    const CpuFeatures &feat = cpuFeatures();
    r.aesniDetected = feat.aesni;
    r.pclmulDetected = feat.pclmul;
    r.ssse3Detected = feat.ssse3;
    r.simdCompiledIn = simdCompiledIn();
    r.simdAvailable = simdAvailable();
    const CryptoImpl prior = requestedCryptoImpl();
    r.requestedImpl = cryptoImplName(prior);
    r.activeImpl = cryptoImplName(activeCryptoImpl());

    auto ghashPass = [&](CryptoImpl impl, int reps) {
        setCryptoImpl(impl);
        const GhashKey key(h);
        const auto t0 = Clock::now();
        for (int i = 0; i < reps; ++i) {
            Ghash gh(key);
            gh.updateBytes(buf.data(), buf.size());
            consume(gh.digest());
        }
        return static_cast<double>(kBufBytes) * reps /
               secondsSince(t0) / 1e6;
    };
    auto ctrPass = [&](CryptoImpl impl, int reps) {
        setCryptoImpl(impl);
        const AesGcm gcm(session_key);
        const auto t0 = Clock::now();
        for (int i = 0; i < reps; ++i) {
            gcm.keystreamTo(iv, buf.data(), buf.size());
            g_sink ^= buf[0];
        }
        return static_cast<double>(kBufBytes) * reps /
               secondsSince(t0) / 1e6;
    };
    auto padPass = [&](CryptoImpl impl, int reps) {
        setCryptoImpl(impl);
        const PadFactory pads(session_key);
        const auto t0 = Clock::now();
        for (int i = 0; i < reps; ++i) {
            const MessagePad p = pads.derive(
                1, 2, static_cast<std::uint64_t>(i));
            g_sink ^= p.encPad[0] ^ p.authPad[0];
        }
        return static_cast<double>(reps) / secondsSince(t0);
    };

    r.ghashPortableMBps =
        ghashPass(CryptoImpl::Portable, quick ? 8 : 64);
    r.ctrPortableMBps = ctrPass(CryptoImpl::Portable, quick ? 1 : 4);
    r.padDerivePortablePerSec =
        padPass(CryptoImpl::Portable, quick ? 2'000 : 20'000);

    if (r.simdAvailable) {
        // Cross-check first: both tiers must produce identical
        // keystream bytes and GHASH digests over this very buffer.
        std::vector<std::uint8_t> ks_p(4096), ks_s(4096);
        setCryptoImpl(CryptoImpl::Portable);
        AesGcm(session_key).keystreamTo(iv, ks_p.data(), ks_p.size());
        Ghash ghp{GhashKey(h)};
        ghp.updateBytes(buf.data(), 4096 + 24);
        setCryptoImpl(CryptoImpl::Simd);
        AesGcm(session_key).keystreamTo(iv, ks_s.data(), ks_s.size());
        Ghash ghs{GhashKey(h)};
        ghs.updateBytes(buf.data(), 4096 + 24);
        if (ks_p != ks_s || ghp.digest() != ghs.digest()) {
            std::cerr << "FATAL: SIMD tier disagrees with portable\n";
            std::exit(1);
        }

        r.ghashSimdMBps =
            ghashPass(CryptoImpl::Simd, quick ? 64 : 512);
        r.ctrSimdMBps = ctrPass(CryptoImpl::Simd, quick ? 32 : 256);
        r.padDeriveSimdPerSec =
            padPass(CryptoImpl::Simd, quick ? 20'000 : 200'000);
        r.ghashSimdSpeedup = r.ghashSimdMBps / r.ghashPortableMBps;
        r.ctrSimdSpeedup = r.ctrSimdMBps / r.ctrPortableMBps;
        r.padDeriveSpeedup =
            r.padDeriveSimdPerSec / r.padDerivePortablePerSec;
    }

    setCryptoImpl(prior);
    return r;
}

// --------------------------------------------------------------------
// Event queue: steady-state schedule/run throughput.
// --------------------------------------------------------------------

struct EventQueueResult
{
    double eventsPerSec = 0.0;
    std::uint64_t events = 0;
};

EventQueueResult
benchEventQueue(bool quick)
{
    // Model the simulator's steady state: a fixed population of
    // in-flight events, each rescheduling itself on execution, so the
    // queue churns at constant depth exactly like a run at peak
    // occupancy.
    const std::uint64_t kPopulation = 1024;
    const std::uint64_t kTotal = quick ? 2'000'000 : 16'000'000;

    EventQueue eq;
    eq.reserve(kPopulation);
    std::uint64_t fired = 0;

    struct Self
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t total;
        std::uint64_t delta;

        void
        operator()() const
        {
            ++*fired;
            if (*fired + 1024 <= total) {
                Self next = *this;
                eq->scheduleIn(static_cast<Cycles>(delta), next);
            }
        }
    };

    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kPopulation; ++i) {
        // Mixed deltas exercise real heap reordering, not FIFO.
        eq.schedule(i % 7 + 1,
                    Self{&eq, &fired, kTotal, i % 13 + 1});
    }
    eq.run();
    const double secs = secondsSince(t0);

    EventQueueResult r;
    r.events = eq.executed();
    r.eventsPerSec = static_cast<double>(r.events) / secs;
    return r;
}

// --------------------------------------------------------------------
// Packet pool: acquire/release churn, pooled vs. plain allocation.
// --------------------------------------------------------------------

struct PacketPoolResult
{
    double pooledPacketsPerSec = 0.0;
    double mallocPacketsPerSec = 0.0;
    double speedup = 0.0;
    std::uint64_t reusedPackets = 0;
    std::uint64_t freshPackets = 0;
};

double
packetChurn(std::uint64_t iters)
{
    // Eight in flight at a time — roughly a link's worth of packets
    // between a sender and its ACK.
    constexpr std::size_t kInFlight = 8;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        PacketPtr live[kInFlight];
        for (std::size_t j = 0; j < kInFlight; ++j) {
            live[j] = makePacket();
            live[j]->src = 1;
            live[j]->dst = 2;
            live[j]->payloadBytes = 128;
            live[j]->acks.push_back({2, i, 0});
        }
        g_sink += live[0]->payloadBytes;
        // Destructors release all eight back to the pool.
    }
    const double secs = secondsSince(t0);
    return static_cast<double>(iters) * kInFlight / secs;
}

PacketPoolResult
benchPacketPool(bool quick)
{
    const std::uint64_t iters = quick ? 250'000 : 2'000'000;
    PacketPoolResult r;

    PacketPool::setEnabled(true);
    PacketPool::resetStats();
    packetChurn(iters / 10); // warm the free list
    PacketPool::resetStats();
    r.pooledPacketsPerSec = packetChurn(iters);
    r.reusedPackets = PacketPool::stats().reusedPackets;
    r.freshPackets = PacketPool::stats().freshPackets;

    PacketPool::setEnabled(false);
    r.mallocPacketsPerSec = packetChurn(iters);
    PacketPool::setEnabled(true);

    r.speedup = r.pooledPacketsPerSec / r.mallocPacketsPerSec;
    return r;
}

// --------------------------------------------------------------------
// End to end: wall-clock of one reference workload.
// --------------------------------------------------------------------

struct EndToEndResult
{
    std::string workload;
    double wallSec = 0.0;
    std::uint64_t simCycles = 0;
    std::uint64_t events = 0;
    std::uint64_t packets = 0;
    double cyclesPerSec = 0.0;
    double eventsPerSec = 0.0;
    double packetsPerSec = 0.0;
};

EndToEndResult
benchEndToEnd(double scale, bool quick)
{
    // The paper's headline configuration: dynamic scheme + batching.
    ExperimentConfig cfg;
    cfg.scheme = OtpScheme::Dynamic;
    cfg.batching = true;
    cfg.scale = quick ? scale * 0.5 : scale;

    EndToEndResult r;
    r.workload = "mm";

    const WorkloadProfile profile =
        makeProfile(r.workload, cfg.scale, cfg.numGpus);
    MultiGpuSystem sys(makeSystemConfig(cfg), profile);

    const auto t0 = Clock::now();
    const RunResult run = sys.run();
    r.wallSec = secondsSince(t0);

    r.simCycles = run.cycles;
    r.events = sys.eventq().executed();
    r.packets = run.packets;
    r.cyclesPerSec = static_cast<double>(r.simCycles) / r.wallSec;
    r.eventsPerSec = static_cast<double>(r.events) / r.wallSec;
    r.packetsPerSec = static_cast<double>(r.packets) / r.wallSec;
    return r;
}

// --------------------------------------------------------------------
// Sharded kernel: one wide (16-GPU) simulation at 1/2/4 sim threads.
// Reports events/s and speedup over serial, and hard-fails if the
// parallel kernel breaks either hot-path guarantee: op counts must be
// thread-count invariant, and warmed worker pools must run the whole
// simulation without one fresh allocation.
// --------------------------------------------------------------------

struct SimThreadsPoint
{
    std::uint32_t threads = 0;
    double wallSec = 0.0;
    std::uint64_t events = 0;
    double eventsPerSec = 0.0;
    double speedup = 0.0; ///< events/s over the serial run
    std::uint64_t pdesWindows = 0;
    std::uint64_t domainCrossings = 0;
    std::uint64_t windowStalls = 0;
    std::uint64_t poolFreshPackets = 0;
    std::uint64_t poolFreshPayloads = 0;
};

struct SimThreadsResult
{
    std::vector<SimThreadsPoint> points;
    unsigned hwThreads = 0;
};

SimThreadsResult
benchSimThreads(double scale, bool quick)
{
    // The case PDES exists for: a single wide simulation, where
    // --jobs cannot help. 16 GPUs = 17 domains; the problem size
    // deliberately does NOT shrink with the GPU count here.
    ExperimentConfig cfg;
    cfg.numGpus = 16;
    cfg.scheme = OtpScheme::Dynamic;
    cfg.batching = true;
    cfg.strongScaling = false;
    cfg.scale = quick ? scale * 0.5 : scale;

    SimThreadsResult r;
    r.hwThreads = std::thread::hardware_concurrency();
    RunResult serial{};
    for (const std::uint32_t t : {1u, 2u, 4u}) {
        cfg.simThreads = t;
        const WorkloadProfile profile =
            makeProfile("mm", cfg.scale, cfg.numGpus);
        MultiGpuSystem sys(makeSystemConfig(cfg), profile);
        const auto t0 = Clock::now();
        const RunResult run = sys.run();

        SimThreadsPoint p;
        p.threads = t;
        p.wallSec = secondsSince(t0);
        p.events = sys.executedEvents();
        p.eventsPerSec = static_cast<double>(p.events) / p.wallSec;
        p.pdesWindows = run.pdesWindows;
        p.domainCrossings = run.domainCrossings;
        p.windowStalls = run.windowStalls;
        p.poolFreshPackets = run.poolFreshPackets;
        p.poolFreshPayloads = run.poolFreshPayloads;

        if (t == 1) {
            serial = run;
        } else {
            // Thread-count invariance of everything timing-free.
            if (run.remoteOps != serial.remoteOps ||
                run.localOps != serial.localOps ||
                run.migrations != serial.migrations ||
                run.completed != serial.completed) {
                std::cerr << "FATAL: sharded run (" << t
                          << " threads) changed operation counts\n";
                std::exit(1);
            }
            // Satellite guarantee: per-domain queues and preloaded
            // worker pools keep the hot path allocation-free.
            if (run.poolFreshPackets != 0 ||
                run.poolFreshPayloads != 0) {
                std::cerr << "FATAL: sharded run (" << t
                          << " threads) hit the allocator "
                          << run.poolFreshPackets << "+"
                          << run.poolFreshPayloads
                          << " times after preload\n";
                std::exit(1);
            }
        }
        if (!r.points.empty())
            p.speedup = p.eventsPerSec / r.points[0].eventsPerSec;
        else
            p.speedup = 1.0;
        r.points.push_back(p);
    }
    return r;
}

// --------------------------------------------------------------------
// Observability: end-to-end with trace + metrics on vs. off, plus a
// proof that compiled-in-but-disabled hooks stay allocation-free.
// --------------------------------------------------------------------

struct ObserveResult
{
    double wallSecOff = 0.0;
    double wallSecOn = 0.0;
    double overheadPct = 0.0;
    std::uint64_t traceEvents = 0;
    std::uint64_t metricSamples = 0;
    std::uint64_t attrFolds = 0;
    std::uint64_t freshAfterTrace = 0;
};

/** Swallows trace bytes so only event formatting is measured. */
struct NullBuf : std::streambuf
{
    int
    overflow(int c) override
    {
        return c;
    }

    std::streamsize
    xsputn(const char *, std::streamsize n) override
    {
        return n;
    }
};

ObserveResult
benchObserve(double scale, bool quick)
{
    ExperimentConfig cfg;
    cfg.scheme = OtpScheme::Dynamic;
    cfg.batching = true;
    cfg.scale = quick ? scale * 0.5 : scale;
    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);

    ObserveResult r;
    {
        MultiGpuSystem sys(makeSystemConfig(cfg), profile);
        const auto t0 = Clock::now();
        sys.run();
        r.wallSecOff = secondsSince(t0);
    }
    {
        NullBuf nb;
        std::ostream null_os(&nb);
        MultiGpuSystem sys(makeSystemConfig(cfg), profile);
        sys.enableTrace(null_os);
        sys.enableAttribution();
        sys.enableMetrics(1000, 4096);
        const auto t0 = Clock::now();
        sys.run();
        r.wallSecOn = secondsSince(t0);
        r.traceEvents = sys.traceSink()->events();
        r.metricSamples = sys.metrics()->samples();
        r.attrFolds = sys.attribution()->folds();
    }
    r.overheadPct = (r.wallSecOn / r.wallSecOff - 1.0) * 100.0;

    // With the sinks gone, the hooks must again cost exactly one
    // null test: a warm churn may not touch the allocator.
    PacketPool::resetStats();
    packetChurn(quick ? 25'000 : 200'000);
    r.freshAfterTrace = PacketPool::stats().freshPackets;
    return r;
}

// --------------------------------------------------------------------
// Self-profiler: end-to-end with the host profiler off vs. on. Off
// must cost nothing (the hooks are one null pointer test); on must
// stay under a couple percent. A profiled sharded run must also keep
// the packet hot path allocation-free — the profiler's only memory
// is its own pre-sized lanes.
// --------------------------------------------------------------------

struct ProfilerResult
{
    double wallSecOff = 0.0;
    double wallSecOn = 0.0;
    double overheadPct = 0.0;
    std::uint64_t spans = 0;
    std::uint64_t shardedSpans = 0;
    std::uint64_t shardedWindows = 0;
    std::uint64_t poolFreshPackets = 0;  ///< profiled sharded run
    std::uint64_t poolFreshPayloads = 0; ///< profiled sharded run
};

ProfilerResult
benchProfiler(double scale, bool quick)
{
    ExperimentConfig cfg;
    cfg.scheme = OtpScheme::Dynamic;
    cfg.batching = true;
    cfg.scale = quick ? scale * 0.5 : scale;
    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);

    // Minimum over alternating repetitions: the delta being gated
    // (a dozen clock reads) is far below scheduler noise on one
    // 20 ms run, and min-of-N is the standard estimator for "cost
    // when nothing else interfered".
    ProfilerResult r;
    r.wallSecOff = 1e30;
    r.wallSecOn = 1e30;
    const int reps = quick ? 3 : 5;
    for (int i = 0; i < reps; ++i) {
        {
            MultiGpuSystem sys(makeSystemConfig(cfg), profile);
            const auto t0 = Clock::now();
            sys.run();
            r.wallSecOff = std::min(r.wallSecOff, secondsSince(t0));
        }
        {
            MultiGpuSystem sys(makeSystemConfig(cfg), profile);
            sys.enableProfiler();
            const auto t0 = Clock::now();
            sys.run();
            r.wallSecOn = std::min(r.wallSecOn, secondsSince(t0));
            r.spans = sys.profiler()->totalSpans();
        }
    }
    r.overheadPct = (r.wallSecOn / r.wallSecOff - 1.0) * 100.0;

    // The sharded kernel's allocation guarantee must survive with
    // per-window span recording on every worker.
    {
        ExperimentConfig pc = cfg;
        pc.numGpus = 16;
        pc.strongScaling = false;
        pc.simThreads = 2;
        const WorkloadProfile pp =
            makeProfile("mm", pc.scale, pc.numGpus);
        MultiGpuSystem sys(makeSystemConfig(pc), pp);
        sys.enableProfiler();
        const RunResult run = sys.run();
        r.shardedSpans = sys.profiler()->totalSpans();
        r.shardedWindows = sys.profiler()->profiledWindows();
        r.poolFreshPackets = run.poolFreshPackets;
        r.poolFreshPayloads = run.poolFreshPayloads;
        if (run.poolFreshPackets != 0 ||
            run.poolFreshPayloads != 0) {
            std::cerr << "FATAL: profiled sharded run hit the "
                      << "allocator " << run.poolFreshPackets << "+"
                      << run.poolFreshPayloads
                      << " times after preload\n";
            std::exit(1);
        }
    }
    return r;
}

void
writeJson(const std::string &path, const GhashResult &gh,
          const CryptoTiersResult &ct, const EventQueueResult &eq,
          const PacketPoolResult &pp, const EndToEndResult &e2e,
          const SimThreadsResult &st, const ObserveResult &obs,
          const ProfilerResult &pr)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        std::exit(1);
    }
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", std::string("hotpath"));

    w.key("ghash").beginObject();
    w.field("tableMBps", gh.tableMBps);
    w.field("bitserialMBps", gh.bitserialMBps);
    w.field("speedup", gh.speedup);
    w.field("bytesHashed", gh.bytesHashed);
    w.endObject();

    w.key("cryptoTiers").beginObject();
    w.key("dispatch").beginObject();
    w.field("aesniDetected", ct.aesniDetected);
    w.field("pclmulDetected", ct.pclmulDetected);
    w.field("ssse3Detected", ct.ssse3Detected);
    w.field("simdCompiledIn", ct.simdCompiledIn);
    w.field("simdAvailable", ct.simdAvailable);
    w.field("requestedImpl", ct.requestedImpl);
    w.field("activeImpl", ct.activeImpl);
    w.endObject();
    w.field("ghashPortableMBps", ct.ghashPortableMBps);
    w.field("ghashSimdMBps", ct.ghashSimdMBps);
    w.field("ghashSimdSpeedup", ct.ghashSimdSpeedup);
    w.field("ctrPortableMBps", ct.ctrPortableMBps);
    w.field("ctrSimdMBps", ct.ctrSimdMBps);
    w.field("ctrSimdSpeedup", ct.ctrSimdSpeedup);
    w.field("padDerivePortablePerSec", ct.padDerivePortablePerSec);
    w.field("padDeriveSimdPerSec", ct.padDeriveSimdPerSec);
    w.field("padDeriveSpeedup", ct.padDeriveSpeedup);
    w.endObject();

    w.key("eventQueue").beginObject();
    w.field("eventsPerSec", eq.eventsPerSec);
    w.field("events", eq.events);
    w.endObject();

    w.key("packetPool").beginObject();
    w.field("pooledPacketsPerSec", pp.pooledPacketsPerSec);
    w.field("mallocPacketsPerSec", pp.mallocPacketsPerSec);
    w.field("speedup", pp.speedup);
    w.field("reusedPackets", pp.reusedPackets);
    w.field("freshPackets", pp.freshPackets);
    w.endObject();

    w.key("endToEnd").beginObject();
    w.field("workload", e2e.workload);
    w.field("wallSec", e2e.wallSec);
    w.field("simCycles", e2e.simCycles);
    w.field("events", e2e.events);
    w.field("packets", e2e.packets);
    w.field("cyclesPerSec", e2e.cyclesPerSec);
    w.field("eventsPerSec", e2e.eventsPerSec);
    w.field("packetsPerSec", e2e.packetsPerSec);
    w.endObject();

    w.key("simThreads").beginObject();
    w.field("hwThreads", static_cast<std::uint64_t>(st.hwThreads));
    for (const SimThreadsPoint &p : st.points) {
        w.key(strformat("t%u", p.threads)).beginObject();
        w.field("threads", static_cast<std::uint64_t>(p.threads));
        w.field("wallSec", p.wallSec);
        w.field("events", p.events);
        w.field("eventsPerSec", p.eventsPerSec);
        w.field("speedup", p.speedup);
        w.field("pdesWindows", p.pdesWindows);
        w.field("domainCrossings", p.domainCrossings);
        w.field("windowStalls", p.windowStalls);
        w.field("poolFreshPackets", p.poolFreshPackets);
        w.field("poolFreshPayloads", p.poolFreshPayloads);
        w.endObject();
    }
    w.endObject();

    w.key("observe").beginObject();
    w.field("wallSecOff", obs.wallSecOff);
    w.field("wallSecOn", obs.wallSecOn);
    w.field("overheadPct", obs.overheadPct);
    w.field("traceEvents", obs.traceEvents);
    w.field("metricSamples", obs.metricSamples);
    w.field("attrFolds", obs.attrFolds);
    w.field("freshAfterTrace", obs.freshAfterTrace);
    w.endObject();

    w.key("profiler").beginObject();
    w.field("wallSecOff", pr.wallSecOff);
    w.field("wallSecOn", pr.wallSecOn);
    w.field("overheadPct", pr.overheadPct);
    w.field("spans", pr.spans);
    w.field("shardedSpans", pr.shardedSpans);
    w.field("shardedWindows", pr.shardedWindows);
    w.field("poolFreshPackets", pr.poolFreshPackets);
    w.field("poolFreshPayloads", pr.poolFreshPayloads);
    w.endObject();

    w.endObject();
    os << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    setCryptoImpl(args.cryptoImpl);

    std::cout << "=== hot-path perf harness\n"
              << "    measures the simulator, not the simulated "
                 "system\n\n";

    const GhashResult gh = benchGhash(args.quick);
    std::printf("ghash       table %9.1f MB/s   bit-serial %7.1f "
                "MB/s   speedup %.1fx\n",
                gh.tableMBps, gh.bitserialMBps, gh.speedup);

    const CryptoTiersResult ct = benchCryptoTiers(args.quick);
    std::printf("crypto      aes-ni=%d pclmul=%d ssse3=%d "
                "compiled=%d -> active '%s'\n",
                ct.aesniDetected ? 1 : 0, ct.pclmulDetected ? 1 : 0,
                ct.ssse3Detected ? 1 : 0, ct.simdCompiledIn ? 1 : 0,
                ct.activeImpl.c_str());
    if (ct.simdAvailable) {
        std::printf("  ghash     %9.1f MB/s portable  %9.1f MB/s "
                    "simd   speedup %.1fx\n",
                    ct.ghashPortableMBps, ct.ghashSimdMBps,
                    ct.ghashSimdSpeedup);
        std::printf("  ctr       %9.1f MB/s portable  %9.1f MB/s "
                    "simd   speedup %.1fx\n",
                    ct.ctrPortableMBps, ct.ctrSimdMBps,
                    ct.ctrSimdSpeedup);
        std::printf("  pad       %9.0f op/s portable  %9.0f op/s "
                    "simd   speedup %.1fx\n",
                    ct.padDerivePortablePerSec,
                    ct.padDeriveSimdPerSec, ct.padDeriveSpeedup);
    } else {
        std::printf("  ghash     %9.1f MB/s portable  (no SIMD "
                    "tier)\n",
                    ct.ghashPortableMBps);
        std::printf("  ctr       %9.1f MB/s portable\n",
                    ct.ctrPortableMBps);
        std::printf("  pad       %9.0f op/s portable\n",
                    ct.padDerivePortablePerSec);
    }

    const EventQueueResult eq = benchEventQueue(args.quick);
    std::printf("event queue %9.2f Mevents/s   (%llu events)\n",
                eq.eventsPerSec / 1e6,
                static_cast<unsigned long long>(eq.events));

    const PacketPoolResult pp = benchPacketPool(args.quick);
    std::printf("packet pool %9.2f Mpkts/s pooled   %6.2f Mpkts/s "
                "malloc   speedup %.2fx\n",
                pp.pooledPacketsPerSec / 1e6,
                pp.mallocPacketsPerSec / 1e6, pp.speedup);
    if (pp.freshPackets != 0) {
        std::printf("  WARNING: %llu fresh allocations after warm-up "
                    "(expected 0)\n",
                    static_cast<unsigned long long>(pp.freshPackets));
    }

    const EndToEndResult e2e = benchEndToEnd(args.scale, args.quick);
    std::printf("end-to-end  %s: %.2f s wall   %.1f Mcycles/s   "
                "%.2f Mevents/s   %.0f kpkts/s\n",
                e2e.workload.c_str(), e2e.wallSec,
                e2e.cyclesPerSec / 1e6, e2e.eventsPerSec / 1e6,
                e2e.packetsPerSec / 1e3);

    const SimThreadsResult st = benchSimThreads(args.scale, args.quick);
    for (const SimThreadsPoint &p : st.points) {
        std::printf("sim threads %u: %6.2f s wall   %6.2f Mevents/s"
                    "   speedup %.2fx   windows=%llu crossings=%llu "
                    "stalls=%llu\n",
                    p.threads, p.wallSec, p.eventsPerSec / 1e6,
                    p.speedup,
                    static_cast<unsigned long long>(p.pdesWindows),
                    static_cast<unsigned long long>(p.domainCrossings),
                    static_cast<unsigned long long>(p.windowStalls));
    }
    if (st.hwThreads < 4) {
        std::printf("  note: only %u hardware threads — parallel "
                    "speedups are not meaningful here\n",
                    st.hwThreads);
    }

    const ObserveResult obs = benchObserve(args.scale, args.quick);
    std::printf("observe     %.2f s off   %.2f s on   overhead "
                "%+.1f%%   %llu trace events   %llu samples   "
                "%llu folds\n",
                obs.wallSecOff, obs.wallSecOn, obs.overheadPct,
                static_cast<unsigned long long>(obs.traceEvents),
                static_cast<unsigned long long>(obs.metricSamples),
                static_cast<unsigned long long>(obs.attrFolds));
    if (obs.freshAfterTrace != 0) {
        std::printf("  WARNING: %llu fresh allocations in a warm "
                    "churn after tracing (expected 0)\n",
                    static_cast<unsigned long long>(
                        obs.freshAfterTrace));
    }

    const ProfilerResult pr = benchProfiler(args.scale, args.quick);
    std::printf("profiler    %.2f s off   %.2f s on   overhead "
                "%+.1f%%   %llu spans   %llu sharded spans over "
                "%llu windows\n",
                pr.wallSecOff, pr.wallSecOn, pr.overheadPct,
                static_cast<unsigned long long>(pr.spans),
                static_cast<unsigned long long>(pr.shardedSpans),
                static_cast<unsigned long long>(pr.shardedWindows));

    if (!args.json.empty()) {
        writeJson(args.json, gh, ct, eq, pp, e2e, st, obs, pr);
        std::cout << "\nwrote " << args.json << "\n";
    }

    // Keep the sink observable so no measured loop is dead code.
    if (g_sink == 0xdeadbeefcafebabeULL)
        std::cout << "";
    return 0;
}
