/**
 * @file
 * Fig. 22: OTP latency-hiding distribution of Private, Cached, and
 * Ours (Dynamic + Batching) with OTP 4x on the 4-GPU system.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 22 — OTP distribution incl. the proposed scheme",
           "Fig. 22 (Private / Cached / Ours, OTP 4x)");

    struct Config
    {
        const char *label;
        OtpScheme scheme;
        bool batching;
    };
    const std::vector<Config> configs = {
        {"Private", OtpScheme::Private, false},
        {"Cached", OtpScheme::Cached, false},
        {"Ours", OtpScheme::Dynamic, true},
    };

    Sweep sweep(args);
    std::vector<std::vector<std::size_t>> handles(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.scheme = configs[c].scheme;
            cfg.batching = configs[c].batching;
            handles[c].push_back(sweep.addNormalized(wl, cfg));
        }
    }
    sweep.run();

    Table t({"scheme", "dir", "hit", "partial", "miss", "hidden"});
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const auto &c = configs[ci];
        OtpStats agg;
        for (std::size_t h : handles[ci])
            agg += sweep.normalized(h).sample.otp;
        for (Direction d : {Direction::Send, Direction::Recv}) {
            const double h = agg.frac(d, OtpOutcome::Hit);
            const double p = agg.frac(d, OtpOutcome::Partial);
            t.addRow({c.label, directionName(d), fmtPct(h),
                      fmtPct(p), fmtPct(agg.frac(d, OtpOutcome::Miss)),
                      fmtPct(h + p)});
        }
    }
    t.print(std::cout);

    std::cout << "\npaper: Ours hides 64.6% of encryption and 76.2% "
                 "of decryption latency, beating Private's 36.8% "
                 "send-side hiding\n";
    return 0;
}
