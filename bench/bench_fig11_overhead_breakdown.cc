/**
 * @file
 * Fig. 11: cumulative overhead decomposition on the 4-GPU Private
 * (OTP 4x) system — "+SecureCommu" applies the secure communication
 * latency without metadata wire cost; "+Traffic" adds the security
 * metadata bandwidth. Normalized to the unsecure baseline.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 11 — secure communication vs. metadata traffic",
           "Fig. 11 (+SecureCommu, +Traffic; Private OTP 4x)");

    Sweep sweep(args);
    std::vector<std::pair<std::size_t, std::size_t>> handles;
    for (const auto &wl : workloadNames()) {
        ExperimentConfig cfg;
        cfg.scheme = OtpScheme::Private;
        cfg.countMetadataBytes = false;
        const std::size_t lat = sweep.addNormalized(wl, cfg);
        cfg.countMetadataBytes = true;
        handles.emplace_back(lat, sweep.addNormalized(wl, cfg));
    }
    sweep.run();

    Table t({"workload", "+SecureCommu", "+Traffic"});
    std::vector<double> c1, c2;
    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const Norm &latency_only = sweep.normalized(handles[w].first);
        const Norm &with_meta = sweep.normalized(handles[w].second);
        t.addRow({names[w], fmtDouble(latency_only.time),
                  fmtDouble(with_meta.time)});
        c1.push_back(latency_only.time);
        c2.push_back(with_meta.time);
    }
    t.addRow({"MEAN", fmtDouble(mean(c1)), fmtDouble(mean(c2))});
    t.print(std::cout);

    std::cout << "\npaper: +SecureCommu averages 8.2% overhead; the "
                 "metadata bandwidth raises it by a further 11.3%\n";
    return 0;
}
