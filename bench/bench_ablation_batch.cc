/**
 * @file
 * Ablation beyond the paper's figures: batch size sweep (n = 4..64)
 * for Dynamic + Batching on the 4-GPU system. The paper fixes
 * n = 16 from the Fig. 15/16 burstiness study; this shows the
 * trade-off directly.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation — metadata batch size",
           "design-space extension of Sec. IV-C (paper uses n=16)");

    const std::vector<std::uint32_t> sizes = {4, 8, 16, 32, 64};
    Sweep sweep(args);
    std::vector<std::vector<std::size_t>> handles(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            cfg.batchSize = sizes[i];
            handles[i].push_back(sweep.addNormalized(wl, cfg));
        }
    }
    sweep.run();

    Table t({"batch n", "norm.time", "norm.traffic"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::vector<double> times, traffics;
        for (std::size_t h : handles[i]) {
            times.push_back(sweep.normalized(h).time);
            traffics.push_back(sweep.normalized(h).traffic);
        }
        t.addRow({std::to_string(sizes[i]), fmtDouble(mean(times)),
                  fmtDouble(mean(traffics))});
    }
    t.print(std::cout);

    std::cout << "\nexpected: traffic falls with n, but large "
                 "batches delay verification/ACKs for little extra "
                 "byte savings\n";
    return 0;
}
