/**
 * @file
 * Ablation beyond the paper's figures: batch size sweep (n = 4..64)
 * for Dynamic + Batching on the 4-GPU system. The paper fixes
 * n = 16 from the Fig. 15/16 burstiness study; this shows the
 * trade-off directly.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation — metadata batch size",
           "design-space extension of Sec. IV-C (paper uses n=16)");

    Table t({"batch n", "norm.time", "norm.traffic"});
    for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
        std::vector<double> times, traffics;
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            cfg.batchSize = n;
            const Norm r = runNormalized(wl, cfg, args);
            times.push_back(r.time);
            traffics.push_back(r.traffic);
        }
        t.addRow({std::to_string(n), fmtDouble(mean(times)),
                  fmtDouble(mean(traffics))});
    }
    t.print(std::cout);

    std::cout << "\nexpected: traffic falls with n, but large "
                 "batches delay verification/ACKs for little extra "
                 "byte savings\n";
    return 0;
}
