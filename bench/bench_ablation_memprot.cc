/**
 * @file
 * Ablation: what does the host-side memory protection the threat
 * model assumes (counters + integrity tree over the untrusted CPU
 * DRAM) cost on top of the communication protection? The paper
 * assumes it exists (Sec. IV-A citing PENGLAI/Morphable Counters)
 * but never isolates its cost; this bench does.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/system.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation — host memory protection",
           "cost isolation of the Sec. IV-A assumption");

    Table t({"workload", "comm only", "comm + host memprot"});
    std::vector<double> c1, c2;
    for (const auto &wl : workloadNames()) {
        double without = 0, with = 0;
        for (int s = 1; s <= args.seeds; ++s) {
            ExperimentConfig e;
            e.scheme = OtpScheme::Dynamic;
            e.batching = true;
            e.scale = args.scale;
            e.seed = static_cast<std::uint64_t>(s);
            ExperimentConfig be = e;
            be.scheme = OtpScheme::Unsecure;
            be.batching = false;
            const RunResult base = runWorkload(wl, be);

            SystemConfig off = makeSystemConfig(e);
            off.cpu.memProtect.enabled = false;
            MultiGpuSystem sys_off(
                off, makeProfile(wl, e.scale, e.numGpus));
            without +=
                normalizedTime(sys_off.run(), base) / args.seeds;

            SystemConfig on = makeSystemConfig(e);
            on.cpu.memProtect.enabled = true;
            MultiGpuSystem sys_on(
                on, makeProfile(wl, e.scale, e.numGpus));
            with += normalizedTime(sys_on.run(), base) / args.seeds;
        }
        t.addRow({wl, fmtDouble(without), fmtDouble(with)});
        c1.push_back(without);
        c2.push_back(with);
    }
    t.addRow({"MEAN", fmtDouble(mean(c1)), fmtDouble(mean(c2))});
    t.print(std::cout);

    std::cout << "\nexpected: the counter cache absorbs most host "
                 "accesses, so the tree costs little on top of the "
                 "communication protection — consistent with the "
                 "paper treating it as a solved prerequisite\n";
    return 0;
}
