/**
 * @file
 * Ablation: what does the host-side memory protection the threat
 * model assumes (counters + integrity tree over the untrusted CPU
 * DRAM) cost on top of the communication protection? The paper
 * assumes it exists (Sec. IV-A citing PENGLAI/Morphable Counters)
 * but never isolates its cost; this bench does.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation — host memory protection",
           "cost isolation of the Sec. IV-A assumption");

    Sweep sweep(args);
    std::vector<std::pair<std::size_t, std::size_t>> handles;
    for (const auto &wl : workloadNames()) {
        ExperimentConfig cfg;
        cfg.scheme = OtpScheme::Dynamic;
        cfg.batching = true;
        cfg.hostMemProtect = 0; // comm protection only
        const std::size_t off = sweep.addNormalized(wl, cfg);
        cfg.hostMemProtect = 1; // plus the host-DRAM tree
        handles.emplace_back(off, sweep.addNormalized(wl, cfg));
    }
    sweep.run();

    Table t({"workload", "comm only", "comm + host memprot"});
    std::vector<double> c1, c2;
    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const double without = sweep.normalized(handles[w].first).time;
        const double with = sweep.normalized(handles[w].second).time;
        t.addRow({names[w], fmtDouble(without), fmtDouble(with)});
        c1.push_back(without);
        c2.push_back(with);
    }
    t.addRow({"MEAN", fmtDouble(mean(c1)), fmtDouble(mean(c2))});
    t.print(std::cout);

    std::cout << "\nexpected: the counter cache absorbs most host "
                 "accesses, so the tree costs little on top of the "
                 "communication protection — consistent with the "
                 "paper treating it as a solved prerequisite\n";
    return 0;
}
