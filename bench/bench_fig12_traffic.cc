/**
 * @file
 * Fig. 12: interconnect communication traffic of the secure system
 * (Private, OTP 4x) relative to the unsecure 4-GPU baseline, with
 * the byte-class decomposition our accounting provides.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 12 — traffic increase from security metadata",
           "Fig. 12 (normalized interconnect traffic, Private 4x)");

    Sweep sweep(args);
    std::vector<std::size_t> handles;
    for (const auto &wl : workloadNames()) {
        ExperimentConfig cfg;
        cfg.scheme = OtpScheme::Private;
        handles.push_back(sweep.addNormalized(wl, cfg));
    }
    sweep.run();

    Table t({"workload", "traffic", "hdr%", "payload%", "meta%",
             "ack%"});
    std::vector<double> ratios;
    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto &wl = names[w];
        const Norm &n = sweep.normalized(handles[w]);
        const auto &cb = n.sample.classBytes;
        const double total = static_cast<double>(
            cb[0] + cb[1] + cb[2] + cb[3]);
        t.addRow({wl, fmtDouble(n.traffic),
                  fmtPct(static_cast<double>(cb[0]) / total),
                  fmtPct(static_cast<double>(cb[1]) / total),
                  fmtPct(static_cast<double>(cb[2]) / total),
                  fmtPct(static_cast<double>(cb[3]) / total)});
        ratios.push_back(n.traffic);
    }
    t.addRow({"MEAN", fmtDouble(mean(ratios)), "", "", "", ""});
    t.print(std::cout);

    std::cout << "\npaper: security metadata adds 36.5% interconnect "
                 "traffic on average\n";
    return 0;
}
