/**
 * @file
 * Fig. 10: distribution of OTP latency hiding (fully hidden /
 * partially hidden / not hidden) within authenticated
 * encryption (send) and decryption (recv) for Private, Shared, and
 * Cached on the 4-GPU system with OTP 4x. Averaged over all
 * benchmarks.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 10 — OTP hit/partial/miss distribution",
           "Fig. 10 (Private / Shared / Cached, OTP 4x, 4 GPUs)");

    const std::vector<OtpScheme> schemes = {
        OtpScheme::Private, OtpScheme::Shared, OtpScheme::Cached};

    Sweep sweep(args);
    std::vector<std::vector<std::size_t>> handles(schemes.size());
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.scheme = schemes[s];
            handles[s].push_back(sweep.addNormalized(wl, cfg));
        }
    }
    sweep.run();

    Table t({"scheme", "dir", "hit", "partial", "miss", "hidden"});
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const OtpScheme scheme = schemes[s];
        OtpStats agg;
        for (std::size_t h : handles[s])
            agg += sweep.normalized(h).sample.otp;
        for (Direction d : {Direction::Send, Direction::Recv}) {
            const double h = agg.frac(d, OtpOutcome::Hit);
            const double p = agg.frac(d, OtpOutcome::Partial);
            const double m = agg.frac(d, OtpOutcome::Miss);
            t.addRow({otpSchemeName(scheme), directionName(d),
                      fmtPct(h), fmtPct(p), fmtPct(m),
                      fmtPct(h + p)});
        }
    }
    t.print(std::cout);

    std::cout << "\npaper: Private hides 36.9% (send) / 72.7% (recv);"
                 " Shared cannot hide sends; Cached hides 75.9% /"
                 " 79.0%\n";
    return 0;
}
