/**
 * @file
 * Fig. 10: distribution of OTP latency hiding (fully hidden /
 * partially hidden / not hidden) within authenticated
 * encryption (send) and decryption (recv) for Private, Shared, and
 * Cached on the 4-GPU system with OTP 4x. Averaged over all
 * benchmarks.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 10 — OTP hit/partial/miss distribution",
           "Fig. 10 (Private / Shared / Cached, OTP 4x, 4 GPUs)");

    Table t({"scheme", "dir", "hit", "partial", "miss", "hidden"});
    for (OtpScheme scheme : {OtpScheme::Private, OtpScheme::Shared,
                             OtpScheme::Cached}) {
        OtpStats agg;
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.scheme = scheme;
            const Norm n = runNormalized(wl, cfg, args);
            agg += n.sample.otp;
        }
        for (Direction d : {Direction::Send, Direction::Recv}) {
            const double h = agg.frac(d, OtpOutcome::Hit);
            const double p = agg.frac(d, OtpOutcome::Partial);
            const double m = agg.frac(d, OtpOutcome::Miss);
            t.addRow({otpSchemeName(scheme), directionName(d),
                      fmtPct(h), fmtPct(p), fmtPct(m),
                      fmtPct(h + p)});
        }
    }
    t.print(std::cout);

    std::cout << "\npaper: Private hides 36.9% (send) / 72.7% (recv);"
                 " Shared cannot hide sends; Cached hides 75.9% /"
                 " 79.0%\n";
    return 0;
}
