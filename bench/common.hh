/**
 * @file
 * Shared plumbing for the figure/table benches: batched sweep
 * execution, seed-averaged normalized metrics, and common CLI
 * handling.
 *
 * Every bench accepts:
 *   --scale S   workload size multiplier (default 0.6)
 *   --seeds N   seeds averaged per configuration (default 2)
 *   --jobs N    parallel simulation jobs (default: all hardware
 *               threads)
 * so CI runs can trade accuracy for speed. Unknown flags and
 * out-of-range values are rejected with a usage message.
 *
 * Benches queue their whole (workload x config) matrix on a
 * mgsec::Sweep and run it once: the job pool overlaps every
 * simulation and each unsecure baseline is simulated exactly once
 * per (workload, gpus, scale, seed) regardless of how many secure
 * configurations normalize against it. Results are keyed by
 * submission handle, so any --jobs value prints identical tables.
 */

#ifndef MGSEC_BENCH_COMMON_HH
#define MGSEC_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

namespace mgsec::bench
{

struct BenchArgs : SweepArgs
{
    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs a;
        a.parseArgs(argc, argv);
        return a;
    }
};

/** Seed-averaged metrics of one configuration vs. its baseline. */
using Norm = NormResult;

/**
 * One-off seed-averaged normalized measurement — a thin wrapper over
 * a single-entry Sweep. Benches measuring more than one
 * configuration should batch them on one Sweep instead so the runs
 * overlap and baselines are shared.
 */
inline Norm
runNormalized(const std::string &wl, const ExperimentConfig &cfg,
              const BenchArgs &args)
{
    Sweep sweep(args);
    const std::size_t h = sweep.addNormalized(wl, cfg);
    sweep.run();
    return sweep.normalized(h);
}

/**
 * An unnormalized run (pattern/burstiness figures). Applies
 * args.scale but runs cfg.seed verbatim: --seeds deliberately does
 * NOT apply here, because these figures show one representative
 * run's time series, not a seed average.
 */
inline RunResult
runOnce(const std::string &wl, const ExperimentConfig &cfg,
        const BenchArgs &args)
{
    Sweep sweep(args);
    const std::size_t h = sweep.addRaw(wl, cfg);
    sweep.run();
    return sweep.raw(h);
}

inline void
banner(const char *title, const char *paper_ref)
{
    std::cout << "=== " << title << "\n"
              << "    reproduces: " << paper_ref << "\n\n";
}

} // namespace mgsec::bench

#endif // MGSEC_BENCH_COMMON_HH
