/**
 * @file
 * Shared plumbing for the figure/table benches: seed-averaged
 * normalized metrics and common CLI handling.
 *
 * Every bench accepts:
 *   --scale S   workload size multiplier (default 0.6)
 *   --seeds N   seeds averaged per configuration (default 2)
 * so CI runs can trade accuracy for speed.
 */

#ifndef MGSEC_BENCH_COMMON_HH
#define MGSEC_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

namespace mgsec::bench
{

struct BenchArgs
{
    double scale = 0.6;
    int seeds = 2;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
                a.scale = std::atof(argv[++i]);
            else if (std::strcmp(argv[i], "--seeds") == 0 &&
                     i + 1 < argc)
                a.seeds = std::atoi(argv[++i]);
        }
        if (a.scale <= 0.0)
            a.scale = 0.6;
        if (a.seeds < 1)
            a.seeds = 1;
        return a;
    }
};

/** Seed-averaged metrics of one configuration vs. its baseline. */
struct Norm
{
    double time = 0.0;
    double traffic = 0.0;
    RunResult sample; ///< last secure run (for OTP stats etc.)
};

inline Norm
runNormalized(const std::string &wl, ExperimentConfig cfg,
              const BenchArgs &args)
{
    Norm n;
    cfg.scale = args.scale;
    for (int s = 1; s <= args.seeds; ++s) {
        cfg.seed = static_cast<std::uint64_t>(s);
        ExperimentConfig base = cfg;
        base.scheme = OtpScheme::Unsecure;
        base.batching = false;
        base.countMetadataBytes = true;
        const RunResult b = runWorkload(wl, base);
        const RunResult r = runWorkload(wl, cfg);
        n.time += normalizedTime(r, b) / args.seeds;
        n.traffic += normalizedTraffic(r, b) / args.seeds;
        if (s == args.seeds)
            n.sample = r;
    }
    return n;
}

/** An unnormalized, single-seed run (pattern/burstiness figures). */
inline RunResult
runOnce(const std::string &wl, ExperimentConfig cfg,
        const BenchArgs &args)
{
    cfg.scale = args.scale;
    return runWorkload(wl, cfg);
}

inline void
banner(const char *title, const char *paper_ref)
{
    std::cout << "=== " << title << "\n"
              << "    reproduces: " << paper_ref << "\n\n";
}

} // namespace mgsec::bench

#endif // MGSEC_BENCH_COMMON_HH
