/**
 * @file
 * Fig. 23: interconnect traffic of Private, Cached, and Ours
 * (Dynamic + Batching), normalized to the unsecure system (OTP 4x).
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 23 — traffic reduction from metadata batching",
           "Fig. 23 (Private / Cached / Ours, OTP 4x)");

    Sweep sweep(args);
    struct Handles
    {
        std::size_t priv, cached, ours;
    };
    std::vector<Handles> handles;
    for (const auto &wl : workloadNames()) {
        ExperimentConfig cfg;
        cfg.scheme = OtpScheme::Private;
        const std::size_t hp = sweep.addNormalized(wl, cfg);
        cfg.scheme = OtpScheme::Cached;
        const std::size_t hc = sweep.addNormalized(wl, cfg);
        cfg.scheme = OtpScheme::Dynamic;
        cfg.batching = true;
        handles.push_back(
            Handles{hp, hc, sweep.addNormalized(wl, cfg)});
    }
    sweep.run();

    Table t({"workload", "Private", "Cached", "Ours"});
    std::vector<double> cp, cc, co;
    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const Norm &np = sweep.normalized(handles[w].priv);
        const Norm &nc = sweep.normalized(handles[w].cached);
        const Norm &no = sweep.normalized(handles[w].ours);
        t.addRow({names[w], fmtDouble(np.traffic),
                  fmtDouble(nc.traffic), fmtDouble(no.traffic)});
        cp.push_back(np.traffic);
        cc.push_back(nc.traffic);
        co.push_back(no.traffic);
    }
    t.addRow({"MEAN", fmtDouble(mean(cp)), fmtDouble(mean(cc)),
              fmtDouble(mean(co))});
    t.print(std::cout);

    std::cout << "\nOurs cuts traffic by "
              << fmtPct(1.0 - mean(co) / mean(cp))
              << " vs Private (paper: 20.2%) and "
              << fmtPct(1.0 - mean(co) / mean(cc))
              << " vs Cached (paper: 20.0%)\n";
    return 0;
}
