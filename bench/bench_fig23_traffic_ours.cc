/**
 * @file
 * Fig. 23: interconnect traffic of Private, Cached, and Ours
 * (Dynamic + Batching), normalized to the unsecure system (OTP 4x).
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 23 — traffic reduction from metadata batching",
           "Fig. 23 (Private / Cached / Ours, OTP 4x)");

    Table t({"workload", "Private", "Cached", "Ours"});
    std::vector<double> cp, cc, co;
    for (const auto &wl : workloadNames()) {
        ExperimentConfig cfg;
        cfg.scheme = OtpScheme::Private;
        const Norm np = runNormalized(wl, cfg, args);
        cfg.scheme = OtpScheme::Cached;
        const Norm nc = runNormalized(wl, cfg, args);
        cfg.scheme = OtpScheme::Dynamic;
        cfg.batching = true;
        const Norm no = runNormalized(wl, cfg, args);
        t.addRow({wl, fmtDouble(np.traffic), fmtDouble(nc.traffic),
                  fmtDouble(no.traffic)});
        cp.push_back(np.traffic);
        cc.push_back(nc.traffic);
        co.push_back(no.traffic);
    }
    t.addRow({"MEAN", fmtDouble(mean(cp)), fmtDouble(mean(cc)),
              fmtDouble(mean(co))});
    t.print(std::cout);

    std::cout << "\nOurs cuts traffic by "
              << fmtPct(1.0 - mean(co) / mean(cp))
              << " vs Private (paper: 20.2%) and "
              << fmtPct(1.0 - mean(co) / mean(cc))
              << " vs Cached (paper: 20.0%)\n";
    return 0;
}
