/**
 * @file
 * Fig. 24/25: execution times on 8-GPU and 16-GPU systems for
 * Private, Cached, and Ours (Dynamic + Batching), normalized to the
 * unsecure system of the same size. Problem size stays fixed
 * (strong scaling), matching Section V-D.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 24/25 — sensitivity to the number of GPUs",
           "Fig. 24 (8 GPUs), Fig. 25 (16 GPUs)");

    for (std::uint32_t gpus : {8u, 16u}) {
        std::cout << "--- " << gpus << "-GPU system (OTP 4x => "
                  << gpus * 2 * 4 << " buffers per GPU)\n";
        Table t({"workload", "Private", "Cached", "Ours"});
        std::vector<double> cp, cc, co;
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.numGpus = gpus;
            cfg.scheme = OtpScheme::Private;
            const Norm np = runNormalized(wl, cfg, args);
            cfg.scheme = OtpScheme::Cached;
            const Norm nc = runNormalized(wl, cfg, args);
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            const Norm no = runNormalized(wl, cfg, args);
            t.addRow({wl, fmtDouble(np.time), fmtDouble(nc.time),
                      fmtDouble(no.time)});
            cp.push_back(np.time);
            cc.push_back(nc.time);
            co.push_back(no.time);
        }
        t.addRow({"MEAN", fmtDouble(mean(cp)), fmtDouble(mean(cc)),
                  fmtDouble(mean(co))});
        t.print(std::cout);
        std::cout << "Ours vs Private: "
                  << fmtPct(1.0 - mean(co) / mean(cp))
                  << ", Ours vs Cached: "
                  << fmtPct(1.0 - mean(co) / mean(cc)) << "\n\n";
    }

    std::cout << "paper: Private degrades 29.3% (8 GPUs) and 32.1% "
                 "(16 GPUs); Ours improves on Private by 17.1% and "
                 "17.5%, and on Cached by 9.2% and 13.2%\n";
    return 0;
}
