/**
 * @file
 * Fig. 24/25: execution times on 8-GPU and 16-GPU systems for
 * Private, Cached, and Ours (Dynamic + Batching), normalized to the
 * unsecure system of the same size. Problem size stays fixed
 * (strong scaling), matching Section V-D.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 24/25 — sensitivity to the number of GPUs",
           "Fig. 24 (8 GPUs), Fig. 25 (16 GPUs)");

    // Queue both system sizes in one sweep so the pool overlaps them.
    const std::vector<std::uint32_t> gpu_counts = {8, 16};
    struct Handles
    {
        std::size_t priv, cached, ours;
    };
    Sweep sweep(args);
    std::vector<std::vector<Handles>> handles(gpu_counts.size());
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.numGpus = gpu_counts[g];
            cfg.scheme = OtpScheme::Private;
            const std::size_t hp = sweep.addNormalized(wl, cfg);
            cfg.scheme = OtpScheme::Cached;
            const std::size_t hc = sweep.addNormalized(wl, cfg);
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            handles[g].push_back(
                Handles{hp, hc, sweep.addNormalized(wl, cfg)});
        }
    }
    sweep.run();

    const auto &names = workloadNames();
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
        const std::uint32_t gpus = gpu_counts[g];
        std::cout << "--- " << gpus << "-GPU system (OTP 4x => "
                  << gpus * 2 * 4 << " buffers per GPU)\n";
        Table t({"workload", "Private", "Cached", "Ours"});
        std::vector<double> cp, cc, co;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const Norm &np = sweep.normalized(handles[g][w].priv);
            const Norm &nc = sweep.normalized(handles[g][w].cached);
            const Norm &no = sweep.normalized(handles[g][w].ours);
            t.addRow({names[w], fmtDouble(np.time),
                      fmtDouble(nc.time), fmtDouble(no.time)});
            cp.push_back(np.time);
            cc.push_back(nc.time);
            co.push_back(no.time);
        }
        t.addRow({"MEAN", fmtDouble(mean(cp)), fmtDouble(mean(cc)),
                  fmtDouble(mean(co))});
        t.print(std::cout);
        std::cout << "Ours vs Private: "
                  << fmtPct(1.0 - mean(co) / mean(cp))
                  << ", Ours vs Cached: "
                  << fmtPct(1.0 - mean(co) / mean(cc)) << "\n\n";
    }

    std::cout << "paper: Private degrades 29.3% (8 GPUs) and 32.1% "
                 "(16 GPUs); Ours improves on Private by 17.1% and "
                 "17.5%, and on Cached by 9.2% and 13.2%\n";
    return 0;
}
