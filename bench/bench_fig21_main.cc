/**
 * @file
 * Fig. 21 — the headline result: 4-GPU execution times under
 * Private (OTP 4x), Private (OTP 16x), Cached (OTP 4x), the
 * proposed Dynamic (OTP 4x), and Dynamic + metadata Batching,
 * normalized to the unsecure system.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 21 — main 4-GPU comparison",
           "Fig. 21 (Private 4x/16x, Cached 4x, +Dynamic, "
           "+Batching)");

    struct Config
    {
        const char *label;
        OtpScheme scheme;
        std::uint32_t mult;
        bool batching;
    };
    const std::vector<Config> configs = {
        {"Private(4x)", OtpScheme::Private, 4, false},
        {"Private(16x)", OtpScheme::Private, 16, false},
        {"Cached(4x)", OtpScheme::Cached, 4, false},
        {"Dynamic(4x)", OtpScheme::Dynamic, 4, false},
        {"Batching(4x)", OtpScheme::Dynamic, 4, true},
    };

    Table t({"workload", "Private(4x)", "Private(16x)", "Cached(4x)",
             "Dynamic(4x)", "Batching(4x)"});
    std::vector<std::vector<double>> cols(configs.size());

    Sweep sweep(args);
    std::vector<std::vector<std::size_t>> handles;
    for (const auto &wl : workloadNames()) {
        std::vector<std::size_t> hs;
        for (const auto &c : configs) {
            ExperimentConfig cfg;
            cfg.scheme = c.scheme;
            cfg.otpMult = c.mult;
            cfg.batching = c.batching;
            hs.push_back(sweep.addNormalized(wl, cfg));
        }
        handles.push_back(std::move(hs));
    }
    sweep.run();

    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const Norm &n = sweep.normalized(handles[w][c]);
            row.push_back(fmtDouble(n.time));
            cols[c].push_back(n.time);
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (const auto &c : cols)
        avg.push_back(fmtDouble(mean(c)));
    t.addRow(avg);
    t.print(std::cout);

    const double priv = mean(cols[0]);
    const double cached = mean(cols[2]);
    const double ours = mean(cols[4]);
    std::cout << "\nOurs (Dynamic+Batching) vs Private(4x): "
              << fmtPct(1.0 - ours / priv) << " faster\n"
              << "Ours vs Cached(4x): "
              << fmtPct(1.0 - ours / cached) << " faster\n"
              << "paper: degradations 19.5% / 14.0% / 16.3% / 14.7% "
                 "/ 7.9%; Ours is 11.6% faster than Private and "
                 "8.4% faster than Cached\n";
    return 0;
}
