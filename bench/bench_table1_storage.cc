/**
 * @file
 * Table I: on-chip storage overhead and total OTP entries of the
 * Private scheme, for 4-32 GPUs and OTP 1x-16x. Closed form from
 * the per-entry cost in Section IV-D (valid bit + 512 b encryption
 * pad + 128 b authentication pad + 64 b counter = 88.125 B).
 */

#include <iostream>

#include "bench/common.hh"
#include "secure/otp_types.hh"

using namespace mgsec;

int
main()
{
    bench::banner("Table I — Private OTP buffer storage",
                  "Table I (storage and entry counts)");

    Table t({"GPUs", "metric", "1x", "2x", "4x", "8x", "16x"});
    for (std::uint32_t gpus : {4u, 8u, 16u, 32u}) {
        std::vector<std::string> storage = {std::to_string(gpus),
                                            "Storage"};
        std::vector<std::string> count = {std::to_string(gpus),
                                          "# of OTPs"};
        for (std::uint32_t mult : {1u, 2u, 4u, 8u, 16u}) {
            // Each GPU keeps quota entries for every peer (the other
            // GPUs plus the CPU) in both directions.
            const std::uint64_t per_gpu =
                static_cast<std::uint64_t>(gpus) * 2 * mult;
            const std::uint64_t total = per_gpu * gpus;
            const double kb =
                static_cast<double>(total) * kOtpEntryBytes / 1024.0;
            storage.push_back(fmtDouble(kb, 2) + " KB");
            count.push_back(std::to_string(total) + " OTPs");
        }
        t.addRow(storage);
        t.addRow(count);
    }
    t.print(std::cout);

    std::cout << "\npaper reference points: 4 GPUs/1x = 2.75 KB & 32 "
                 "OTPs; 32 GPUs/16x = 2820 KB & 32768 OTPs\n";
    return 0;
}
