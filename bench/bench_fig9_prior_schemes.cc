/**
 * @file
 * Fig. 9: execution times of the prior CPU-oriented OTP management
 * schemes (Private / Shared / Cached, all with the OTP 4x budget) on
 * a 4-GPU system, normalized to the unsecure baseline.
 */

#include <fstream>
#include <iostream>

#include "bench/common.hh"
#include "sim/json_writer.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    // --json: machine-readable results, the regression-gate seed
    // (BENCH_baseline.json) that CI diffs with mgsec_report.
    BenchArgs args;
    args.acceptJson = true;
    args.parseArgs(argc, argv);
    banner("Fig. 9 — prior OTP buffer management schemes",
           "Fig. 9 (Private / Shared / Cached, OTP 4x, 4 GPUs)");

    const std::vector<OtpScheme> schemes = {
        OtpScheme::Private, OtpScheme::Shared, OtpScheme::Cached};
    Table t({"workload", "Private", "Shared", "Cached"});
    std::vector<std::vector<double>> cols(schemes.size());

    Sweep sweep(args);
    std::vector<std::vector<std::size_t>> handles;
    for (const auto &wl : workloadNames()) {
        std::vector<std::size_t> hs;
        for (OtpScheme scheme : schemes) {
            ExperimentConfig cfg;
            cfg.scheme = scheme;
            hs.push_back(sweep.addNormalized(wl, cfg));
        }
        handles.push_back(std::move(hs));
    }
    sweep.run();

    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const Norm &n = sweep.normalized(handles[w][s]);
            row.push_back(fmtDouble(n.time));
            cols[s].push_back(n.time);
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (const auto &c : cols)
        avg.push_back(fmtDouble(mean(c)));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\npaper: average degradations 19.5% (Private), "
                 "166.3% (Shared), 16.3% (Cached)\n";

    if (!args.jsonOut.empty()) {
        std::ofstream os(args.jsonOut);
        if (!os) {
            std::cerr << "cannot write " << args.jsonOut << "\n";
            return 1;
        }
        JsonWriter w(os);
        w.beginObject();
        w.field("bench", std::string("fig9"));
        w.field("scale", args.scale);
        w.field("seeds", static_cast<std::uint64_t>(args.seeds));
        w.beginArray("rows");
        const std::vector<std::string> labels = {"Private", "Shared",
                                                 "Cached"};
        for (std::size_t wl = 0; wl < names.size(); ++wl) {
            w.beginObject();
            w.field("workload", names[wl]);
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                w.key(labels[s]);
                w.value(sweep.normalized(handles[wl][s]).time);
            }
            w.endObject();
        }
        w.endArray();
        w.key("mean");
        w.beginObject();
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            w.key(labels[s]);
            w.value(mean(cols[s]));
        }
        w.endObject();
        w.endObject();
        os << "\n";
        std::cout << "wrote " << args.jsonOut << "\n";
    }
    return 0;
}
