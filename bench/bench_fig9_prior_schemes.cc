/**
 * @file
 * Fig. 9: execution times of the prior CPU-oriented OTP management
 * schemes (Private / Shared / Cached, all with the OTP 4x budget) on
 * a 4-GPU system, normalized to the unsecure baseline.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 9 — prior OTP buffer management schemes",
           "Fig. 9 (Private / Shared / Cached, OTP 4x, 4 GPUs)");

    const std::vector<OtpScheme> schemes = {
        OtpScheme::Private, OtpScheme::Shared, OtpScheme::Cached};
    Table t({"workload", "Private", "Shared", "Cached"});
    std::vector<std::vector<double>> cols(schemes.size());

    Sweep sweep(args);
    std::vector<std::vector<std::size_t>> handles;
    for (const auto &wl : workloadNames()) {
        std::vector<std::size_t> hs;
        for (OtpScheme scheme : schemes) {
            ExperimentConfig cfg;
            cfg.scheme = scheme;
            hs.push_back(sweep.addNormalized(wl, cfg));
        }
        handles.push_back(std::move(hs));
    }
    sweep.run();

    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const Norm &n = sweep.normalized(handles[w][s]);
            row.push_back(fmtDouble(n.time));
            cols[s].push_back(n.time);
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (const auto &c : cols)
        avg.push_back(fmtDouble(mean(c)));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\npaper: average degradations 19.5% (Private), "
                 "166.3% (Shared), 16.3% (Cached)\n";
    return 0;
}
