/**
 * @file
 * Scale-out figure: the secure-scheme comparison (Private / Cached /
 * Ours = Dynamic + Batching, normalized to the unsecure system of
 * the same size) re-run at 8, 16 and 64 GPUs. Extends the paper's
 * Fig. 24/25 sensitivity study past its 16-GPU ceiling and, with
 * --topology, onto the switch-based fabrics, where metadata traffic
 * contends at crossbar egress and inter-node trunk ports instead of
 * the p2p ingress ports.
 */

#include <fstream>
#include <iostream>

#include "bench/common.hh"
#include "sim/json_writer.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    BenchArgs args;
    args.acceptJson = true;
    args.acceptTopology = true;
    args.acceptWorkloads = true;
    args.parseArgs(argc, argv);
    banner("Scale-out — secure schemes at 8/16/64 GPUs",
           "extends Fig. 24/25 to 64 GPUs and switch fabrics");

    const std::vector<std::uint32_t> gpu_counts = {8, 16, 64};
    struct Handles
    {
        std::size_t priv, cached, ours;
    };

    const std::vector<std::string> names =
        args.workloads.empty() ? workloadNames() : args.workloads;

    Sweep sweep(args);
    std::vector<std::vector<Handles>> handles(gpu_counts.size());
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
        for (const auto &wl : names) {
            ExperimentConfig cfg;
            cfg.numGpus = gpu_counts[g];
            cfg.topology = args.topology;
            cfg.scheme = OtpScheme::Private;
            const std::size_t hp = sweep.addNormalized(wl, cfg);
            cfg.scheme = OtpScheme::Cached;
            const std::size_t hc = sweep.addNormalized(wl, cfg);
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            handles[g].push_back(
                Handles{hp, hc, sweep.addNormalized(wl, cfg)});
        }
    }
    sweep.run();

    std::vector<std::vector<double>> means(gpu_counts.size());
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
        std::cout << "--- " << gpu_counts[g] << "-GPU system on "
                  << topologyKindName(args.topology.kind)
                  << " fabric\n";
        Table t({"workload", "Private", "Cached", "Ours"});
        std::vector<double> cp, cc, co;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const Norm &np = sweep.normalized(handles[g][w].priv);
            const Norm &nc = sweep.normalized(handles[g][w].cached);
            const Norm &no = sweep.normalized(handles[g][w].ours);
            t.addRow({names[w], fmtDouble(np.time),
                      fmtDouble(nc.time), fmtDouble(no.time)});
            cp.push_back(np.time);
            cc.push_back(nc.time);
            co.push_back(no.time);
        }
        t.addRow({"MEAN", fmtDouble(mean(cp)), fmtDouble(mean(cc)),
                  fmtDouble(mean(co))});
        t.print(std::cout);
        std::cout << "Ours vs Private: "
                  << fmtPct(1.0 - mean(co) / mean(cp))
                  << ", Ours vs Cached: "
                  << fmtPct(1.0 - mean(co) / mean(cc)) << "\n\n";
        means[g] = {mean(cp), mean(cc), mean(co)};
    }

    if (!args.jsonOut.empty()) {
        std::ofstream os(args.jsonOut);
        if (!os) {
            std::cerr << "cannot write " << args.jsonOut << "\n";
            return 1;
        }
        const std::vector<std::string> labels = {"Private", "Cached",
                                                 "Ours"};
        JsonWriter w(os);
        w.beginObject();
        w.field("bench", std::string("scale"));
        w.field("topology",
                std::string(topologyKindName(args.topology.kind)));
        w.field("scale", args.scale);
        w.field("seeds", static_cast<std::uint64_t>(args.seeds));
        w.beginArray("systems");
        for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
            w.beginObject();
            w.field("gpus",
                    static_cast<std::uint64_t>(gpu_counts[g]));
            w.beginArray("rows");
            for (std::size_t wl = 0; wl < names.size(); ++wl) {
                w.beginObject();
                w.field("workload", names[wl]);
                w.key("Private");
                w.value(sweep.normalized(handles[g][wl].priv).time);
                w.key("Cached");
                w.value(sweep.normalized(handles[g][wl].cached).time);
                w.key("Ours");
                w.value(sweep.normalized(handles[g][wl].ours).time);
                w.endObject();
            }
            w.endArray();
            w.key("mean");
            w.beginObject();
            for (std::size_t s = 0; s < labels.size(); ++s) {
                w.key(labels[s]);
                w.value(means[g][s]);
            }
            w.endObject();
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
        std::cout << "wrote " << args.jsonOut << "\n";
    }
    return 0;
}
