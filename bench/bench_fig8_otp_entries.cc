/**
 * @file
 * Fig. 8: execution time of the Private scheme in a 4-GPU system as
 * the OTP buffer quota per pair grows from 1x to 16x, normalized to
 * the unsecure system.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 8 — Private sensitivity to OTP buffer entries",
           "Fig. 8 (OTP 1x..16x, 4 GPUs)");

    const std::vector<std::uint32_t> mults = {1, 2, 4, 8, 16};
    Table t({"workload", "1x", "2x", "4x", "8x", "16x"});
    std::vector<std::vector<double>> cols(mults.size());

    // Queue the whole matrix, run it once on the job pool.
    Sweep sweep(args);
    std::vector<std::vector<std::size_t>> handles;
    for (const auto &wl : workloadNames()) {
        std::vector<std::size_t> hs;
        for (std::uint32_t mult : mults) {
            ExperimentConfig cfg;
            cfg.scheme = OtpScheme::Private;
            cfg.otpMult = mult;
            hs.push_back(sweep.addNormalized(wl, cfg));
        }
        handles.push_back(std::move(hs));
    }
    sweep.run();

    const auto &names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (std::size_t m = 0; m < mults.size(); ++m) {
            const Norm &n = sweep.normalized(handles[w][m]);
            row.push_back(fmtDouble(n.time));
            cols[m].push_back(n.time);
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (const auto &c : cols)
        avg.push_back(fmtDouble(mean(c)));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\npaper: OTP 1x degrades 121.1% on average; 16x "
                 "degrades 14.0%\n";
    return 0;
}
