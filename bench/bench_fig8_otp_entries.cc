/**
 * @file
 * Fig. 8: execution time of the Private scheme in a 4-GPU system as
 * the OTP buffer quota per pair grows from 1x to 16x, normalized to
 * the unsecure system.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 8 — Private sensitivity to OTP buffer entries",
           "Fig. 8 (OTP 1x..16x, 4 GPUs)");

    const std::vector<std::uint32_t> mults = {1, 2, 4, 8, 16};
    Table t({"workload", "1x", "2x", "4x", "8x", "16x"});
    std::vector<std::vector<double>> cols(mults.size());

    for (const auto &wl : workloadNames()) {
        std::vector<std::string> row = {wl};
        for (std::size_t m = 0; m < mults.size(); ++m) {
            ExperimentConfig cfg;
            cfg.scheme = OtpScheme::Private;
            cfg.otpMult = mults[m];
            const Norm n = runNormalized(wl, cfg, args);
            row.push_back(fmtDouble(n.time));
            cols[m].push_back(n.time);
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (const auto &c : cols)
        avg.push_back(fmtDouble(mean(c)));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\npaper: OTP 1x degrades 121.1% on average; 16x "
                 "degrades 14.0%\n";
    return 0;
}
