/**
 * @file
 * Ablation beyond the paper's figures: the Dynamic allocator's
 * hyperparameters — EWMA weights (alpha, beta) and the adjustment
 * interval T. The paper picks alpha=0.9, beta=0.5, T=1000
 * empirically; this sweep shows the sensitivity.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

namespace
{

double
meanTime(const DynamicPadTable::Params &params, const BenchArgs &args)
{
    std::vector<double> times;
    for (const auto &wl : workloadNames()) {
        ExperimentConfig cfg;
        cfg.scheme = OtpScheme::Dynamic;
        cfg.batching = true;
        cfg.scale = args.scale;
        Norm n;
        for (int s = 1; s <= args.seeds; ++s) {
            cfg.seed = static_cast<std::uint64_t>(s);
            SystemConfig sc = makeSystemConfig(cfg);
            sc.security.dynParams = params;
            ExperimentConfig base = cfg;
            base.scheme = OtpScheme::Unsecure;
            base.batching = false;
            const RunResult b = runWorkload(wl, base);
            MultiGpuSystem sys(
                sc, makeProfile(wl, cfg.scale, cfg.numGpus));
            const RunResult r = sys.run();
            n.time += normalizedTime(r, b) / args.seeds;
        }
        times.push_back(n.time);
    }
    return mean(times);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation — Dynamic EWMA hyperparameters",
           "sensitivity of Table III's alpha=0.9, beta=0.5, T=1000");

    Table ta({"alpha", "norm.time"});
    for (double a : {0.3, 0.5, 0.7, 0.9, 1.0}) {
        DynamicPadTable::Params p;
        p.alpha = a;
        ta.addRow({fmtDouble(a, 1), fmtDouble(meanTime(p, args))});
    }
    ta.print(std::cout);
    std::cout << "\n";

    Table tb({"beta", "norm.time"});
    for (double b : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        DynamicPadTable::Params p;
        p.beta = b;
        tb.addRow({fmtDouble(b, 1), fmtDouble(meanTime(p, args))});
    }
    tb.print(std::cout);
    std::cout << "\n";

    Table tc({"T (cycles)", "norm.time"});
    for (Cycles t : {250u, 500u, 1000u, 2000u, 4000u}) {
        DynamicPadTable::Params p;
        p.interval = t;
        tc.addRow({std::to_string(t), fmtDouble(meanTime(p, args))});
    }
    tc.print(std::cout);
    return 0;
}
