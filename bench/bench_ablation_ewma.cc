/**
 * @file
 * Ablation beyond the paper's figures: the Dynamic allocator's
 * hyperparameters — EWMA weights (alpha, beta) and the adjustment
 * interval T. The paper picks alpha=0.9, beta=0.5, T=1000
 * empirically; this sweep shows the sensitivity.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Ablation — Dynamic EWMA hyperparameters",
           "sensitivity of Table III's alpha=0.9, beta=0.5, T=1000");

    // All parameter variants normalize against the same unsecure
    // baselines, so one sweep memoizes them across the whole study.
    Sweep sweep(args);
    auto queue = [&](const DynamicPadTable::Params &params) {
        std::vector<std::size_t> hs;
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            cfg.dynParams = params;
            hs.push_back(sweep.addNormalized(wl, cfg));
        }
        return hs;
    };

    const std::vector<double> alphas = {0.3, 0.5, 0.7, 0.9, 1.0};
    const std::vector<double> betas = {0.1, 0.3, 0.5, 0.7, 0.9};
    const std::vector<Cycles> intervals = {250, 500, 1000, 2000,
                                           4000};
    std::vector<std::vector<std::size_t>> ha, hb, hc;
    for (double a : alphas) {
        DynamicPadTable::Params p;
        p.alpha = a;
        ha.push_back(queue(p));
    }
    for (double b : betas) {
        DynamicPadTable::Params p;
        p.beta = b;
        hb.push_back(queue(p));
    }
    for (Cycles t : intervals) {
        DynamicPadTable::Params p;
        p.interval = t;
        hc.push_back(queue(p));
    }
    sweep.run();

    auto meanTime = [&](const std::vector<std::size_t> &hs) {
        std::vector<double> times;
        for (std::size_t h : hs)
            times.push_back(sweep.normalized(h).time);
        return mean(times);
    };

    Table ta({"alpha", "norm.time"});
    for (std::size_t i = 0; i < alphas.size(); ++i)
        ta.addRow({fmtDouble(alphas[i], 1),
                   fmtDouble(meanTime(ha[i]))});
    ta.print(std::cout);
    std::cout << "\n";

    Table tb({"beta", "norm.time"});
    for (std::size_t i = 0; i < betas.size(); ++i)
        tb.addRow({fmtDouble(betas[i], 1),
                   fmtDouble(meanTime(hb[i]))});
    tb.print(std::cout);
    std::cout << "\n";

    Table tc({"T (cycles)", "norm.time"});
    for (std::size_t i = 0; i < intervals.size(); ++i)
        tc.addRow({std::to_string(intervals[i]),
                   fmtDouble(meanTime(hc[i]))});
    tc.print(std::cout);
    return 0;
}
