/**
 * @file
 * Micro-benchmarks (google-benchmark) of the hot building blocks:
 * the functional crypto, the pad pipeline, the event queue, and the
 * cache model. Useful to keep simulator throughput honest.
 */

#include <benchmark/benchmark.h>

#include <random>

#include "crypto/aes.hh"
#include "crypto/gcm.hh"
#include "crypto/otp.hh"
#include "mem/cache.hh"
#include "secure/pad_pipeline.hh"
#include "sim/event_queue.hh"

using namespace mgsec;
using namespace mgsec::crypto;

static void
BM_AesBlockEncrypt(benchmark::State &state)
{
    std::array<std::uint8_t, 16> key{};
    key[0] = 1;
    Aes128 aes(key);
    Block b{};
    for (auto _ : state) {
        aes.encryptBlock(b);
        benchmark::DoNotOptimize(b);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesBlockEncrypt);

static void
BM_GcmSeal64B(benchmark::State &state)
{
    std::array<std::uint8_t, 16> key{};
    key[5] = 7;
    AesGcm gcm(key);
    Iv96 iv{};
    std::vector<std::uint8_t> pt(64, 0x5a);
    for (auto _ : state) {
        auto sealed = gcm.seal(iv, pt);
        benchmark::DoNotOptimize(sealed);
        iv[0]++;
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_GcmSeal64B);

static void
BM_PadDerive(benchmark::State &state)
{
    std::array<std::uint8_t, 16> key{};
    key[1] = 3;
    PadFactory f(key);
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        auto pad = f.derive(1, 2, ctr++);
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_PadDerive);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<Tick>(i * 3 % 997),
                        [&sink]() { ++sink; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_PadPipelineClaim(benchmark::State &state)
{
    PadPipeline p;
    p.init(0, 40, static_cast<std::uint32_t>(state.range(0)), 0);
    Tick now = 0;
    for (auto _ : state) {
        auto c = p.claim(now);
        now = std::max(now, c.ready);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_PadPipelineClaim)->Arg(1)->Arg(4)->Arg(16);

static void
BM_CacheAccess(benchmark::State &state)
{
    EventQueue eq;
    CacheParams params;
    params.size = 2 * 1024 * 1024;
    params.assoc = 16;
    Cache c("c", eq, params);
    std::mt19937_64 rng(7);
    for (auto _ : state) {
        const std::uint64_t addr = (rng() % (1 << 22)) & ~63ULL;
        auto res = c.access(addr, false);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

BENCHMARK_MAIN();
