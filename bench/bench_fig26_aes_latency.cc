/**
 * @file
 * Fig. 26: sensitivity to AES-GCM latency (10-40 cycles) for
 * Private, Cached, and Ours on the 4-GPU system. The paper's point:
 * faster crypto barely helps, because the metadata bandwidth cost
 * remains.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 26 — AES-GCM latency sensitivity",
           "Fig. 26 (10/20/30/40-cycle AES-GCM)");

    const std::vector<Cycles> latencies = {10, 20, 30, 40};
    struct Handles
    {
        std::size_t priv, cached, ours;
    };
    // The AES latency only matters to secured runs, so all four
    // latency points share the same memoized unsecure baselines.
    Sweep sweep(args);
    std::vector<std::vector<Handles>> handles(latencies.size());
    for (std::size_t l = 0; l < latencies.size(); ++l) {
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.aesLatency = latencies[l];
            cfg.scheme = OtpScheme::Private;
            const std::size_t hp = sweep.addNormalized(wl, cfg);
            cfg.scheme = OtpScheme::Cached;
            const std::size_t hc = sweep.addNormalized(wl, cfg);
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            handles[l].push_back(
                Handles{hp, hc, sweep.addNormalized(wl, cfg)});
        }
    }
    sweep.run();

    Table t({"latency", "Private", "Cached", "Ours"});
    for (std::size_t l = 0; l < latencies.size(); ++l) {
        std::vector<double> cp, cc, co;
        for (const Handles &h : handles[l]) {
            cp.push_back(sweep.normalized(h.priv).time);
            cc.push_back(sweep.normalized(h.cached).time);
            co.push_back(sweep.normalized(h.ours).time);
        }
        t.addRow({std::to_string(latencies[l]) + " cyc",
                  fmtDouble(mean(cp)), fmtDouble(mean(cc)),
                  fmtDouble(mean(co))});
    }
    t.print(std::cout);

    std::cout << "\npaper: 40 -> 10 cycles moves Private only from "
                 "19.5% to 17.3% degradation (ours: batching keeps "
                 "its edge at every latency)\n";
    return 0;
}
