/**
 * @file
 * Fig. 26: sensitivity to AES-GCM latency (10-40 cycles) for
 * Private, Cached, and Ours on the 4-GPU system. The paper's point:
 * faster crypto barely helps, because the metadata bandwidth cost
 * remains.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 26 — AES-GCM latency sensitivity",
           "Fig. 26 (10/20/30/40-cycle AES-GCM)");

    Table t({"latency", "Private", "Cached", "Ours"});
    for (Cycles lat : {10u, 20u, 30u, 40u}) {
        std::vector<double> cp, cc, co;
        for (const auto &wl : workloadNames()) {
            ExperimentConfig cfg;
            cfg.aesLatency = lat;
            cfg.scheme = OtpScheme::Private;
            cp.push_back(runNormalized(wl, cfg, args).time);
            cfg.scheme = OtpScheme::Cached;
            cc.push_back(runNormalized(wl, cfg, args).time);
            cfg.scheme = OtpScheme::Dynamic;
            cfg.batching = true;
            co.push_back(runNormalized(wl, cfg, args).time);
        }
        t.addRow({std::to_string(lat) + " cyc", fmtDouble(mean(cp)),
                  fmtDouble(mean(cc)), fmtDouble(mean(co))});
    }
    t.print(std::cout);

    std::cout << "\npaper: 40 -> 10 cycles moves Private only from "
                 "19.5% to 17.3% degradation (ours: batching keeps "
                 "its edge at every latency)\n";
    return 0;
}
