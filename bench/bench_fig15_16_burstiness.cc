/**
 * @file
 * Fig. 15/16: distribution of the time needed for 16 (Fig. 15) and
 * 32 (Fig. 16) data blocks to accumulate on a processor pair, per
 * workload, using the paper's interval buckets.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

namespace
{

/** The paper's x-axis buckets: [0,40), [40,160), [160,640), ... */
const Cycles kEdges[] = {40, 160, 640, 2560};

std::vector<double>
histogram(const std::vector<Cycles> &samples)
{
    std::vector<double> frac(5, 0.0);
    if (samples.empty())
        return frac;
    for (Cycles c : samples) {
        std::size_t b = 4;
        for (std::size_t i = 0; i < 4; ++i) {
            if (c < kEdges[i]) {
                b = i;
                break;
            }
        }
        frac[b] += 1.0;
    }
    for (double &f : frac)
        f /= static_cast<double>(samples.size());
    return frac;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 15/16 — burstiness of inter-processor data blocks",
           "Fig. 15 (16 blocks) and Fig. 16 (32 blocks)");

    // One run per workload feeds both block-count tables (the old
    // serial driver simulated every workload twice).
    Sweep sweep(args);
    std::vector<std::size_t> handles;
    for (const auto &wl : workloadNames()) {
        ExperimentConfig cfg;
        cfg.scheme = OtpScheme::Unsecure;
        handles.push_back(sweep.addRaw(wl, cfg));
    }
    sweep.run();

    const auto &names = workloadNames();
    for (const int blocks : {16, 32}) {
        std::cout << "--- time to accumulate " << blocks
                  << " data blocks on a pair\n";
        Table t({"workload", "[0,40)", "[40,160)", "[160,640)",
                 "[640,2560)", ">=2560", "samples"});
        std::vector<double> under160;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const auto &wl = names[w];
            const RunResult &r = sweep.raw(handles[w]);
            const auto &samples =
                blocks == 16 ? r.burst16 : r.burst32;
            const auto h = histogram(samples);
            t.addRow({wl, fmtPct(h[0]), fmtPct(h[1]), fmtPct(h[2]),
                      fmtPct(h[3]), fmtPct(h[4]),
                      std::to_string(samples.size())});
            if (!samples.empty())
                under160.push_back(h[0] + h[1]);
        }
        t.addRow({"MEAN<160", fmtPct(mean(under160)), "", "", "", "",
                  ""});
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "paper: 16 blocks accumulate within 160 cycles in "
                 "69.2% of windows on average; 32 blocks in 44.2%\n";
    return 0;
}
