/**
 * @file
 * Fig. 13/14: the communication pattern of matrix multiplication
 * observed from GPU 1 over execution time — the send/receive mix
 * (Fig. 13) and the destination decomposition of the sends
 * (Fig. 14). This is the dynamic locality the Dynamic allocator
 * exploits.
 */

#include <iostream>

#include "bench/common.hh"

using namespace mgsec;
using namespace mgsec::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    banner("Fig. 13/14 — mm communication pattern on GPU 1",
           "Fig. 13 (send vs. recv), Fig. 14 (destination split)");

    ExperimentConfig cfg;
    cfg.scheme = OtpScheme::Unsecure;
    cfg.commSampleInterval = 4000;
    cfg.seed = 1; // one representative run; --seeds does not apply

    Sweep sweep(args);
    const std::size_t h = sweep.addRaw("mm", cfg);
    sweep.run();
    const RunResult &r = sweep.raw(h);

    Table t({"tick", "send%", "recv%", "toCPU%", "toGPU2%",
             "toGPU3%", "toGPU4%"});
    // Aggregate adjacent samples into ~24 rows for readability.
    const std::size_t rows = 24;
    const std::size_t group =
        std::max<std::size_t>(1, r.commSeries.size() / rows);
    for (std::size_t i = 0; i < r.commSeries.size(); i += group) {
        Tick tick = 0;
        std::uint64_t sends = 0, recvs = 0;
        std::vector<std::uint64_t> to(5, 0);
        for (std::size_t j = i;
             j < std::min(i + group, r.commSeries.size()); ++j) {
            const CommSample &s = r.commSeries[j];
            tick = s.tick;
            sends += s.sends;
            recvs += s.recvs;
            for (std::size_t d = 0;
                 d < std::min<std::size_t>(5, s.sendsTo.size()); ++d)
                to[d] += s.sendsTo[d];
        }
        const double both = static_cast<double>(sends + recvs);
        const double out = static_cast<double>(sends);
        if (both == 0)
            continue;
        auto pct = [](double x, double tot) {
            return tot > 0 ? fmtPct(x / tot, 0) : std::string("-");
        };
        t.addRow({std::to_string(tick),
                  pct(static_cast<double>(sends), both),
                  pct(static_cast<double>(recvs), both),
                  pct(static_cast<double>(to[0]), out),
                  pct(static_cast<double>(to[2]), out),
                  pct(static_cast<double>(to[3]), out),
                  pct(static_cast<double>(to[4]), out)});
    }
    t.print(std::cout);

    std::cout << "\npaper: mm's sends concentrate on one or two "
                 "destinations per interval, and the mix shifts as "
                 "the kernel sweeps its tiles\n";
    return 0;
}
