/**
 * @file
 * Fabric topology models: who serializes where on a packet's way
 * from src to dst.
 *
 * The Network owns packet routing policy-free: accounting, tamper
 * points, capture/replay and delivery are identical for every
 * fabric. What differs between machines is which ports a packet
 * occupies and for how long — that is a Topology:
 *
 *   p2p      - the paper's target system (Fig. 2 / Table III): every
 *              GPU owns one NVLink-class port shared by its traffic
 *              to/from all peers (egress serializes at the sender,
 *              ingress at the receiver), plus a dedicated PCIe
 *              channel to the CPU.
 *
 *                CPU ==pcie== GPUi  <--nvlink port-->  GPUj
 *
 *   nvswitch - an NVSwitch-class crossbar: every GPU owns one uplink
 *              into the switch; the switch has one egress port per
 *              GPU where traffic from all senders contends. CPU
 *              traffic still uses the dedicated PCIe channels.
 *
 *                GPUi --uplink--> [ crossbar ] --egress[j]--> GPUj
 *
 *   hier     - two-level fabric: GPUs are grouped gpusPerNode to a
 *              node; intra-node traffic crosses that node's crossbar
 *              (as nvswitch), inter-node traffic additionally
 *              serializes through the source node's trunk-out and
 *              the destination node's trunk-in port.
 *
 *                GPUi -> [ node crossbar ] -> trunk ==> trunk ->
 *                [ node crossbar ] -> GPUj
 *
 * Every topology delivers FIFO per (src, dst): a flow's packets pass
 * through the same serializer chain in send order, and
 * Serializer::reserve() is monotone, so arrival order per flow
 * matches send order — the property the secure channel's counter
 * protocol relies on.
 */

#ifndef MGSEC_NET_TOPOLOGY_HH
#define MGSEC_NET_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/serializer.hh"
#include "sim/latency_attr.hh"
#include "sim/types.hh"

namespace mgsec
{

/** Static channel parameters. */
struct LinkParams
{
    double bytesPerCycle = 1.0;
    Cycles latency = 1;
};

enum class TopologyKind : std::uint8_t
{
    P2p = 0,      ///< shared per-GPU NVLink ports + per-GPU PCIe
    NvSwitch = 1, ///< single crossbar, contention at switch egress
    Hier = 2,     ///< per-node crossbars + inter-node trunk links
};

inline const char *
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::P2p:
        return "p2p";
      case TopologyKind::NvSwitch:
        return "nvswitch";
      case TopologyKind::Hier:
        return "hier";
    }
    return "?";
}

/** Parse a topology name ("p2p", "nvswitch", "hier"). */
bool parseTopologyKind(const std::string &text, TopologyKind &out);

/** Fabric selection + the knobs of the non-p2p fabrics. */
struct TopologyConfig
{
    TopologyKind kind = TopologyKind::P2p;

    /** @name nvswitch / hier crossbar knobs */
    /// @{
    /** Max GPUs one crossbar accepts (Hier: per node). */
    std::uint32_t switchRadix = 64;
    /** Uplink wire + crossbar traversal (cycles). */
    Cycles switchLatency = 60;
    /** Bandwidth of one switch egress port (bytes/cycle). */
    double switchBytesPerCycle = 50.0;
    /// @}

    /** @name hier fabric knobs */
    /// @{
    std::uint32_t gpusPerNode = 8;
    /** One-way trunk traversal between nodes (cycles). */
    Cycles interLatency = 300;
    /** Bandwidth of one node's trunk port per direction. */
    double interBytesPerCycle = 25.0;
    /// @}

    bool operator==(const TopologyConfig &) const = default;
};

/**
 * Routing/port-sharing model of one fabric. Owns every serializer a
 * packet can occupy; the Network delegates the timing decision here
 * and keeps everything else (accounting, tamper, capture, delivery).
 */
class Topology
{
  public:
    Topology(const TopologyConfig &cfg, std::uint32_t num_nodes,
             LinkParams pcie, LinkParams nvlink);
    virtual ~Topology() = default;

    TopologyKind kind() const { return cfg_.kind; }
    const TopologyConfig &config() const { return cfg_; }
    std::uint32_t numNodes() const { return num_nodes_; }
    const LinkParams &pcieParams() const { return pcie_; }
    const LinkParams &nvlinkParams() const { return nvlink_; }

    /**
     * Serialize a src -> dst crossing of @p bytes starting no
     * earlier than @p send_tick through the fabric's ports.
     * @return the arrival tick of the last byte.
     */
    virtual Tick route(NodeId src, NodeId dst, Bytes bytes,
                       Tick send_tick) = 0;

    /** Link class of the (src, dst) crossing, for attribution and
     *  wire-observer tagging. */
    virtual LinkType linkType(NodeId src, NodeId dst) const = 0;

    /**
     * Smallest latency any crossing can experience: the conservative
     * PDES lookahead bound (a send at tick >= T arrives at
     * >= T + minLatency()).
     */
    virtual Cycles minLatency() const = 0;

    /**
     * Link classes this fabric can emit, contiguous from
     * LinkType 0 (pcie). p2p -> 2, nvswitch -> 3, hier -> 4;
     * attribution registers histograms for exactly this many.
     */
    virtual std::size_t numLinkClasses() const = 0;

    /**
     * @name Per-GPU port accessors (utilization analyses)
     * Every fabric gives each GPU a PCIe down/up pair and a fabric
     * egress/ingress pair: for p2p the shared NVLink port's two
     * sides, for nvswitch/hier the uplink into the crossbar and the
     * crossbar's egress port toward the GPU.
     */
    /// @{
    const Serializer &fabricEgress(NodeId gpu) const;
    virtual const Serializer &fabricIngress(NodeId gpu) const;
    const Serializer &pcieDown(NodeId gpu) const;
    const Serializer &pcieUp(NodeId gpu) const;
    /// @}

  protected:
    /** CPU-traffic crossing shared by every fabric: one dedicated
     *  per-GPU PCIe serialization. Asserts src or dst is the CPU. */
    Tick routePcie(NodeId src, NodeId dst, Bytes bytes,
                   Tick send_tick);

    void checkGpu(NodeId gpu) const;

    TopologyConfig cfg_;
    std::uint32_t num_nodes_;
    LinkParams pcie_;
    LinkParams nvlink_;

    /** Indexed by node id; entry 0 unused. */
    std::vector<Serializer> fab_egress_;
    std::vector<Serializer> fab_ingress_;
    std::vector<Serializer> pcie_down_;
    std::vector<Serializer> pcie_up_;
};

/** Build the fabric @p cfg selects. */
std::unique_ptr<Topology> makeTopology(const TopologyConfig &cfg,
                                       std::uint32_t num_nodes,
                                       LinkParams pcie,
                                       LinkParams nvlink);

} // namespace mgsec

#endif // MGSEC_NET_TOPOLOGY_HH
