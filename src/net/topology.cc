#include "net/topology.hh"

#include "sim/logging.hh"

namespace mgsec
{

bool
parseTopologyKind(const std::string &text, TopologyKind &out)
{
    if (text == "p2p") {
        out = TopologyKind::P2p;
    } else if (text == "nvswitch") {
        out = TopologyKind::NvSwitch;
    } else if (text == "hier") {
        out = TopologyKind::Hier;
    } else {
        return false;
    }
    return true;
}

Topology::Topology(const TopologyConfig &cfg, std::uint32_t num_nodes,
                   LinkParams pcie, LinkParams nvlink)
    : cfg_(cfg), num_nodes_(num_nodes), pcie_(pcie), nvlink_(nvlink)
{
    MGSEC_ASSERT(num_nodes_ >= 2, "need a CPU and at least one GPU");
    pcie_down_.assign(num_nodes_, Serializer(pcie_.bytesPerCycle));
    pcie_up_.assign(num_nodes_, Serializer(pcie_.bytesPerCycle));
}

Tick
Topology::routePcie(NodeId src, NodeId dst, Bytes bytes,
                    Tick send_tick)
{
    MGSEC_ASSERT(src == 0 || dst == 0, "not a CPU crossing: %u -> %u",
                 src, dst);
    // Dedicated per-GPU PCIe channel: one serialization.
    const NodeId gpu = src == 0 ? dst : src;
    Serializer &ser = src == 0 ? pcie_down_[gpu] : pcie_up_[gpu];
    return ser.reserve(send_tick, bytes) + pcie_.latency;
}

void
Topology::checkGpu(NodeId gpu) const
{
    MGSEC_ASSERT(gpu >= 1 && gpu < num_nodes_, "not a GPU: %u", gpu);
}

const Serializer &
Topology::fabricEgress(NodeId gpu) const
{
    checkGpu(gpu);
    return fab_egress_[gpu];
}

const Serializer &
Topology::fabricIngress(NodeId gpu) const
{
    checkGpu(gpu);
    return fab_ingress_[gpu];
}

const Serializer &
Topology::pcieDown(NodeId gpu) const
{
    checkGpu(gpu);
    return pcie_down_[gpu];
}

const Serializer &
Topology::pcieUp(NodeId gpu) const
{
    checkGpu(gpu);
    return pcie_up_[gpu];
}

namespace
{

/**
 * The paper's point-to-point fabric: shared per-GPU NVLink ports.
 * The routing arithmetic is the historical Network::sendOnWire()
 * block, moved verbatim — p2p runs are byte-identical to the
 * pre-Topology simulator.
 */
class P2pTopology : public Topology
{
  public:
    P2pTopology(const TopologyConfig &cfg, std::uint32_t num_nodes,
                LinkParams pcie, LinkParams nvlink)
        : Topology(cfg, num_nodes, pcie, nvlink)
    {
        fab_egress_.assign(num_nodes_,
                           Serializer(nvlink_.bytesPerCycle));
        fab_ingress_.assign(num_nodes_,
                            Serializer(nvlink_.bytesPerCycle));
    }

    Tick
    route(NodeId src, NodeId dst, Bytes bytes, Tick send_tick) override
    {
        if (src == 0 || dst == 0)
            return routePcie(src, dst, bytes, send_tick);
        // Shared NVLink ports: sender egress, then receiver ingress.
        const Tick sent = fab_egress_[src].reserve(send_tick, bytes);
        return fab_ingress_[dst].reserve(sent + nvlink_.latency,
                                         bytes);
    }

    LinkType
    linkType(NodeId src, NodeId dst) const override
    {
        return src == 0 || dst == 0 ? LinkType::Pcie
                                    : LinkType::Nvlink;
    }

    Cycles
    minLatency() const override
    {
        return std::min(pcie_.latency, nvlink_.latency);
    }

    std::size_t
    numLinkClasses() const override
    {
        return 2;
    }
};

/**
 * NVSwitch-class crossbar: every GPU uplinks into one switch;
 * traffic to a GPU contends at that GPU's switch egress port.
 */
class NvSwitchTopology : public Topology
{
  public:
    NvSwitchTopology(const TopologyConfig &cfg,
                     std::uint32_t num_nodes, LinkParams pcie,
                     LinkParams nvlink)
        : Topology(cfg, num_nodes, pcie, nvlink)
    {
        MGSEC_ASSERT(num_nodes_ - 1 <= cfg_.switchRadix,
                     "%u GPUs exceed switch radix %u", num_nodes_ - 1,
                     cfg_.switchRadix);
        fab_egress_.assign(num_nodes_,
                           Serializer(nvlink_.bytesPerCycle));
        sw_egress_.assign(num_nodes_,
                          Serializer(cfg_.switchBytesPerCycle));
    }

    Tick
    route(NodeId src, NodeId dst, Bytes bytes, Tick send_tick) override
    {
        if (src == 0 || dst == 0)
            return routePcie(src, dst, bytes, send_tick);
        // Uplink into the crossbar, traverse it, then contend at the
        // destination's switch egress port; the egress wire adds the
        // NVLink hop latency.
        const Tick up = fab_egress_[src].reserve(send_tick, bytes);
        const Tick out = sw_egress_[dst].reserve(
            up + cfg_.switchLatency, bytes);
        return out + nvlink_.latency;
    }

    LinkType
    linkType(NodeId src, NodeId dst) const override
    {
        return src == 0 || dst == 0 ? LinkType::Pcie
                                    : LinkType::Switch;
    }

    Cycles
    minLatency() const override
    {
        return std::min(pcie_.latency,
                        cfg_.switchLatency + nvlink_.latency);
    }

    std::size_t
    numLinkClasses() const override
    {
        return 3;
    }

    const Serializer &
    fabricIngress(NodeId gpu) const override
    {
        checkGpu(gpu);
        return sw_egress_[gpu];
    }

  private:
    /** Switch egress port toward each GPU; entry 0 unused. */
    std::vector<Serializer> sw_egress_;
};

/**
 * Two-level fabric: per-node crossbars joined by trunk links. GPU g
 * lives on node (g - 1) / gpusPerNode.
 */
class HierTopology : public Topology
{
  public:
    HierTopology(const TopologyConfig &cfg, std::uint32_t num_nodes,
                 LinkParams pcie, LinkParams nvlink)
        : Topology(cfg, num_nodes, pcie, nvlink)
    {
        MGSEC_ASSERT(cfg_.gpusPerNode >= 1, "empty fabric nodes");
        MGSEC_ASSERT(cfg_.gpusPerNode <= cfg_.switchRadix,
                     "%u GPUs per node exceed switch radix %u",
                     cfg_.gpusPerNode, cfg_.switchRadix);
        const std::uint32_t gpus = num_nodes_ - 1;
        fabric_nodes_ =
            (gpus + cfg_.gpusPerNode - 1) / cfg_.gpusPerNode;
        fab_egress_.assign(num_nodes_,
                           Serializer(nvlink_.bytesPerCycle));
        sw_egress_.assign(num_nodes_,
                          Serializer(cfg_.switchBytesPerCycle));
        trunk_out_.assign(fabric_nodes_,
                          Serializer(cfg_.interBytesPerCycle));
        trunk_in_.assign(fabric_nodes_,
                         Serializer(cfg_.interBytesPerCycle));
    }

    Tick
    route(NodeId src, NodeId dst, Bytes bytes, Tick send_tick) override
    {
        if (src == 0 || dst == 0)
            return routePcie(src, dst, bytes, send_tick);
        const std::uint32_t hs = nodeOf(src), hd = nodeOf(dst);
        Tick t = fab_egress_[src].reserve(send_tick, bytes);
        if (hs != hd) {
            // Source crossbar to trunk, trunk crossing, trunk into
            // the destination crossbar.
            t = trunk_out_[hs].reserve(t + cfg_.switchLatency, bytes);
            t = trunk_in_[hd].reserve(t + cfg_.interLatency, bytes);
        }
        const Tick out =
            sw_egress_[dst].reserve(t + cfg_.switchLatency, bytes);
        return out + nvlink_.latency;
    }

    LinkType
    linkType(NodeId src, NodeId dst) const override
    {
        if (src == 0 || dst == 0)
            return LinkType::Pcie;
        return nodeOf(src) == nodeOf(dst) ? LinkType::Switch
                                          : LinkType::Inter;
    }

    Cycles
    minLatency() const override
    {
        return std::min(pcie_.latency,
                        cfg_.switchLatency + nvlink_.latency);
    }

    std::size_t
    numLinkClasses() const override
    {
        return 4;
    }

    const Serializer &
    fabricIngress(NodeId gpu) const override
    {
        checkGpu(gpu);
        return sw_egress_[gpu];
    }

  private:
    std::uint32_t
    nodeOf(NodeId gpu) const
    {
        return (gpu - 1) / cfg_.gpusPerNode;
    }

    std::uint32_t fabric_nodes_;
    std::vector<Serializer> sw_egress_;
    std::vector<Serializer> trunk_out_;
    std::vector<Serializer> trunk_in_;
};

} // namespace

std::unique_ptr<Topology>
makeTopology(const TopologyConfig &cfg, std::uint32_t num_nodes,
             LinkParams pcie, LinkParams nvlink)
{
    switch (cfg.kind) {
      case TopologyKind::P2p:
        return std::make_unique<P2pTopology>(cfg, num_nodes, pcie,
                                             nvlink);
      case TopologyKind::NvSwitch:
        return std::make_unique<NvSwitchTopology>(cfg, num_nodes,
                                                  pcie, nvlink);
      case TopologyKind::Hier:
        return std::make_unique<HierTopology>(cfg, num_nodes, pcie,
                                              nvlink);
    }
    MGSEC_ASSERT(false, "unknown topology kind");
    return nullptr;
}

} // namespace mgsec
