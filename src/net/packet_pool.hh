/**
 * @file
 * Thread-local free-list recycling of Packet and FunctionalPayload
 * objects.
 *
 * Every message used to heap-allocate a Packet at the sender and free
 * it at the receiver — the dominant allocator traffic of a run. Each
 * simulation is confined to one JobPool worker thread, so a
 * thread-local free list recycles packets with no locking: acquire()
 * pops the list (or allocates on a cold start), and the PacketPtr
 * deleter resets the object and pushes it back. After warm-up the
 * steady-state loop touches the allocator zero times per packet.
 *
 * Pooling only changes where objects live, never what they contain:
 * acquire() always hands out a fully reset packet, so results are
 * bit-identical with the pool enabled or disabled (the test suite
 * proves this on a whole sweep).
 */

#ifndef MGSEC_NET_PACKET_POOL_HH
#define MGSEC_NET_PACKET_POOL_HH

#include <cstdint>

#include "net/packet.hh"

namespace mgsec
{

class PacketPool
{
  public:
    /** Allocator-traffic counters for the calling thread. */
    struct Stats
    {
        std::uint64_t freshPackets = 0;  ///< served by operator new
        std::uint64_t reusedPackets = 0; ///< served from the free list
        std::uint64_t freshPayloads = 0;
        std::uint64_t reusedPayloads = 0;
        std::uint64_t livePackets = 0;   ///< acquired minus released

        std::uint64_t
        totalPackets() const
        {
            return freshPackets + reusedPackets;
        }
    };

    /** Pop a reset packet from the free list, or allocate one. */
    static PacketPtr acquire();

    /** Pop a reset payload from the free list, or allocate one. */
    static FunctionalPayloadPtr acquireFunc();

    /**
     * Toggle recycling for the calling thread (on by default). While
     * disabled, acquire() allocates and release frees — the A/B
     * baseline for the bit-identical and perf tests.
     */
    static void setEnabled(bool on);
    static bool enabled();

    static Stats stats();
    static void resetStats();

    /**
     * Provision the calling thread's free lists up to the given
     * object counts. Provisioning is not allocator *traffic* — the
     * hot-path guarantee is zero fresh allocations in steady state,
     * and a preloaded list is exactly a warmed-up one — so these
     * allocations are not counted as fresh. The sharded kernel
     * preloads each worker thread before the run: unlike a serial
     * run, a worker cannot warm its lists from packets other threads
     * released (migration trains drift packets from the home node's
     * thread to the requester's).
     */
    static void preload(std::size_t packets, std::size_t payloads);

    /** Free every cached object (counters are preserved). */
    static void trim();

    /** Objects currently parked on the free lists. */
    static std::uint64_t cachedPackets();
    static std::uint64_t cachedPayloads();

  private:
    friend struct PacketDeleter;
    friend struct FunctionalPayloadDeleter;

    static void release(Packet *p) noexcept;
    static void releaseFunc(FunctionalPayload *p) noexcept;
};

} // namespace mgsec

#endif // MGSEC_NET_PACKET_POOL_HH
