/**
 * @file
 * System interconnect: CPU + N GPUs.
 *
 * The Network owns everything every fabric shares — accounting,
 * tamper points, capture/replay, FIFO delivery — and delegates the
 * routing/port-sharing decision (who serializes where, for how
 * long) to a Topology (net/topology.hh). The default p2p topology
 * is the paper's target system (Fig. 2 / Table III):
 *   - every GPU owns one NVLink-class port (50 GB/s per direction at
 *     1 GHz => 50 B/cycle) shared by its traffic to/from all peer
 *     GPUs: egress serializes at the sender's port, ingress at the
 *     receiver's;
 *   - each GPU additionally has a dedicated PCIe v4 channel to the
 *     CPU (32 GB/s per direction => 32 B/cycle).
 *
 * Delivery is FIFO per (src, dst) on every topology, which the
 * secure channel's counter protocol relies on.
 */

#ifndef MGSEC_NET_NETWORK_HH
#define MGSEC_NET_NETWORK_HH

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "net/serializer.hh"
#include "net/topology.hh"
#include "sim/sim_object.hh"

namespace mgsec
{

class WireObserver;

class Network : public SimObject
{
  public:
    using Handler = std::function<void(PacketPtr)>;

    /**
     * The historical point-to-point constructor.
     * @param num_nodes total processors (CPU is node 0), >= 2.
     * @param pcie per-direction parameters of each CPU<->GPU channel.
     * @param nvlink per-direction parameters of each GPU's shared
     *               inter-GPU port.
     */
    Network(const std::string &name, EventQueue &eq,
            std::uint32_t num_nodes, LinkParams pcie,
            LinkParams nvlink);

    /** Fabric-selecting constructor (net/topology.hh). */
    Network(const std::string &name, EventQueue &eq,
            std::uint32_t num_nodes, LinkParams pcie,
            LinkParams nvlink, const TopologyConfig &topo);

    std::uint32_t numNodes() const { return num_nodes_; }
    const LinkParams &pcieParams() const { return pcie_; }
    const LinkParams &nvlinkParams() const { return nvlink_; }

    /** The fabric carrying this network's packets. */
    const Topology &topology() const { return *topo_; }
    /**
     * True on switch-based fabrics, where the wire order is defined
     * canonically (see canonical_order_ below) so serial and sharded
     * kernels agree bit-for-bit on every statistic.
     */
    bool canonicalWireOrder() const { return canonical_order_; }
    /** Link class of an (src, dst) crossing on this fabric. */
    LinkType
    linkType(NodeId src, NodeId dst) const
    {
        return topo_->linkType(src, dst);
    }

    /** Install the receive handler for a node. */
    void setHandler(NodeId node, Handler h);

    /** Route a packet from pkt->src to pkt->dst. */
    void send(PacketPtr pkt);

    /**
     * @name Sharded-kernel capture mode
     *
     * Under the domain-sharded kernel every send() crosses domains
     * (nodes live in different domains, and wire hops are the only
     * cross-domain edges), so the network is the explicit
     * cross-domain message channel. With capture on, send() only
     * records {packet, sender-local tick} into the *calling
     * domain's* capture lane — one writer per lane regardless of the
     * src the packet carries, so even an attacker model injecting
     * foreign-src traffic from its own domain stays race-free — and
     * the whole wire crossing (tamper points, byte accounting, port
     * serialization, trace/lifecycle stamps, delivery) happens later
     * in replayCaptured() on the quiesced coordinator thread, in an
     * order fixed by (send tick, src, dst, lane, push order) and
     * thus independent of thread count.
     *
     * A window's deliveries always land in a later window: with
     * lookahead L = min link latency and sends at tick >= window
     * start T, arrival >= T + L, past the window end T + L - 1.
     */
    /// @{
    void setParallelCapture(bool on);
    bool parallelCapture() const { return capture_; }

    /**
     * Replay every captured send through the wire, delivering into
     * the destination's own queue (@p queue_of maps node -> domain
     * queue). Single-threaded: call only at a barrier, with all
     * domain threads quiesced. @return packets replayed (the
     * window's domain-crossing count; tamper-dropped packets count
     * as crossings attempted).
     */
    std::uint64_t
    replayCaptured(const std::function<EventQueue &(NodeId)> &queue_of);
    /// @}

    /**
     * @name In-flight meddling — the physical attacker of the
     * threat model.
     *
     * Two distinct mount points along a packet's wire crossing:
     *
     *   PreWire  - before byte accounting and port serialization.
     *              Mutations (including byte-class fields) fully take
     *              effect: they change what is accounted, how long
     *              the ports are busy, and what arrives. A Drop here
     *              suppresses the packet before it touches the wire.
     *   PostWire - after accounting and serialization: the hook sees
     *              the exact bytes the wire carried (what a probe on
     *              the exposed interconnect captures), so replay
     *              capture records true wire images. Mutations alter
     *              only what is delivered, never the traffic
     *              accounting or timing already committed; a Drop
     *              models in-flight loss (the bytes crossed the
     *              wire but nothing arrives).
     *
     * Hooks run on every packet crossing the exposed interconnect;
     * used by the adversarial validation subsystem (src/verify).
     */
    /// @{
    enum class TamperPoint : std::uint8_t { PreWire = 0, PostWire = 1 };
    enum class TamperVerdict : std::uint8_t { Forward, Drop };
    using TamperHook = std::function<TamperVerdict(Packet &)>;
    void
    setTamper(TamperPoint point, TamperHook h)
    {
        tamper_[static_cast<std::size_t>(point)] = std::move(h);
    }

    /**
     * Legacy single-point form: a void meddler mounted post-wire
     * that always forwards (the historical behavior).
     */
    using Tamper = std::function<void(Packet &)>;
    void
    setTamper(Tamper t)
    {
        if (!t) {
            tamper_[static_cast<std::size_t>(TamperPoint::PostWire)] =
                TamperHook{};
            return;
        }
        setTamper(TamperPoint::PostWire,
                  [t = std::move(t)](Packet &p) {
                      t(p);
                      return TamperVerdict::Forward;
                  });
    }

    /** Packets a tamper hook dropped (either point). */
    std::uint64_t droppedPackets() const { return dropped_; }
    /// @}

    /**
     * Attach a passive wire observer (null detaches). The observer
     * sees each packet's (src, dst, wire bytes, send tick, arrive
     * tick) after the wire crossing is committed — the same view a
     * probe on the exposed interconnect captures — and nothing else.
     * Like the trace sink, a null pointer is the entire cost of the
     * disabled feature.
     */
    void setWireObserver(WireObserver *obs) { wire_obs_ = obs; }
    WireObserver *wireObserver() const { return wire_obs_; }

    /** @name Aggregate traffic accounting */
    /// @{
    Bytes totalBytes() const;
    Bytes classBytes(TrafficClass c) const
    {
        return static_cast<Bytes>(
            class_bytes_[static_cast<std::size_t>(c)].value());
    }
    std::uint64_t totalPackets() const
    {
        return static_cast<std::uint64_t>(packets_.value());
    }
    /** Bytes sent on the (src -> dst) flow. */
    Bytes pairBytes(NodeId src, NodeId dst) const;
    /** Packets currently between send() and delivery. */
    std::uint64_t inFlight() const { return in_flight_.load(); }
    /// @}

    /**
     * @name Port utilization (for bandwidth analyses)
     * The nvlink pair maps to the topology's fabric ports: the
     * shared NVLink port sides on p2p, the crossbar uplink/egress
     * on nvswitch/hier.
     */
    /// @{
    const Serializer &nvlinkEgress(NodeId gpu) const;
    const Serializer &nvlinkIngress(NodeId gpu) const;
    const Serializer &pcieDown(NodeId gpu) const; ///< CPU -> GPU
    const Serializer &pcieUp(NodeId gpu) const;   ///< GPU -> CPU
    /// @}

  private:
    void deliver(Tick when, PacketPtr pkt, EventQueue &eq);
    /** The full wire crossing, parameterized so capture replay can
     *  run it with the sender's tick and the receiver's queue. */
    void sendOnWire(PacketPtr pkt, Tick send_tick, EventQueue &dst_eq);
    /** Serial-mode canonical flush: route every send buffered at the
     *  current tick in (src, dst) order. */
    void flushTick();

    struct CapturedSend
    {
        PacketPtr pkt;
        Tick sendTick;
    };

    std::uint32_t num_nodes_;
    LinkParams pcie_;
    LinkParams nvlink_;
    std::unique_ptr<Topology> topo_;

    std::vector<Handler> handlers_;
    WireObserver *wire_obs_ = nullptr;
    std::array<TamperHook, 2> tamper_;
    std::uint64_t dropped_ = 0;

    std::vector<double> pair_bytes_;
    /** Atomic: delivery callbacks decrement on domain threads. */
    std::atomic<std::uint64_t> in_flight_{0};

    bool capture_ = false;
    /**
     * Canonical wire order (switch-based fabrics only). Routing on
     * nvswitch/hier funnels many flows through shared switch-egress
     * and trunk ports, so same-tick sends contend far more often
     * than on p2p — and the serial kernel's inline routing would
     * reserve those ports in event-scheduling order while the
     * sharded replay reserves them in (send tick, src, dst) order,
     * making serial and sharded results drift apart. When set,
     * serial send() buffers the packet and a same-tick flush event
     * routes the whole batch in (src, dst) order, matching the
     * replay sort exactly. p2p keeps the historical inline path so
     * pre-topology artifacts stay byte-identical.
     */
    bool canonical_order_ = false;
    /** Sends buffered at the current tick awaiting flushTick(). */
    std::vector<CapturedSend> tick_pending_;
    bool flush_scheduled_ = false;
    /** Per-writer capture lanes, indexed by the sending domain's id
     *  (last lane = sends outside any Domain scope, e.g. drains run
     *  between kernel windows on the main thread). Single-writer
     *  each; the kernel barrier orders writes before the coordinator
     *  reads. Keyed by writer rather than (src, dst) because the
     *  verify testbed's adversary injects foreign-src packets from
     *  its own domain. */
    std::vector<std::vector<CapturedSend>> lanes_;

    stats::Scalar packets_{"packets", "packets sent"};
    std::array<stats::Scalar, kNumTrafficClasses> class_bytes_{
        stats::Scalar{"bytesHeader", "header bytes"},
        stats::Scalar{"bytesPayload", "payload bytes"},
        stats::Scalar{"bytesSecMeta", "security metadata bytes"},
        stats::Scalar{"bytesSecAck", "security ACK bytes"},
    };
};

} // namespace mgsec

#endif // MGSEC_NET_NETWORK_HH
