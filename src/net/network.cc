#include "net/network.hh"

#include <algorithm>

#include "sim/domain.hh"
#include "sim/latency_attr.hh"
#include "sim/logging.hh"
#include "sim/trace_sink.hh"
#include "sim/wire_observer.hh"

namespace mgsec
{

Network::Network(const std::string &name, EventQueue &eq,
                 std::uint32_t num_nodes, LinkParams pcie,
                 LinkParams nvlink)
    : Network(name, eq, num_nodes, pcie, nvlink, TopologyConfig{})
{
}

Network::Network(const std::string &name, EventQueue &eq,
                 std::uint32_t num_nodes, LinkParams pcie,
                 LinkParams nvlink, const TopologyConfig &topo)
    : SimObject(name, eq), num_nodes_(num_nodes), pcie_(pcie),
      nvlink_(nvlink),
      topo_(makeTopology(topo, num_nodes, pcie, nvlink)),
      handlers_(num_nodes),
      pair_bytes_(static_cast<std::size_t>(num_nodes) * num_nodes,
                  0.0)
{
    MGSEC_ASSERT(num_nodes_ >= 2, "need a CPU and at least one GPU");
    canonical_order_ = topo.kind != TopologyKind::P2p;
    regStat(packets_);
    for (auto &s : class_bytes_)
        regStat(s);
}

void
Network::setHandler(NodeId node, Handler h)
{
    MGSEC_ASSERT(node < num_nodes_, "bad node id %u", node);
    handlers_[node] = std::move(h);
}

void
Network::deliver(Tick when, PacketPtr pkt, EventQueue &eq)
{
    // Moving the owning pointer into the callback (InplaceCallback
    // takes move-only captures) means a run that stops with events
    // still queued returns its in-flight packets to the pool instead
    // of leaking them.
    ++in_flight_;
    // On canonical-order fabrics the delivery's place among the
    // arrival tick's events must not depend on when it was scheduled
    // (send tick under the serial kernel, window barrier under the
    // sharded one) — kPriWire pins deliveries ahead of local work.
    const EventPri pri = canonical_order_ ? kPriWire : kPriNormal;
    eq.schedule(when, pri, [this, p = std::move(pkt)]() mutable {
        --in_flight_;
        MGSEC_ASSERT(handlers_[p->dst] != nullptr,
                     "no handler for node %u", p->dst);
        handlers_[p->dst](std::move(p));
    });
}

void
Network::setParallelCapture(bool on)
{
    capture_ = on;
    if (on) {
        // One lane per possible writer domain plus the overflow lane
        // for sends outside any Domain scope (domain counts never
        // exceed the node count in either the system or the verify
        // testbed).
        lanes_.resize(static_cast<std::size_t>(num_nodes_) + 1);
    } else {
        for (const auto &lane : lanes_)
            MGSEC_ASSERT(lane.empty(), "disabling capture with "
                                       "unreplayed packets");
        lanes_.clear();
        lanes_.shrink_to_fit();
    }
}

std::uint64_t
Network::replayCaptured(
    const std::function<EventQueue &(NodeId)> &queue_of)
{
    // Concatenate the writer lanes in lane order, then stable sort
    // by (send tick, src, dst): the replay order is (sendTick, src,
    // dst, lane, push order) — a pure function of simulation state,
    // identical for every thread count and run. In the system proper
    // each (src, dst) pair has exactly one writer lane, so this is
    // exactly (sendTick, src, dst, push order).
    std::vector<CapturedSend> window;
    for (auto &lane : lanes_) {
        for (CapturedSend &c : lane)
            window.push_back(std::move(c));
        lane.clear();
    }
    std::stable_sort(window.begin(), window.end(),
                     [](const CapturedSend &a, const CapturedSend &b) {
                         if (a.sendTick != b.sendTick)
                             return a.sendTick < b.sendTick;
                         if (a.pkt->src != b.pkt->src)
                             return a.pkt->src < b.pkt->src;
                         return a.pkt->dst < b.pkt->dst;
                     });
    const std::uint64_t n = window.size();
    for (CapturedSend &c : window) {
        EventQueue &dst_eq = queue_of(c.pkt->dst);
        sendOnWire(std::move(c.pkt), c.sendTick, dst_eq);
    }
    return n;
}

void
Network::send(PacketPtr pkt)
{
    MGSEC_ASSERT(pkt->src < num_nodes_ && pkt->dst < num_nodes_ &&
                     pkt->src != pkt->dst,
                 "bad route %u -> %u", pkt->src, pkt->dst);
    if (capture_) {
        // Record against the *sender's* clock: under the sharded
        // kernel the caller executes on its domain's queue, not on
        // the network's home queue.
        Domain *dom = Domain::current();
        const Tick send_tick = dom ? dom->eq().now() : now();
        const std::size_t lane = dom ? dom->id() : num_nodes_;
        MGSEC_ASSERT(lane < lanes_.size(), "capture lane %zu out of "
                     "range", lane);
        lanes_[lane].push_back(CapturedSend{std::move(pkt), send_tick});
        return;
    }
    if (canonical_order_) {
        // Switch-based fabric under the serial kernel: defer the
        // wire crossing to a same-tick flush so shared-port
        // reservations happen in the replay sort's (src, dst)
        // order, not event-scheduling order. Nothing in the system
        // schedules zero-delay events, so every send at this tick
        // lands in one batch: the flush event, scheduled during the
        // tick's first send, outsequences every already-pending
        // event at this tick.
        tick_pending_.push_back(CapturedSend{std::move(pkt), now()});
        if (!flush_scheduled_) {
            flush_scheduled_ = true;
            eventq().schedule(now(), [this] { flushTick(); });
        }
        return;
    }
    sendOnWire(std::move(pkt), now(), eventq());
}

void
Network::flushTick()
{
    flush_scheduled_ = false;
    std::vector<CapturedSend> batch;
    batch.swap(tick_pending_);
    std::stable_sort(batch.begin(), batch.end(),
                     [](const CapturedSend &a, const CapturedSend &b) {
                         if (a.pkt->src != b.pkt->src)
                             return a.pkt->src < b.pkt->src;
                         return a.pkt->dst < b.pkt->dst;
                     });
    for (CapturedSend &c : batch) {
        MGSEC_ASSERT(c.sendTick == now(), "flush crossed a tick");
        sendOnWire(std::move(c.pkt), c.sendTick, eventq());
    }
}

void
Network::sendOnWire(PacketPtr pkt, Tick send_tick, EventQueue &dst_eq)
{
    // Pre-wire tamper point: the packet has not touched the wire
    // yet, so mutations here change accounting and serialization,
    // and a Drop leaves no trace on the interconnect.
    if (const TamperHook &pre = tamper_[static_cast<std::size_t>(
            TamperPoint::PreWire)]) {
        if (pre(*pkt) == TamperVerdict::Drop) {
            ++dropped_;
            return;
        }
    }

    const Bytes bytes = pkt->wireBytes();
    MGSEC_ASSERT(bytes > 0, "zero-byte packet");

    ++packets_;
    class_bytes_[static_cast<std::size_t>(TrafficClass::Header)] +=
        static_cast<double>(pkt->headerBytes);
    class_bytes_[static_cast<std::size_t>(TrafficClass::Payload)] +=
        static_cast<double>(pkt->payloadBytes);
    class_bytes_[static_cast<std::size_t>(TrafficClass::SecMeta)] +=
        static_cast<double>(pkt->secMetaBytes);
    class_bytes_[static_cast<std::size_t>(TrafficClass::SecAck)] +=
        static_cast<double>(pkt->ackBytes);
    pair_bytes_[static_cast<std::size_t>(pkt->src) * num_nodes_ +
                pkt->dst] += static_cast<double>(bytes);

    // Port occupancy and arrival timing are the fabric's decision.
    const Tick arrive =
        topo_->route(pkt->src, pkt->dst, bytes, send_tick);
    if (TraceSink *ts = eventq().traceSink()) {
        ts->complete(pkt->src, "net", packetTypeName(pkt->type),
                     send_tick, arrive - send_tick, "bytes", bytes);
    }
    if (eventq().attribution()) {
        // The network owns the wire boundaries of the lifecycle
        // clock; the receiving channel folds the stamps on delivery
        // (SecAck/BatchMac stamps are written but never folded).
        lifeStamp(pkt->life, LifeStamp::WireEntry) = send_tick;
        lifeStamp(pkt->life, LifeStamp::Delivered) = arrive;
    }

    // The passive observer sees the committed wire crossing exactly
    // as a fabric probe would: endpoints, wire bytes, and timing —
    // nothing a post-wire meddler does can retroactively hide it.
    if (wire_obs_)
        wire_obs_->onWirePacket(pkt->src, pkt->dst, bytes, send_tick,
                                arrive);

    // Post-wire tamper point: accounting and port occupancy are
    // committed, so the hook observes the exact wire bytes; only
    // what arrives (or whether anything arrives) can still change.
    if (const TamperHook &post = tamper_[static_cast<std::size_t>(
            TamperPoint::PostWire)]) {
        if (post(*pkt) == TamperVerdict::Drop) {
            ++dropped_;
            return;
        }
    }
    deliver(arrive, std::move(pkt), dst_eq);
}

Bytes
Network::totalBytes() const
{
    double total = 0.0;
    for (const auto &s : class_bytes_)
        total += s.value();
    return static_cast<Bytes>(total);
}

Bytes
Network::pairBytes(NodeId src, NodeId dst) const
{
    return static_cast<Bytes>(
        pair_bytes_[static_cast<std::size_t>(src) * num_nodes_ + dst]);
}

const Serializer &
Network::nvlinkEgress(NodeId gpu) const
{
    return topo_->fabricEgress(gpu);
}

const Serializer &
Network::nvlinkIngress(NodeId gpu) const
{
    return topo_->fabricIngress(gpu);
}

const Serializer &
Network::pcieDown(NodeId gpu) const
{
    return topo_->pcieDown(gpu);
}

const Serializer &
Network::pcieUp(NodeId gpu) const
{
    return topo_->pcieUp(gpu);
}

} // namespace mgsec
