#include "net/network.hh"

#include <algorithm>

#include "sim/domain.hh"
#include "sim/latency_attr.hh"
#include "sim/logging.hh"
#include "sim/trace_sink.hh"
#include "sim/wire_observer.hh"

namespace mgsec
{

Network::Network(const std::string &name, EventQueue &eq,
                 std::uint32_t num_nodes, LinkParams pcie,
                 LinkParams nvlink)
    : SimObject(name, eq), num_nodes_(num_nodes), pcie_(pcie),
      nvlink_(nvlink), handlers_(num_nodes),
      pair_bytes_(static_cast<std::size_t>(num_nodes) * num_nodes,
                  0.0)
{
    MGSEC_ASSERT(num_nodes_ >= 2, "need a CPU and at least one GPU");
    nv_egress_.assign(num_nodes_, Serializer(nvlink_.bytesPerCycle));
    nv_ingress_.assign(num_nodes_, Serializer(nvlink_.bytesPerCycle));
    pcie_down_.assign(num_nodes_, Serializer(pcie_.bytesPerCycle));
    pcie_up_.assign(num_nodes_, Serializer(pcie_.bytesPerCycle));
    regStat(packets_);
    for (auto &s : class_bytes_)
        regStat(s);
}

void
Network::setHandler(NodeId node, Handler h)
{
    MGSEC_ASSERT(node < num_nodes_, "bad node id %u", node);
    handlers_[node] = std::move(h);
}

void
Network::deliver(Tick when, PacketPtr pkt, EventQueue &eq)
{
    // Moving the owning pointer into the callback (InplaceCallback
    // takes move-only captures) means a run that stops with events
    // still queued returns its in-flight packets to the pool instead
    // of leaking them.
    ++in_flight_;
    eq.schedule(when, [this, p = std::move(pkt)]() mutable {
        --in_flight_;
        MGSEC_ASSERT(handlers_[p->dst] != nullptr,
                     "no handler for node %u", p->dst);
        handlers_[p->dst](std::move(p));
    });
}

void
Network::setParallelCapture(bool on)
{
    capture_ = on;
    if (on) {
        // One lane per possible writer domain plus the overflow lane
        // for sends outside any Domain scope (domain counts never
        // exceed the node count in either the system or the verify
        // testbed).
        lanes_.resize(static_cast<std::size_t>(num_nodes_) + 1);
    } else {
        for (const auto &lane : lanes_)
            MGSEC_ASSERT(lane.empty(), "disabling capture with "
                                       "unreplayed packets");
        lanes_.clear();
        lanes_.shrink_to_fit();
    }
}

std::uint64_t
Network::replayCaptured(
    const std::function<EventQueue &(NodeId)> &queue_of)
{
    // Concatenate the writer lanes in lane order, then stable sort
    // by (send tick, src, dst): the replay order is (sendTick, src,
    // dst, lane, push order) — a pure function of simulation state,
    // identical for every thread count and run. In the system proper
    // each (src, dst) pair has exactly one writer lane, so this is
    // exactly (sendTick, src, dst, push order).
    std::vector<CapturedSend> window;
    for (auto &lane : lanes_) {
        for (CapturedSend &c : lane)
            window.push_back(std::move(c));
        lane.clear();
    }
    std::stable_sort(window.begin(), window.end(),
                     [](const CapturedSend &a, const CapturedSend &b) {
                         if (a.sendTick != b.sendTick)
                             return a.sendTick < b.sendTick;
                         if (a.pkt->src != b.pkt->src)
                             return a.pkt->src < b.pkt->src;
                         return a.pkt->dst < b.pkt->dst;
                     });
    const std::uint64_t n = window.size();
    for (CapturedSend &c : window) {
        EventQueue &dst_eq = queue_of(c.pkt->dst);
        sendOnWire(std::move(c.pkt), c.sendTick, dst_eq);
    }
    return n;
}

void
Network::send(PacketPtr pkt)
{
    MGSEC_ASSERT(pkt->src < num_nodes_ && pkt->dst < num_nodes_ &&
                     pkt->src != pkt->dst,
                 "bad route %u -> %u", pkt->src, pkt->dst);
    if (capture_) {
        // Record against the *sender's* clock: under the sharded
        // kernel the caller executes on its domain's queue, not on
        // the network's home queue.
        Domain *dom = Domain::current();
        const Tick send_tick = dom ? dom->eq().now() : now();
        const std::size_t lane = dom ? dom->id() : num_nodes_;
        MGSEC_ASSERT(lane < lanes_.size(), "capture lane %zu out of "
                     "range", lane);
        lanes_[lane].push_back(CapturedSend{std::move(pkt), send_tick});
        return;
    }
    sendOnWire(std::move(pkt), now(), eventq());
}

void
Network::sendOnWire(PacketPtr pkt, Tick send_tick, EventQueue &dst_eq)
{
    // Pre-wire tamper point: the packet has not touched the wire
    // yet, so mutations here change accounting and serialization,
    // and a Drop leaves no trace on the interconnect.
    if (const TamperHook &pre = tamper_[static_cast<std::size_t>(
            TamperPoint::PreWire)]) {
        if (pre(*pkt) == TamperVerdict::Drop) {
            ++dropped_;
            return;
        }
    }

    const Bytes bytes = pkt->wireBytes();
    MGSEC_ASSERT(bytes > 0, "zero-byte packet");

    ++packets_;
    class_bytes_[static_cast<std::size_t>(TrafficClass::Header)] +=
        static_cast<double>(pkt->headerBytes);
    class_bytes_[static_cast<std::size_t>(TrafficClass::Payload)] +=
        static_cast<double>(pkt->payloadBytes);
    class_bytes_[static_cast<std::size_t>(TrafficClass::SecMeta)] +=
        static_cast<double>(pkt->secMetaBytes);
    class_bytes_[static_cast<std::size_t>(TrafficClass::SecAck)] +=
        static_cast<double>(pkt->ackBytes);
    pair_bytes_[static_cast<std::size_t>(pkt->src) * num_nodes_ +
                pkt->dst] += static_cast<double>(bytes);

    const bool is_pcie = pkt->src == 0 || pkt->dst == 0;
    Tick arrive;
    if (is_pcie) {
        // Dedicated per-GPU PCIe channel: one serialization.
        const NodeId gpu = pkt->src == 0 ? pkt->dst : pkt->src;
        Serializer &ser =
            pkt->src == 0 ? pcie_down_[gpu] : pcie_up_[gpu];
        arrive = ser.reserve(send_tick, bytes) + pcie_.latency;
    } else {
        // Shared NVLink ports: sender egress, then receiver ingress.
        const Tick sent =
            nv_egress_[pkt->src].reserve(send_tick, bytes);
        arrive = nv_ingress_[pkt->dst].reserve(
            sent + nvlink_.latency, bytes);
    }
    if (TraceSink *ts = eventq().traceSink()) {
        ts->complete(pkt->src, "net", packetTypeName(pkt->type),
                     send_tick, arrive - send_tick, "bytes", bytes);
    }
    if (eventq().attribution()) {
        // The network owns the wire boundaries of the lifecycle
        // clock; the receiving channel folds the stamps on delivery
        // (SecAck/BatchMac stamps are written but never folded).
        lifeStamp(pkt->life, LifeStamp::WireEntry) = send_tick;
        lifeStamp(pkt->life, LifeStamp::Delivered) = arrive;
    }

    // The passive observer sees the committed wire crossing exactly
    // as a fabric probe would: endpoints, wire bytes, and timing —
    // nothing a post-wire meddler does can retroactively hide it.
    if (wire_obs_)
        wire_obs_->onWirePacket(pkt->src, pkt->dst, bytes, send_tick,
                                arrive);

    // Post-wire tamper point: accounting and port occupancy are
    // committed, so the hook observes the exact wire bytes; only
    // what arrives (or whether anything arrives) can still change.
    if (const TamperHook &post = tamper_[static_cast<std::size_t>(
            TamperPoint::PostWire)]) {
        if (post(*pkt) == TamperVerdict::Drop) {
            ++dropped_;
            return;
        }
    }
    deliver(arrive, std::move(pkt), dst_eq);
}

Bytes
Network::totalBytes() const
{
    double total = 0.0;
    for (const auto &s : class_bytes_)
        total += s.value();
    return static_cast<Bytes>(total);
}

Bytes
Network::pairBytes(NodeId src, NodeId dst) const
{
    return static_cast<Bytes>(
        pair_bytes_[static_cast<std::size_t>(src) * num_nodes_ + dst]);
}

const Serializer &
Network::nvlinkEgress(NodeId gpu) const
{
    MGSEC_ASSERT(gpu >= 1 && gpu < num_nodes_, "not a GPU: %u", gpu);
    return nv_egress_[gpu];
}

const Serializer &
Network::nvlinkIngress(NodeId gpu) const
{
    MGSEC_ASSERT(gpu >= 1 && gpu < num_nodes_, "not a GPU: %u", gpu);
    return nv_ingress_[gpu];
}

const Serializer &
Network::pcieDown(NodeId gpu) const
{
    MGSEC_ASSERT(gpu >= 1 && gpu < num_nodes_, "not a GPU: %u", gpu);
    return pcie_down_[gpu];
}

const Serializer &
Network::pcieUp(NodeId gpu) const
{
    MGSEC_ASSERT(gpu >= 1 && gpu < num_nodes_, "not a GPU: %u", gpu);
    return pcie_up_[gpu];
}

} // namespace mgsec
