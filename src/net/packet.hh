/**
 * @file
 * Wire packets exchanged between processors.
 *
 * A packet's footprint on a link is the sum of four byte classes that
 * the traffic figures of the paper distinguish:
 *   header   - routing/transaction header (and address for requests)
 *   payload  - cache-block data
 *   secMeta  - security metadata (MsgCTR + sender id, MsgMAC, batch
 *              length byte)
 *   ack      - replay-protection acknowledgment bytes (standalone or
 *              piggybacked)
 */

#ifndef MGSEC_NET_PACKET_HH
#define MGSEC_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <memory>

#include "sim/inline_vec.hh"
#include "sim/lifecycle.hh"
#include "sim/types.hh"

namespace mgsec
{

/** Kinds of messages a node emits. */
enum class PacketType : std::uint8_t
{
    ReadReq,    ///< remote read request (64 B block)
    WriteReq,   ///< remote write request (carries a block)
    ReadResp,   ///< data response
    WriteResp,  ///< write completion
    SecAck,     ///< standalone replay-protection ACK
    BatchMac,   ///< standalone batched MsgMAC trailer
    TransReq,   ///< IOMMU translation request (GPU -> CPU)
    TransResp,  ///< IOMMU translation response
    Chaff,      ///< shaping cover traffic; dropped on arrival
};

const char *packetTypeName(PacketType t);

/** Byte classes for traffic accounting. */
enum class TrafficClass : std::uint8_t
{
    Header = 0,
    Payload = 1,
    SecMeta = 2,
    SecAck = 3,
};
constexpr std::size_t kNumTrafficClasses = 4;

/**
 * Security acknowledgment record: confirms receipt of messages up to
 * @c upToCtr on the (from -> to) pair, or of a whole batch.
 */
struct AckRecord
{
    NodeId from = InvalidNode; ///< original data sender being ACKed
    std::uint64_t upToCtr = 0;
    std::uint64_t batchId = 0; ///< nonzero when ACKing a batch
    /**
     * Tick the record was queued at the receiver — latency
     * attribution only (ackReturn histogram); carries no protocol
     * meaning and no wire bytes.
     */
    Tick queuedAt = 0;
};

/**
 * Real cryptographic material carried when the channel runs in
 * functional-crypto mode: the actual ciphertext of the block and
 * the (per-message or batched) MsgMAC. The timing model never needs
 * this; the protocol validation and the adversarial tests do.
 */
struct FunctionalPayload
{
    std::array<std::uint8_t, 64> cipher{};
    std::array<std::uint8_t, 8> mac{};
    bool hasCipher = false;
    bool hasMac = false;
};

/** Returns a FunctionalPayload to the thread's pool (or frees it). */
struct FunctionalPayloadDeleter
{
    void operator()(FunctionalPayload *p) const noexcept;
};

/**
 * Owning handle to a packet's functional-crypto material. Pooled
 * like the packets themselves; never shared, only moved along with
 * its packet.
 */
using FunctionalPayloadPtr =
    std::unique_ptr<FunctionalPayload, FunctionalPayloadDeleter>;

/**
 * Piggybacked ACKs ride inline: SecurityConfig::maxPiggybackAcks
 * defaults to 2, so only the rarer standalone SecAck packets (which
 * carry a whole flush's worth) ever spill to the heap.
 */
using AckList = InlineVec<AckRecord, 2>;

struct Packet
{
    std::uint64_t id = 0;       ///< unique packet id
    std::uint64_t txnId = 0;    ///< transaction this belongs to
    PacketType type = PacketType::ReadReq;
    NodeId src = InvalidNode;
    NodeId dst = InvalidNode;
    std::uint64_t addr = 0;     ///< block address (requests)
    bool migration = false;     ///< part of a page migration

    /** Byte-class footprint. */
    Bytes headerBytes = 0;
    Bytes payloadBytes = 0;
    Bytes secMetaBytes = 0;
    Bytes ackBytes = 0;

    /** Security header fields (valid when secured). */
    bool secured = false;
    std::uint64_t msgCtr = 0;
    bool padFallback = false;   ///< sender pad was generated on demand
    bool hasMac = false;        ///< per-message MsgMAC present
    std::uint64_t batchId = 0;  ///< batch the message belongs to
    std::uint8_t batchLen = 0;  ///< nonzero on a batch's first message
    bool batchLast = false;     ///< closes its batch
    /**
     * Cover-traffic generation (PacketType::Chaff only): 0 when the
     * sender's clock was refreshed by *real* activity, 1 when it is
     * sustained only by received cover. Generation-0 chaff refreshes
     * the receiver's cover clock; generation-1 chaff does not, which
     * bounds how long the mesh keeps chaffing after the last real
     * packet anywhere.
     */
    std::uint8_t chaffGen = 0;
    AckList acks; ///< piggybacked ACKs

    /** Real crypto material (functional-crypto mode only). */
    FunctionalPayloadPtr func;

    /** Timestamp when the secure-send stage accepted the message. */
    Tick sendReady = 0;

    /** Tick the message entered the channel (trace lifetime start). */
    Tick injectTick = 0;

    /**
     * Lifecycle-clock stamps (latency attribution). Only written
     * when EventQueue::attribution() is attached, and every stamp a
     * fold reads is rewritten on that same enabled path — so reset()
     * deliberately leaves the array stale rather than taxing pooled
     * recycling with a memset profiling-off runs never benefit from.
     */
    LifeStamps life{};

    /**
     * Return to the freshly-constructed state so a pooled packet can
     * be recycled. Keeps any heap buffer the ack list spilled into.
     */
    void reset();

    Bytes
    wireBytes() const
    {
        return headerBytes + payloadBytes + secMetaBytes + ackBytes;
    }

    bool
    isRequest() const
    {
        return type == PacketType::ReadReq ||
               type == PacketType::WriteReq ||
               type == PacketType::TransReq;
    }

    bool
    isResponse() const
    {
        return type == PacketType::ReadResp ||
               type == PacketType::WriteResp ||
               type == PacketType::TransResp;
    }
};

/** Returns a Packet to the thread's pool (or frees it). */
struct PacketDeleter
{
    void operator()(Packet *p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/**
 * Allocate a packet, recycling from the calling thread's PacketPool
 * free list when possible. The only sanctioned way to create one.
 */
PacketPtr makePacket();

/** Allocate (or recycle) a functional-crypto payload. */
FunctionalPayloadPtr makeFunctionalPayload();

/**
 * Deep copy of a packet, functional-crypto material included — what
 * a physical attacker records when it captures a wire image for a
 * later replay. The clone is pooled like any other packet.
 */
PacketPtr clonePacket(const Packet &p);

} // namespace mgsec

#endif // MGSEC_NET_PACKET_HH
