#include "net/packet_pool.hh"

#include <vector>

namespace mgsec
{

namespace
{

/**
 * Per-thread pool state. Owned raw pointers; the destructor frees
 * whatever is still cached when the worker thread exits.
 */
struct Tls
{
    std::vector<Packet *> packets;
    std::vector<FunctionalPayload *> payloads;
    PacketPool::Stats stats;
    bool enabled = true;

    ~Tls()
    {
        for (Packet *p : packets)
            delete p;
        for (FunctionalPayload *p : payloads)
            delete p;
    }
};

Tls &
tls()
{
    thread_local Tls t;
    return t;
}

} // anonymous namespace

PacketPtr
PacketPool::acquire()
{
    Tls &t = tls();
    ++t.stats.livePackets;
    if (t.enabled && !t.packets.empty()) {
        Packet *p = t.packets.back();
        t.packets.pop_back();
        ++t.stats.reusedPackets;
        return PacketPtr(p);
    }
    ++t.stats.freshPackets;
    return PacketPtr(new Packet);
}

FunctionalPayloadPtr
PacketPool::acquireFunc()
{
    Tls &t = tls();
    if (t.enabled && !t.payloads.empty()) {
        FunctionalPayload *p = t.payloads.back();
        t.payloads.pop_back();
        ++t.stats.reusedPayloads;
        return FunctionalPayloadPtr(p);
    }
    ++t.stats.freshPayloads;
    return FunctionalPayloadPtr(new FunctionalPayload);
}

void
PacketPool::release(Packet *p) noexcept
{
    Tls &t = tls();
    if (t.stats.livePackets > 0)
        --t.stats.livePackets;
    if (!t.enabled) {
        delete p;
        return;
    }
    p->reset();
    t.packets.push_back(p);
}

void
PacketPool::releaseFunc(FunctionalPayload *p) noexcept
{
    Tls &t = tls();
    if (!t.enabled) {
        delete p;
        return;
    }
    // Stale cipher/mac bytes are unreachable once the flags drop, so
    // only the flags need resetting.
    p->hasCipher = false;
    p->hasMac = false;
    t.payloads.push_back(p);
}

void
PacketPool::setEnabled(bool on)
{
    Tls &t = tls();
    if (!on && t.enabled)
        trim();
    t.enabled = on;
}

bool
PacketPool::enabled()
{
    return tls().enabled;
}

PacketPool::Stats
PacketPool::stats()
{
    return tls().stats;
}

void
PacketPool::resetStats()
{
    const std::uint64_t live = tls().stats.livePackets;
    tls().stats = Stats{};
    tls().stats.livePackets = live;
}

void
PacketPool::preload(std::size_t packets, std::size_t payloads)
{
    Tls &t = tls();
    if (!t.enabled)
        return;
    t.packets.reserve(packets);
    while (t.packets.size() < packets)
        t.packets.push_back(new Packet);
    t.payloads.reserve(payloads);
    while (t.payloads.size() < payloads)
        t.payloads.push_back(new FunctionalPayload);
}

void
PacketPool::trim()
{
    Tls &t = tls();
    for (Packet *p : t.packets)
        delete p;
    t.packets.clear();
    for (FunctionalPayload *p : t.payloads)
        delete p;
    t.payloads.clear();
}

std::uint64_t
PacketPool::cachedPackets()
{
    return tls().packets.size();
}

std::uint64_t
PacketPool::cachedPayloads()
{
    return tls().payloads.size();
}

} // namespace mgsec
