/**
 * @file
 * A bandwidth serializer: the transmit (or receive) side of a port.
 *
 * Packets occupy the port for ceil(bytes / bytesPerCycle) cycles in
 * reservation order. Used both for dedicated channels (PCIe lanes to
 * one GPU) and for shared ports (a GPU's NVLink port carries traffic
 * to every peer).
 */

#ifndef MGSEC_NET_SERIALIZER_HH
#define MGSEC_NET_SERIALIZER_HH

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mgsec
{

class Serializer
{
  public:
    explicit Serializer(double bytes_per_cycle = 1.0)
        : bpc_(bytes_per_cycle)
    {
        MGSEC_ASSERT(bpc_ > 0.0, "serializer needs bandwidth");
    }

    /**
     * Reserve the port for @p bytes, starting no earlier than
     * @p earliest.
     * @return tick at which the last byte has passed.
     */
    Tick
    reserve(Tick earliest, Bytes bytes)
    {
        MGSEC_ASSERT(bytes > 0, "zero-byte reservation");
        const auto dur = static_cast<Cycles>(
            std::ceil(static_cast<double>(bytes) / bpc_));
        const Tick start = std::max(earliest, next_free_);
        next_free_ = start + dur;
        busy_ += static_cast<double>(dur);
        bytes_ += static_cast<double>(bytes);
        return next_free_;
    }

    Tick nextFree() const { return next_free_; }
    double busyCycles() const { return busy_; }
    double bytesCarried() const { return bytes_; }
    double bytesPerCycle() const { return bpc_; }

  private:
    double bpc_;
    Tick next_free_ = 0;
    double busy_ = 0.0;
    double bytes_ = 0.0;
};

} // namespace mgsec

#endif // MGSEC_NET_SERIALIZER_HH
