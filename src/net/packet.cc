#include "net/packet.hh"

#include "net/packet_pool.hh"

namespace mgsec
{

void
Packet::reset()
{
    id = 0;
    txnId = 0;
    type = PacketType::ReadReq;
    src = InvalidNode;
    dst = InvalidNode;
    addr = 0;
    migration = false;
    headerBytes = 0;
    payloadBytes = 0;
    secMetaBytes = 0;
    ackBytes = 0;
    secured = false;
    msgCtr = 0;
    padFallback = false;
    hasMac = false;
    batchId = 0;
    batchLen = 0;
    batchLast = false;
    chaffGen = 0;
    acks.clear();
    func.reset();
    sendReady = 0;
    injectTick = 0;
}

void
PacketDeleter::operator()(Packet *p) const noexcept
{
    if (p != nullptr)
        PacketPool::release(p);
}

void
FunctionalPayloadDeleter::operator()(FunctionalPayload *p)
    const noexcept
{
    if (p != nullptr)
        PacketPool::releaseFunc(p);
}

PacketPtr
makePacket()
{
    return PacketPool::acquire();
}

FunctionalPayloadPtr
makeFunctionalPayload()
{
    return PacketPool::acquireFunc();
}

PacketPtr
clonePacket(const Packet &p)
{
    auto c = makePacket();
    c->id = p.id;
    c->txnId = p.txnId;
    c->type = p.type;
    c->src = p.src;
    c->dst = p.dst;
    c->addr = p.addr;
    c->migration = p.migration;
    c->headerBytes = p.headerBytes;
    c->payloadBytes = p.payloadBytes;
    c->secMetaBytes = p.secMetaBytes;
    c->ackBytes = p.ackBytes;
    c->secured = p.secured;
    c->msgCtr = p.msgCtr;
    c->padFallback = p.padFallback;
    c->hasMac = p.hasMac;
    c->batchId = p.batchId;
    c->batchLen = p.batchLen;
    c->batchLast = p.batchLast;
    c->acks = p.acks;
    if (p.func != nullptr) {
        c->func = makeFunctionalPayload();
        *c->func = *p.func;
    }
    c->sendReady = p.sendReady;
    c->injectTick = p.injectTick;
    c->life = p.life;
    return c;
}

const char *
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::ReadReq:
        return "ReadReq";
      case PacketType::WriteReq:
        return "WriteReq";
      case PacketType::ReadResp:
        return "ReadResp";
      case PacketType::WriteResp:
        return "WriteResp";
      case PacketType::SecAck:
        return "SecAck";
      case PacketType::BatchMac:
        return "BatchMac";
      case PacketType::TransReq:
        return "TransReq";
      case PacketType::TransResp:
        return "TransResp";
      case PacketType::Chaff:
        return "Chaff";
    }
    return "Unknown";
}

} // namespace mgsec
