#include "net/packet.hh"

namespace mgsec
{

const char *
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::ReadReq:
        return "ReadReq";
      case PacketType::WriteReq:
        return "WriteReq";
      case PacketType::ReadResp:
        return "ReadResp";
      case PacketType::WriteResp:
        return "WriteResp";
      case PacketType::SecAck:
        return "SecAck";
      case PacketType::BatchMac:
        return "BatchMac";
      case PacketType::TransReq:
        return "TransReq";
      case PacketType::TransResp:
        return "TransResp";
    }
    return "Unknown";
}

} // namespace mgsec
