#include "sim/latency_attr.hh"

#include <ostream>

#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace mgsec
{

namespace
{

std::string
histName(LinkType l, const char *what)
{
    return std::string(linkTypeName(l)) + "." + what;
}

} // namespace

LatencyAttribution::LatencyAttribution(std::string scheme,
                                       std::size_t num_links)
    : scheme_(std::move(scheme)), num_links_(num_links),
      batch_close_("batchClose",
                   "first data message to batch MAC verdict (cycles)"),
      ack_return_("ackReturn",
                  "ACK queued at receiver to processed at sender "
                  "(cycles)"),
      meta_walk_("metaWalk",
                 "host integrity-tree walk latency on counter-cache "
                 "misses (cycles)")
{
    MGSEC_ASSERT(num_links_ >= 1 && num_links_ <= kNumLinkTypes,
                 "bad link-class count %zu", num_links_);
    stages_.reserve(num_links_ * kNumLifeStages);
    e2e_.reserve(num_links_);
    for (std::size_t l = 0; l < num_links_; ++l) {
        const LinkType link = static_cast<LinkType>(l);
        for (std::size_t s = 0; s < kNumLifeStages; ++s) {
            stages_.emplace_back(
                histName(link, lifeStageName(s)),
                std::string(lifeStageName(s)) + " stage cycles (" +
                    scheme_ + ", " + linkTypeName(link) + ")");
        }
        e2e_.emplace_back(histName(link, "e2e"),
                          "end-to-end message latency (" + scheme_ +
                              ", " + linkTypeName(link) + ")");
    }
    for (std::size_t l = 0; l < num_links_; ++l) {
        for (std::size_t s = 0; s < kNumLifeStages; ++s)
            group_.add(stageMut(static_cast<LinkType>(l), s));
        group_.add(e2e_[l]);
    }
    group_.add(batch_close_);
    group_.add(ack_return_);
    group_.add(meta_walk_);
}

stats::Histogram &
LatencyAttribution::stageMut(LinkType l, std::size_t s)
{
    MGSEC_ASSERT(static_cast<std::size_t>(l) < num_links_,
                 "link class %s not registered", linkTypeName(l));
    return stages_[static_cast<std::size_t>(l) * kNumLifeStages + s];
}

const stats::Histogram &
LatencyAttribution::stage(LinkType l, std::size_t s) const
{
    MGSEC_ASSERT(static_cast<std::size_t>(l) < num_links_,
                 "link class %s not registered", linkTypeName(l));
    return stages_[static_cast<std::size_t>(l) * kNumLifeStages + s];
}

const stats::Histogram &
LatencyAttribution::e2e(LinkType l) const
{
    MGSEC_ASSERT(static_cast<std::size_t>(l) < num_links_,
                 "link class %s not registered", linkTypeName(l));
    return e2e_[static_cast<std::size_t>(l)];
}

void
LatencyAttribution::fold(LinkType link, const LifeStamps &st,
                         TraceSink *trace, NodeId tid)
{
    // The trace sink is the caller's per-domain buffer, so only the
    // histogram accumulation below needs the concurrent guard.
    auto l = lockIfConcurrent();
    for (std::size_t s = 0; s < kNumLifeStages; ++s) {
        MGSEC_ASSERT(st[s + 1] >= st[s],
                     "lifecycle stamps out of order: %s %llu -> %llu",
                     lifeStageName(s),
                     static_cast<unsigned long long>(st[s]),
                     static_cast<unsigned long long>(st[s + 1]));
        const Tick dur = st[s + 1] - st[s];
        stageMut(link, s).record(dur);
        if (trace && dur > 0) {
            trace->complete(static_cast<std::uint32_t>(tid), "attr",
                            lifeStageName(s), st[s], dur);
        }
    }
    e2e_[static_cast<std::size_t>(link)].record(
        st[kNumLifeStamps - 1] - st[0]);
    ++folds_;
}

void
LatencyAttribution::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("scheme", scheme_);
    w.field("folds", folds_);
    group_.dumpJson(w);
    w.endObject();
    os << "\n";
}

void
LatencyAttribution::reset()
{
    group_.resetAll();
    folds_ = 0;
}

} // namespace mgsec
