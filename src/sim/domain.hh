/**
 * @file
 * Event domains for the sharded (conservative-PDES) kernel.
 *
 * A Domain is one shard of the discrete-event kernel: an EventQueue
 * plus the per-domain observability buffers that let a multi-threaded
 * run produce deterministic artifacts. Domains never share SimObjects
 * — core/system.cc partitions objects so that the only cross-domain
 * edges are wire hops through the Network, which the parallel kernel
 * turns into captured messages replayed at barrier windows
 * (sim/parallel_kernel.hh).
 *
 * Domain 0 is the host/fabric domain. It wraps an externally owned
 * queue (the system's legacy `eq_`) so the serial code path and every
 * component bound to that queue stay untouched; GPU domains own their
 * queues.
 *
 * The thread-local current() pointer tells code running inside a
 * window which domain's clock it is on — Network::send() uses it to
 * timestamp captured cross-domain messages with the *sender's* local
 * time rather than the host queue's stale clock.
 */

#ifndef MGSEC_SIM_DOMAIN_HH
#define MGSEC_SIM_DOMAIN_HH

#include <memory>
#include <sstream>
#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mgsec
{

class TraceSink;

class Domain
{
  public:
    /** Wrap an externally owned queue (the host domain). */
    Domain(DomainId id, EventQueue &host_eq);
    /** Own a fresh queue (per-GPU domains). */
    explicit Domain(DomainId id);
    ~Domain();

    Domain(const Domain &) = delete;
    Domain &operator=(const Domain &) = delete;

    DomainId id() const { return id_; }
    EventQueue &eq() { return *eq_; }
    const EventQueue &eq() const { return *eq_; }

    /**
     * Domain whose window the calling thread is currently executing,
     * or nullptr outside the parallel kernel (serial runs, barrier
     * phases).
     */
    static Domain *current();

    /** RAII current()-setter the kernel wraps window execution in. */
    class Scope
    {
      public:
        explicit Scope(Domain &d);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Domain *prev_;
    };

    /**
     * @name Per-domain trace buffering
     *
     * Each domain writes trace events into a private in-memory
     * embedded TraceSink; the coordinator drains the buffers into
     * the master sink at every barrier, in domain order, so the
     * merged file is run-to-run deterministic.
     */
    /// @{
    /** Create the buffer sink and attach it to this domain's queue. */
    void enableTraceBuffer();
    TraceSink *traceBuffer() { return trace_.get(); }
    /**
     * Move the buffered trace bytes out (clearing the buffer) and
     * report how many events they contain via @p nevents.
     */
    std::string takeTraceBuf(std::uint64_t &nevents);
    /// @}

  private:
    DomainId id_;
    std::unique_ptr<EventQueue> owned_; ///< null for the host domain
    EventQueue *eq_;
    std::ostringstream trace_buf_;
    std::unique_ptr<TraceSink> trace_;
};

} // namespace mgsec

#endif // MGSEC_SIM_DOMAIN_HH
