/**
 * @file
 * Host-side self-profiler: where does the *simulator's* wall clock
 * go? Sim-tick observability (trace_sink, metric_sampler) answers
 * questions about the modeled machine; this answers questions about
 * the model itself — barrier waits, per-domain load imbalance,
 * capture replay, crypto, sink flushes.
 *
 * Design mirrors the other sinks: components reach the profiler
 * through EventQueue::profiler(), so a null pointer there is the
 * entire cost of disabled profiling (the zero-allocation hot path is
 * untouched and artifacts stay byte-identical). When enabled, spans
 * are RAII scopes (ProfSpan) recorded on per-lane buffers — one lane
 * per kernel worker, and domain d always records on lane d % workers
 * because the parallel kernel statically pins domain d to worker
 * d % threads, so every lane is written by exactly one thread with
 * no synchronization on the record path.
 *
 * Aggregation rides the existing stats::Histogram machinery: one
 * wall-time (nanosecond) histogram per (lane, phase), merged into
 * global per-phase histograms at finish(). The coordinator closes a
 * per-window imbalance ledger at each barrier (max/mean busy per
 * window, barrier-overhead fraction, events/s per worker) — workers
 * are parked at the barrier when it reads their window scratch, so
 * the kernel's own happens-before edges are the only fences needed.
 *
 * Wall-clock data never enters configKey, sim results, or any
 * deterministic artifact: the profiler writes only its own PROF JSON
 * and (optionally) a separate "host" process track in the Chrome
 * trace.
 */

#ifndef MGSEC_SIM_PROFILER_HH
#define MGSEC_SIM_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace mgsec
{

class TraceSink;

/**
 * The phase taxonomy. Fixed and enum-indexed so recording is an
 * array index, never a string lookup. cryptoSeal/cryptoOpen spans
 * enclose their padGen spans (nested RAII scopes), so those sums
 * overlap by design — the PROF schema documents this.
 */
enum ProfPhase : std::uint8_t
{
    kProfSerialExec = 0, ///< serial kernel: event-loop slices
    kProfDomainExec,     ///< parallel: per-window per-domain execution
    kProfBarrierWait,    ///< workers parked at window barriers
    kProfCaptureReplay,  ///< coordinator replaying captured sends
    kProfMetricFlush,    ///< barrier metric samples + trace merges
    kProfSinkFlush,      ///< end-of-run observability flush
    kProfCryptoSeal,     ///< functional pad-XOR + MAC on send
    kProfCryptoOpen,     ///< functional decrypt + MAC verify on recv
    kProfPadGen,         ///< AES-CTR message-pad derivation
    kProfNumPhases,
};

/** Stable lower-camel phase name ("barrierWait"), as in PROF JSON. */
const char *profPhaseName(unsigned phase);

class Profiler
{
  public:
    /**
     * @param workers kernel worker threads (1 on serial runs) — one
     *        span lane each.
     * @param domains event domains (1 on serial runs) — sizes the
     *        per-domain busy-time ledger.
     */
    Profiler(unsigned workers, unsigned domains);

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Monotonic host nanoseconds (process-wide steady_clock). */
    static std::uint64_t nowNs();

    unsigned workers() const { return workers_; }
    unsigned domains() const { return domains_; }

    /** Lane a span from domain @p d records on (d % workers). */
    unsigned lane(DomainId d) const { return d % workers_; }

    /** Stamp the run's wall-clock start; idempotent. */
    void start();
    /**
     * Seal the run: stamp the end, merge every lane's histograms
     * into the global per-phase ones. Idempotent; call before
     * writeJson().
     */
    void finish();

    /** @name Recording (hot path; each lane single-threaded) */
    /// @{
    /** A completed span of @p phase on @p lane over [t0, t1] ns. */
    void record(unsigned lane, ProfPhase phase, std::uint64_t t0,
                std::uint64_t t1);
    /** RAII bookkeeping: ProfSpan ctor/dtor call these. */
    void enter(unsigned lane) { ++lanes_[lane].depth; }
    void exit(unsigned lane) { --lanes_[lane].depth; }
    /**
     * One (domain, window) execution slice: records a domainExec
     * span and feeds the per-domain busy/event ledgers plus the
     * current window's imbalance scratch.
     */
    void domainExec(DomainId d, std::uint64_t t0, std::uint64_t t1,
                    std::uint64_t events);
    /**
     * One serial event-loop slice (a bounded batch of runOne calls,
     * timed as a unit so the per-event clock cost stays amortized).
     */
    void serialSlice(std::uint64_t t0, std::uint64_t t1,
                     std::uint64_t events);
    /// @}

    /**
     * Coordinator-only, at a window barrier (workers parked): close
     * the window's imbalance scratch and, with a host track
     * attached, drain every lane's pending trace spans.
     */
    void barrierEpilogue();

    /**
     * Attach the wall-clock "host" process track: spans additionally
     * buffer per lane and drain into @p sink as pid-1 complete
     * events (microsecond timestamps). Coordinator/serial thread
     * only; emits the track's process/thread metadata immediately.
     */
    void setHostTrack(TraceSink *sink);
    /** Drain lane @p l's pending host-track spans (owning thread). */
    void drainHostTrack(unsigned l);

    /** @name Aggregates (read after finish()) */
    /// @{
    const stats::Histogram &phaseHist(unsigned phase) const
    {
        return phase_hist_[phase];
    }
    /** Open-span depth summed over lanes (0 once spans balance). */
    std::int64_t activeSpans() const;
    /** Spans recorded across all lanes and phases. */
    std::uint64_t totalSpans() const;
    std::uint64_t wallNs() const;
    std::uint64_t profiledWindows() const { return windows_; }
    std::uint64_t laneEvents(unsigned l) const
    {
        return lanes_[l].events;
    }
    std::uint64_t laneBusyNs(unsigned l) const
    {
        return lanes_[l].busyNs;
    }
    /** Per-window mean of (max busy / mean busy); 0 if no windows. */
    double imbalance() const;
    /** barrierWait / (barrierWait + exec) wall-time fraction. */
    double barrierFrac() const;
    /** Aggregate busy / (workers x wall), as a percentage. */
    double parallelEfficiencyPct() const;
    /** Largest non-exec phase by total wall time. */
    const char *topStallPhase() const;
    /// @}

    /**
     * Write the PROF_<hash>.json document ("mgsec-prof-1" schema):
     * per-phase wall-time histograms and the PDES efficiency ledger.
     * Calls finish() if the caller has not.
     */
    void writeJson(std::ostream &os);

  private:
    struct Lane
    {
        /** One wall-time histogram per phase (merged at finish). */
        std::vector<stats::Histogram> hist;
        /** Open-span depth (RAII balance check). */
        std::int64_t depth = 0;
        /** Events executed by this worker (serial: lane 0). */
        std::uint64_t events = 0;
        /** Execution (domainExec/serialExec) wall time. */
        std::uint64_t busyNs = 0;
        /** Host-track spans pending coordinator drain. */
        struct PendingSpan
        {
            std::uint8_t phase;
            std::uint64_t t0;
            std::uint64_t t1;
        };
        std::vector<PendingSpan> pending;
    };

    static std::chrono::steady_clock::time_point processEpoch();

    unsigned workers_;
    unsigned domains_;
    std::vector<Lane> lanes_;
    std::vector<stats::Histogram> phase_hist_;

    /** @name Per-domain busy ledger (writer: owning worker only) */
    /// @{
    std::vector<std::uint64_t> domain_busy_;
    std::vector<std::uint64_t> domain_events_;
    std::vector<std::uint64_t> domain_windows_;
    /** Current window's busy scratch, reset by barrierEpilogue(). */
    std::vector<std::uint64_t> window_busy_;
    /// @}

    /** @name Window ledger (coordinator only) */
    /// @{
    std::uint64_t windows_ = 0;
    std::uint64_t sum_max_busy_ = 0;
    std::uint64_t sum_busy_ = 0;
    std::uint64_t active_domain_windows_ = 0;
    /// @}

    TraceSink *host_track_ = nullptr;
    std::uint64_t dropped_spans_ = 0;

    std::uint64_t t_start_ = 0;
    std::uint64_t t_end_ = 0;
    bool started_ = false;
    bool finished_ = false;
};

/**
 * RAII scoped span. A null profiler pointer makes construction and
 * destruction free (no clock reads) — the call sites' entire
 * disabled cost is the pointer test.
 */
class ProfSpan
{
  public:
    ProfSpan(Profiler *p, DomainId domain, ProfPhase phase)
        : p_(p), phase_(phase)
    {
        if (p_) {
            lane_ = p_->lane(domain);
            p_->enter(lane_);
            t0_ = Profiler::nowNs();
        }
    }

    ProfSpan(const ProfSpan &) = delete;
    ProfSpan &operator=(const ProfSpan &) = delete;

    ~ProfSpan()
    {
        if (p_) {
            p_->record(lane_, phase_, t0_, Profiler::nowNs());
            p_->exit(lane_);
        }
    }

  private:
    Profiler *p_;
    ProfPhase phase_;
    unsigned lane_ = 0;
    std::uint64_t t0_ = 0;
};

} // namespace mgsec

#endif // MGSEC_SIM_PROFILER_HH
