/**
 * @file
 * Error/status reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  - the user asked for something unsupported (bad config);
 *            exits with status 1.
 * warn()   - something questionable happened but simulation continues.
 * inform() - plain status output.
 */

#ifndef MGSEC_SIM_LOGGING_HH
#define MGSEC_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mgsec
{

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrformat(const char *fmt, va_list ap);

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Verify a simulator invariant; calls panic() with location info when
 * the condition does not hold. Enabled in all build types: the
 * simulator is cheap enough that we never want silent corruption.
 */
#define MGSEC_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::mgsec::panic("assertion '%s' failed at %s:%d: %s", #cond,   \
                           __FILE__, __LINE__,                            \
                           ::mgsec::strformat(__VA_ARGS__).c_str());      \
        }                                                                 \
    } while (0)

} // namespace mgsec

#endif // MGSEC_SIM_LOGGING_HH
