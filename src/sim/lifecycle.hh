/**
 * @file
 * Per-packet lifecycle clock for latency attribution.
 *
 * A packet carries one Tick per stage boundary; components stamp the
 * boundaries they own and the receiving channel folds the telescoping
 * differences into per-stage histograms on delivery. The boundaries:
 *
 *   Enqueue       message accepted by the secure-send stage
 *   PadClaim      send pad claimed (MsgCTR assigned)
 *   PadReady      send pad generated (OTP wait exposed on the sender)
 *   WireEntry     packet departed onto the wire (XOR cycle + in-order
 *                 departure clamp behind it)
 *   Delivered     packet arrived at the destination node
 *   DeliverReady  receive pad ready + XOR cycle + FIFO delivery clamp
 *                 behind it; decryption and MAC verification share
 *                 the pad, so this is also the MAC-verify boundary
 *
 * Adjacent boundaries define the five conservation stages; because
 * every boundary is clamped to be >= its predecessor, the stage
 * durations are non-negative and sum *exactly* to the end-to-end
 * latency (DeliverReady - Enqueue). Batch close and ACK return
 * happen after delivery and are tracked as auxiliary histograms
 * outside the conservation identity.
 */

#ifndef MGSEC_SIM_LIFECYCLE_HH
#define MGSEC_SIM_LIFECYCLE_HH

#include <array>
#include <cstddef>

#include "sim/types.hh"

namespace mgsec
{

/** Stage-boundary stamps, in causal order. */
enum class LifeStamp : std::uint8_t
{
    Enqueue = 0,
    PadClaim,
    PadReady,
    WireEntry,
    Delivered,
    DeliverReady,
};

constexpr std::size_t kNumLifeStamps = 6;

/** The stamps a packet carries. Indexed by LifeStamp. */
using LifeStamps = std::array<Tick, kNumLifeStamps>;

/**
 * Conservation stages: stage i spans boundary i -> i+1, so
 * kNumLifeStages == kNumLifeStamps - 1 and the per-stage sums
 * telescope to the end-to-end latency.
 */
constexpr std::size_t kNumLifeStages = kNumLifeStamps - 1;

inline const char *
lifeStageName(std::size_t stage)
{
    static const char *const names[kNumLifeStages] = {
        "padClaim",   // Enqueue -> PadClaim
        "padWait",    // PadClaim -> PadReady (OTP buffer wait)
        "xmit",       // PadReady -> WireEntry (XOR + departure clamp)
        "wire",       // WireEntry -> Delivered (serialization + hops)
        "recvVerify", // Delivered -> DeliverReady (recv pad + MAC)
    };
    return names[stage];
}

inline Tick &
lifeStamp(LifeStamps &st, LifeStamp s)
{
    return st[static_cast<std::size_t>(s)];
}

} // namespace mgsec

#endif // MGSEC_SIM_LIFECYCLE_HH
