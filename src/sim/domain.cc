#include "sim/domain.hh"

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace mgsec
{

namespace
{
thread_local Domain *t_current = nullptr;
} // namespace

Domain::Domain(DomainId id, EventQueue &host_eq)
    : id_(id), eq_(&host_eq)
{
    eq_->setDomainId(id_);
}

Domain::Domain(DomainId id)
    : id_(id), owned_(std::make_unique<EventQueue>()),
      eq_(owned_.get())
{
    eq_->setDomainId(id_);
}

Domain::~Domain() = default;

Domain *
Domain::current()
{
    return t_current;
}

Domain::Scope::Scope(Domain &d) : prev_(t_current)
{
    t_current = &d;
}

Domain::Scope::~Scope()
{
    t_current = prev_;
}

void
Domain::enableTraceBuffer()
{
    MGSEC_ASSERT(!trace_, "domain trace buffer already attached");
    trace_ = std::make_unique<TraceSink>(trace_buf_,
                                         TraceSink::Embedded{});
    eq_->setTraceSink(trace_.get());
}

std::string
Domain::takeTraceBuf(std::uint64_t &nevents)
{
    nevents = trace_ ? trace_->takeEvents() : 0;
    std::string buf = std::move(trace_buf_).str();
    trace_buf_.str(std::string());
    trace_buf_.clear();
    return buf;
}

} // namespace mgsec
