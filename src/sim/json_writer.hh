/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Purpose-built (no external dependency): objects, arrays, scalars,
 * strings, with full string escaping including control characters.
 * Lives in sim/ so both the stats package and the observability
 * sinks can emit JSON without depending on core/.
 */

#ifndef MGSEC_SIM_JSON_WRITER_HH
#define MGSEC_SIM_JSON_WRITER_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mgsec
{

/** Minimal JSON writer: objects, arrays, scalars, strings. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();

    JsonWriter &key(const std::string &k);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(bool v);

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** RFC 8259 string escaping (quotes, backslash, control chars). */
    static std::string escape(const std::string &s);

  private:
    void separate();

    std::ostream &os_;
    /** Whether the current nesting level already has an element. */
    std::string has_elem_; // one char per depth: '0' or '1'
    bool pending_key_ = false;
};

} // namespace mgsec

#endif // MGSEC_SIM_JSON_WRITER_HH
