/**
 * @file
 * A move-only callable holder with a fixed inline buffer and no heap
 * fallback.
 *
 * std::function only small-buffer-optimizes captures up to two
 * pointers, so event callbacks capturing a handful of fields heap
 * allocate on every schedule(). InplaceCallback trades generality
 * for a guarantee: a callable that does not fit the buffer is a
 * compile error, so constructing one can never allocate. The event
 * queue's steady-state schedule/execute cycle relies on this.
 */

#ifndef MGSEC_SIM_INPLACE_FUNCTION_HH
#define MGSEC_SIM_INPLACE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mgsec
{

template <std::size_t Capacity>
class InplaceCallback
{
  public:
    InplaceCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceCallback>>>
    InplaceCallback(F &&f) // NOLINT: intentionally implicit
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callback capture exceeds the inline buffer; "
                      "shrink the capture or raise the capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callback capture");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callback capture must be nothrow movable");
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
        ops_ = &kOps<Fn>;
    }

    InplaceCallback(InplaceCallback &&o) noexcept { moveFrom(o); }

    InplaceCallback &
    operator=(InplaceCallback &&o) noexcept
    {
        if (this != &o) {
            destroy();
            moveFrom(o);
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback &) = delete;
    InplaceCallback &operator=(const InplaceCallback &) = delete;

    ~InplaceCallback() { destroy(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(buf_); }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src); ///< move + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops kOps{
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    void
    moveFrom(InplaceCallback &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, o.buf_);
            o.ops_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

} // namespace mgsec

#endif // MGSEC_SIM_INPLACE_FUNCTION_HH
