#include "sim/trace_sink.hh"

#include <ostream>

namespace mgsec
{

TraceSink::TraceSink(std::ostream &os) : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

TraceSink::~TraceSink()
{
    finish();
}

void
TraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

void
TraceSink::prefix(char ph, std::uint32_t tid, const char *cat,
                  const char *name, Tick ts)
{
    os_ << (events_ ? ",\n" : "\n");
    ++events_;
    os_ << "{\"ph\":\"" << ph << "\",\"pid\":0,\"tid\":" << tid
        << ",\"cat\":\"" << cat << "\",\"name\":\"" << name
        << "\",\"ts\":" << ts;
}

void
TraceSink::complete(std::uint32_t tid, const char *cat,
                    const char *name, Tick start, Tick dur)
{
    prefix('X', tid, cat, name, start);
    os_ << ",\"dur\":" << dur << "}";
}

void
TraceSink::complete(std::uint32_t tid, const char *cat,
                    const char *name, Tick start, Tick dur,
                    const char *arg_key, std::uint64_t arg_val)
{
    prefix('X', tid, cat, name, start);
    os_ << ",\"dur\":" << dur << ",\"args\":{\"" << arg_key
        << "\":" << arg_val << "}}";
}

void
TraceSink::instant(std::uint32_t tid, const char *cat,
                   const char *name, Tick ts)
{
    prefix('i', tid, cat, name, ts);
    os_ << ",\"s\":\"t\"}";
}

void
TraceSink::instant(std::uint32_t tid, const char *cat,
                   const char *name, Tick ts, const char *arg_key,
                   double arg_val)
{
    prefix('i', tid, cat, name, ts);
    os_ << ",\"s\":\"t\",\"args\":{\"" << arg_key << "\":" << arg_val
        << "}}";
}

void
TraceSink::counter(std::uint32_t tid, const char *cat,
                   const char *name, Tick ts, double value)
{
    prefix('C', tid, cat, name, ts);
    os_ << ",\"args\":{\"" << name << "\":" << value << "}}";
}

} // namespace mgsec
