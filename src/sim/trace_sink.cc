#include "sim/trace_sink.hh"

#include <ostream>
#include <string>

#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace mgsec
{

TraceSink::TraceSink(std::ostream &os) : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

TraceSink::TraceSink(std::ostream &os, Embedded)
    : os_(os), embedded_(true)
{
}

TraceSink::~TraceSink()
{
    finish();
}

void
TraceSink::finish()
{
    if (finished_ || embedded_)
        return;
    finished_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

void
TraceSink::appendRaw(const std::string &buf, std::uint64_t nevents)
{
    MGSEC_ASSERT(!embedded_, "appendRaw on an embedded sink");
    if (nevents == 0 || buf.empty())
        return;
    MGSEC_ASSERT(buf[0] == ',', "embedded buffer missing its comma");
    if (events_ == 0)
        os_.write(buf.data() + 1, // drop the leading comma
                  static_cast<std::streamsize>(buf.size() - 1));
    else
        os_.write(buf.data(),
                  static_cast<std::streamsize>(buf.size()));
    events_ += nevents;
}

std::uint64_t
TraceSink::takeEvents()
{
    MGSEC_ASSERT(embedded_, "takeEvents on a master sink");
    const std::uint64_t n = events_;
    events_ = 0;
    return n;
}

void
TraceSink::prefixPid(char ph, unsigned pid, std::uint32_t tid,
                     const char *cat, const char *name, Tick ts)
{
    os_ << (embedded_ || events_ ? ",\n" : "\n");
    ++events_;
    os_ << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"cat\":\"" << cat
        << "\",\"name\":\"" << name << "\",\"ts\":" << ts;
}

void
TraceSink::complete(std::uint32_t tid, const char *cat,
                    const char *name, Tick start, Tick dur)
{
    prefix('X', tid, cat, name, start);
    os_ << ",\"dur\":" << dur << "}";
}

void
TraceSink::complete(std::uint32_t tid, const char *cat,
                    const char *name, Tick start, Tick dur,
                    const char *arg_key, std::uint64_t arg_val)
{
    prefix('X', tid, cat, name, start);
    os_ << ",\"dur\":" << dur << ",\"args\":{\"" << arg_key
        << "\":" << arg_val << "}}";
}

void
TraceSink::instant(std::uint32_t tid, const char *cat,
                   const char *name, Tick ts)
{
    prefix('i', tid, cat, name, ts);
    os_ << ",\"s\":\"t\"}";
}

void
TraceSink::instant(std::uint32_t tid, const char *cat,
                   const char *name, Tick ts, const char *arg_key,
                   double arg_val)
{
    prefix('i', tid, cat, name, ts);
    os_ << ",\"s\":\"t\",\"args\":{\"" << arg_key << "\":" << arg_val
        << "}}";
}

void
TraceSink::counter(std::uint32_t tid, const char *cat,
                   const char *name, Tick ts, double value)
{
    prefix('C', tid, cat, name, ts);
    os_ << ",\"args\":{\"" << name << "\":" << value << "}}";
}

void
TraceSink::hostComplete(std::uint32_t tid, const char *cat,
                        const char *name, std::uint64_t start_us,
                        std::uint64_t dur_us)
{
    prefixPid('X', 1, tid, cat, name, start_us);
    os_ << ",\"dur\":" << dur_us << "}";
}

void
TraceSink::hostMetadata(std::uint32_t tid, const char *what,
                        const std::string &name)
{
    os_ << (embedded_ || events_ ? ",\n" : "\n");
    ++events_;
    os_ << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid << ",\"name\":\""
        << what << "\",\"args\":{\"name\":\""
        << JsonWriter::escape(name) << "\"}}";
}

void
TraceSink::metadata(std::uint32_t tid, const char *what,
                    const std::string &name)
{
    // Metadata events carry no cat/ts; hand-rolled rather than
    // through prefix() so the viewer does not see bogus fields.
    os_ << (embedded_ || events_ ? ",\n" : "\n");
    ++events_;
    os_ << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid << ",\"name\":\""
        << what << "\",\"args\":{\"name\":\"" << JsonWriter::escape(name)
        << "\"}}";
}

} // namespace mgsec
