/**
 * @file
 * Run-wide latency attribution: folds per-packet lifecycle stamps
 * (sim/lifecycle.hh) into HDR histograms per stage and link type.
 *
 * One collector serves the whole system; components reach it through
 * EventQueue::attribution(), so — exactly like TraceSink — a null
 * pointer there is the entire cost of disabled attribution. The
 * scheme dimension is the run itself (a system simulates exactly one
 * OtpScheme), recorded in the collector's scheme() label; link type
 * (PCIe vs NVLink) is derived per packet from its endpoints.
 *
 * The five conservation-stage histograms satisfy, per link type,
 *   sum_i stage[i].count() == e2e.count()  and
 *   sum_i stage[i].sum()   == e2e.sum()    (exactly, in cycles),
 * which tests assert. Batch close, ACK return, and metadata-walk
 * histograms are auxiliary: they overlap other stages or happen
 * after delivery and are excluded from the identity.
 */

#ifndef MGSEC_SIM_LATENCY_ATTR_HH
#define MGSEC_SIM_LATENCY_ATTR_HH

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "sim/lifecycle.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mgsec
{

class TraceSink;

/**
 * Interconnect hop classes. The first two are the paper's
 * point-to-point fabric; Switch and Inter exist only on the
 * scale-out topologies (net/topology.hh), so collectors register
 * histograms for a topology-dependent prefix of this enum.
 */
enum class LinkType : std::uint8_t
{
    Pcie = 0,   ///< CPU <-> GPU
    Nvlink = 1, ///< GPU <-> GPU, point-to-point port pair
    Switch = 2, ///< GPU <-> GPU through a crossbar
    Inter = 3,  ///< GPU <-> GPU crossing an inter-node trunk
};
constexpr std::size_t kNumLinkTypes = 4;
/** Link classes of the default point-to-point fabric. */
constexpr std::size_t kP2pLinkClasses = 2;

inline const char *
linkTypeName(LinkType l)
{
    switch (l) {
      case LinkType::Pcie:
        return "pcie";
      case LinkType::Nvlink:
        return "nvlink";
      case LinkType::Switch:
        return "switch";
      case LinkType::Inter:
        return "inter";
    }
    return "?";
}

class LatencyAttribution
{
  public:
    /**
     * @p scheme labels the run (one OtpScheme per system).
     * @p num_links is the number of link classes the run's fabric
     * can emit (a contiguous LinkType prefix); histograms are
     * registered for exactly these, so the default point-to-point
     * fabric's stats output is unchanged by the wider enum.
     */
    explicit LatencyAttribution(std::string scheme,
                                std::size_t num_links =
                                    kP2pLinkClasses);

    /**
     * Fold a delivered packet's stamps: records every conservation
     * stage plus end-to-end, and emits one "attr" trace span per
     * nonzero stage when @p trace is non-null. @p tid is the
     * receiving node (trace row).
     */
    void fold(LinkType link, const LifeStamps &st, TraceSink *trace,
              NodeId tid);

    /** @name Auxiliary (non-conservation) latencies. */
    /// @{
    void
    recordBatchClose(Tick dur)
    {
        auto l = lockIfConcurrent();
        batch_close_.record(dur);
    }
    void
    recordAckReturn(Tick dur)
    {
        auto l = lockIfConcurrent();
        ack_return_.record(dur);
    }
    void
    recordMetaWalk(Tick dur)
    {
        auto l = lockIfConcurrent();
        meta_walk_.record(dur);
    }
    /// @}

    /**
     * Guard record/fold with an internal mutex for sharded runs,
     * where every domain thread folds into this one collector.
     * Histogram accumulation is commutative (bucket counts and
     * sums), so the fold order across domains cannot change any
     * recorded value — sharing one collector keeps the conservation
     * telescope a single global identity with no per-window merges.
     * Readers (gauges, dumps) only run at barriers or after the run,
     * when no folds are in flight.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

    const stats::Histogram &stage(LinkType l, std::size_t s) const;
    const stats::Histogram &e2e(LinkType l) const;
    const stats::Histogram &batchClose() const { return batch_close_; }
    const stats::Histogram &ackReturn() const { return ack_return_; }
    const stats::Histogram &metaWalk() const { return meta_walk_; }

    /** Delivered packets folded (== e2e counts over all links). */
    std::uint64_t folds() const { return folds_; }
    const std::string &scheme() const { return scheme_; }
    /** Link classes this collector registered histograms for. */
    std::size_t numLinks() const { return num_links_; }

    /** All histograms, registered as group "attr". */
    stats::StatGroup &statGroup() { return group_; }
    const stats::StatGroup &statGroup() const { return group_; }

    /** Standalone HIST_*.json document: {scheme, attr: {...}}. */
    void writeJson(std::ostream &os) const;

    void reset();

  private:
    stats::Histogram &stageMut(LinkType l, std::size_t s);

    std::unique_lock<std::mutex>
    lockIfConcurrent()
    {
        return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                           : std::unique_lock<std::mutex>();
    }

    bool concurrent_ = false;
    std::mutex mu_;
    std::string scheme_;
    std::size_t num_links_;
    /** [link][stage] conservation histograms, then per-link e2e. */
    std::vector<stats::Histogram> stages_;
    std::vector<stats::Histogram> e2e_;
    stats::Histogram batch_close_;
    stats::Histogram ack_return_;
    stats::Histogram meta_walk_;
    std::uint64_t folds_ = 0;
    stats::StatGroup group_{"attr"};
};

} // namespace mgsec

#endif // MGSEC_SIM_LATENCY_ATTR_HH
