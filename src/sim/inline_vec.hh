/**
 * @file
 * Small-vector with inline storage for trivially copyable elements.
 *
 * Sized for the common case (e.g. a packet piggybacking at most two
 * ACK records), it lives entirely inside its owner until the inline
 * capacity overflows, and clear() keeps any spilled heap buffer so a
 * pooled owner can be recycled without churning the allocator.
 */

#ifndef MGSEC_SIM_INLINE_VEC_HH
#define MGSEC_SIM_INLINE_VEC_HH

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace mgsec
{

template <typename T, std::size_t N>
class InlineVec
{
    static_assert(N > 0, "inline capacity must be nonzero");
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_default_constructible_v<T>,
                  "InlineVec is restricted to plain record types");

  public:
    InlineVec() = default;

    InlineVec(const InlineVec &o) { assign(o.begin(), o.end()); }

    InlineVec &
    operator=(const InlineVec &o)
    {
        if (this != &o)
            assign(o.begin(), o.end());
        return *this;
    }

    InlineVec(InlineVec &&o) noexcept { stealFrom(o); }

    InlineVec &
    operator=(InlineVec &&o) noexcept
    {
        if (this != &o) {
            delete[] heap_;
            heap_ = nullptr;
            cap_ = N;
            stealFrom(o);
        }
        return *this;
    }

    ~InlineVec() { delete[] heap_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }
    bool spilled() const { return heap_ != nullptr; }

    T *data() { return heap_ != nullptr ? heap_ : inline_; }
    const T *data() const { return heap_ != nullptr ? heap_ : inline_; }

    T *begin() { return data(); }
    T *end() { return data() + size_; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    T &front() { return data()[0]; }
    T &back() { return data()[size_ - 1]; }
    const T &front() const { return data()[0]; }
    const T &back() const { return data()[size_ - 1]; }

    /** Drops the elements but keeps any spilled buffer. */
    void clear() { size_ = 0; }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            growTo(n);
    }

    void
    push_back(const T &v)
    {
        if (size_ == cap_)
            growTo(cap_ * 2);
        data()[size_++] = v;
    }

    template <typename It>
    void
    assign(It first, It last)
    {
        clear();
        for (; first != last; ++first)
            push_back(*first);
    }

  private:
    void
    growTo(std::size_t new_cap)
    {
        T *fresh = new T[new_cap];
        std::memcpy(static_cast<void *>(fresh), data(),
                    size_ * sizeof(T));
        delete[] heap_;
        heap_ = fresh;
        cap_ = new_cap;
    }

    void
    stealFrom(InlineVec &o) noexcept
    {
        if (o.heap_ != nullptr) {
            heap_ = std::exchange(o.heap_, nullptr);
            cap_ = std::exchange(o.cap_, N);
            size_ = std::exchange(o.size_, 0);
        } else {
            std::memcpy(static_cast<void *>(inline_), o.inline_,
                        o.size_ * sizeof(T));
            size_ = std::exchange(o.size_, 0);
        }
    }

    T inline_[N]{};
    T *heap_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = N;
};

} // namespace mgsec

#endif // MGSEC_SIM_INLINE_VEC_HH
