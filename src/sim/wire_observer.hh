/**
 * @file
 * Passive wire-level observer: what an adversary on the fabric sees.
 *
 * A WireObserver subscribes to the same wire-occupancy stream the
 * TraceSink's "net" category records — one callback per packet
 * crossing a link — but is deliberately restricted to the passive
 * adversary's view: source, destination, wire size in bytes, and
 * timing (departure and arrival ticks). No payload, no header
 * fields, no security metadata are visible; batch structure must be
 * *inferred* from size and timing alone, exactly as NVBleed-style
 * link probes must (see PAPERS.md).
 *
 * The observer folds the stream online into per-directed-flow state
 * (inter-packet-gap, wire-size, burst-length, and control-gap
 * histograms) plus per-link-class utilization windows (pcie /
 * nvlink by default; scale-out fabrics add switch / inter classes
 * via setLinkClasses()). Everything is a commutative multiset fold over packets
 * keyed by departure tick, so the serialized output is byte-identical
 * across --sim-threads worker counts that produce the same wire
 * schedule (the sharded kernel's barrier merge replays captured wire
 * events in a deterministic total order; see docs/OBSERVABILITY.md).
 *
 * "Control-sized" packets (wire size <= ctlMaxBytes) approximate the
 * adversary's batch-close signature: batch MAC trailers and
 * standalone ACKs are the only tiny packets on the wire, so the gap
 * distribution between consecutive control-sized packets of a flow
 * traces the batching cadence without reading any header bit.
 *
 * Like the TraceSink, a null observer pointer in the Network is the
 * entire cost of the disabled feature.
 */

#ifndef MGSEC_SIM_WIRE_OBSERVER_HH
#define MGSEC_SIM_WIRE_OBSERVER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace mgsec
{

/** Folds the passive wire view into leakage-analysis features. */
class WireObserver
{
  public:
    struct Params
    {
        /** Width of one utilization window in cycles. */
        Tick windowCycles = 1024;
        /** Retained windows per link class; later bins are dropped
         *  (and counted) so a long run bounds memory. */
        std::size_t maxWindows = 16384;
        /** A gap > burstGap cycles closes the current burst. */
        Tick burstGap = 64;
        /** Wire size <= this is counted as a control-sized packet. */
        Bytes ctlMaxBytes = 32;
    };

    /** Nodes are 0 (CPU) .. num_nodes-1; flows are directed pairs. */
    explicit WireObserver(std::uint32_t num_nodes)
        : WireObserver(num_nodes, Params{})
    {
    }
    WireObserver(std::uint32_t num_nodes, Params p);

    /**
     * Replace the default pcie/nvlink link-class split with the
     * fabric's own classes: @p names labels class 0..n-1 (class 0
     * must remain the CPU-side pcie class — the fan-out features
     * exclude it) and @p classify maps a flow's endpoints to its
     * class. Call before the first packet; on the default
     * point-to-point fabric the default split already matches, so
     * its artifacts are unchanged.
     */
    void setLinkClasses(
        std::vector<std::string> names,
        std::function<std::size_t(NodeId, NodeId)> classify);

    /**
     * One packet crossing the wire: src -> dst, @p bytes on the
     * link, departing at @p send_tick and fully delivered at
     * @p arrive_tick. Calls must be ordered by the wire schedule
     * (nondecreasing send_tick per flow); the Network guarantees
     * this in both the serial and the sharded kernel.
     */
    void onWirePacket(NodeId src, NodeId dst, Bytes bytes,
                      Tick send_tick, Tick arrive_tick);

    std::uint64_t packets() const { return packets_; }
    std::uint64_t bytes() const { return bytes_; }

    /**
     * The adversary-visible feature vector: fixed-order
     * (name, value) pairs derived from the folded state. Names and
     * order are part of the WIRE_*.json schema (the classifier in
     * src/verify and the report tooling consume them positionally).
     */
    std::vector<std::pair<std::string, double>> features() const;

    /**
     * Serialize the full observer state as one JSON document
     * (WIRE_<hash>.json; schema in docs/OBSERVABILITY.md).
     */
    void writeJson(std::ostream &os) const;

  private:
    /** Per directed (src, dst) flow, folded online. */
    struct Flow
    {
        Flow();

        std::uint64_t packets = 0;
        std::uint64_t bytes = 0;
        std::uint64_t busy = 0; ///< sum of (arrive - send)
        Tick firstSend = 0;
        Tick lastSend = 0;
        Tick lastArrive = 0;
        bool seen = false;

        Tick lastCtl = 0;
        bool ctlSeen = false;
        std::uint64_t ctlPackets = 0;

        Tick burstStart = 0;
        std::uint64_t burstLen = 0;

        stats::Histogram gap;    ///< send-to-send deltas (cycles)
        stats::Histogram size;   ///< wire bytes per packet
        stats::Histogram burst;  ///< packets per burst
        stats::Histogram ctlGap; ///< deltas between ctl-sized packets
    };

    /** Per link class (pcie / nvlink / switch / ...) accumulation. */
    struct LinkClass
    {
        std::uint64_t packets = 0;
        std::uint64_t bytes = 0;
        std::uint64_t busy = 0;
        /** bytes per windowCycles bin, indexed by send_tick bin. */
        std::vector<std::uint64_t> windowBytes;
        std::uint64_t droppedWindows = 0;
    };

    Flow &flow(NodeId src, NodeId dst);
    const Flow &flow(NodeId src, NodeId dst) const;
    std::size_t
    classOf(NodeId src, NodeId dst) const
    {
        return classify_(src, dst);
    }

    /** Merge every flow of a link class into fresh histograms. */
    void mergeClass(std::size_t cls, stats::Histogram &gap,
                    stats::Histogram &size, stats::Histogram &burst,
                    stats::Histogram &ctl_gap,
                    std::uint64_t &ctl_packets) const;

    std::uint32_t num_nodes_;
    Params params_;
    std::vector<Flow> flows_; ///< num_nodes^2, index src*n+dst
    std::vector<std::string> class_names_;
    std::function<std::size_t(NodeId, NodeId)> classify_;
    std::vector<LinkClass> classes_;
    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
    Tick first_send_ = 0;
    Tick last_arrive_ = 0;
    bool any_ = false;
};

} // namespace mgsec

#endif // MGSEC_SIM_WIRE_OBSERVER_HH
