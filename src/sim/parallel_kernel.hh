/**
 * @file
 * Conservative parallel discrete-event kernel (barrier-window PDES).
 *
 * Domains (sim/domain.hh) execute their event queues concurrently in
 * fixed windows of `lookahead` cycles: during window [T, T + L) no
 * domain can affect another before T + L, because the only
 * cross-domain edges are wire hops whose latency is at least L (the
 * minimum cross-domain link latency — the classic conservative-PDES
 * lookahead). Cross-domain messages are therefore not sent inline;
 * the Network captures them into per-writer-domain SPSC lanes, and at
 * each barrier a single coordinator thread replays every captured
 * send — tamper hooks, byte accounting, port serialization, trace
 * stamps, and delivery scheduling into the destination domain's queue
 * — in a fixed deterministic order: (send tick, src, dst, capture
 * order). Replayed deliveries always land at or after the next
 * window's start, so the schedule-into-the-past assertion holds by
 * construction.
 *
 * Determinism contract: a parallel run is run-to-run deterministic
 * AND thread-count invariant (2 threads produce byte-identical
 * results to 8), because the domain partition, per-domain execution
 * order, and the barrier merge order are all independent of the
 * thread count. It is NOT event-for-event identical to the serial
 * kernel: same-tick sends from different domains tie-break by pair
 * order at the barrier instead of by global event sequence, and the
 * final window runs to its boundary instead of stopping at the
 * completing event. Timing-independent results (operation counts,
 * migrations, completion) are identical; timing-derived aggregates
 * differ by well under a percent (tests/test_parallel_kernel.cc pins
 * both properties down).
 *
 * Threads are spawned per run() and statically pinned: domain d runs
 * on worker d % threads, so a domain's events — and its thread-local
 * packet-pool traffic — stay on one thread for the whole run. The
 * calling thread doubles as worker 0 and coordinator.
 */

#ifndef MGSEC_SIM_PARALLEL_KERNEL_HH
#define MGSEC_SIM_PARALLEL_KERNEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/domain.hh"
#include "sim/types.hh"

namespace mgsec
{

class Profiler;

struct ParallelKernelConfig
{
    /** The shards; index == DomainId. Not owned. */
    std::vector<Domain *> domains;
    /** Worker threads (>= 1); clamped to the domain count. */
    unsigned threads = 2;
    /**
     * Window length == conservative lookahead: the minimum latency
     * of any cross-domain link, in cycles (> 0).
     */
    Tick lookahead = 1;
    /** Stop once the next window would start past this tick. */
    Tick maxCycles = MaxTick;
    /**
     * Optional termination predicate checked between windows (e.g.
     * "all GPUs reported done"). Without one the kernel runs until
     * every queue drains or maxCycles passes.
     */
    std::function<bool()> done;
    /**
     * Replay captured cross-domain messages; runs single-threaded at
     * every barrier, must return how many messages it delivered.
     */
    std::function<std::uint64_t()> exchange;
    /**
     * Post-exchange barrier hook (observability merges, metric
     * samples); @p window_end is the last tick of the closed window.
     */
    std::function<void(Tick window_end)> atBarrier;
    /**
     * Per-worker hooks running on the worker's own thread right
     * after spawn / right before join — packet-pool provisioning and
     * allocator-stat harvesting live here. Worker 0 is the calling
     * thread; its hooks run too.
     */
    std::function<void(unsigned worker)> workerStart;
    std::function<void(unsigned worker)> workerEnd;
    /**
     * Host-side self-profiler, or nullptr when profiling is off.
     * Must have been constructed with the same worker count the
     * kernel ends up using (threads clamped to the domain count), so
     * each profiler lane is written by exactly one thread.
     */
    Profiler *profiler = nullptr;
};

class ParallelKernel
{
  public:
    explicit ParallelKernel(ParallelKernelConfig cfg);

    /**
     * Run barrier windows until done()/maxCycles/drain, starting at
     * the window containing @p from. Returns the first tick of the
     * window that would have run next (the "kernel time" at exit).
     */
    Tick run(Tick from = 0);

    /** Barrier windows executed (including idle-skipped-to ones). */
    std::uint64_t windows() const { return windows_; }
    /** Cross-domain messages replayed at barriers. */
    std::uint64_t domainCrossings() const { return crossings_; }
    /**
     * (domain, window) pairs where the domain sat idle while at
     * least one other domain executed events — the price of
     * conservative synchronization.
     */
    std::uint64_t windowStalls() const { return stalls_; }

  private:
    void runDomains(unsigned worker, Tick window_end);

    ParallelKernelConfig cfg_;
    unsigned threads_ = 1;
    std::uint64_t windows_ = 0;
    std::uint64_t crossings_ = 0;
    std::uint64_t stalls_ = 0;
    /** Events executed per domain in the current window. */
    std::vector<std::uint64_t> executed_;
};

} // namespace mgsec

#endif // MGSEC_SIM_PARALLEL_KERNEL_HH
