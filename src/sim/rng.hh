/**
 * @file
 * Deterministic random-number helper used by the workload generators.
 *
 * A thin wrapper over std::mt19937_64 with the draw primitives the
 * synthetic traffic models need. Every run seeds its own Rng, so runs
 * are reproducible bit-for-bit regardless of scheduling.
 */

#ifndef MGSEC_SIM_RNG_HH
#define MGSEC_SIM_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

#include "sim/logging.hh"

namespace mgsec
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

    void reseed(std::uint64_t seed) { gen_.seed(seed); }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        MGSEC_ASSERT(lo <= hi, "bad range");
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /** Geometric-ish integer gap with the given mean (>= 1). */
    std::uint64_t
    gap(double mean)
    {
        if (mean <= 1.0)
            return 1;
        std::exponential_distribution<double> d(1.0 / (mean - 1.0));
        return 1 + static_cast<std::uint64_t>(d(gen_));
    }

    /**
     * Draw an index according to @p weights (need not be normalized).
     * @pre at least one weight is positive.
     */
    std::size_t
    weighted(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        MGSEC_ASSERT(total > 0.0, "all-zero weight vector");
        double r = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r < 0.0)
                return i;
        }
        return weights.size() - 1;
    }

    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace mgsec

#endif // MGSEC_SIM_RNG_HH
