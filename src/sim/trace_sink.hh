/**
 * @file
 * Chrome trace_event sink for simulation timelines.
 *
 * Emits the JSON Array Format understood by chrome://tracing and
 * Perfetto: one process (pid 0) whose threads are the simulated
 * nodes, with simulated cycles mapped 1:1 onto microseconds.
 * Components reach the sink through EventQueue::traceSink(); a null
 * pointer there is the entire cost of disabled tracing, so the
 * zero-allocation hot-path guarantee is preserved when no sink is
 * attached.
 *
 * Event vocabulary (category / name):
 *  - "packet"  complete: one span per delivered data packet, from
 *              injection at the sender to readiness at the receiver.
 *  - "net"     complete: wire occupancy of each hop (serialization
 *              plus link latency), with a bytes argument.
 *  - "pad"     complete "sendWait"/"recvWait": cycles a packet
 *              stalled waiting for pad material; instant
 *              "sendMiss"/"recvMiss": pad-buffer misses.
 *  - "ewma"    counter "S": Dynamic send-weight after each EWMA
 *              update; instant "repartition": an actual quota move.
 *  - "batch"   instant "close" (batch reached its declared size) and
 *              "flush" (idle-timeout or drain trailer).
 *  - "replay"  instant "overflow": replay-window span exceeded.
 *  - "memprot" complete "walk": host integrity-tree walk latency.
 *  - "attr"    complete: one span per nonzero lifecycle stage of a
 *              delivered message (padClaim/padWait/xmit/wire/
 *              recvVerify), emitted when latency attribution is on.
 */

#ifndef MGSEC_SIM_TRACE_SINK_HH
#define MGSEC_SIM_TRACE_SINK_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/types.hh"

namespace mgsec
{

/** Streaming Chrome trace_event writer (JSON Array Format). */
class TraceSink
{
  public:
    /** The stream must outlive the sink; finish() seals the JSON. */
    explicit TraceSink(std::ostream &os);
    ~TraceSink();

    /** Tag selecting the embedded (buffer) mode. */
    struct Embedded
    {
    };

    /**
     * Embedded mode, used for the per-domain buffers of the sharded
     * kernel: no document header or footer is written, and every
     * event is prefixed with ",\n" so the buffered bytes can be
     * spliced verbatim into a master sink's traceEvents array with
     * appendRaw().
     */
    TraceSink(std::ostream &os, Embedded);

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Duration ("X") event: [start, start + dur) on thread tid. */
    void complete(std::uint32_t tid, const char *cat, const char *name,
                  Tick start, Tick dur);
    /** Duration event with one integer argument. */
    void complete(std::uint32_t tid, const char *cat, const char *name,
                  Tick start, Tick dur, const char *arg_key,
                  std::uint64_t arg_val);

    /** Thread-scoped instant ("i") event. */
    void instant(std::uint32_t tid, const char *cat, const char *name,
                 Tick ts);
    /** Instant event with one numeric argument. */
    void instant(std::uint32_t tid, const char *cat, const char *name,
                 Tick ts, const char *arg_key, double arg_val);

    /** Counter ("C") event: plots a per-thread series over time. */
    void counter(std::uint32_t tid, const char *cat, const char *name,
                 Tick ts, double value);

    /**
     * Metadata ("M") event naming a lane: @p what is
     * "process_name" or "thread_name", @p name the label shown by
     * about:tracing / Perfetto instead of the bare pid/tid.
     */
    void metadata(std::uint32_t tid, const char *what,
                  const std::string &name);

    /**
     * @name Host (wall-clock) track — pid 1
     * The self-profiler's spans live in a second process track so
     * wall-clock microseconds sit beside (never mixed into) the
     * sim-tick lanes of pid 0. tid is the kernel worker lane.
     */
    /// @{
    void hostComplete(std::uint32_t tid, const char *cat,
                      const char *name, std::uint64_t start_us,
                      std::uint64_t dur_us);
    void hostMetadata(std::uint32_t tid, const char *what,
                      const std::string &name);
    /// @}

    /** Close the traceEvents array; idempotent, called by ~TraceSink. */
    void finish();

    std::uint64_t events() const { return events_; }

    /**
     * Splice @p nevents events captured by an embedded sink into
     * this (non-embedded) sink's array. The leading comma of the
     * buffer is dropped when this sink has emitted nothing yet.
     */
    void appendRaw(const std::string &buf, std::uint64_t nevents);

    /**
     * Embedded sinks only: return the buffered event count and reset
     * it, pairing with the owner draining the underlying buffer.
     */
    std::uint64_t takeEvents();

  private:
    /** Common prefix up to (but not including) the closing brace. */
    void prefix(char ph, std::uint32_t tid, const char *cat,
                const char *name, Tick ts)
    {
        prefixPid(ph, 0, tid, cat, name, ts);
    }
    void prefixPid(char ph, unsigned pid, std::uint32_t tid,
                   const char *cat, const char *name, Tick ts);

    std::ostream &os_;
    std::uint64_t events_ = 0;
    bool embedded_ = false;
    bool finished_ = false;
};

} // namespace mgsec

#endif // MGSEC_SIM_TRACE_SINK_HH
