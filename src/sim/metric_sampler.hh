/**
 * @file
 * Periodic time-series sampling of live simulation metrics.
 *
 * A MetricSampler owns a set of named gauge callbacks and, once
 * started, samples all of them every `interval` simulated cycles
 * into a preallocated ring buffer (sampling itself never allocates).
 * When the ring fills, the oldest rows are overwritten and counted
 * as dropped, so a long run degrades to "most recent window" rather
 * than unbounded memory. The collected series flush as one JSON
 * document (see writeJson) consumed by METRICS_<run>.json.
 *
 * The sampler is generic: it knows nothing about channels or pad
 * tables. core/system.cc registers the concrete gauges (pad-buffer
 * occupancy per (pair, direction), EWMA weights, batch fill, replay
 * span, in-flight packets) plus one column per registered Scalar
 * stat.
 */

#ifndef MGSEC_SIM_METRIC_SAMPLER_HH
#define MGSEC_SIM_METRIC_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mgsec
{

class TraceSink;

namespace stats { class StatGroup; }

/** Fixed-cadence gauge sampler with a bounded in-memory ring. */
class MetricSampler
{
  public:
    /** Reads one metric at the given sample tick. */
    using Gauge = std::function<double(Tick)>;
    /** Re-arm predicate: sampling stops when this returns false. */
    using KeepGoing = std::function<bool()>;

    /**
     * @param interval  cycles between samples (> 0).
     * @param capacity  ring rows kept in memory (> 0).
     * @param keep      optional liveness predicate; without one the
     *                  sampler re-arms until the queue drains.
     */
    MetricSampler(EventQueue &eq, Cycles interval, std::size_t capacity,
                  KeepGoing keep = {});

    /** Register a gauge column. Must precede start(). */
    void addGauge(std::string name, Gauge g);

    /**
     * Register one column per Scalar stat in @p g, named
     * "<group>.<stat>". Non-scalar stats are skipped (distributions
     * and time series are not meaningfully point-sampled).
     */
    void addScalars(const stats::StatGroup &g);

    /** Schedule the first sample at now + interval. */
    void start();

    /**
     * Arm the ring without scheduling any events: the caller drives
     * sampling explicitly via sampleAt(). The sharded kernel uses
     * this so gauges reading cross-domain state only run at barrier
     * windows, when every domain thread is quiesced.
     */
    void startManual();

    /** Take one sample immediately (e.g. the end-of-run snapshot). */
    void sampleNow();

    /** Take one sample recorded at tick @p t (manual mode). */
    void sampleAt(Tick t);

    /**
     * Mirror every sampled row into @p ts as Chrome counter ("C")
     * events, one track per column, so metric gauges render as
     * counter lanes alongside the event timeline. Null detaches.
     * The sink must outlive the sampler (or be detached first).
     */
    void setTraceSink(TraceSink *ts) { trace_ = ts; }

    Cycles interval() const { return interval_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t samples() const { return size_; }
    std::uint64_t dropped() const { return dropped_; }
    const std::vector<std::string> &columns() const { return names_; }

    /** Tick of retained row @p i (0 = oldest retained). */
    Tick tickAt(std::size_t i) const;
    /** Value of column @p col in retained row @p i. */
    double valueAt(std::size_t i, std::size_t col) const;

    /**
     * Flush as one JSON object:
     * {interval, capacity, dropped, columns:[...],
     *  data:[[tick, v0, v1, ...], ...]}
     */
    void writeJson(std::ostream &os) const;

  private:
    void arm();
    void scheduleNext();
    void sample();
    std::size_t rowIndex(std::size_t i) const;

    EventQueue &eq_;
    Cycles interval_;
    std::size_t capacity_;
    KeepGoing keep_;
    bool started_ = false;
    TraceSink *trace_ = nullptr;

    std::vector<std::string> names_;
    std::vector<Gauge> gauges_;

    /** Ring storage: ticks_[r] + values_[r * columns + c]. */
    std::vector<Tick> ticks_;
    std::vector<double> values_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace mgsec

#endif // MGSEC_SIM_METRIC_SAMPLER_HH
