#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace mgsec
{

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    MGSEC_ASSERT(when >= now_,
                 "scheduling into the past: when=%llu now=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
    MGSEC_ASSERT(cb != nullptr, "null event callback");
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, std::move(cb)});
    pending_ids_.insert(seq);
    ++live_;
    return EventId{seq};
}

EventId
EventQueue::scheduleIn(Cycles delta, Callback cb)
{
    return schedule(now_ + delta, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (!id.valid())
        return false;
    // Only a still-pending event can be cancelled; ids of events
    // that already ran (or were already cancelled) are rejected.
    auto it = pending_ids_.find(id.seq);
    if (it == pending_ids_.end())
        return false;
    pending_ids_.erase(it);
    cancelled_.insert(id.seq);
    MGSEC_ASSERT(live_ > 0, "live counter out of sync");
    --live_;
    return true;
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        auto cit = cancelled_.find(e.seq);
        if (cit != cancelled_.end()) {
            cancelled_.erase(cit);
            continue;
        }
        MGSEC_ASSERT(e.when >= now_, "event queue time went backwards");
        pending_ids_.erase(e.seq);
        now_ = e.when;
        --live_;
        ++executed_;
        e.cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick until, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && !heap_.empty()) {
        // Peek past cancelled entries to honour the time bound.
        while (!heap_.empty() &&
               cancelled_.count(heap_.top().seq) != 0) {
            cancelled_.erase(heap_.top().seq);
            heap_.pop();
        }
        if (heap_.empty() || heap_.top().when > until)
            break;
        if (!runOne())
            break;
        ++n;
    }
    return n;
}

} // namespace mgsec
