#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace mgsec
{

void
EventQueue::reserve(std::size_t expected_pending)
{
    heap_.reserve(expected_pending);
    pending_ids_.reserve(expected_pending);
}

EventId
EventQueue::schedule(Tick when, EventPri pri, Callback cb)
{
    MGSEC_ASSERT(when >= now_,
                 "scheduling into the past: when=%llu now=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
    MGSEC_ASSERT(static_cast<bool>(cb), "null event callback");
    const std::uint64_t seq = next_seq_++;
    heap_.push_back(Entry{when, seq, pri, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    pending_ids_.insert(seq);
    ++live_;
    return EventId{seq};
}

EventId
EventQueue::scheduleIn(Cycles delta, Callback cb)
{
    return schedule(now_ + delta, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (!id.valid())
        return false;
    // Lazy cancel: only the pending set is updated; the heap entry
    // stays behind and is discarded when it reaches the top. Ids of
    // events that already ran (or were already cancelled) are no
    // longer in the set and are rejected.
    if (pending_ids_.erase(id.seq) == 0)
        return false;
    MGSEC_ASSERT(live_ > 0, "live counter out of sync");
    --live_;
    return true;
}

EventQueue::Entry
EventQueue::popTop()
{
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    return e;
}

void
EventQueue::execute(Entry &e)
{
    MGSEC_ASSERT(e.when >= now_, "event queue time went backwards");
    now_ = e.when;
    --live_;
    ++executed_;
    e.cb();
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry e = popTop();
        if (pending_ids_.erase(e.seq) == 0)
            continue; // lazily-cancelled leftover
        execute(e);
        return true;
    }
    return false;
}

Tick
EventQueue::nextPendingTick()
{
    while (!heap_.empty()) {
        if (pending_ids_.contains(heap_.front().seq))
            return heap_.front().when;
        popTop(); // lazily-cancelled leftover
    }
    return MaxTick;
}

std::uint64_t
EventQueue::run(Tick until, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && !heap_.empty()) {
        if (heap_.front().when > until) {
            // The head may be a cancelled leftover; a live event past
            // the bound must stay queued, so this is the one place a
            // non-destructive liveness probe is needed.
            if (pending_ids_.contains(heap_.front().seq))
                break;
            popTop();
            continue;
        }
        Entry e = popTop();
        if (pending_ids_.erase(e.seq) == 0)
            continue;
        execute(e);
        ++n;
    }
    return n;
}

} // namespace mgsec
