/**
 * @file
 * Fundamental scalar types shared by every mgsec library.
 */

#ifndef MGSEC_SIM_TYPES_HH
#define MGSEC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace mgsec
{

/** Simulated time, in cycles of the 1 GHz system clock (Table III). */
using Tick = std::uint64_t;

/** A duration measured in ticks. */
using Cycles = std::uint64_t;

/** Sentinel for "never" / "no deadline". */
constexpr Tick MaxTick = std::numeric_limits<Tick>::max();

/**
 * Identifier of a processor node in the system. Node 0 is always the
 * CPU; nodes 1..numGpus are GPUs, matching the paper's convention of a
 * CPU plus N GPUs sharing one unified address space.
 */
using NodeId = std::uint32_t;

/** Sentinel node id. */
constexpr NodeId InvalidNode = static_cast<NodeId>(-1);

/**
 * Identifier of an event domain when the kernel is sharded
 * (sim/domain.hh). Domain 0 is the host/fabric domain; domains
 * 1..numGpus are the per-GPU domains. A serial run is all domain 0.
 */
using DomainId = std::uint32_t;

/** Byte count. */
using Bytes = std::uint64_t;

/** Cache-block (and secure-message payload) size in bytes. */
constexpr Bytes kBlockBytes = 64;

/** Page size for the unified-memory page table / migration engine. */
constexpr Bytes kPageBytes = 4096;

/** Blocks per page. */
constexpr std::uint32_t kBlocksPerPage =
    static_cast<std::uint32_t>(kPageBytes / kBlockBytes);

} // namespace mgsec

#endif // MGSEC_SIM_TYPES_HH
