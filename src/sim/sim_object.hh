/**
 * @file
 * Base class for named simulated components.
 */

#ifndef MGSEC_SIM_SIM_OBJECT_HH
#define MGSEC_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace mgsec
{

/**
 * A named component bound to an event queue, owning a stat group.
 * Components are created once per system and wired together by the
 * system builder; they are non-copyable.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eq_(eq), stats_(name_)
    {}
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &eventq() { return eq_; }
    Tick now() const { return eq_.now(); }

    stats::StatGroup &statGroup() { return stats_; }
    const stats::StatGroup &statGroup() const { return stats_; }

  protected:
    /** Register a member stat into this object's group. */
    void regStat(stats::Stat &s) { stats_.add(s); }

  private:
    std::string name_;
    EventQueue &eq_;
    stats::StatGroup stats_;
};

} // namespace mgsec

#endif // MGSEC_SIM_SIM_OBJECT_HH
