#include "sim/stats.hh"

#include <ostream>
#include <sstream>

#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace mgsec::stats
{

void
Scalar::dump(std::ostream &os) const
{
    os << name() << " " << value_ << " # " << desc() << "\n";
}

void
Scalar::dumpJson(JsonWriter &w) const
{
    w.key(name());
    w.beginObject();
    w.field("type", std::string("scalar"));
    w.field("desc", desc());
    w.field("value", value_);
    w.endObject();
}

Distribution::Distribution(std::string name, std::string desc,
                           double min, double max,
                           std::size_t num_buckets)
    : Stat(std::move(name), std::move(desc)), lo_(min), hi_(max),
      width_((max - min) / static_cast<double>(num_buckets)),
      buckets_(num_buckets, 0)
{
    MGSEC_ASSERT(max > min && num_buckets > 0,
                 "bad distribution range [%f, %f) x %zu", min, max,
                 num_buckets);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        min_seen_ = v;
        max_seen_ = v;
    } else {
        min_seen_ = std::min(min_seen_, v);
        max_seen_ = std::max(max_seen_, v);
    }
    count_ += count;
    sum_ += v * static_cast<double>(count);
    sqsum_ += v * v * static_cast<double>(count);
    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += count;
    }
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sqsum_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Distribution::bucketFrac(std::size_t i) const
{
    return count_ == 0
        ? 0.0
        : static_cast<double>(buckets_[i]) / static_cast<double>(count_);
}

void
Distribution::dump(std::ostream &os) const
{
    os << name() << "::count " << count_ << " # " << desc() << "\n";
    os << name() << "::mean " << mean() << "\n";
    os << name() << "::stdev " << stddev() << "\n";
    os << name() << "::underflow " << underflow_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        os << name() << "::[" << bucketLo(i) << ","
           << bucketLo(i) + width_ << ") " << buckets_[i] << "\n";
    }
    os << name() << "::overflow " << overflow_ << "\n";
}

void
Distribution::dumpJson(JsonWriter &w) const
{
    w.key(name());
    w.beginObject();
    w.field("type", std::string("distribution"));
    w.field("desc", desc());
    w.field("count", count_);
    w.field("mean", mean());
    w.field("stdev", stddev());
    w.field("min", min_seen_);
    w.field("max", max_seen_);
    w.field("underflow", underflow_);
    w.field("overflow", overflow_);
    w.field("lo", lo_);
    w.field("bucketWidth", width_);
    w.beginArray("buckets");
    for (std::uint64_t b : buckets_)
        w.value(b);
    w.endArray();
    w.endObject();
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    sqsum_ = 0.0;
    min_seen_ = 0.0;
    max_seen_ = 0.0;
}

void
TimeSeries::dump(std::ostream &os) const
{
    os << name() << "::samples " << points_.size() << " # " << desc()
       << "\n";
}

void
TimeSeries::dumpJson(JsonWriter &w) const
{
    w.key(name());
    w.beginObject();
    w.field("type", std::string("timeseries"));
    w.field("desc", desc());
    w.beginArray("points");
    for (const auto &[t, v] : points_) {
        w.beginArray();
        w.value(static_cast<std::uint64_t>(t));
        w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

void
StatGroup::addGroup(const StatGroup &g)
{
    for (Stat *s : g.all())
        stats_.push_back(s);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Stat *s : stats_) {
        std::ostringstream tmp;
        s->dump(tmp);
        std::istringstream lines(tmp.str());
        std::string line;
        while (std::getline(lines, line)) {
            if (!name_.empty())
                os << name_ << ".";
            os << line << "\n";
        }
    }
}

void
StatGroup::dumpJson(JsonWriter &w) const
{
    w.key(name_.empty() ? "stats" : name_);
    w.beginObject();
    for (const Stat *s : stats_)
        s->dumpJson(w);
    w.endObject();
}

void
StatGroup::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
}

} // namespace mgsec::stats
