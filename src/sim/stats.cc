#include "sim/stats.hh"

#include <bit>
#include <ostream>
#include <sstream>

#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace mgsec::stats
{

void
Scalar::dump(std::ostream &os) const
{
    os << name() << " " << value_ << " # " << desc() << "\n";
}

void
Scalar::dumpJson(JsonWriter &w) const
{
    w.key(name());
    w.beginObject();
    w.field("type", std::string("scalar"));
    w.field("desc", desc());
    w.field("value", value_);
    w.endObject();
}

Distribution::Distribution(std::string name, std::string desc,
                           double min, double max,
                           std::size_t num_buckets)
    : Stat(std::move(name), std::move(desc)), lo_(min), hi_(max),
      width_((max - min) / static_cast<double>(num_buckets)),
      buckets_(num_buckets, 0)
{
    MGSEC_ASSERT(max > min && num_buckets > 0,
                 "bad distribution range [%f, %f) x %zu", min, max,
                 num_buckets);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        min_seen_ = v;
        max_seen_ = v;
    } else {
        min_seen_ = std::min(min_seen_, v);
        max_seen_ = std::max(max_seen_, v);
    }
    count_ += count;
    sum_ += v * static_cast<double>(count);
    sqsum_ += v * v * static_cast<double>(count);
    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += count;
    }
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sqsum_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Distribution::bucketFrac(std::size_t i) const
{
    return count_ == 0
        ? 0.0
        : static_cast<double>(buckets_[i]) / static_cast<double>(count_);
}

void
Distribution::dump(std::ostream &os) const
{
    os << name() << "::count " << count_ << " # " << desc() << "\n";
    os << name() << "::mean " << mean() << "\n";
    os << name() << "::stdev " << stddev() << "\n";
    os << name() << "::underflow " << underflow_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        os << name() << "::[" << bucketLo(i) << ","
           << bucketLo(i) + width_ << ") " << buckets_[i] << "\n";
    }
    os << name() << "::overflow " << overflow_ << "\n";
}

void
Distribution::dumpJson(JsonWriter &w) const
{
    w.key(name());
    w.beginObject();
    w.field("type", std::string("distribution"));
    w.field("desc", desc());
    w.field("count", count_);
    w.field("mean", mean());
    w.field("stdev", stddev());
    w.field("min", min_seen_);
    w.field("max", max_seen_);
    w.field("underflow", underflow_);
    w.field("overflow", overflow_);
    w.field("lo", lo_);
    w.field("bucketWidth", width_);
    w.beginArray("buckets");
    for (std::uint64_t b : buckets_)
        w.value(b);
    w.endArray();
    w.endObject();
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    sqsum_ = 0.0;
    min_seen_ = 0.0;
    max_seen_ = 0.0;
}

Histogram::Histogram(std::string name, std::string desc)
    : Stat(std::move(name), std::move(desc)), buckets_(numBuckets(), 0)
{
}

std::size_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < kSubCount)
        return static_cast<std::size_t>(v);
    // Tier t covers [2^(kSubBits+t-1), 2^(kSubBits+t)) in kSubCount/2
    // sub-buckets of width 2^t each.
    const unsigned msb = std::bit_width(v) - 1;
    const unsigned tier = msb - (kSubBits - 1);
    const std::uint64_t top = v >> tier; // in [kSubCount/2, kSubCount)
    return static_cast<std::size_t>(tier * (kSubCount / 2) + top);
}

std::uint64_t
Histogram::bucketLo(std::size_t idx)
{
    if (idx < kSubCount)
        return idx;
    const std::size_t tier = idx / (kSubCount / 2) - 1;
    const std::uint64_t top = idx - tier * (kSubCount / 2);
    return top << tier;
}

std::uint64_t
Histogram::bucketHi(std::size_t idx)
{
    if (idx < kSubCount)
        return idx + 1;
    const std::size_t tier = idx / (kSubCount / 2) - 1;
    const std::uint64_t top = idx - tier * (kSubCount / 2);
    return (top + 1) << tier;
}

std::size_t
Histogram::numBuckets()
{
    // 64-bit values top out at tier 64 - kSubBits.
    return bucketIndex(~0ull) + 1;
}

void
Histogram::record(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        min_seen_ = v;
        max_seen_ = v;
    } else {
        min_seen_ = std::min(min_seen_, v);
        max_seen_ = std::max(max_seen_, v);
    }
    count_ += count;
    sum_ += v * count;
    buckets_[bucketIndex(v)] += count;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(min_seen_);
    if (p >= 100.0)
        return static_cast<double>(max_seen_);
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t b = buckets_[i];
        if (b == 0)
            continue;
        if (static_cast<double>(cum + b) >= target) {
            const double frac =
                (target - static_cast<double>(cum)) /
                static_cast<double>(b);
            const double lo = static_cast<double>(bucketLo(i));
            const double hi = static_cast<double>(bucketHi(i));
            const double v = lo + frac * (hi - lo);
            return std::clamp(v, static_cast<double>(min_seen_),
                              static_cast<double>(max_seen_));
        }
        cum += b;
    }
    return static_cast<double>(max_seen_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_seen_ = other.min_seen_;
        max_seen_ = other.max_seen_;
    } else {
        min_seen_ = std::min(min_seen_, other.min_seen_);
        max_seen_ = std::max(max_seen_, other.max_seen_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
}

void
Histogram::restore(std::uint64_t count, std::uint64_t sum,
                   std::uint64_t min, std::uint64_t max,
                   const std::vector<
                       std::pair<std::uint64_t, std::uint64_t>> &buckets)
{
    reset();
    count_ = count;
    sum_ = sum;
    min_seen_ = min;
    max_seen_ = max;
    // bucketIndex(bucketLo(i)) == i, so the serialized lower bounds
    // land each count back in its original bucket.
    for (const auto &[lo, n] : buckets)
        buckets_[bucketIndex(lo)] += n;
}

void
Histogram::dump(std::ostream &os) const
{
    os << name() << "::count " << count_ << " # " << desc() << "\n";
    os << name() << "::mean " << mean() << "\n";
    os << name() << "::p50 " << percentile(50.0) << "\n";
    os << name() << "::p90 " << percentile(90.0) << "\n";
    os << name() << "::p99 " << percentile(99.0) << "\n";
    os << name() << "::p99.9 " << percentile(99.9) << "\n";
    os << name() << "::max " << max_seen_ << "\n";
}

void
Histogram::dumpJson(JsonWriter &w) const
{
    w.key(name());
    w.beginObject();
    w.field("type", std::string("histogram"));
    w.field("desc", desc());
    w.field("count", count_);
    w.field("sum", sum_);
    w.field("mean", mean());
    w.field("min", min_seen_);
    w.field("max", max_seen_);
    w.field("p50", percentile(50.0));
    w.field("p90", percentile(90.0));
    w.field("p99", percentile(99.0));
    w.field("p999", percentile(99.9));
    w.beginArray("buckets");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        w.beginArray();
        w.value(bucketLo(i));
        w.value(buckets_[i]);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_seen_ = 0;
    max_seen_ = 0;
}

void
TimeSeries::dump(std::ostream &os) const
{
    os << name() << "::samples " << points_.size() << " # " << desc()
       << "\n";
}

void
TimeSeries::dumpJson(JsonWriter &w) const
{
    w.key(name());
    w.beginObject();
    w.field("type", std::string("timeseries"));
    w.field("desc", desc());
    w.beginArray("points");
    for (const auto &[t, v] : points_) {
        w.beginArray();
        w.value(static_cast<std::uint64_t>(t));
        w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

void
StatGroup::addGroup(const StatGroup &g)
{
    for (Stat *s : g.all())
        stats_.push_back(s);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Stat *s : stats_) {
        std::ostringstream tmp;
        s->dump(tmp);
        std::istringstream lines(tmp.str());
        std::string line;
        while (std::getline(lines, line)) {
            if (!name_.empty())
                os << name_ << ".";
            os << line << "\n";
        }
    }
}

void
StatGroup::dumpJson(JsonWriter &w) const
{
    w.key(name_.empty() ? "stats" : name_);
    w.beginObject();
    for (const Stat *s : stats_)
        s->dumpJson(w);
    w.endObject();
}

void
StatGroup::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
}

} // namespace mgsec::stats
