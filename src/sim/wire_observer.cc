#include "sim/wire_observer.hh"

#include <cmath>
#include <ostream>

#include "sim/json_writer.hh"

namespace mgsec
{

WireObserver::Flow::Flow()
    : gap("gap", "inter-packet send gap (cycles)"),
      size("size", "wire bytes per packet"),
      burst("burst", "packets per burst"),
      ctlGap("ctlGap", "gap between control-sized packets (cycles)")
{
}

WireObserver::WireObserver(std::uint32_t num_nodes, Params p)
    : num_nodes_(num_nodes), params_(p),
      flows_(static_cast<std::size_t>(num_nodes) * num_nodes),
      class_names_{"pcie", "nvlink"},
      classify_([](NodeId src, NodeId dst) -> std::size_t {
          return src == 0 || dst == 0 ? 0 : 1;
      }),
      classes_(2)
{
}

void
WireObserver::setLinkClasses(
    std::vector<std::string> names,
    std::function<std::size_t(NodeId, NodeId)> classify)
{
    class_names_ = std::move(names);
    classify_ = std::move(classify);
    classes_.assign(class_names_.size(), LinkClass{});
}

WireObserver::Flow &
WireObserver::flow(NodeId src, NodeId dst)
{
    return flows_[static_cast<std::size_t>(src) * num_nodes_ + dst];
}

const WireObserver::Flow &
WireObserver::flow(NodeId src, NodeId dst) const
{
    return flows_[static_cast<std::size_t>(src) * num_nodes_ + dst];
}

void
WireObserver::onWirePacket(NodeId src, NodeId dst, Bytes bytes,
                           Tick send_tick, Tick arrive_tick)
{
    Flow &f = flow(src, dst);
    const Tick occupancy =
        arrive_tick > send_tick ? arrive_tick - send_tick : 0;

    if (f.seen) {
        const Tick delta =
            send_tick > f.lastSend ? send_tick - f.lastSend : 0;
        f.gap.record(delta);
        if (delta <= params_.burstGap) {
            ++f.burstLen;
        } else {
            f.burst.record(f.burstLen);
            f.burstLen = 1;
            f.burstStart = send_tick;
        }
    } else {
        f.firstSend = send_tick;
        f.burstStart = send_tick;
        f.burstLen = 1;
    }
    f.seen = true;
    f.lastSend = send_tick;
    if (arrive_tick > f.lastArrive)
        f.lastArrive = arrive_tick;
    ++f.packets;
    f.bytes += bytes;
    f.busy += occupancy;
    f.size.record(bytes);

    if (bytes <= params_.ctlMaxBytes) {
        if (f.ctlSeen) {
            const Tick delta =
                send_tick > f.lastCtl ? send_tick - f.lastCtl : 0;
            f.ctlGap.record(delta);
        }
        f.ctlSeen = true;
        f.lastCtl = send_tick;
        ++f.ctlPackets;
    }

    LinkClass &cls = classes_[classOf(src, dst)];
    ++cls.packets;
    cls.bytes += bytes;
    cls.busy += occupancy;
    const std::size_t bin =
        static_cast<std::size_t>(send_tick / params_.windowCycles);
    if (bin >= params_.maxWindows) {
        ++cls.droppedWindows;
    } else {
        if (bin >= cls.windowBytes.size())
            cls.windowBytes.resize(bin + 1, 0);
        cls.windowBytes[bin] += bytes;
    }

    if (!any_) {
        first_send_ = send_tick;
        any_ = true;
    } else if (send_tick < first_send_) {
        first_send_ = send_tick;
    }
    if (arrive_tick > last_arrive_)
        last_arrive_ = arrive_tick;
    ++packets_;
    bytes_ += bytes;
}

void
WireObserver::mergeClass(std::size_t cls, stats::Histogram &gap,
                         stats::Histogram &size,
                         stats::Histogram &burst,
                         stats::Histogram &ctl_gap,
                         std::uint64_t &ctl_packets) const
{
    ctl_packets = 0;
    for (NodeId s = 0; s < num_nodes_; ++s) {
        for (NodeId d = 0; d < num_nodes_; ++d) {
            const Flow &f = flow(s, d);
            if (!f.packets || classOf(s, d) != cls)
                continue;
            gap.merge(f.gap);
            size.merge(f.size);
            burst.merge(f.burst);
            if (f.burstLen > 0)
                burst.record(f.burstLen); // still-open burst
            ctl_gap.merge(f.ctlGap);
            ctl_packets += f.ctlPackets;
        }
    }
}

namespace
{

/** Coefficient of variation and active fraction of a window span. */
struct WindowShape
{
    double meanBytes = 0.0;
    double cv = 0.0;
    double activeFrac = 0.0;
};

WindowShape
windowShape(const std::vector<std::uint64_t> &bins)
{
    // Only the span between the first and last active window is
    // meaningful: leading/trailing silence says "the run had not
    // started / had finished", not "the link was idle mid-phase".
    std::size_t lo = bins.size(), hi = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        if (bins[i] == 0)
            continue;
        if (i < lo)
            lo = i;
        hi = i;
    }
    WindowShape ws;
    if (lo > hi)
        return ws;
    const std::size_t n = hi - lo + 1;
    double sum = 0.0, sqsum = 0.0;
    std::size_t active = 0;
    for (std::size_t i = lo; i <= hi; ++i) {
        const double v = static_cast<double>(bins[i]);
        sum += v;
        sqsum += v * v;
        if (bins[i] > 0)
            ++active;
    }
    const double mean = sum / static_cast<double>(n);
    const double var =
        sqsum / static_cast<double>(n) - mean * mean;
    ws.meanBytes = mean;
    ws.cv = mean > 0.0 ? std::sqrt(var > 0.0 ? var : 0.0) / mean : 0.0;
    ws.activeFrac =
        static_cast<double>(active) / static_cast<double>(n);
    return ws;
}

} // namespace

std::vector<std::pair<std::string, double>>
WireObserver::features() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(48);
    const Tick duration =
        any_ && last_arrive_ > first_send_ ? last_arrive_ - first_send_
                                           : 0;

    for (std::size_t c = 0; c < classes_.size(); ++c) {
        const char *prefix = class_names_[c].c_str();
        const LinkClass &cls = classes_[c];
        stats::Histogram gap("gap", ""), size("size", ""),
            burst("burst", ""), ctl("ctlGap", "");
        std::uint64_t ctl_packets = 0;
        mergeClass(c, gap, size, burst, ctl, ctl_packets);
        const WindowShape ws = windowShape(cls.windowBytes);
        const auto name = [&](const char *f) {
            return std::string(prefix) + "." + f;
        };
        out.emplace_back(name("gapMean"), gap.mean());
        out.emplace_back(name("gapP50"), gap.percentile(50.0));
        out.emplace_back(name("gapP90"), gap.percentile(90.0));
        out.emplace_back(name("gapP99"), gap.percentile(99.0));
        out.emplace_back(name("sizeMean"), size.mean());
        out.emplace_back(name("sizeP50"), size.percentile(50.0));
        out.emplace_back(name("sizeP90"), size.percentile(90.0));
        out.emplace_back(name("burstMean"), burst.mean());
        out.emplace_back(name("burstP90"), burst.percentile(90.0));
        out.emplace_back(name("ctlGapMean"), ctl.mean());
        out.emplace_back(name("ctlGapP50"), ctl.percentile(50.0));
        out.emplace_back(
            name("ctlFrac"),
            cls.packets ? static_cast<double>(ctl_packets) /
                              static_cast<double>(cls.packets)
                        : 0.0);
        out.emplace_back(name("utilCv"), ws.cv);
        out.emplace_back(name("utilActiveFrac"), ws.activeFrac);
        out.emplace_back(name("utilMeanBytes"), ws.meanBytes);
        out.emplace_back(name("packets"),
                         static_cast<double>(cls.packets));
        out.emplace_back(name("bytes"),
                         static_cast<double>(cls.bytes));
        out.emplace_back(
            name("pktPerKcyc"),
            duration ? static_cast<double>(cls.packets) * 1000.0 /
                           static_cast<double>(duration)
                     : 0.0);
        out.emplace_back(
            name("busyFrac"),
            duration ? static_cast<double>(cls.busy) /
                           static_cast<double>(duration)
                     : 0.0);
    }

    // Fan-out: who talks to whom, and how evenly. Constant-rate
    // shaping cannot hide the communication graph without chaff
    // traffic, so these stay informative under every policy.
    std::uint64_t active_srcs = 0, directed_pairs = 0;
    double nv_entropy = 0.0;
    std::uint64_t nv_total = 0;
    for (NodeId s = 0; s < num_nodes_; ++s) {
        std::uint64_t dsts = 0;
        for (NodeId d = 0; d < num_nodes_; ++d) {
            const Flow &f = flow(s, d);
            if (!f.packets)
                continue;
            ++dsts;
            if (classOf(s, d) != 0)
                nv_total += f.bytes;
        }
        if (dsts) {
            ++active_srcs;
            directed_pairs += dsts;
        }
    }
    if (nv_total) {
        for (NodeId s = 0; s < num_nodes_; ++s) {
            for (NodeId d = 0; d < num_nodes_; ++d) {
                const Flow &f = flow(s, d);
                if (classOf(s, d) == 0 || !f.bytes)
                    continue;
                const double p = static_cast<double>(f.bytes) /
                                 static_cast<double>(nv_total);
                nv_entropy -= p * std::log2(p);
            }
        }
    }
    out.emplace_back("fanoutMeanDsts",
                     active_srcs
                         ? static_cast<double>(directed_pairs) /
                               static_cast<double>(active_srcs)
                         : 0.0);
    out.emplace_back("fanoutEntropyBits", nv_entropy);
    out.emplace_back("durationCycles", static_cast<double>(duration));
    out.emplace_back("packets", static_cast<double>(packets_));
    out.emplace_back("bytes", static_cast<double>(bytes_));
    return out;
}

void
WireObserver::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("type", std::string("wire"));
    w.field("nodes", static_cast<std::uint64_t>(num_nodes_));
    w.field("windowCycles",
            static_cast<std::uint64_t>(params_.windowCycles));
    w.field("burstGap", static_cast<std::uint64_t>(params_.burstGap));
    w.field("ctlMaxBytes",
            static_cast<std::uint64_t>(params_.ctlMaxBytes));
    w.field("packets", packets_);
    w.field("bytes", bytes_);
    const Tick duration =
        any_ && last_arrive_ > first_send_ ? last_arrive_ - first_send_
                                           : 0;
    w.field("durationCycles", static_cast<std::uint64_t>(duration));

    w.beginArray("flows");
    for (NodeId s = 0; s < num_nodes_; ++s) {
        for (NodeId d = 0; d < num_nodes_; ++d) {
            const Flow &f = flow(s, d);
            if (!f.packets)
                continue;
            w.beginObject();
            w.field("src", static_cast<std::uint64_t>(s));
            w.field("dst", static_cast<std::uint64_t>(d));
            w.field("link", class_names_[classOf(s, d)]);
            w.field("packets", f.packets);
            w.field("bytes", f.bytes);
            w.field("busy", f.busy);
            w.field("ctlPackets", f.ctlPackets);
            w.field("firstSend",
                    static_cast<std::uint64_t>(f.firstSend));
            w.field("lastSend",
                    static_cast<std::uint64_t>(f.lastSend));
            w.field("lastArrive",
                    static_cast<std::uint64_t>(f.lastArrive));
            f.gap.dumpJson(w);
            f.size.dumpJson(w);
            stats::Histogram closed = f.burst;
            if (f.burstLen > 0)
                closed.record(f.burstLen);
            closed.dumpJson(w);
            f.ctlGap.dumpJson(w);
            w.endObject();
        }
    }
    w.endArray();

    w.key("links");
    w.beginObject();
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        const LinkClass &cls = classes_[c];
        stats::Histogram gap("gap", "merged inter-packet gap"),
            size("size", "merged wire size"),
            burst("burst", "merged burst length"),
            ctl("ctlGap", "merged control gap");
        std::uint64_t ctl_packets = 0;
        mergeClass(c, gap, size, burst, ctl, ctl_packets);
        w.key(class_names_[c]);
        w.beginObject();
        w.field("packets", cls.packets);
        w.field("bytes", cls.bytes);
        w.field("busy", cls.busy);
        w.field("ctlPackets", ctl_packets);
        gap.dumpJson(w);
        size.dumpJson(w);
        burst.dumpJson(w);
        ctl.dumpJson(w);
        w.key("util");
        w.beginObject();
        w.field("windowCycles",
                static_cast<std::uint64_t>(params_.windowCycles));
        w.field("droppedWindows", cls.droppedWindows);
        w.beginArray("bins");
        for (std::size_t i = 0; i < cls.windowBytes.size(); ++i) {
            if (cls.windowBytes[i] == 0)
                continue;
            w.beginArray();
            w.value(static_cast<std::uint64_t>(i));
            w.value(cls.windowBytes[i]);
            w.endArray();
        }
        w.endArray();
        w.endObject();
        w.endObject();
    }
    w.endObject();

    w.key("features");
    w.beginObject();
    for (const auto &[name, value] : features())
        w.field(name, value);
    w.endObject();

    w.endObject();
    os << "\n";
}

} // namespace mgsec
