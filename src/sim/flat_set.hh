/**
 * @file
 * Open-addressing hash set of nonzero 64-bit keys.
 *
 * std::unordered_set heap-allocates one node per insert, which put a
 * malloc/free pair on the event queue's per-event hot path. This set
 * stores keys in one flat power-of-two array (linear probing,
 * backward-shift deletion, no tombstones): steady-state insert/erase
 * touch no allocator at all, and reserve() pre-sizes the array so a
 * run with a known event ceiling never rehashes mid-flight.
 *
 * Key 0 is reserved as the empty-slot sentinel; event sequence
 * numbers start at 1, so the queue never needs it.
 */

#ifndef MGSEC_SIM_FLAT_SET_HH
#define MGSEC_SIM_FLAT_SET_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace mgsec
{

class FlatSeqSet
{
  public:
    FlatSeqSet() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Grow so @p n keys fit without a rehash. */
    void
    reserve(std::size_t n)
    {
        // Stay under the 3/4 load factor insert() enforces.
        std::size_t want = kMinSlots;
        while (want * 3 < n * 4)
            want <<= 1;
        if (want > slots_.size())
            rehash(want);
    }

    /** @return true when @p key was newly inserted. */
    bool
    insert(std::uint64_t key)
    {
        if ((size_ + 1) * 4 > slots_.size() * 3)
            rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
        std::size_t i = mix(key) & mask_;
        while (slots_[i] != kEmpty) {
            if (slots_[i] == key)
                return false;
            i = (i + 1) & mask_;
        }
        slots_[i] = key;
        ++size_;
        return true;
    }

    bool
    contains(std::uint64_t key) const
    {
        if (slots_.empty())
            return false;
        std::size_t i = mix(key) & mask_;
        while (slots_[i] != kEmpty) {
            if (slots_[i] == key)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    /** @return true when @p key was present and removed. */
    bool
    erase(std::uint64_t key)
    {
        if (slots_.empty())
            return false;
        std::size_t i = mix(key) & mask_;
        while (slots_[i] != key) {
            if (slots_[i] == kEmpty)
                return false;
            i = (i + 1) & mask_;
        }
        // Backward-shift deletion: pull every displaced key of the
        // probe chain into the hole so lookups never need tombstones.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            const std::uint64_t k = slots_[j];
            if (k == kEmpty)
                break;
            const std::size_t ideal = mix(k) & mask_;
            // Keys whose ideal slot lies cyclically in (hole, j]
            // are already as close to home as they can get.
            const bool home_between =
                hole <= j ? (hole < ideal && ideal <= j)
                          : (hole < ideal || ideal <= j);
            if (home_between)
                continue;
            slots_[hole] = k;
            hole = j;
        }
        slots_[hole] = kEmpty;
        --size_;
        return true;
    }

    void
    clear()
    {
        slots_.assign(slots_.size(), kEmpty);
        size_ = 0;
    }

  private:
    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::size_t kMinSlots = 64;

    /** Murmur3/splitmix finalizer: spreads sequential seqs. */
    static std::size_t
    mix(std::uint64_t k)
    {
        k ^= k >> 33;
        k *= 0xff51afd7ed558ccdULL;
        k ^= k >> 33;
        k *= 0xc4ceb9fe1a85ec53ULL;
        k ^= k >> 33;
        return static_cast<std::size_t>(k);
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<std::uint64_t> old = std::move(slots_);
        slots_.assign(new_slots, kEmpty);
        mask_ = new_slots - 1;
        size_ = 0;
        for (std::uint64_t k : old) {
            if (k == kEmpty)
                continue;
            std::size_t i = mix(k) & mask_;
            while (slots_[i] != kEmpty)
                i = (i + 1) & mask_;
            slots_[i] = k;
            ++size_;
        }
    }

    std::vector<std::uint64_t> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace mgsec

#endif // MGSEC_SIM_FLAT_SET_HH
