#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mgsec
{

std::string
vstrformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed <= 0)
        return std::string();
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrformat(fmt, ap);
    va_end(ap);
    return s;
}

namespace
{

void
emit(const char *prefix, const char *fmt, va_list ap)
{
    std::string msg = vstrformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

} // namespace mgsec
