#include "sim/debug.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mgsec::debug
{

namespace
{

std::vector<DebugFlag *> &
registry()
{
    static std::vector<DebugFlag *> flags;
    return flags;
}

std::ostream *sink = nullptr;

} // anonymous namespace

DebugFlag::DebugFlag(const char *name, const char *desc)
    : name_(name), desc_(desc)
{
    registry().push_back(this);
}

const std::vector<DebugFlag *> &
DebugFlag::all()
{
    return registry();
}

bool
DebugFlag::enableByName(const std::string &names)
{
    bool all_matched = true;
    std::istringstream ss(names);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        if (tok == "All" || tok == "all") {
            for (DebugFlag *f : registry())
                f->enable();
            continue;
        }
        bool matched = false;
        for (DebugFlag *f : registry()) {
            if (tok == f->name()) {
                f->enable();
                matched = true;
            }
        }
        if (!matched) {
            warn("unknown debug flag '%s'", tok.c_str());
            all_matched = false;
        }
    }
    return all_matched;
}

void
DebugFlag::disableAll()
{
    for (DebugFlag *f : registry())
        f->disable();
}

std::ostream &
stream()
{
    return sink != nullptr ? *sink : std::cerr;
}

void
setStream(std::ostream &os)
{
    sink = &os;
}

void
enableFromEnv()
{
    if (const char *env = std::getenv("MGSEC_DEBUG"))
        DebugFlag::enableByName(env);
}

void
listFlags(std::ostream &os)
{
    os << "debug flags (comma-separated, e.g. --debug "
          "Channel,Batch):\n";
    std::size_t width = 3; // "All"
    for (const DebugFlag *f : DebugFlag::all())
        width = std::max(width, std::string(f->name()).size());
    for (const DebugFlag *f : DebugFlag::all()) {
        os << "  " << f->name()
           << std::string(width - std::string(f->name()).size() + 2,
                          ' ')
           << f->desc() << "\n";
    }
    os << "  All" << std::string(width - 1, ' ')
       << "enable every flag\n";
}

void
print(Tick tick, const std::string &component,
      const std::string &message)
{
    stream() << tick << ": " << component << ": " << message << "\n";
}

DebugFlag Channel("Channel", "secure channel send/recv/ACK flow");
DebugFlag PadTable("PadTable", "dynamic OTP quota adjustments");
DebugFlag NodeFlag("Node", "issue engine and page migrations");
DebugFlag Batch("Batch", "metadata batch lifecycle");

} // namespace mgsec::debug
