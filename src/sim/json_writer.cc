#include "sim/json_writer.hh"

#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace mgsec
{

void
JsonWriter::separate()
{
    if (!has_elem_.empty() && has_elem_.back() == '1' && !pending_key_)
        os_ << ",";
    if (!has_elem_.empty())
        has_elem_.back() = '1';
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    pending_key_ = false;
    os_ << "{";
    has_elem_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    MGSEC_ASSERT(!has_elem_.empty(), "unbalanced endObject");
    has_elem_.pop_back();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &k)
{
    if (!k.empty())
        key(k);
    separate();
    pending_key_ = false;
    os_ << "[";
    has_elem_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    MGSEC_ASSERT(!has_elem_.empty(), "unbalanced endArray");
    has_elem_.pop_back();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    os_ << "\"" << escape(k) << "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    pending_key_ = false;
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    pending_key_ = false;
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    pending_key_ = false;
    os_ << "\"" << escape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    pending_key_ = false;
    os_ << (v ? "true" : "false");
    return *this;
}

} // namespace mgsec
