#include "sim/metric_sampler.hh"

#include <ostream>

#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/trace_sink.hh"

namespace mgsec
{

MetricSampler::MetricSampler(EventQueue &eq, Cycles interval,
                             std::size_t capacity, KeepGoing keep)
    : eq_(eq), interval_(interval), capacity_(capacity),
      keep_(std::move(keep))
{
    MGSEC_ASSERT(interval_ > 0, "sample interval must be positive");
    MGSEC_ASSERT(capacity_ > 0, "ring capacity must be positive");
}

void
MetricSampler::addGauge(std::string name, Gauge g)
{
    MGSEC_ASSERT(!started_, "cannot add gauges after start()");
    MGSEC_ASSERT(g != nullptr, "null gauge '%s'", name.c_str());
    names_.push_back(std::move(name));
    gauges_.push_back(std::move(g));
}

void
MetricSampler::addScalars(const stats::StatGroup &g)
{
    const std::string prefix =
        g.name().empty() ? std::string() : g.name() + ".";
    for (const stats::Stat *s : g.all()) {
        const auto *sc = dynamic_cast<const stats::Scalar *>(s);
        if (!sc)
            continue;
        addGauge(prefix + sc->name(),
                 [sc](Tick) { return sc->value(); });
    }
}

void
MetricSampler::arm()
{
    MGSEC_ASSERT(!started_, "sampler already started");
    MGSEC_ASSERT(!gauges_.empty(), "no gauges registered");
    started_ = true;
    ticks_.assign(capacity_, 0);
    values_.assign(capacity_ * gauges_.size(), 0.0);
    size_ = 0;
    head_ = 0;
}

void
MetricSampler::start()
{
    arm();
    scheduleNext();
}

void
MetricSampler::startManual()
{
    arm();
}

void
MetricSampler::scheduleNext()
{
    eq_.scheduleIn(interval_, [this]() {
        sample();
        if (!keep_ || keep_())
            scheduleNext();
    });
}

void
MetricSampler::sampleNow()
{
    if (started_)
        sample();
}

void
MetricSampler::sampleAt(Tick t)
{
    MGSEC_ASSERT(started_, "sampleAt before start");
    std::size_t row;
    if (size_ < capacity_) {
        row = rowIndex(size_);
        ++size_;
    } else {
        row = head_;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
    ticks_[row] = t;
    double *vals = values_.data() + row * gauges_.size();
    for (std::size_t c = 0; c < gauges_.size(); ++c)
        vals[c] = gauges_[c](t);
    if (trace_) {
        for (std::size_t c = 0; c < gauges_.size(); ++c)
            trace_->counter(0, "metric", names_[c].c_str(), t,
                            vals[c]);
    }
}

std::size_t
MetricSampler::rowIndex(std::size_t i) const
{
    return (head_ + i) % capacity_;
}

void
MetricSampler::sample()
{
    sampleAt(eq_.now());
}

Tick
MetricSampler::tickAt(std::size_t i) const
{
    MGSEC_ASSERT(i < size_, "sample row %zu out of range", i);
    return ticks_[rowIndex(i)];
}

double
MetricSampler::valueAt(std::size_t i, std::size_t col) const
{
    MGSEC_ASSERT(i < size_ && col < gauges_.size(),
                 "sample (%zu, %zu) out of range", i, col);
    return values_[rowIndex(i) * gauges_.size() + col];
}

void
MetricSampler::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("interval", static_cast<std::uint64_t>(interval_));
    w.field("capacity", static_cast<std::uint64_t>(capacity_));
    w.field("samples", static_cast<std::uint64_t>(size_));
    w.field("dropped", dropped_);
    w.beginArray("columns");
    for (const std::string &n : names_)
        w.value(n);
    w.endArray();
    // Each row is [tick, v0, v1, ...]; ticks are exact integers.
    w.beginArray("data");
    for (std::size_t i = 0; i < size_; ++i) {
        w.beginArray();
        w.value(static_cast<std::uint64_t>(tickAt(i)));
        for (std::size_t c = 0; c < gauges_.size(); ++c)
            w.value(valueAt(i, c));
        w.endArray();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace mgsec
