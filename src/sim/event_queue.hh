/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence) keyed callbacks.
 * Events scheduled for the same tick execute in scheduling (FIFO)
 * order, which every higher-level component relies on for in-order
 * link delivery and deterministic replays.
 *
 * Cancellation is lazy: cancel() only removes the event's id from
 * the pending set, and the heap entry is discarded when it surfaces.
 * The pending set doubles as the liveness oracle, so the steady-state
 * cost per executed event is one hash insert (schedule) and one hash
 * erase (pop) — there is no separate cancelled set to consult on the
 * hot path.
 *
 * Steady-state schedule()/runOne() perform no heap allocation:
 * callbacks live inline in the heap entry (InplaceCallback — an
 * oversized capture is a compile error, not a malloc), the pending
 * set is a flat open-addressing table, and reserve() pre-sizes both
 * containers from a caller-supplied event ceiling so neither grows
 * mid-run.
 */

#ifndef MGSEC_SIM_EVENT_QUEUE_HH
#define MGSEC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/flat_set.hh"
#include "sim/inplace_function.hh"
#include "sim/types.hh"

namespace mgsec
{

class LatencyAttribution;
class Profiler;
class TraceSink;

/**
 * Same-tick ordering class; lower runs first. Almost everything uses
 * kPriNormal, keeping the historical pure-FIFO same-tick order.
 * kPriWire exists for wire deliveries on canonical-order fabrics
 * (net/network.hh): the serial kernel schedules a delivery the tick
 * the packet is sent while the sharded kernel schedules it at a
 * window barrier, so its FIFO position among the arrival tick's
 * events depends on the kernel. Sorting deliveries ahead of local
 * work makes the interleaving a pure function of simulation state.
 */
enum EventPri : std::uint8_t
{
    kPriWire = 0,
    kPriNormal = 1,
};

/**
 * Handle returned by EventQueue::schedule(); lets the creator cancel
 * the event before it fires.
 */
struct EventId
{
    std::uint64_t seq = 0;

    bool valid() const { return seq != 0; }
    bool operator==(const EventId &o) const { return seq == o.seq; }
};

/**
 * The event queue. Owns simulated time: time only advances when
 * events execute.
 */
class EventQueue
{
  public:
    /**
     * Inline callback storage: six words of capture. The largest
     * schedulers (response completions capturing requester, txn and
     * flags) use four; anything bigger fails to compile rather than
     * silently heap-allocating.
     */
    using Callback = InplaceCallback<48>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated tick. */
    Tick now() const { return now_; }

    /**
     * Pre-size the heap and pending set for @p expected_pending
     * simultaneously-live events so steady-state scheduling never
     * reallocates. A hint smaller than the real peak only costs the
     * usual amortized growth; it never affects results.
     */
    void reserve(std::size_t expected_pending);

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * @pre when >= now()
     * @return a handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb)
    {
        return schedule(when, kPriNormal, std::move(cb));
    }

    /** Schedule with an explicit same-tick ordering class. */
    EventId schedule(Tick when, EventPri pri, Callback cb);

    /** Schedule @p cb to run @p delta ticks from now. */
    EventId scheduleIn(Cycles delta, Callback cb);

    /**
     * Cancel a pending event.
     * @retval true the event existed and will not run.
     * @retval false the event already ran, was cancelled, or never
     *               existed.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::uint64_t pending() const { return live_; }

    /**
     * Execute the next event, advancing time to it.
     * @retval false the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains, @p until is passed, or
     * @p max_events have executed.
     * @return number of events executed.
     */
    std::uint64_t run(Tick until = MaxTick,
                      std::uint64_t max_events = UINT64_MAX);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Tick of the earliest live event, or MaxTick when the queue is
     * drained. Pops lazily-cancelled leftovers off the heap top on
     * the way (never a live event), so the amortized cost matches
     * runOne()'s. The parallel kernel uses this to skip idle barrier
     * windows.
     */
    Tick nextPendingTick();

    /**
     * Domain this queue belongs to when the kernel is sharded
     * (sim/domain.hh); 0 — the host domain — otherwise, so serial
     * runs need no special case.
     */
    DomainId domainId() const { return domain_id_; }
    void setDomainId(DomainId d) { domain_id_ = d; }

    /**
     * Timeline sink shared by every component on this queue, or
     * nullptr when tracing is off. Living on the queue keeps the
     * sink per-system (parallel sweep jobs never share one) and
     * makes the disabled case a single pointer test at each hook.
     */
    TraceSink *traceSink() const { return trace_sink_; }
    /** Attach/detach the sink; the caller retains ownership. */
    void setTraceSink(TraceSink *sink) { trace_sink_ = sink; }

    /**
     * Latency-attribution collector shared by every component on
     * this queue, or nullptr when attribution is off — same
     * single-pointer-test contract as traceSink().
     */
    LatencyAttribution *attribution() const { return attr_; }
    /** Attach/detach the collector; the caller retains ownership. */
    void setAttribution(LatencyAttribution *attr) { attr_ = attr; }

    /**
     * Host-side self-profiler shared by every component on this
     * queue, or nullptr when profiling is off — same
     * single-pointer-test contract as traceSink(). Instrumented
     * components pass domainId() so their spans land on the lane of
     * the worker that owns this queue.
     */
    Profiler *profiler() const { return profiler_; }
    /** Attach/detach the profiler; the caller retains ownership. */
    void setProfiler(Profiler *prof) { profiler_ = prof; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventPri pri;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.pri != b.pri)
                return a.pri > b.pri;
            return a.seq > b.seq;
        }
    };

    /** Pop the (when, seq)-least entry, moving it out of the heap. */
    Entry popTop();
    /** Advance time to @p e and run its callback. */
    void execute(Entry &e);

    /**
     * Min-heap on (when, seq), managed with std::push_heap /
     * std::pop_heap rather than std::priority_queue so entries can
     * be *moved* out on pop — priority_queue::top() would force a
     * copy of every callback's std::function state.
     */
    std::vector<Entry> heap_;
    /**
     * Seqs scheduled but not yet executed or cancelled. A popped
     * heap entry whose seq is absent here was lazily cancelled.
     */
    FlatSeqSet pending_ids_;
    Tick now_ = 0;
    DomainId domain_id_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t live_ = 0;
    std::uint64_t executed_ = 0;
    TraceSink *trace_sink_ = nullptr;
    LatencyAttribution *attr_ = nullptr;
    Profiler *profiler_ = nullptr;
};

} // namespace mgsec

#endif // MGSEC_SIM_EVENT_QUEUE_HH
