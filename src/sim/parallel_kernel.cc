#include "sim/parallel_kernel.hh"

#include <algorithm>
#include <barrier>
#include <exception>
#include <thread>

#include "sim/logging.hh"

namespace mgsec
{

ParallelKernel::ParallelKernel(ParallelKernelConfig cfg)
    : cfg_(std::move(cfg))
{
    MGSEC_ASSERT(!cfg_.domains.empty(), "kernel needs domains");
    MGSEC_ASSERT(cfg_.lookahead > 0, "lookahead must be positive");
    MGSEC_ASSERT(cfg_.threads >= 1, "kernel needs a thread");
    threads_ = std::min<unsigned>(
        cfg_.threads, static_cast<unsigned>(cfg_.domains.size()));
    executed_.assign(cfg_.domains.size(), 0);
}

void
ParallelKernel::runDomains(unsigned worker, Tick window_end)
{
    for (std::size_t d = worker; d < cfg_.domains.size();
         d += threads_) {
        Domain &dom = *cfg_.domains[d];
        Domain::Scope scope(dom);
        executed_[d] = dom.eq().run(window_end);
    }
}

Tick
ParallelKernel::run(Tick from)
{
    const Tick L = cfg_.lookahead;
    Tick window_start = (from / L) * L;
    // The coordinator publishes the window bound before releasing
    // the workers and reads their results after they arrive; both
    // arrive_and_wait() pairs give the necessary happens-before.
    Tick window_end = 0;
    bool stop = false;

    // An exception inside a window (a throwing event callback) must
    // not escape on a worker thread or unwind past a barrier other
    // threads still wait on — either is std::terminate. Every side
    // captures instead; the coordinator notices at the next barrier,
    // shuts the pool down cleanly, and rethrows on the caller so
    // abnormal exits behave exactly like the serial kernel's.
    std::vector<std::exception_ptr> errors(threads_);

    std::barrier<> sync(threads_);
    std::vector<std::thread> pool;
    pool.reserve(threads_ - 1);
    for (unsigned w = 1; w < threads_; ++w) {
        pool.emplace_back([this, w, &sync, &window_end, &stop,
                           &errors]() {
            if (cfg_.workerStart)
                cfg_.workerStart(w);
            while (true) {
                sync.arrive_and_wait(); // window published
                if (stop)
                    break;
                try {
                    runDomains(w, window_end);
                } catch (...) {
                    errors[w] = std::current_exception();
                }
                sync.arrive_and_wait(); // window closed
            }
            if (cfg_.workerEnd)
                cfg_.workerEnd(w);
        });
    }
    if (cfg_.workerStart)
        cfg_.workerStart(0);

    while (true) {
        if ((cfg_.done && cfg_.done()) || window_start > cfg_.maxCycles)
            break;
        window_end = window_start + L - 1;
        if (threads_ > 1)
            sync.arrive_and_wait(); // release workers
        try {
            runDomains(0, window_end);
        } catch (...) {
            errors[0] = std::current_exception();
        }
        if (threads_ > 1)
            sync.arrive_and_wait(); // all domains quiesced
        ++windows_;

        bool failed = false;
        for (const std::exception_ptr &e : errors)
            failed = failed || static_cast<bool>(e);
        if (failed)
            break;

        std::uint64_t active = 0;
        for (std::uint64_t n : executed_)
            active += n > 0 ? 1 : 0;
        if (active > 0)
            stalls_ += cfg_.domains.size() - active;

        // Single-threaded barrier phase: replay cross-domain sends
        // (deliveries land at >= window_start + L), then run the
        // observability hook on the quiesced system. Captured like
        // window execution: workers are parked at the next barrier
        // and must be released before the exception can unwind.
        try {
            if (cfg_.exchange)
                crossings_ += cfg_.exchange();
            if (cfg_.atBarrier)
                cfg_.atBarrier(window_end);
        } catch (...) {
            errors[0] = std::current_exception();
            break;
        }

        // Advance, skipping windows no domain has work in. The
        // exchange above already scheduled every in-flight delivery,
        // so the minimum pending tick is a true global lower bound.
        Tick tmin = MaxTick;
        for (Domain *d : cfg_.domains)
            tmin = std::min(tmin, d->eq().nextPendingTick());
        if (tmin == MaxTick) {
            window_start += L;
            break; // drained
        }
        window_start = std::max(window_start + L, (tmin / L) * L);
    }

    if (threads_ > 1) {
        stop = true;
        sync.arrive_and_wait();
        for (std::thread &t : pool)
            t.join();
    }
    if (cfg_.workerEnd)
        cfg_.workerEnd(0);
    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
    return window_start;
}

} // namespace mgsec
