#include "sim/parallel_kernel.hh"

#include <algorithm>
#include <barrier>
#include <exception>
#include <thread>

#include "sim/logging.hh"
#include "sim/profiler.hh"

namespace mgsec
{

ParallelKernel::ParallelKernel(ParallelKernelConfig cfg)
    : cfg_(std::move(cfg))
{
    MGSEC_ASSERT(!cfg_.domains.empty(), "kernel needs domains");
    MGSEC_ASSERT(cfg_.lookahead > 0, "lookahead must be positive");
    MGSEC_ASSERT(cfg_.threads >= 1, "kernel needs a thread");
    threads_ = std::min<unsigned>(
        cfg_.threads, static_cast<unsigned>(cfg_.domains.size()));
    executed_.assign(cfg_.domains.size(), 0);
}

void
ParallelKernel::runDomains(unsigned worker, Tick window_end)
{
    Profiler *prof = cfg_.profiler;
    for (std::size_t d = worker; d < cfg_.domains.size();
         d += threads_) {
        Domain &dom = *cfg_.domains[d];
        Domain::Scope scope(dom);
        // Clock only domains with runnable work: run() is a no-op on
        // an idle domain, so skipping the clock there keeps the
        // per-window profiling cost proportional to actual work.
        if (prof && dom.eq().nextPendingTick() <= window_end) {
            const std::uint64_t t0 = Profiler::nowNs();
            executed_[d] = dom.eq().run(window_end);
            prof->domainExec(static_cast<DomainId>(d), t0,
                             Profiler::nowNs(), executed_[d]);
        } else {
            executed_[d] = dom.eq().run(window_end);
        }
    }
}

Tick
ParallelKernel::run(Tick from)
{
    const Tick L = cfg_.lookahead;
    Tick window_start = (from / L) * L;
    // The coordinator publishes the window bound before releasing
    // the workers and reads their results after they arrive; both
    // arrive_and_wait() pairs give the necessary happens-before.
    Tick window_end = 0;
    bool stop = false;

    // An exception inside a window (a throwing event callback) must
    // not escape on a worker thread or unwind past a barrier other
    // threads still wait on — either is std::terminate. Every side
    // captures instead; the coordinator notices at the next barrier,
    // shuts the pool down cleanly, and rethrows on the caller so
    // abnormal exits behave exactly like the serial kernel's.
    std::vector<std::exception_ptr> errors(threads_);

    std::barrier<> sync(threads_);
    std::vector<std::thread> pool;
    pool.reserve(threads_ - 1);
    for (unsigned w = 1; w < threads_; ++w) {
        pool.emplace_back([this, w, &sync, &window_end, &stop,
                           &errors]() {
            Profiler *prof = cfg_.profiler;
            if (cfg_.workerStart)
                cfg_.workerStart(w);
            // A worker's parked stretch runs from finishing its last
            // domain (or thread start) to waking at the next window
            // release — spanning the closed-window barrier AND the
            // coordinator's single-threaded barrier phase, which is
            // exactly the time this worker could not use.
            std::uint64_t bw0 = prof ? Profiler::nowNs() : 0;
            while (true) {
                sync.arrive_and_wait(); // window published
                if (stop)
                    break;
                if (prof)
                    prof->record(w, kProfBarrierWait, bw0,
                                 Profiler::nowNs());
                try {
                    runDomains(w, window_end);
                } catch (...) {
                    errors[w] = std::current_exception();
                }
                if (prof)
                    bw0 = Profiler::nowNs();
                sync.arrive_and_wait(); // window closed
            }
            if (cfg_.workerEnd)
                cfg_.workerEnd(w);
        });
    }
    if (cfg_.workerStart)
        cfg_.workerStart(0);

    while (true) {
        if ((cfg_.done && cfg_.done()) || window_start > cfg_.maxCycles)
            break;
        window_end = window_start + L - 1;
        if (threads_ > 1)
            sync.arrive_and_wait(); // release workers
        try {
            runDomains(0, window_end);
        } catch (...) {
            errors[0] = std::current_exception();
        }
        // The coordinator's barrier wait is the straggler gap: time
        // between finishing its own domains and the slowest worker
        // quiescing. Not measured on serial-fallback runs (no
        // barrier, the wait is identically zero).
        Profiler *const prof = cfg_.profiler;
        if (threads_ > 1) {
            if (prof) {
                const std::uint64_t bw0 = Profiler::nowNs();
                sync.arrive_and_wait(); // all domains quiesced
                prof->record(0, kProfBarrierWait, bw0,
                             Profiler::nowNs());
            } else {
                sync.arrive_and_wait(); // all domains quiesced
            }
        }
        ++windows_;

        bool failed = false;
        for (const std::exception_ptr &e : errors)
            failed = failed || static_cast<bool>(e);
        if (failed)
            break;

        std::uint64_t active = 0;
        for (std::uint64_t n : executed_)
            active += n > 0 ? 1 : 0;
        if (active > 0)
            stalls_ += cfg_.domains.size() - active;

        // Single-threaded barrier phase: replay cross-domain sends
        // (deliveries land at >= window_start + L), then run the
        // observability hook on the quiesced system. Captured like
        // window execution: workers are parked at the next barrier
        // and must be released before the exception can unwind.
        try {
            if (cfg_.exchange) {
                ProfSpan span(prof, 0, kProfCaptureReplay);
                crossings_ += cfg_.exchange();
            }
            if (cfg_.atBarrier) {
                ProfSpan span(prof, 0, kProfMetricFlush);
                cfg_.atBarrier(window_end);
            }
        } catch (...) {
            errors[0] = std::current_exception();
            break;
        }
        if (prof)
            prof->barrierEpilogue();

        // Advance, skipping windows no domain has work in. The
        // exchange above already scheduled every in-flight delivery,
        // so the minimum pending tick is a true global lower bound.
        Tick tmin = MaxTick;
        for (Domain *d : cfg_.domains)
            tmin = std::min(tmin, d->eq().nextPendingTick());
        if (tmin == MaxTick) {
            window_start += L;
            break; // drained
        }
        window_start = std::max(window_start + L, (tmin / L) * L);
    }

    if (threads_ > 1) {
        stop = true;
        sync.arrive_and_wait();
        for (std::thread &t : pool)
            t.join();
    }
    if (cfg_.workerEnd)
        cfg_.workerEnd(0);
    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
    return window_start;
}

} // namespace mgsec
