#include "sim/profiler.hh"

#include <algorithm>
#include <ostream>

#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace mgsec
{

namespace
{

const char *const kPhaseNames[kProfNumPhases] = {
    "serialExec",   "domainExec", "barrierWait",
    "captureReplay", "metricFlush", "sinkFlush",
    "cryptoSeal",   "cryptoOpen", "padGen",
};

/** Cap on buffered host-track spans per lane between drains. */
constexpr std::size_t kMaxPendingSpans = 1u << 15;

} // anonymous namespace

const char *
profPhaseName(unsigned phase)
{
    MGSEC_ASSERT(phase < kProfNumPhases, "bad profiler phase");
    return kPhaseNames[phase];
}

std::chrono::steady_clock::time_point
Profiler::processEpoch()
{
    // One epoch per process so host-track timestamps from systems
    // profiled back to back land on a common wall-clock axis.
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::uint64_t
Profiler::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processEpoch())
            .count());
}

Profiler::Profiler(unsigned workers, unsigned domains)
    : workers_(std::max(1u, workers)),
      domains_(std::max(1u, domains))
{
    lanes_.resize(workers_);
    for (Lane &l : lanes_) {
        l.hist.reserve(kProfNumPhases);
        for (unsigned p = 0; p < kProfNumPhases; ++p)
            l.hist.emplace_back("", "");
    }
    phase_hist_.reserve(kProfNumPhases);
    for (unsigned p = 0; p < kProfNumPhases; ++p)
        phase_hist_.emplace_back(kPhaseNames[p],
                                 std::string("wall ns spent in ") +
                                     kPhaseNames[p]);
    domain_busy_.assign(domains_, 0);
    domain_events_.assign(domains_, 0);
    domain_windows_.assign(domains_, 0);
    window_busy_.assign(domains_, 0);
}

void
Profiler::start()
{
    if (started_)
        return;
    started_ = true;
    t_start_ = nowNs();
}

void
Profiler::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (!started_)
        start();
    t_end_ = nowNs();
    for (Lane &l : lanes_) {
        for (unsigned p = 0; p < kProfNumPhases; ++p)
            phase_hist_[p].merge(l.hist[p]);
    }
}

void
Profiler::record(unsigned lane, ProfPhase phase, std::uint64_t t0,
                 std::uint64_t t1)
{
    Lane &l = lanes_[lane];
    const std::uint64_t dt = t1 >= t0 ? t1 - t0 : 0;
    l.hist[phase].record(dt);
    if (host_track_) {
        if (l.pending.size() < kMaxPendingSpans)
            l.pending.push_back(Lane::PendingSpan{phase, t0, t1});
        else
            ++dropped_spans_;
    }
}

void
Profiler::domainExec(DomainId d, std::uint64_t t0, std::uint64_t t1,
                     std::uint64_t events)
{
    const unsigned l = lane(d);
    record(l, kProfDomainExec, t0, t1);
    const std::uint64_t dt = t1 >= t0 ? t1 - t0 : 0;
    lanes_[l].busyNs += dt;
    lanes_[l].events += events;
    domain_busy_[d] += dt;
    domain_events_[d] += events;
    ++domain_windows_[d];
    window_busy_[d] += dt;
}

void
Profiler::serialSlice(std::uint64_t t0, std::uint64_t t1,
                      std::uint64_t events)
{
    record(0, kProfSerialExec, t0, t1);
    const std::uint64_t dt = t1 >= t0 ? t1 - t0 : 0;
    lanes_[0].busyNs += dt;
    lanes_[0].events += events;
    domain_busy_[0] += dt;
    domain_events_[0] += events;
}

void
Profiler::barrierEpilogue()
{
    ++windows_;
    std::uint64_t max_busy = 0, total = 0, active = 0;
    for (std::uint64_t &b : window_busy_) {
        if (b > 0) {
            max_busy = std::max(max_busy, b);
            total += b;
            ++active;
            b = 0;
        }
    }
    sum_max_busy_ += max_busy;
    sum_busy_ += total;
    active_domain_windows_ += active;
    if (host_track_) {
        for (unsigned l = 0; l < workers_; ++l)
            drainHostTrack(l);
    }
}

void
Profiler::setHostTrack(TraceSink *sink)
{
    host_track_ = sink;
    if (!sink)
        return;
    sink->hostMetadata(0, "process_name", "host profiler (wall us)");
    for (unsigned l = 0; l < workers_; ++l)
        sink->hostMetadata(l, "thread_name",
                           "worker" + std::to_string(l));
}

void
Profiler::drainHostTrack(unsigned l)
{
    Lane &ln = lanes_[l];
    if (!host_track_ || ln.pending.empty())
        return;
    for (const Lane::PendingSpan &s : ln.pending) {
        const std::uint64_t us0 = s.t0 / 1000;
        const std::uint64_t dur =
            s.t1 >= s.t0 ? (s.t1 - s.t0) / 1000 : 0;
        host_track_->hostComplete(l, "prof", kPhaseNames[s.phase],
                                  us0, dur);
    }
    ln.pending.clear();
}

std::int64_t
Profiler::activeSpans() const
{
    std::int64_t n = 0;
    for (const Lane &l : lanes_)
        n += l.depth;
    return n;
}

std::uint64_t
Profiler::totalSpans() const
{
    std::uint64_t n = 0;
    for (const Lane &l : lanes_)
        for (unsigned p = 0; p < kProfNumPhases; ++p)
            n += l.hist[p].count();
    return n;
}

std::uint64_t
Profiler::wallNs() const
{
    return t_end_ >= t_start_ ? t_end_ - t_start_ : 0;
}

double
Profiler::imbalance() const
{
    if (windows_ == 0 || active_domain_windows_ == 0 ||
        sum_busy_ == 0)
        return 0.0;
    const double max_mean = static_cast<double>(sum_max_busy_) /
                            static_cast<double>(windows_);
    const double busy_mean =
        static_cast<double>(sum_busy_) /
        static_cast<double>(active_domain_windows_);
    return busy_mean > 0.0 ? max_mean / busy_mean : 0.0;
}

double
Profiler::barrierFrac() const
{
    const double wait =
        static_cast<double>(phase_hist_[kProfBarrierWait].sum());
    const double exec =
        static_cast<double>(phase_hist_[kProfDomainExec].sum()) +
        static_cast<double>(phase_hist_[kProfSerialExec].sum());
    const double denom = wait + exec;
    return denom > 0.0 ? wait / denom : 0.0;
}

double
Profiler::parallelEfficiencyPct() const
{
    const std::uint64_t wall = wallNs();
    if (wall == 0)
        return 0.0;
    std::uint64_t busy = 0;
    for (const Lane &l : lanes_)
        busy += l.busyNs;
    return 100.0 * static_cast<double>(busy) /
           (static_cast<double>(workers_) *
            static_cast<double>(wall));
}

const char *
Profiler::topStallPhase() const
{
    std::uint64_t best = 0;
    unsigned idx = kProfNumPhases;
    for (unsigned p = 0; p < kProfNumPhases; ++p) {
        if (p == kProfSerialExec || p == kProfDomainExec)
            continue;
        const std::uint64_t s = phase_hist_[p].sum();
        if (s > best) {
            best = s;
            idx = p;
        }
    }
    return idx < kProfNumPhases ? kPhaseNames[idx] : "none";
}

void
Profiler::writeJson(std::ostream &os)
{
    finish();
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", std::string("mgsec-prof-1"));
    w.field("threads", static_cast<std::uint64_t>(workers_));
    w.field("domains", static_cast<std::uint64_t>(domains_));
    w.field("wallNs", wallNs());
    w.field("spans", totalSpans());
    w.field("droppedTraceSpans", dropped_spans_);

    // Every phase is always present (zero-count ones included) so
    // consumers can key on the taxonomy without existence checks.
    w.key("phases");
    w.beginObject();
    for (unsigned p = 0; p < kProfNumPhases; ++p)
        phase_hist_[p].dumpJson(w);
    w.endObject();

    w.key("pdes");
    w.beginObject();
    w.field("windows", windows_);
    w.field("sumBusyNs", sum_busy_);
    w.field("sumMaxBusyNs", sum_max_busy_);
    w.field("activeDomainWindows", active_domain_windows_);
    w.field("imbalance", imbalance());
    w.field("barrierFrac", barrierFrac());
    w.field("parallelEfficiencyPct", parallelEfficiencyPct());
    w.field("topStallPhase", std::string(topStallPhase()));
    w.beginArray("workers");
    for (unsigned l = 0; l < workers_; ++l) {
        const std::uint64_t busy = lanes_[l].busyNs;
        w.beginObject();
        w.field("worker", static_cast<std::uint64_t>(l));
        w.field("events", lanes_[l].events);
        w.field("busyNs", busy);
        w.field("eventsPerSec",
                busy > 0 ? 1e9 * static_cast<double>(lanes_[l].events) /
                               static_cast<double>(busy)
                         : 0.0);
        w.endObject();
    }
    w.endArray();
    w.beginArray("domains");
    for (unsigned d = 0; d < domains_; ++d) {
        w.beginObject();
        w.field("domain", static_cast<std::uint64_t>(d));
        w.field("busyNs", domain_busy_[d]);
        w.field("events", domain_events_[d]);
        w.field("windowsActive", domain_windows_[d]);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
    os << "\n";
}

} // namespace mgsec
