/**
 * @file
 * Runtime-selectable debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Components declare a DebugFlag and emit trace lines through
 * MGSEC_DPRINTF (usable inside any SimObject member). Flags are
 * enabled programmatically, by name, or through the MGSEC_DEBUG
 * environment variable ("Channel,PadTable" or "All").
 *
 * Every line is "<tick>: <component>: <message>", written to a
 * redirectable stream so tests can capture it.
 */

#ifndef MGSEC_SIM_DEBUG_HH
#define MGSEC_SIM_DEBUG_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mgsec::debug
{

class DebugFlag
{
  public:
    DebugFlag(const char *name, const char *desc);

    const char *name() const { return name_; }
    const char *desc() const { return desc_; }
    bool enabled() const { return enabled_; }
    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }

    /** All registered flags (registration order). */
    static const std::vector<DebugFlag *> &all();

    /**
     * Enable flags from a comma-separated list; "All" enables
     * everything.
     * @retval false some name did not match any flag.
     */
    static bool enableByName(const std::string &names);

    /** Disable every flag (test isolation). */
    static void disableAll();

  private:
    const char *name_;
    const char *desc_;
    bool enabled_ = false;
};

/** The trace sink (defaults to std::cerr). */
std::ostream &stream();
void setStream(std::ostream &os);

/** Apply MGSEC_DEBUG from the environment (call once at startup). */
void enableFromEnv();

/** Print every registered flag with its description (--debug help). */
void listFlags(std::ostream &os);

/** Emit one formatted trace line. */
void print(Tick tick, const std::string &component,
           const std::string &message);

/** @name The flags used by the mgsec components */
/// @{
extern DebugFlag Channel;  ///< secure channel send/recv/ACK flow
extern DebugFlag PadTable; ///< dynamic quota adjustments
extern DebugFlag NodeFlag; ///< issue engine, migrations
extern DebugFlag Batch;    ///< batch open/close/flush
/// @}

} // namespace mgsec::debug

/**
 * Trace from inside a SimObject member function.
 * Usage: MGSEC_DPRINTF(debug::Channel, "sent ctr %llu", ctr);
 */
#define MGSEC_DPRINTF(flag, ...)                                       \
    do {                                                               \
        if ((flag).enabled()) {                                       \
            ::mgsec::debug::print(now(), name(),                      \
                                  ::mgsec::strformat(__VA_ARGS__));   \
        }                                                              \
    } while (0)

#endif // MGSEC_SIM_DEBUG_HH
