/**
 * @file
 * Lightweight statistics package (a small cousin of gem5's).
 *
 * Components own their stats as members and register them with a
 * StatGroup so a whole system can be dumped uniformly. All stats are
 * plain value types; nothing here touches the event queue.
 */

#ifndef MGSEC_SIM_STATS_HH
#define MGSEC_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace mgsec
{
class JsonWriter;
} // namespace mgsec

namespace mgsec::stats
{

/** Base class: a named, described statistic that can print itself. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os) const = 0;

    /**
     * Serialize as "name": {type, desc, ...} into the writer's
     * current object (names and descriptions are JSON-escaped).
     */
    virtual void dumpJson(JsonWriter &w) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single accumulating value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void dump(std::ostream &os) const override;
    void dumpJson(JsonWriter &w) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * A bucketed distribution over a linear range, plus exact moments.
 * Values outside [min, max) land in underflow/overflow buckets.
 */
class Distribution : public Stat
{
  public:
    Distribution(std::string name, std::string desc, double min,
                 double max, std::size_t num_buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double stddev() const;
    double minSeen() const { return min_seen_; }
    double maxSeen() const { return max_seen_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    /** Lower bound of bucket i. */
    double bucketLo(std::size_t i) const;
    double bucketWidth() const { return width_; }
    /** Fraction of samples in bucket i (0 when empty). */
    double bucketFrac(std::size_t i) const;

    void dump(std::ostream &os) const override;
    void dumpJson(JsonWriter &w) const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sqsum_ = 0.0;
    double min_seen_ = 0.0;
    double max_seen_ = 0.0;
};

/**
 * HDR-style log-bucketed histogram over non-negative integer values
 * (latencies in cycles). Values below 2^kSubBits are counted
 * exactly; above that, each power-of-two tier is split into
 * 2^(kSubBits-1) sub-buckets, bounding the relative quantization
 * error of any percentile readout to 2^-(kSubBits-1) (~3%).
 * Recording is two array index computations and an increment — cheap
 * enough for per-packet hot-path use. Count/sum/min/max are exact.
 */
class Histogram : public Stat
{
  public:
    /** Sub-bucket resolution: 32 exact values, 16 buckets per tier. */
    static constexpr unsigned kSubBits = 5;
    static constexpr std::uint64_t kSubCount = 1ull << kSubBits;

    Histogram(std::string name, std::string desc);

    void record(std::uint64_t v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minSeen() const { return min_seen_; }
    std::uint64_t maxSeen() const { return max_seen_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }
    /**
     * Value at percentile p in [0, 100], linearly interpolated
     * within its bucket and clamped to [minSeen, maxSeen].
     */
    double percentile(double p) const;

    /** Fold another histogram's samples into this one. */
    void merge(const Histogram &other);

    /**
     * Rebuild from serialized state — the JSON round-trip path used
     * by mgsec_report. @p buckets holds (bucketLo, count) pairs.
     */
    void restore(std::uint64_t count, std::uint64_t sum,
                 std::uint64_t min, std::uint64_t max,
                 const std::vector<
                     std::pair<std::uint64_t, std::uint64_t>> &buckets);

    /** @name Bucket geometry (exposed for tests and analyzers). */
    /// @{
    static std::size_t bucketIndex(std::uint64_t v);
    static std::uint64_t bucketLo(std::size_t idx);
    /** Exclusive upper bound of bucket idx. */
    static std::uint64_t bucketHi(std::size_t idx);
    static std::size_t numBuckets();
    /// @}
    std::uint64_t bucket(std::size_t idx) const { return buckets_[idx]; }

    void dump(std::ostream &os) const override;
    void dumpJson(JsonWriter &w) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_seen_ = 0;
    std::uint64_t max_seen_ = 0;
};

/** (tick, value) samples, for the paper's time-phased plots. */
class TimeSeries : public Stat
{
  public:
    using Stat::Stat;

    void sample(Tick t, double v) { points_.emplace_back(t, v); }
    const std::vector<std::pair<Tick, double>> &points() const
    {
        return points_;
    }

    void dump(std::ostream &os) const override;
    void dumpJson(JsonWriter &w) const override;
    void reset() override { points_.clear(); }

  private:
    std::vector<std::pair<Tick, double>> points_;
};

/** A registry of stats that dumps them in registration order. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Register a stat the caller keeps ownership of. */
    void add(Stat &s) { stats_.push_back(&s); }
    /** Merge in all stats of another group (by reference). */
    void addGroup(const StatGroup &g);

    /** Dump all stats, each line prefixed with the group name. */
    void dump(std::ostream &os) const;
    /**
     * Serialize as "<group>": {"<stat>": {...}, ...} into the
     * writer's current object (an unnamed group uses key "stats").
     */
    void dumpJson(JsonWriter &w) const;
    void resetAll();

    const std::vector<Stat *> &all() const { return stats_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<Stat *> stats_;
};

} // namespace mgsec::stats

#endif // MGSEC_SIM_STATS_HH
