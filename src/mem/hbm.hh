/**
 * @file
 * Stacked-DRAM (HBM) bandwidth/latency model.
 *
 * Table III: 512 GB/s per GPU at 1 GHz => 512 B/cycle. Requests
 * serialize on the device bandwidth and then complete after a fixed
 * access latency. The HBM itself is inside the trust boundary
 * (Section II-B), so no protection cost applies here.
 */

#ifndef MGSEC_MEM_HBM_HH
#define MGSEC_MEM_HBM_HH

#include <string>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mgsec
{

struct HbmParams
{
    double bytesPerCycle = 512.0;
    Cycles accessLatency = 120;
};

class Hbm : public SimObject
{
  public:
    Hbm(const std::string &name, EventQueue &eq, HbmParams params);

    /**
     * Reserve bandwidth for an access of @p bytes starting now.
     * @return the tick at which the data is available.
     */
    Tick access(Bytes bytes);

    const HbmParams &params() const { return params_; }

    Bytes bytesServed() const
    {
        return static_cast<Bytes>(bytes_.value());
    }
    std::uint64_t accesses() const
    {
        return static_cast<std::uint64_t>(accesses_.value());
    }

  private:
    HbmParams params_;
    Tick next_free_ = 0;

    stats::Scalar accesses_{"accesses", "HBM accesses"};
    stats::Scalar bytes_{"bytes", "HBM bytes served"};
};

} // namespace mgsec

#endif // MGSEC_MEM_HBM_HH
