/**
 * @file
 * Set-associative cache tag model with LRU replacement.
 *
 * A functional tag array: it answers hit/miss and performs fills and
 * evictions; latency is applied by the callers (the GPU model), which
 * matches how the paper's Table III caches contribute to the remote
 * access path.
 */

#ifndef MGSEC_MEM_CACHE_HH
#define MGSEC_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mgsec
{

/** Cache geometry. */
struct CacheParams
{
    Bytes size = 2 * 1024 * 1024;
    std::uint32_t assoc = 16;
    Bytes blockSize = kBlockBytes;
    Cycles hitLatency = 1;
};

class Cache : public SimObject
{
  public:
    Cache(const std::string &name, EventQueue &eq, CacheParams params);

    /** Result of an access. */
    struct AccessResult
    {
        bool hit = false;
        bool evicted = false;       ///< a valid victim was replaced
        std::uint64_t victimAddr = 0; ///< block address of the victim
        bool victimDirty = false;
    };

    /**
     * Access a byte address; on a miss the block is filled (with LRU
     * eviction).
     * @param write marks the block dirty on hit or fill.
     */
    AccessResult access(std::uint64_t addr, bool write);

    /** Probe without side effects. */
    bool contains(std::uint64_t addr) const;

    /** Invalidate one block (e.g., page migrated away). */
    bool invalidate(std::uint64_t addr);

    /** Invalidate every block inside [base, base+len). */
    std::uint32_t invalidateRange(std::uint64_t base, Bytes len);

    const CacheParams &params() const { return params_; }
    std::uint32_t numSets() const { return num_sets_; }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint32_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
    std::uint64_t blockAddr(std::uint64_t tag, std::uint32_t set) const;

    CacheParams params_;
    std::uint32_t num_sets_;
    std::vector<Line> lines_;
    std::uint64_t lru_clock_ = 0;

    stats::Scalar hits_{"hits", "cache hits"};
    stats::Scalar misses_{"misses", "cache misses"};
    stats::Scalar evictions_{"evictions", "valid lines replaced"};
    stats::Scalar writebacks_{"writebacks", "dirty lines evicted"};
};

} // namespace mgsec

#endif // MGSEC_MEM_CACHE_HH
