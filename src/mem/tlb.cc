#include "mem/tlb.hh"

#include "sim/logging.hh"

namespace mgsec
{

Tlb::Tlb(const std::string &name, EventQueue &eq, TlbParams params)
    : SimObject(name, eq), params_(params)
{
    MGSEC_ASSERT(params_.entries > 0, "TLB needs entries");
    regStat(hits_);
    regStat(misses_);
    regStat(evictions_);
}

bool
Tlb::lookup(std::uint64_t page)
{
    auto it = map_.find(page);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return true;
    }
    ++misses_;
    if (lru_.size() >= params_.entries) {
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        ++evictions_;
    }
    lru_.push_front(page);
    map_[page] = lru_.begin();
    return false;
}

bool
Tlb::resident(std::uint64_t page) const
{
    return map_.find(page) != map_.end();
}

bool
Tlb::invalidate(std::uint64_t page)
{
    auto it = map_.find(page);
    if (it == map_.end())
        return false;
    lru_.erase(it->second);
    map_.erase(it);
    return true;
}

void
Tlb::flush()
{
    lru_.clear();
    map_.clear();
}

} // namespace mgsec
