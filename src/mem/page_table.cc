#include "mem/page_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mgsec
{

PageTable::PageTable(const std::string &name, EventQueue &eq,
                     PageTableParams params, std::uint32_t num_nodes)
    : SimObject(name, eq), params_(params), num_nodes_(num_nodes)
{
    MGSEC_ASSERT(num_nodes_ >= 2, "need at least CPU + 1 GPU");
    regStat(migrations_);
    regStat(remote_accesses_);
}

PageTable::Entry &
PageTable::entryOf(std::uint64_t page, NodeId first_toucher)
{
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        MGSEC_ASSERT(first_toucher < num_nodes_, "bad toucher %u",
                     first_toucher);
        Entry e;
        e.home = first_toucher;
        e.remoteCounts.assign(num_nodes_, 0);
        it = pages_.emplace(page, std::move(e)).first;
    }
    return it->second;
}

NodeId
PageTable::home(std::uint64_t page, NodeId first_toucher)
{
    auto l = lockIfConcurrent();
    return entryOf(page, first_toucher).home;
}

NodeId
PageTable::homeOf(std::uint64_t page) const
{
    auto l = lockIfConcurrent();
    auto it = pages_.find(page);
    MGSEC_ASSERT(it != pages_.end(), "page %llu unmapped",
                 static_cast<unsigned long long>(page));
    return it->second.home;
}

bool
PageTable::mapped(std::uint64_t page) const
{
    auto l = lockIfConcurrent();
    return pages_.find(page) != pages_.end();
}

void
PageTable::place(std::uint64_t page, NodeId node)
{
    MGSEC_ASSERT(node < num_nodes_, "bad node %u", node);
    auto l = lockIfConcurrent();
    Entry &e = entryOf(page, node);
    e.home = node;
    std::fill(e.remoteCounts.begin(), e.remoteCounts.end(), 0);
}

bool
PageTable::recordRemoteAccess(std::uint64_t page, NodeId accessor)
{
    MGSEC_ASSERT(accessor < num_nodes_, "bad accessor %u", accessor);
    auto l = lockIfConcurrent();
    Entry &e = entryOf(page, accessor);
    MGSEC_ASSERT(e.home != accessor,
                 "remote access recorded by the home node");
    ++remote_accesses_;
    if (!params_.migrationEnabled)
        return false;
    if (++e.remoteCounts[accessor] >= params_.migrationThreshold) {
        std::fill(e.remoteCounts.begin(), e.remoteCounts.end(), 0);
        return true;
    }
    return false;
}

void
PageTable::finishMigration(std::uint64_t page, NodeId new_home)
{
    auto l = lockIfConcurrent();
    auto it = pages_.find(page);
    MGSEC_ASSERT(it != pages_.end(), "migrating unmapped page");
    it->second.home = new_home;
    std::fill(it->second.remoteCounts.begin(),
              it->second.remoteCounts.end(), 0);
    ++migrations_;
}

} // namespace mgsec
