#include "mem/cache.hh"

#include "sim/logging.hh"

namespace mgsec
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

Cache::Cache(const std::string &name, EventQueue &eq, CacheParams params)
    : SimObject(name, eq), params_(params)
{
    MGSEC_ASSERT(params_.blockSize > 0 && isPow2(params_.blockSize),
                 "block size must be a power of two");
    MGSEC_ASSERT(params_.assoc > 0, "associativity must be positive");
    const Bytes blocks = params_.size / params_.blockSize;
    MGSEC_ASSERT(blocks % params_.assoc == 0,
                 "size %llu not divisible into %u-way sets",
                 static_cast<unsigned long long>(params_.size),
                 params_.assoc);
    num_sets_ = static_cast<std::uint32_t>(blocks / params_.assoc);
    MGSEC_ASSERT(isPow2(num_sets_), "set count must be a power of two");
    lines_.resize(blocks);

    regStat(hits_);
    regStat(misses_);
    regStat(evictions_);
    regStat(writebacks_);
}

std::uint32_t
Cache::setIndex(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>((addr / params_.blockSize) &
                                      (num_sets_ - 1));
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return (addr / params_.blockSize) / num_sets_;
}

std::uint64_t
Cache::blockAddr(std::uint64_t tag, std::uint32_t set) const
{
    return (tag * num_sets_ + set) * params_.blockSize;
}

Cache::AccessResult
Cache::access(std::uint64_t addr, bool write)
{
    AccessResult res;
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];

    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lru_clock_;
            line.dirty = line.dirty || write;
            ++hits_;
            res.hit = true;
            return res;
        }
        if (victim == nullptr || !line.valid ||
            (victim->valid && line.valid &&
             line.lruStamp < victim->lruStamp)) {
            if (victim == nullptr || victim->valid)
                victim = &line;
        }
    }

    ++misses_;
    MGSEC_ASSERT(victim != nullptr, "no victim line");
    if (victim->valid) {
        ++evictions_;
        res.evicted = true;
        res.victimAddr = blockAddr(victim->tag, set);
        res.victimDirty = victim->dirty;
        if (victim->dirty)
            ++writebacks_;
    }
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lruStamp = ++lru_clock_;
    return res;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *base =
        &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(std::uint64_t addr)
{
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            base[w].dirty = false;
            return true;
        }
    }
    return false;
}

std::uint32_t
Cache::invalidateRange(std::uint64_t base, Bytes len)
{
    std::uint32_t count = 0;
    for (std::uint64_t a = base; a < base + len; a += params_.blockSize)
        if (invalidate(a))
            ++count;
    return count;
}

} // namespace mgsec
