/**
 * @file
 * TLB model (fully associative, LRU).
 *
 * Per Table III / Fig. 2 of the paper: each CU has a private L1 TLB,
 * all CUs of a GPU share an L2 TLB, and L2 misses are forwarded to
 * the IOMMU on the CPU side — which in the secure system is a
 * CPU-GPU message like any other and therefore crosses the secure
 * channel.
 */

#ifndef MGSEC_MEM_TLB_HH
#define MGSEC_MEM_TLB_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mgsec
{

struct TlbParams
{
    std::uint32_t entries = 64;
    Cycles hitLatency = 1;
};

class Tlb : public SimObject
{
  public:
    Tlb(const std::string &name, EventQueue &eq, TlbParams params);

    /**
     * Translate @p page (a virtual page number).
     * @retval true the mapping was resident.
     * On a miss the mapping is filled (LRU eviction).
     */
    bool lookup(std::uint64_t page);

    /** Probe without side effects. */
    bool resident(std::uint64_t page) const;

    /** Drop one mapping (migration shootdown). */
    bool invalidate(std::uint64_t page);

    /** Drop everything. */
    void flush();

    const TlbParams &params() const { return params_; }
    std::uint32_t occupancy() const
    {
        return static_cast<std::uint32_t>(lru_.size());
    }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }

  private:
    TlbParams params_;

    /** MRU at front. */
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator> map_;

    stats::Scalar hits_{"hits", "TLB hits"};
    stats::Scalar misses_{"misses", "TLB misses"};
    stats::Scalar evictions_{"evictions", "TLB evictions"};
};

} // namespace mgsec

#endif // MGSEC_MEM_TLB_HH
