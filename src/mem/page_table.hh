/**
 * @file
 * Unified-memory page table with access-counter page migration.
 *
 * The unified address space is shared by the CPU and all GPUs; every
 * page has a home node. Remote accesses to migration-eligible pages
 * bump an access counter per (page, accessor); once a counter passes
 * the threshold the page migrates to the accessor — the Volta-style
 * access-counter policy the paper adopts for its baseline.
 */

#ifndef MGSEC_MEM_PAGE_TABLE_HH
#define MGSEC_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mgsec
{

struct PageTableParams
{
    /** Remote accesses by one node before the page migrates to it. */
    std::uint32_t migrationThreshold = 8;
    /** Driver-side cost of a migration (TLB shootdown etc.). */
    Cycles shootdownCycles = 300;
    bool migrationEnabled = true;
};

class PageTable : public SimObject
{
  public:
    PageTable(const std::string &name, EventQueue &eq,
              PageTableParams params, std::uint32_t num_nodes);

    /**
     * Home node of @p page; pages are allocated on first touch to
     * the toucher.
     */
    NodeId home(std::uint64_t page, NodeId first_toucher);

    /** Home of an already-mapped page (panics when unmapped). */
    NodeId homeOf(std::uint64_t page) const;

    bool mapped(std::uint64_t page) const;

    /** Pin a page to a node explicitly (workload placement). */
    void place(std::uint64_t page, NodeId node);

    /**
     * Record a remote access.
     * @retval true the access-counter threshold fired and the page
     *              should migrate to @p accessor (counters reset;
     *              the caller performs the actual transfer and then
     *              calls finishMigration()).
     */
    bool recordRemoteAccess(std::uint64_t page, NodeId accessor);

    /** Commit a migration: the page's home becomes @p new_home. */
    void finishMigration(std::uint64_t page, NodeId new_home);

    const PageTableParams &params() const { return params_; }

    std::uint64_t migrations() const
    {
        return static_cast<std::uint64_t>(migrations_.value());
    }

    /**
     * Guard the table with an internal mutex for sharded runs — the
     * page table is pure state (no events), and it is the single
     * object GPU node domains call into directly. Every value it
     * returns is interleaving-independent: a page's first-touch home
     * is address-deterministic (the workloads derive the toucher from
     * the address), and access counters are per-(page, accessor),
     * bumped only by that accessor's domain.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

  private:
    struct Entry
    {
        NodeId home = InvalidNode;
        std::vector<std::uint32_t> remoteCounts;
    };

    Entry &entryOf(std::uint64_t page, NodeId first_toucher);

    std::unique_lock<std::mutex>
    lockIfConcurrent() const
    {
        return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                           : std::unique_lock<std::mutex>();
    }

    PageTableParams params_;
    std::uint32_t num_nodes_;
    bool concurrent_ = false;
    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, Entry> pages_;

    stats::Scalar migrations_{"migrations", "pages migrated"};
    stats::Scalar remote_accesses_{"remoteAccesses",
                                   "remote accesses recorded"};
};

} // namespace mgsec

#endif // MGSEC_MEM_PAGE_TABLE_HH
