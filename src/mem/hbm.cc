#include "mem/hbm.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mgsec
{

Hbm::Hbm(const std::string &name, EventQueue &eq, HbmParams params)
    : SimObject(name, eq), params_(params)
{
    MGSEC_ASSERT(params_.bytesPerCycle > 0.0, "HBM needs bandwidth");
    regStat(accesses_);
    regStat(bytes_);
}

Tick
Hbm::access(Bytes bytes)
{
    MGSEC_ASSERT(bytes > 0, "zero-byte HBM access");
    ++accesses_;
    bytes_ += static_cast<double>(bytes);

    const auto busy = static_cast<Cycles>(std::ceil(
        static_cast<double>(bytes) / params_.bytesPerCycle));
    const Tick start = std::max(now(), next_free_);
    next_free_ = start + busy;
    return next_free_ + params_.accessLatency;
}

} // namespace mgsec
