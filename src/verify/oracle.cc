#include "verify/oracle.hh"

#include <algorithm>

#include "secure/secure_channel.hh"
#include "sim/logging.hh"

namespace mgsec::verify
{

namespace
{

/**
 * Reference GHASH over a block sequence with the bit-serial gfmul()
 * path — deliberately not the table-driven Ghash class the channel
 * uses, so a table-construction bug cannot hide from the oracle.
 */
crypto::U128
ghashAbsorb(crypto::U128 y, const crypto::U128 &h,
            const crypto::Block &b)
{
    const crypto::U128 x = crypto::blockToU128(b);
    y.hi ^= x.hi;
    y.lo ^= x.lo;
    return crypto::gfmul(y, h);
}

crypto::Block
blockFromBytes(const std::uint8_t *p, std::size_t len)
{
    crypto::Block b{};
    std::copy_n(p, len, b.begin());
    return b;
}

} // anonymous namespace

SecurityOracle::SecurityOracle(std::uint32_t num_nodes,
                               const SecurityConfig &cfg)
    : num_nodes_(num_nodes), cfg_(cfg), gcm_(cfg.sessionKey),
      hash_key_(crypto::blockToU128(gcm_.hashKey())),
      shared_used_(num_nodes), shared_max_(num_nodes, 0),
      recv_peer_(num_nodes,
                 std::vector<RecvPeer>(num_nodes)),
      predicted_(num_nodes)
{
}

// ------------------------------------------------------- shadow crypto

crypto::Iv96
SecurityOracle::shadowIv(NodeId sender, NodeId receiver,
                         std::uint64_t ctr, std::uint8_t domain) const
{
    // Re-stated from the spec: 8 B big-endian counter, 12-bit sender
    // and receiver ids packed little-end-first, 1 B domain.
    crypto::Iv96 iv{};
    crypto::store64be(iv.data(), ctr);
    iv[8] = static_cast<std::uint8_t>(sender & 0xff);
    iv[9] = static_cast<std::uint8_t>(((sender >> 8) & 0x0f) |
                                      ((receiver & 0x0f) << 4));
    iv[10] = static_cast<std::uint8_t>((receiver >> 4) & 0xff);
    iv[11] = domain;
    return iv;
}

void
SecurityOracle::shadowPad(NodeId sender, NodeId receiver,
                          std::uint64_t ctr, std::uint8_t *enc64,
                          std::uint8_t *auth16) const
{
    const auto enc =
        gcm_.keystream(shadowIv(sender, receiver, ctr, 0x01), 64);
    const auto auth =
        gcm_.keystream(shadowIv(sender, receiver, ctr, 0x02), 16);
    std::copy(enc.begin(), enc.end(), enc64);
    std::copy(auth.begin(), auth.end(), auth16);
}

crypto::MsgMac
SecurityOracle::shadowMsgMac(const crypto::BlockPayload &cipher,
                             NodeId sender, NodeId receiver,
                             std::uint64_t ctr,
                             const std::uint8_t *auth16) const
{
    crypto::U128 y{};
    for (std::size_t off = 0; off < cipher.size(); off += 16)
        y = ghashAbsorb(y, hash_key_,
                        blockFromBytes(cipher.data() + off, 16));
    // Re-stated from the spec: 8 B big-endian counter, then sender
    // and receiver ids as big-endian 16-bit fields.
    crypto::Block hdr{};
    crypto::store64be(hdr.data(), ctr);
    crypto::store64be(hdr.data() + 8,
                      (static_cast<std::uint64_t>(sender) << 48) |
                          (static_cast<std::uint64_t>(receiver)
                           << 32));
    y = ghashAbsorb(y, hash_key_, hdr);
    const crypto::Block digest = crypto::u128ToBlock(y);
    crypto::MsgMac out;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(digest[i] ^ auth16[i]);
    return out;
}

crypto::MsgMac
SecurityOracle::shadowBatchMac(const std::vector<crypto::MsgMac> &macs,
                               NodeId sender, NodeId receiver,
                               std::uint64_t batch_id) const
{
    crypto::U128 y{};
    for (const crypto::MsgMac &m : macs)
        y = ghashAbsorb(y, hash_key_,
                        blockFromBytes(m.data(), m.size()));
    const crypto::Block digest = crypto::u128ToBlock(y);
    // The mask pad is the one both endpoints derive from the batch
    // id alone (top bit set to separate it from message counters);
    // the batched MAC uses its auth bytes 8..15.
    std::uint8_t enc[64];
    std::uint8_t auth[16];
    shadowPad(sender, receiver, 0x8000000000000000ULL | batch_id, enc,
              auth);
    crypto::MsgMac out;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(digest[i] ^ auth[8 + i]);
    return out;
}

crypto::BlockPayload
SecurityOracle::shadowPlaintext(NodeId src, NodeId dst,
                                std::uint64_t ctr)
{
    // The deterministic plaintext both endpoints synthesize,
    // re-stated independently of the channel.
    crypto::BlockPayload p;
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = static_cast<std::uint8_t>(
            (ctr >> ((i % 8) * 8)) ^ (src * 131) ^ (dst * 193) ^
            (i * 7));
    }
    return p;
}

// ---------------------------------------------------------- bookkeeping

void
SecurityOracle::addFinding(FindingKind k, std::string detail)
{
    findings_.push_back(Finding{k, std::move(detail)});
}

void
SecurityOracle::creditKey(PktKey key)
{
    auto it = tampered_.find(key);
    if (it != tampered_.end())
        it->second.credited = true;
    auto jt = injected_.find(key);
    if (jt != injected_.end())
        jt->second = true;
}

// ------------------------------------------------------------ send side

void
SecurityOracle::validateTrailer(PairKey pair, NodeId src, NodeId dst,
                                std::uint64_t batch_id,
                                std::uint8_t expect,
                                const crypto::MsgMac &mac)
{
    auto &batches = send_batches_[pair];
    auto it = batches.find(batch_id);
    if (it == batches.end() || it->second.size() != expect) {
        addFinding(FindingKind::CryptoMismatch,
                   strformat("trailer on %u->%u batch %llu declares "
                             "%u members, %zu sent",
                             src, dst,
                             static_cast<unsigned long long>(batch_id),
                             expect,
                             it == batches.end() ? std::size_t{0}
                                                 : it->second.size()));
        if (it != batches.end())
            batches.erase(it);
        return;
    }
    const crypto::MsgMac want =
        shadowBatchMac(it->second, src, dst, batch_id);
    if (want != mac) {
        addFinding(FindingKind::CryptoMismatch,
                   strformat("batched MAC diverges on %u->%u batch "
                             "%llu",
                             src, dst,
                             static_cast<unsigned long long>(
                                 batch_id)));
    }
    batches.erase(it);
}

void
SecurityOracle::onSent(const Packet &p)
{
    auto l = lockIfConcurrent();
    ++observed_;
    const PairKey pair = pairKey(p.src, p.dst);

    if (p.type == PacketType::BatchMac) {
        // Standalone flush trailer: must carry the batched MAC over
        // the member MACs accumulated for this batch. The trailer
        // departs immediately while member sends may still wait on
        // their pads, so it can legitimately reach the wire first —
        // defer validation until the declared count of members has
        // been observed.
        if (p.func == nullptr || !p.func->hasMac) {
            addFinding(FindingKind::CryptoMismatch,
                       strformat("trailer without MAC material on "
                                 "%u->%u batch %llu",
                                 p.src, p.dst,
                                 static_cast<unsigned long long>(
                                     p.batchId)));
            return;
        }
        auto &batches = send_batches_[pair];
        auto it = batches.find(p.batchId);
        const std::size_t have =
            it == batches.end() ? 0 : it->second.size();
        if (have < p.batchLen) {
            pending_trailers_[std::make_pair(pair, p.batchId)] =
                PendingTrailer{p.batchLen, p.func->mac};
        } else {
            validateTrailer(pair, p.src, p.dst, p.batchId, p.batchLen,
                            p.func->mac);
        }
        return;
    }

    if (!p.secured) {
        // SecAck and unsecured traffic carry no counters or crypto;
        // their ACK records are modeled on the delivery side.
        return;
    }

    // Counter evolution per scheme. Per-pair schemes assign
    // contiguous counters in pair order; Shared draws one global
    // stream per sender whose wire order may interleave across
    // destinations, so it is checked for uniqueness and per-pair
    // monotonicity here and for holes at finalize().
    if (cfg_.scheme == OtpScheme::Shared) {
        if (!shared_used_[p.src].insert(p.msgCtr).second) {
            addFinding(FindingKind::CounterAnomaly,
                       strformat("sender %u reused shared ctr %llu",
                                 p.src,
                                 static_cast<unsigned long long>(
                                     p.msgCtr)));
        }
        shared_max_[p.src] =
            std::max(shared_max_[p.src], p.msgCtr);
        auto [it, fresh] =
            shared_pair_last_.try_emplace(pair, p.msgCtr);
        if (!fresh) {
            if (p.msgCtr <= it->second) {
                addFinding(
                    FindingKind::CounterAnomaly,
                    strformat("%u->%u sent shared ctr %llu after "
                              "%llu",
                              p.src, p.dst,
                              static_cast<unsigned long long>(
                                  p.msgCtr),
                              static_cast<unsigned long long>(
                                  it->second)));
            } else {
                it->second = p.msgCtr;
            }
        }
    } else {
        std::uint64_t &next = next_pair_ctr_[pair];
        if (p.msgCtr != next) {
            addFinding(
                FindingKind::CounterAnomaly,
                strformat("%u->%u sent ctr %llu, expected %llu",
                          p.src, p.dst,
                          static_cast<unsigned long long>(p.msgCtr),
                          static_cast<unsigned long long>(next)));
        }
        next = p.msgCtr + 1;
    }

    // Replay-window model: in batching mode every data message is
    // tracked; otherwise only responses draw a dedicated ACK.
    if (cfg_.batching || p.isResponse()) {
        outstanding_[pair].push_back(p.msgCtr);
        tracked_ctrs_[pair].push_back(p.msgCtr);
    }
    sent_stream_[pair].push_back(p.id);

    // Differential crypto: recompute pad, ciphertext and MAC from
    // scratch and diff them against the optimized path's output.
    std::uint8_t enc[64];
    std::uint8_t auth[16];
    shadowPad(p.src, p.dst, p.msgCtr, enc, auth);

    crypto::BlockPayload cipher{};
    if (p.payloadBytes >= kBlockBytes) {
        const crypto::BlockPayload pt =
            shadowPlaintext(p.src, p.dst, p.msgCtr);
        crypto::BlockPayload expect;
        for (std::size_t i = 0; i < expect.size(); ++i)
            expect[i] = static_cast<std::uint8_t>(pt[i] ^ enc[i]);
        if (p.func == nullptr || !p.func->hasCipher) {
            addFinding(FindingKind::CryptoMismatch,
                       strformat("%u->%u ctr %llu carries no "
                                 "ciphertext",
                                 p.src, p.dst,
                                 static_cast<unsigned long long>(
                                     p.msgCtr)));
        } else {
            cipher = p.func->cipher;
            if (cipher != expect) {
                addFinding(FindingKind::CryptoMismatch,
                           strformat("%u->%u ctr %llu ciphertext "
                                     "diverges from shadow pad",
                                     p.src, p.dst,
                                     static_cast<unsigned long long>(
                                         p.msgCtr)));
            }
        }
    }

    const crypto::MsgMac mac =
        shadowMsgMac(cipher, p.src, p.dst, p.msgCtr, auth);
    if (p.batchId != 0) {
        send_batches_[pair][p.batchId].push_back(mac);
        genuine_batches_[pair].emplace(p.batchId, false);
        // A flush trailer that overtook this member may now have its
        // full complement.
        auto pt = pending_trailers_.find(
            std::make_pair(pair, p.batchId));
        if (pt != pending_trailers_.end() &&
            send_batches_[pair][p.batchId].size() >=
                pt->second.expect) {
            const PendingTrailer rec = pt->second;
            pending_trailers_.erase(pt);
            validateTrailer(pair, p.src, p.dst, p.batchId, rec.expect,
                            rec.mac);
        }
        if (p.batchLast && p.hasMac) {
            auto &batches = send_batches_[pair];
            auto it = batches.find(p.batchId);
            const crypto::MsgMac expect = shadowBatchMac(
                it->second, p.src, p.dst, p.batchId);
            if (p.func == nullptr || !p.func->hasMac ||
                p.func->mac != expect) {
                addFinding(FindingKind::CryptoMismatch,
                           strformat("closing batched MAC diverges "
                                     "on %u->%u batch %llu",
                                     p.src, p.dst,
                                     static_cast<unsigned long long>(
                                         p.batchId)));
            }
            batches.erase(it);
        }
    } else if (p.hasMac) {
        if (p.func == nullptr || !p.func->hasMac ||
            p.func->mac != mac) {
            addFinding(FindingKind::CryptoMismatch,
                       strformat("%u->%u ctr %llu MsgMAC diverges "
                                 "from shadow GHASH",
                                 p.src, p.dst,
                                 static_cast<unsigned long long>(
                                     p.msgCtr)));
        }
    }
}

void
SecurityOracle::onInjected(const Packet &p)
{
    auto l = lockIfConcurrent();
    ++observed_;
    injected_.emplace(pktKey(p.src, p.id), false);
}

// --------------------------------------------------------- receive side

void
SecurityOracle::completeBatch(NodeId receiver, NodeId src,
                              std::uint64_t batch_id)
{
    // Mirror of SecureChannel::finishFunctionalBatch: without the
    // trailer MAC the channel silently skips verification — the
    // batch then counts as having lost verification.
    const PairKey from = pairKey(src, receiver);
    const auto key = std::make_pair(from, batch_id);
    auto it = recv_batches_.find(key);
    if (it == recv_batches_.end())
        return;
    ShadowRecvBatch &rb = it->second;
    if (!rb.haveTrailer)
        return;
    const crypto::MsgMac expect =
        shadowBatchMac(rb.macs, src, receiver, batch_id);
    const bool ok = expect == rb.trailer;
    if (ok)
        ++predicted_[receiver].macsVerified;
    else
        ++predicted_[receiver].macsFailed;
    if (!ok) {
        for (PktKey k : rb.taints)
            creditKey(k);
    } else {
        // The batch verified despite tampered members. Only a
        // corrupted declared-length overridden by a standalone
        // trailer's true count is harmless; anything else stays
        // uncredited and surfaces as an UndetectedAttack.
        for (PktKey k : rb.taints) {
            auto t = tampered_.find(k);
            if (t != tampered_.end() &&
                t->second.cls == AttackClass::LengthCorrupt) {
                t->second.credited = true;
                neutralized_.push_back(strformat(
                    "LengthCorrupt on %u->%u batch %llu overridden "
                    "by the standalone trailer's true count",
                    src, receiver,
                    static_cast<unsigned long long>(batch_id)));
            }
        }
    }
    if (!rb.phantom) {
        auto gb = genuine_batches_.find(from);
        if (gb != genuine_batches_.end()) {
            auto bt = gb->second.find(batch_id);
            if (bt != gb->second.end())
                bt->second = true; // verification ran
        }
    }
    recv_batches_.erase(it);
}

void
SecurityOracle::processDeliveredData(const Packet &p, bool injected)
{
    const NodeId r = p.dst;
    const NodeId src = p.src;
    Predicted &pr = predicted_[r];

    RecvPeer &peer = recv_peer_[r][src];
    if (cfg_.scheme != OtpScheme::Shared) {
        const bool gap = peer.has ? p.msgCtr > peer.lastCtr + 1
                                  : p.msgCtr > 0;
        if (gap)
            ++pr.ctrGaps;
    }
    if (peer.has && p.msgCtr <= peer.lastCtr)
        ++pr.replaySuspects;
    else
        peer.lastCtr = p.msgCtr; // watermark is monotonic
    peer.has = true;

    // verifyFunctionalRecv shadow.
    std::uint8_t enc[64];
    std::uint8_t auth[16];
    shadowPad(src, r, p.msgCtr, enc, auth);
    crypto::BlockPayload cipher{};
    if (p.func != nullptr && p.func->hasCipher) {
        cipher = p.func->cipher;
        crypto::BlockPayload plain;
        for (std::size_t i = 0; i < plain.size(); ++i)
            plain[i] = static_cast<std::uint8_t>(cipher[i] ^ enc[i]);
        if (plain == shadowPlaintext(src, r, p.msgCtr))
            ++pr.decryptsOk;
        else
            ++pr.decryptsBad;
    }
    const crypto::MsgMac mac =
        shadowMsgMac(cipher, src, r, p.msgCtr, auth);

    const PairKey from = pairKey(src, r);
    if (p.batchId != 0) {
        const auto key = std::make_pair(from, p.batchId);
        auto [it, fresh] = recv_batches_.try_emplace(key);
        ShadowRecvBatch &rb = it->second;
        if (fresh && injected)
            rb.phantom = true;
        rb.macs.push_back(mac);
        const PktKey pk = pktKey(src, p.id);
        if (injected || tampered_.count(pk) != 0)
            rb.taints.push_back(pk);
        if (p.batchLast && p.func != nullptr && p.func->hasMac) {
            rb.trailer = p.func->mac;
            rb.haveTrailer = true;
        }
    } else if (p.hasMac) {
        const bool ok = p.func != nullptr && p.func->hasMac &&
                        p.func->mac == mac;
        if (ok)
            ++pr.macsVerified;
        else
            ++pr.macsFailed;
    }

    // MsgMacStorage shadow (batching mode only, like the channel).
    if (p.batchId != 0 && cfg_.batching) {
        const auto key = std::make_pair(from, p.batchId);
        auto [it, fresh] = storage_.try_emplace(key);
        ShadowPending &sp = it->second;
        if (fresh && injected)
            sp.phantom = true;
        ++sp.received;
        if (p.batchLen != 0)
            sp.declared = p.batchLen;
        const PktKey pk = pktKey(src, p.id);
        if (injected || tampered_.count(pk) != 0)
            sp.taints.push_back(pk);
        if (p.batchLast && p.hasMac) {
            sp.trailer = true;
            sp.expected = sp.declared != 0
                ? sp.declared
                : static_cast<std::uint8_t>(sp.received);
        }
        if (sp.trailer && sp.expected != 0 &&
            sp.received >= sp.expected) {
            storage_.erase(it);
            completeBatch(r, src, p.batchId);
        }
    }
}

void
SecurityOracle::onDelivered(const Packet &p)
{
    auto l = lockIfConcurrent();
    // Every secured data delivery either consumes its genuine copy
    // from the pair's sent stream (resolving skipped ids as losses)
    // or is an injected clone of an already-consumed original.
    bool injected = false;
    if (p.secured && p.type != PacketType::SecAck &&
        p.type != PacketType::BatchMac)
        injected = sentStreamFrontIsNot(p);
    const NodeId r = p.dst;
    Predicted before = predicted_[r];

    // Cumulative ACKs act on the receiver's replay window toward the
    // packet's sender, whatever the packet type.
    for (std::size_t i = 0; i < p.acks.size(); ++i) {
        const AckRecord &rec = p.acks[i];
        const PairKey k = pairKey(r, p.src);
        auto &q = outstanding_[k];
        while (!q.empty() && q.front() <= rec.upToCtr)
            q.pop_front();
        auto [it, fresh] = max_acked_.try_emplace(k, rec.upToCtr);
        if (!fresh)
            it->second = std::max(it->second, rec.upToCtr);
    }

    switch (p.type) {
      case PacketType::SecAck:
        break;
      case PacketType::BatchMac: {
        const PairKey from = pairKey(p.src, r);
        const auto key = std::make_pair(from, p.batchId);
        if (p.func != nullptr && p.func->hasMac) {
            ShadowRecvBatch &rb = recv_batches_[key];
            rb.trailer = p.func->mac;
            rb.haveTrailer = true;
            const PktKey pk = pktKey(p.src, p.id);
            if (tampered_.count(pk) != 0)
                rb.taints.push_back(pk);
        }
        if (cfg_.batching) {
            ShadowPending &sp = storage_[key];
            sp.trailer = true;
            sp.expected = p.batchLen;
            if (sp.trailer && sp.expected != 0 &&
                sp.received >= sp.expected) {
                storage_.erase(key);
                completeBatch(r, p.src, p.batchId);
            }
        }
        break;
      }
      default:
        if (p.secured)
            processDeliveredData(p, injected);
        break;
    }

    // Attribute any fresh failure signal to the attack that caused
    // it; batch-deferred effects are credited via taints instead.
    const Predicted &after = predicted_[r];
    const bool signal = after.macsFailed > before.macsFailed ||
                        after.decryptsBad > before.decryptsBad ||
                        after.replaySuspects > before.replaySuspects ||
                        after.ctrGaps > before.ctrGaps;
    if (signal)
        creditKey(pktKey(p.src, p.id));
}

bool
SecurityOracle::sentStreamFrontIsNot(const Packet &p)
{
    // A replayed clone shares (src, id) with its genuine original;
    // the genuine copy is the one still at the front of the sent
    // stream. When the front no longer carries this id (the original
    // was consumed), this delivery is the injected clone. While
    // consuming the genuine copy, also resolve any ids skipped ahead
    // of it: those packets were lost in flight.
    const PairKey pair = pairKey(p.src, p.dst);
    auto it = sent_stream_.find(pair);
    if (it == sent_stream_.end())
        return true;
    auto &q = it->second;
    std::size_t skip = 0;
    while (skip < q.size() && q[skip] != p.id)
        ++skip;
    if (skip == q.size())
        return true; // not in the stream: injected
    for (std::size_t i = 0; i < skip; ++i) {
        resolveLost(p.src, p.dst, q.front(), true);
        q.pop_front();
    }
    q.pop_front();
    return false; // the genuine copy
}

void
SecurityOracle::resolveLost(NodeId src, NodeId dst, std::uint64_t id,
                            bool gap_seen)
{
    // A genuine message vanished from its pair's FIFO stream. If the
    // adversary claimed the drop, attribute it — and when a later
    // delivery exposed the hole, per-pair-counter schemes saw it as
    // a ctrGap, so the channel detected it too. Unclaimed losses are
    // simulator bugs.
    for (DroppedData &d : dropped_data_) {
        if (!d.attributed && d.src == src && d.dst == dst &&
            d.id == id) {
            d.attributed = true;
            if (gap_seen && cfg_.scheme != OtpScheme::Shared)
                d.detected = true;
            return;
        }
    }
    addFinding(FindingKind::LostMessage,
               strformat("%u->%u packet id %llu vanished in flight",
                         src, dst,
                         static_cast<unsigned long long>(id)));
}

void
SecurityOracle::onDropped(const Packet &p)
{
    auto l = lockIfConcurrent();
    for (std::size_t i = 0; i < p.acks.size(); ++i) {
        dropped_acks_.push_back(DroppedAck{
            p.dst, p.src, p.acks[i].upToCtr, false});
    }
    if (p.secured && p.type != PacketType::SecAck &&
        p.type != PacketType::BatchMac) {
        const bool in_window = cfg_.batching || p.isResponse();
        dropped_data_.push_back(DroppedData{
            p.src, p.dst, p.id, p.msgCtr, p.batchId, in_window,
            false, false});
    }
}

void
SecurityOracle::noteTampered(NodeId src, std::uint64_t id,
                             AttackClass cls)
{
    auto l = lockIfConcurrent();
    tampered_.emplace(pktKey(src, id), TamperRec{cls, false});
}

// -------------------------------------------------------------- finalize

std::vector<Finding>
SecurityOracle::finalize(const std::vector<SecureChannel *> &channels)
{
    // 1. Differential check: the real channels must have concluded
    //    exactly what the shadow model concluded.
    for (NodeId n = 0; n < channels.size(); ++n) {
        const SecureChannel *ch = channels[n];
        const Predicted &pr = predicted_[n];
        auto diff = [&](const char *what, std::uint64_t got,
                        std::uint64_t want) {
            if (got != want) {
                addFinding(
                    FindingKind::Divergence,
                    strformat("node %u %s: channel %llu, oracle %llu",
                              n, what,
                              static_cast<unsigned long long>(got),
                              static_cast<unsigned long long>(want)));
            }
        };
        diff("macsVerified", ch->macsVerified(), pr.macsVerified);
        diff("macsFailed", ch->macsFailed(), pr.macsFailed);
        diff("decryptsOk", ch->decryptsOk(), pr.decryptsOk);
        diff("decryptsBad", ch->decryptsBad(), pr.decryptsBad);
        diff("replaySuspects", ch->replaySuspects(),
             pr.replaySuspects);
        diff("ctrGaps", ch->ctrGaps(), pr.ctrGaps);
        for (NodeId peer = 0; peer < num_nodes_; ++peer) {
            if (peer == n)
                continue;
            const auto it = outstanding_.find(pairKey(n, peer));
            const std::size_t want =
                it == outstanding_.end() ? 0 : it->second.size();
            const std::size_t got =
                ch->replayWindow().outstanding(peer);
            if (got != want) {
                addFinding(
                    FindingKind::Divergence,
                    strformat("node %u outstanding[%u]: channel %zu, "
                              "oracle %zu",
                              n, peer, got, want));
            }
        }
    }
    // 2. Shared-scheme streams must end hole-free: a counter a
    //    sender never put on the wire means a pad was skipped (or
    //    burned without a message) somewhere in the channel.
    for (NodeId n = 0; n < num_nodes_; ++n) {
        const std::set<std::uint64_t> &used = shared_used_[n];
        if (used.empty() || used.size() == shared_max_[n] + 1)
            continue;
        std::uint64_t expect = 0;
        for (std::uint64_t c : used) {
            if (c != expect)
                break;
            ++expect;
        }
        addFinding(FindingKind::CounterAnomaly,
                   strformat("sender %u never sent shared ctr %llu",
                             n,
                             static_cast<unsigned long long>(expect)));
    }

    // 3. Unconsumed genuine messages: tail drops (nothing later on
    //    the pair exposed the gap) and in-flight losses.
    for (auto &[pair, q] : sent_stream_) {
        const NodeId src = static_cast<NodeId>(pair / num_nodes_);
        const NodeId dst = static_cast<NodeId>(pair % num_nodes_);
        while (!q.empty()) {
            resolveLost(src, dst, q.front(), false);
            q.pop_front();
        }
    }

    // 3b. Flush trailers still waiting for members at drain: the
    //     sender closed a batch whose members never all reached the
    //     wire.
    for (const auto &[key, rec] : pending_trailers_) {
        const NodeId src = static_cast<NodeId>(key.first / num_nodes_);
        const NodeId dst = static_cast<NodeId>(key.first % num_nodes_);
        const auto bt = send_batches_.find(key.first);
        std::size_t have = 0;
        if (bt != send_batches_.end()) {
            const auto m = bt->second.find(key.second);
            if (m != bt->second.end())
                have = m->second.size();
        }
        addFinding(FindingKind::CryptoMismatch,
                   strformat("trailer on %u->%u batch %llu still "
                             "short: %zu of %u members reached the "
                             "wire",
                             src, dst,
                             static_cast<unsigned long long>(
                                 key.second),
                             have, rec.expect));
    }

    // 4. Genuine batches that never ran MAC verification.
    for (const auto &[pair, batches] : genuine_batches_) {
        const NodeId src = static_cast<NodeId>(pair / num_nodes_);
        const NodeId dst = static_cast<NodeId>(pair % num_nodes_);
        for (const auto &[id, verified] : batches) {
            if (verified)
                continue;
            ++stranded_batches_;
            // The strand itself is the detection signal; credit
            // whoever caused it. Unattributable strands are bugs.
            bool attributed = false;
            const auto key = std::make_pair(pair, id);
            auto sp = storage_.find(key);
            if (sp != storage_.end()) {
                for (PktKey k : sp->second.taints) {
                    creditKey(k);
                    attributed = true;
                }
            }
            auto rb = recv_batches_.find(key);
            if (rb != recv_batches_.end()) {
                for (PktKey k : rb->second.taints) {
                    creditKey(k);
                    attributed = true;
                }
            }
            for (DroppedData &d : dropped_data_) {
                if (d.src == src && d.dst == dst && d.batchId == id) {
                    // The strand itself is the channel's signal.
                    d.attributed = true;
                    d.detected = true;
                    attributed = true;
                }
            }
            if (!attributed) {
                addFinding(
                    FindingKind::LostVerification,
                    strformat("batch %llu on %u->%u never verified",
                              static_cast<unsigned long long>(id),
                              src, dst));
            }
        }
    }

    // 5. Dropped-ACK expectations: an uncovered drop must leave the
    //    sender's window non-empty; a covered one was neutralized by
    //    a later cumulative ACK (reported, not silently passed).
    for (DroppedAck &d : dropped_acks_) {
        const PairKey k = pairKey(d.owner, d.peer);
        const auto it = outstanding_.find(k);
        const bool outstanding =
            it != outstanding_.end() && !it->second.empty();
        // What the drop could actually have discharged: the highest
        // window-tracked counter at or below its upTo. Coverage
        // past that is vacuous (verified watermarks ride ahead on
        // request counters no window holds).
        std::uint64_t effective = 0;
        bool covers_anything = false;
        if (const auto tc = tracked_ctrs_.find(k);
            tc != tracked_ctrs_.end()) {
            for (const std::uint64_t c : tc->second) {
                if (c <= d.upTo) {
                    effective = std::max(effective, c);
                    covers_anything = true;
                }
            }
        }
        if (outstanding) {
            d.credited = true;
        } else if (!covers_anything) {
            d.credited = true;
            neutralized_.push_back(strformat(
                "AckDrop up to %llu on %u<-%u covered no tracked "
                "counter",
                static_cast<unsigned long long>(d.upTo), d.owner,
                d.peer));
        } else {
            const auto ma = max_acked_.find(k);
            if (ma != max_acked_.end() && ma->second >= effective) {
                d.credited = true;
                neutralized_.push_back(strformat(
                    "AckDrop up to %llu on %u<-%u covered by a later "
                    "cumulative ACK",
                    static_cast<unsigned long long>(d.upTo), d.owner,
                    d.peer));
            } else {
                addFinding(
                    FindingKind::UndetectedAttack,
                    strformat("dropped ACK (up to %llu, %u<-%u) left "
                              "no trace",
                              static_cast<unsigned long long>(d.upTo),
                              d.owner, d.peer));
            }
        }
    }

    // 6. Dropped data not yet detected through a ctr gap or a
    //    strand: the sender's replay window must still hold the
    //    counter at drain, else the drop left no trace anywhere.
    for (DroppedData &d : dropped_data_) {
        if (d.detected)
            continue;
        const auto it = outstanding_.find(pairKey(d.src, d.dst));
        const bool held =
            d.inWindow && it != outstanding_.end() &&
            std::find(it->second.begin(), it->second.end(), d.ctr) !=
                it->second.end();
        if (held) {
            d.detected = true; // unacked at drain: the window flags it
            continue;
        }
        if (!d.inWindow) {
            // A tail request drop outside the replay window is the
            // protocol's documented blind spot (cumulative ACKs do
            // not cover requests in per-message mode, and no later
            // delivery exposed a counter gap).
            addFinding(FindingKind::UndetectedAttack,
                       strformat("dropped request (%u->%u ctr %llu) "
                                 "left no trace",
                                 d.src, d.dst,
                                 static_cast<unsigned long long>(
                                     d.ctr)));
        } else {
            addFinding(FindingKind::UndetectedAttack,
                       strformat("dropped data (%u->%u ctr %llu) "
                                 "left no trace",
                                 d.src, d.dst,
                                 static_cast<unsigned long long>(
                                     d.ctr)));
        }
    }

    // 7. Injected packets must each have raised a replay suspicion
    //    or MAC failure.
    for (const auto &[key, credited] : injected_) {
        if (!credited) {
            addFinding(FindingKind::UndetectedAttack,
                       strformat("injected replay of packet id %llu "
                                 "from %u raised no signal",
                                 static_cast<unsigned long long>(
                                     key & 0xffffffffffffULL),
                                 static_cast<unsigned>(key >> 48)));
        }
    }

    // 8. Tampered packets whose mutation never produced a signal.
    for (const auto &[key, rec] : tampered_) {
        if (!rec.credited) {
            addFinding(FindingKind::UndetectedAttack,
                       strformat("%s on packet id %llu from %u was "
                                 "not detected",
                                 attackClassName(rec.cls),
                                 static_cast<unsigned long long>(
                                     key & 0xffffffffffffULL),
                                 static_cast<unsigned>(key >> 48)));
        }
    }

    return findings_;
}

} // namespace mgsec::verify
