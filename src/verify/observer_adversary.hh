/**
 * @file
 * ObserverAdversary — leakage analytics over passive wire captures.
 *
 * The WireObserver (src/sim) folds what a link probe sees into a
 * feature vector per run. This module asks the security question:
 * how much does that vector tell an attacker who wants to know WHAT
 * the victim is computing? Two complementary estimates:
 *
 *  - a workload classifier: z-score-normalized nearest-centroid
 *    over the timing-shape feature subset, evaluated leave-one-
 *    seed-out so a run is never classified by centroids that saw
 *    its own seed. Accuracy far above chance = the wire leaks the
 *    workload identity.
 *
 *  - a channel-capacity proxy: the Jensen-Shannon divergence of the
 *    class-conditional inter-packet-gap distributions, in bits per
 *    observed packet. This is the mutual information between the
 *    class label and one gap draw under a uniform prior — an upper
 *    bound on what any single-gap classifier can extract, and a
 *    continuous score that moves even when accuracy saturates.
 *
 * The classifier deliberately restricts itself to timing-shape
 * features (gap/size/burst/control-gap statistics, utilization
 * shape, fan-out entropy) and ignores absolute volume (total
 * packets, bytes, duration, rates). Volume is trivially workload-
 * correlated but is also leaked by any power/thermal side channel;
 * the interesting question for link shaping is whether the *wire
 * timing* itself identifies the workload — and whether a shaping
 * policy can push that back toward chance.
 */

#ifndef MGSEC_VERIFY_OBSERVER_ADVERSARY_HH
#define MGSEC_VERIFY_OBSERVER_ADVERSARY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mgsec::verify
{

/** One observed run: class label, seed (the LOSO fold id), and the
 *  WireObserver feature vector (fixed names, fixed order). */
struct ObservedRun
{
    std::string label;
    std::uint64_t seed = 0;
    std::vector<std::pair<std::string, double>> features;
};

/** Outcome of classifyLeaveOneSeedOut(). */
struct LeakageReport
{
    std::size_t runs = 0;      ///< observations used
    std::size_t classes = 0;   ///< distinct labels
    std::size_t evaluated = 0; ///< runs actually scored
    std::size_t correct = 0;   ///< ... of which classified right
    double accuracy = 0.0;     ///< correct / evaluated
    /** Majority-class frequency: the accuracy of the best
     *  label-blind guesser. accuracy >> chance means leakage. */
    double chance = 0.0;
};

/**
 * True for features the wire-timing classifier may use. Excludes
 * absolute-volume features (packets, bytes, durationCycles,
 * pktPerKcyc, busyFrac, utilMeanBytes) — see the file comment.
 */
bool timingFeature(const std::string &name);

/** The timing-feature subset of @p run, in feature order. */
std::vector<double> timingVector(const ObservedRun &run);

/**
 * Nearest-centroid workload classification, leave-one-seed-out.
 * Every run whose seed is held out is classified against centroids
 * built (and z-score normalized) from the remaining seeds only.
 * With a single distinct seed the fold degenerates to leave-one-
 * run-out. Runs must share one feature schema; fewer than two
 * classes yields evaluated == 0.
 */
LeakageReport
classifyLeaveOneSeedOut(const std::vector<ObservedRun> &runs);

/**
 * Jensen-Shannon divergence, in bits, of class-conditional
 * distributions. Input: one sparse histogram per class as
 * (bucket id, count) pairs — bucket ids only need to be consistent
 * across classes. Empty or single-class input yields 0. Bounded by
 * log2(#classes).
 */
double jsdCapacityBits(
    const std::vector<std::vector<std::pair<double, std::uint64_t>>>
        &class_hists);

} // namespace mgsec::verify

#endif // MGSEC_VERIFY_OBSERVER_ADVERSARY_HH
