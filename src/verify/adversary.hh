/**
 * @file
 * AdversaryModel — the scriptable physical attacker of the threat
 * model (an adversary probing and meddling with the exposed
 * PCIe/NVLink interconnect).
 *
 * The model mounts the Network's PostWire tamper point, where a
 * probe sees the exact bytes the wire carried: it can capture wire
 * images for later replay, flip ciphertext/MAC/header bits, corrupt
 * batch trailers and declared-length fields, drop/duplicate/reorder
 * SecAcks, splice crypto material across (src,dst) pairs, and drop
 * data in flight.
 *
 * Scripts are deterministic: every class counts its own stream of
 * eligible wire packets, and a step fires on the nth one. At most
 * one step fires per packet (first in script order), so mutations
 * never mask each other's attribution. Each mounted attack is
 * registered with the SecurityOracle, which must see a detection
 * signal for it or report an UndetectedAttack.
 */

#ifndef MGSEC_VERIFY_ADVERSARY_HH
#define MGSEC_VERIFY_ADVERSARY_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hh"
#include "sim/event_queue.hh"
#include "verify/verify_types.hh"

namespace mgsec::verify
{

class SecurityOracle;

class AdversaryModel
{
  public:
    AdversaryModel(EventQueue &eq, Network &net,
                   SecurityOracle *oracle);

    void setScript(std::vector<AttackStep> script);

    /** Mount the PostWire hook on the network. */
    void install();

    /** True while the attacker's own injected traffic is in send. */
    bool injecting() const { return injecting_; }

    /**
     * True iff @p p is one of the adversary's own injected packets.
     * Identification is by (flow, packet id), recorded at inject()
     * time, so it survives the sharded kernel's deferred wire
     * traversal: under capture mode the network replays sends at the
     * window barrier, long after the transient injecting() flag has
     * reset. Records are counted (a script can replay one packet
     * twice) and @p consume decrements — the PostWire hook consumes,
     * the testbed's PreWire peek does not — so a later genuine
     * packet can never alias a finished injection.
     */
    bool wasInjected(const Packet &p, bool consume);

    /** @name Reporting */
    /// @{
    std::uint64_t attacksMounted() const { return log_.size(); }
    const std::vector<std::string> &attackLog() const { return log_; }
    /** Script steps that found their nth eligible packet. */
    std::size_t stepsFired() const;
    std::size_t scriptSize() const { return steps_.size(); }
    /// @}

  private:
    struct ScriptStep
    {
        AttackStep step;
        bool fired = false;
    };

    /** Wire image an attacker recorded for splicing. */
    struct Capture
    {
        std::array<std::uint8_t, 64> cipher{};
        std::array<std::uint8_t, 8> mac{};
        bool hasCipher = false;
        bool hasMac = false;
    };

    Network::TamperVerdict onWire(Packet &p);
    bool eligible(AttackClass c, const Packet &p) const;
    Network::TamperVerdict apply(ScriptStep &ss, Packet &p);
    void inject(PacketPtr clone, Cycles delay, bool is_replay);
    void logAttack(const AttackStep &s, const Packet &p);

    std::uint64_t
    pairOf(const Packet &p) const
    {
        return static_cast<std::uint64_t>(p.src) * net_.numNodes() +
               p.dst;
    }

    EventQueue &eq_;
    Network &net_;
    SecurityOracle *oracle_;

    std::vector<ScriptStep> steps_;
    /** Eligible packets seen so far, per attack class. */
    std::array<std::uint32_t, kNumAttackClasses> seen_{};
    /** Last captured crypto material per (src,dst) pair. */
    std::map<std::uint64_t, Capture> captures_;

    /**
     * Outstanding injected packets, keyed (pair, packet id) with a
     * count (packet ids are only unique per flow, and one packet can
     * be replayed more than once). Touched only on the adversary's
     * own domain thread and at quiesced barriers, so unguarded.
     */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t>
        injected_;

    bool injecting_ = false;
    std::vector<std::string> log_;
};

} // namespace mgsec::verify

#endif // MGSEC_VERIFY_ADVERSARY_HH
