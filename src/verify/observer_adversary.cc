#include "verify/observer_adversary.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "sim/logging.hh"

namespace mgsec::verify
{

bool
timingFeature(const std::string &name)
{
    // Volume features leak through any side channel; the classifier
    // scores only what link *timing and shape* reveal. Burst lengths
    // are packets-per-busy-stretch — under continuous cover traffic
    // a run is one burst, so they collapse into a duration proxy and
    // join the volume side of the line.
    static const char *const kExcluded[] = {
        "packets",      "bytes",     "durationCycles",
        "pktPerKcyc",   "busyFrac",  "utilMeanBytes",
        "fanoutMeanDsts", "burstMean", "burstP90",
    };
    // Features are "name" or "linkclass.name"; strip the prefix.
    const std::size_t dot = name.rfind('.');
    const std::string leaf =
        dot == std::string::npos ? name : name.substr(dot + 1);
    for (const char *ex : kExcluded) {
        if (leaf == ex)
            return false;
    }
    return true;
}

std::vector<double>
timingVector(const ObservedRun &run)
{
    std::vector<double> out;
    out.reserve(run.features.size());
    for (const auto &[name, value] : run.features) {
        if (timingFeature(name))
            out.push_back(value);
    }
    return out;
}

LeakageReport
classifyLeaveOneSeedOut(const std::vector<ObservedRun> &runs)
{
    LeakageReport rep;
    rep.runs = runs.size();
    if (runs.empty())
        return rep;

    std::vector<std::vector<double>> vecs;
    vecs.reserve(runs.size());
    for (const ObservedRun &r : runs)
        vecs.push_back(timingVector(r));
    const std::size_t dims = vecs[0].size();
    for (const auto &v : vecs) {
        MGSEC_ASSERT(v.size() == dims,
                     "observed runs disagree on the feature schema");
    }

    std::map<std::string, std::size_t> label_count;
    std::set<std::uint64_t> seeds;
    for (const ObservedRun &r : runs) {
        ++label_count[r.label];
        seeds.insert(r.seed);
    }
    rep.classes = label_count.size();
    std::size_t majority = 0;
    for (const auto &[label, n] : label_count)
        majority = std::max(majority, n);
    rep.chance = static_cast<double>(majority) /
                 static_cast<double>(runs.size());
    if (rep.classes < 2 || dims == 0)
        return rep;

    // Folds: one per seed, or one per run when every run shares a
    // seed (degenerate leave-one-run-out).
    std::vector<std::vector<std::size_t>> folds;
    if (seeds.size() >= 2) {
        for (const std::uint64_t s : seeds) {
            std::vector<std::size_t> fold;
            for (std::size_t i = 0; i < runs.size(); ++i) {
                if (runs[i].seed == s)
                    fold.push_back(i);
            }
            folds.push_back(std::move(fold));
        }
    } else {
        for (std::size_t i = 0; i < runs.size(); ++i)
            folds.push_back({i});
    }

    for (const auto &held_out : folds) {
        // Training statistics from everything not in this fold.
        std::vector<bool> held(runs.size(), false);
        for (const std::size_t i : held_out)
            held[i] = true;

        std::vector<double> mean(dims, 0.0), var(dims, 0.0);
        std::size_t train_n = 0;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (held[i])
                continue;
            ++train_n;
            for (std::size_t d = 0; d < dims; ++d)
                mean[d] += vecs[i][d];
        }
        if (train_n == 0)
            continue;
        for (double &m : mean)
            m /= static_cast<double>(train_n);
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (held[i])
                continue;
            for (std::size_t d = 0; d < dims; ++d) {
                const double dv = vecs[i][d] - mean[d];
                var[d] += dv * dv;
            }
        }
        std::vector<double> inv_sd(dims, 0.0);
        for (std::size_t d = 0; d < dims; ++d) {
            const double sd =
                std::sqrt(var[d] / static_cast<double>(train_n));
            // A feature constant across training runs carries no
            // class signal; zero weight instead of a blow-up.
            inv_sd[d] = sd > 1e-12 ? 1.0 / sd : 0.0;
        }

        // Per-class centroids in normalized space.
        std::map<std::string, std::pair<std::vector<double>,
                                        std::size_t>>
            centroids;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (held[i])
                continue;
            auto &[sum, n] = centroids[runs[i].label];
            if (sum.empty())
                sum.assign(dims, 0.0);
            for (std::size_t d = 0; d < dims; ++d)
                sum[d] += (vecs[i][d] - mean[d]) * inv_sd[d];
            ++n;
        }
        if (centroids.size() < 2)
            continue; // fold lost all but one class; unscorable
        for (auto &[label, cn] : centroids) {
            for (double &v : cn.first)
                v /= static_cast<double>(cn.second);
        }

        for (const std::size_t i : held_out) {
            double best = 0.0;
            const std::string *best_label = nullptr;
            for (const auto &[label, cn] : centroids) {
                double dist = 0.0;
                for (std::size_t d = 0; d < dims; ++d) {
                    const double z =
                        (vecs[i][d] - mean[d]) * inv_sd[d];
                    const double dv = z - cn.first[d];
                    dist += dv * dv;
                }
                // Ties break toward the lexically first label (the
                // map iterates sorted), keeping results stable.
                if (!best_label || dist < best) {
                    best = dist;
                    best_label = &label;
                }
            }
            ++rep.evaluated;
            if (best_label && *best_label == runs[i].label)
                ++rep.correct;
        }
    }

    rep.accuracy = rep.evaluated
                       ? static_cast<double>(rep.correct) /
                             static_cast<double>(rep.evaluated)
                       : 0.0;
    return rep;
}

double
jsdCapacityBits(
    const std::vector<std::vector<std::pair<double, std::uint64_t>>>
        &class_hists)
{
    // Normalize each class histogram over the union bucket set,
    // then JSD = H(mixture) - mean(H(class)) under a uniform prior.
    std::vector<std::map<double, double>> dists;
    for (const auto &h : class_hists) {
        double total = 0.0;
        for (const auto &[lo, n] : h)
            total += static_cast<double>(n);
        if (total <= 0.0)
            continue;
        std::map<double, double> d;
        for (const auto &[lo, n] : h)
            d[lo] += static_cast<double>(n) / total;
        dists.push_back(std::move(d));
    }
    if (dists.size() < 2)
        return 0.0;

    const double prior = 1.0 / static_cast<double>(dists.size());
    std::map<double, double> mix;
    for (const auto &d : dists) {
        for (const auto &[lo, p] : d)
            mix[lo] += prior * p;
    }
    const auto entropy = [](const std::map<double, double> &d) {
        double h = 0.0;
        for (const auto &[lo, p] : d) {
            if (p > 0.0)
                h -= p * std::log2(p);
        }
        return h;
    };
    double mean_h = 0.0;
    for (const auto &d : dists)
        mean_h += prior * entropy(d);
    const double jsd = entropy(mix) - mean_h;
    return jsd > 0.0 ? jsd : 0.0;
}

} // namespace mgsec::verify
