/**
 * @file
 * SecurityOracle — an independent, deliberately simple shadow
 * implementation of the secure channel's AES-GCM semantics.
 *
 * The oracle watches two points on the interconnect:
 *
 *   onSent       every genuine packet before it touches the wire
 *                (pre-wire, untampered) — here it checks counter
 *                evolution per scheme and recomputes the pad,
 *                ciphertext and MsgMAC from scratch, diffing them
 *                against what the optimized src/secure + src/crypto
 *                path produced;
 *   onDelivered  every packet that actually arrives (post-wire,
 *                after the adversary) — here it replays the
 *                receiving channel's decision procedure (replay
 *                suspicion, MAC verification, batched-MAC coverage,
 *                MsgMacStorage completion, cumulative ACKs) with its
 *                own crypto and predicts every counter the real
 *                channel will report.
 *
 * Independence: GHASH is evaluated with the bit-serial gfmul()
 * reference rather than the table-driven Ghash class, pads come from
 * the vector-form AesGcm::keystream() rather than PadFactory, and
 * the IV/header layouts and the deterministic plaintext formula are
 * re-stated here. Only the AES core is shared — per the paper both
 * endpoints share that engine by construction.
 *
 * finalize() diffs predictions against the real channels and reports
 * every discrepancy, every genuine batch that lost verification,
 * and every attack that produced no detection signal.
 */

#ifndef MGSEC_VERIFY_ORACLE_HH
#define MGSEC_VERIFY_ORACLE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "crypto/gcm.hh"
#include "crypto/otp.hh"
#include "net/packet.hh"
#include "secure/security_config.hh"
#include "verify/verify_types.hh"

namespace mgsec
{
class SecureChannel;
}

namespace mgsec::verify
{

class SecurityOracle
{
  public:
    SecurityOracle(std::uint32_t num_nodes, const SecurityConfig &cfg);

    /** @name Wire observation hooks (mounted by the Testbed) */
    /// @{
    /** A genuine channel send, observed pre-wire (untampered). */
    void onSent(const Packet &p);
    /** An attacker-injected packet entering the wire. */
    void onInjected(const Packet &p);
    /** A packet the wire will deliver (post-adversary content). */
    void onDelivered(const Packet &p);
    /** A packet the adversary dropped in flight. */
    void onDropped(const Packet &p);
    /// @}

    /**
     * The adversary mutated packet (src, id) in class @p cls; the
     * oracle must see a detection signal attributable to it or
     * report an UndetectedAttack at finalize().
     */
    void noteTampered(NodeId src, std::uint64_t id, AttackClass cls);

    /**
     * Record an attack the protocol neutralizes by construction
     * (duplicated or delayed cumulative ACKs are idempotent); the
     * differential window checks in finalize() still prove it.
     */
    void noteNeutralized(std::string what)
    {
        auto l = lockIfConcurrent();
        neutralized_.push_back(std::move(what));
    }

    /**
     * Guard the observation hooks with a mutex for the sharded
     * testbed, where deliveries land on concurrent domain threads.
     * Each hook's model updates are keyed by flow or receiver, so
     * the interleaving across domains cannot change any individual
     * verdict — only the append order of the findings/neutralized
     * vectors, never their contents or pass()/finalize() results.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

    /**
     * Diff every prediction against the real channels (indexed by
     * node id) and collect the verdicts accumulated during the run.
     */
    std::vector<Finding> finalize(
        const std::vector<SecureChannel *> &channels);

    /** @name Introspection for tests and fuzz reporting */
    /// @{
    /** Genuine batches whose MAC verification never completed. */
    std::uint64_t strandedGenuineBatches() const
    {
        return stranded_batches_;
    }
    /** Attacks resolved as neutralized by protocol dynamics. */
    const std::vector<std::string> &neutralizedNotes() const
    {
        return neutralized_;
    }
    std::uint64_t packetsObserved() const { return observed_; }
    /// @}

  private:
    /** Directed pair key. */
    using PairKey = std::uint64_t;
    PairKey
    pairKey(NodeId src, NodeId dst) const
    {
        return static_cast<PairKey>(src) * num_nodes_ + dst;
    }
    /** Per-sender packet-id key (ids are unique per sender). */
    using PktKey = std::uint64_t;
    PktKey
    pktKey(NodeId src, std::uint64_t id) const
    {
        return (static_cast<PktKey>(src) << 48) | id;
    }

    /** @name Shadow crypto (reference-path GHASH, vector keystream) */
    /// @{
    crypto::Iv96 shadowIv(NodeId sender, NodeId receiver,
                          std::uint64_t ctr, std::uint8_t domain) const;
    void shadowPad(NodeId sender, NodeId receiver, std::uint64_t ctr,
                   std::uint8_t *enc64, std::uint8_t *auth16) const;
    crypto::MsgMac shadowMsgMac(const crypto::BlockPayload &cipher,
                                NodeId sender, NodeId receiver,
                                std::uint64_t ctr,
                                const std::uint8_t *auth16) const;
    crypto::MsgMac shadowBatchMac(
        const std::vector<crypto::MsgMac> &macs, NodeId sender,
        NodeId receiver, std::uint64_t batch_id) const;
    static crypto::BlockPayload shadowPlaintext(NodeId src, NodeId dst,
                                                std::uint64_t ctr);
    /// @}

    void addFinding(FindingKind k, std::string detail);
    void creditKey(PktKey key);
    /**
     * Check a (possibly deferred) flush trailer against the member
     * MACs accumulated for its batch and consume the batch entry.
     */
    void validateTrailer(PairKey pair, NodeId src, NodeId dst,
                         std::uint64_t batch_id, std::uint8_t expect,
                         const crypto::MsgMac &mac);
    void completeBatch(NodeId receiver, NodeId src,
                       std::uint64_t batch_id);
    void processDeliveredData(const Packet &p, bool injected);
    /**
     * Consume the genuine copy of @p p from its pair's sent stream,
     * resolving any ids skipped ahead of it as in-flight losses.
     * Returns true when the stream does not hold @p p — i.e. this
     * delivery is an injected clone.
     */
    bool sentStreamFrontIsNot(const Packet &p);
    /**
     * A genuine message vanished from its pair's FIFO stream.
     * @param gap_seen a later delivery on the pair exposed the hole
     *        (so per-pair-counter schemes saw it as a ctrGap too).
     */
    void resolveLost(NodeId src, NodeId dst, std::uint64_t id,
                     bool gap_seen);

    std::unique_lock<std::mutex>
    lockIfConcurrent()
    {
        return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                           : std::unique_lock<std::mutex>();
    }

    std::uint32_t num_nodes_;
    SecurityConfig cfg_;
    bool concurrent_ = false;
    std::mutex mu_;
    crypto::AesGcm gcm_; ///< shared AES core; GHASH goes via gfmul
    crypto::U128 hash_key_;

    /** @name Send-side models */
    /// @{
    /** Next expected counter per (src,dst) pair (per-pair schemes). */
    std::map<PairKey, std::uint64_t> next_pair_ctr_;
    /**
     * Shared-scheme model. One global stream per sender, drawn per
     * message but not necessarily serialized onto the wire in draw
     * order (pad pipeline and cache timing reorder across
     * destinations): the sound invariants are per-sender uniqueness,
     * per-pair monotonicity, and a hole-free stream at finalize.
     */
    std::vector<std::set<std::uint64_t>> shared_used_;
    std::vector<std::uint64_t> shared_max_;
    /** Last Shared counter seen per (src,dst) pair. */
    std::map<PairKey, std::uint64_t> shared_pair_last_;
    /** Un-ACKed counters per (owner,peer): the replay window model. */
    std::map<PairKey, std::deque<std::uint64_t>> outstanding_;
    /**
     * Every counter ever tracked per (owner,peer), in push order.
     * A cumulative ACK's coverage beyond the highest tracked
     * counter is vacuous — the receiver's verified watermark may
     * ride ahead on request counters no replay window holds — so
     * dropped-ACK resolution clamps against this history.
     */
    std::map<PairKey, std::vector<std::uint64_t>> tracked_ctrs_;
    /** Genuinely sent counters per pair, FIFO (loss detection). */
    std::map<PairKey, std::deque<std::uint64_t>> sent_stream_;
    /** Shadow member MACs of open send-side batches. */
    std::map<PairKey, std::map<std::uint64_t,
                               std::vector<crypto::MsgMac>>>
        send_batches_;
    /**
     * Flush trailers seen on the wire before all the members they
     * cover: a trailer departs immediately while member sends may
     * still be waiting on their pads, so it can legitimately
     * overtake them. Validation defers until the declared count of
     * members has been observed.
     */
    struct PendingTrailer
    {
        std::uint8_t expect = 0;
        crypto::MsgMac mac{};
    };
    std::map<std::pair<PairKey, std::uint64_t>, PendingTrailer>
        pending_trailers_;
    /** Every genuine batch opened: key -> verified yet? */
    std::map<PairKey, std::map<std::uint64_t, bool>> genuine_batches_;
    /// @}

    /** @name Receive-side models (mirror of the channel algorithm) */
    /// @{
    struct RecvPeer
    {
        std::uint64_t lastCtr = 0;
        bool has = false;
    };
    /** Indexed [receiver][src]. */
    std::vector<std::vector<RecvPeer>> recv_peer_;

    struct ShadowRecvBatch
    {
        std::vector<crypto::MsgMac> macs;
        crypto::MsgMac trailer{};
        bool haveTrailer = false;
        std::vector<PktKey> taints; ///< tampered members
        bool phantom = false;       ///< created by injected traffic
    };
    /** Key: (pairKey(src, receiver), batchId). */
    std::map<std::pair<PairKey, std::uint64_t>, ShadowRecvBatch>
        recv_batches_;

    struct ShadowPending
    {
        std::uint32_t received = 0;
        std::uint8_t declared = 0;
        std::uint8_t expected = 0;
        bool trailer = false;
        std::vector<PktKey> taints;
        bool phantom = false;
    };
    /** Mirror of MsgMacStorage, key (pairKey(src,receiver), batch). */
    std::map<std::pair<PairKey, std::uint64_t>, ShadowPending>
        storage_;

    /** Predicted per-node channel counters. */
    struct Predicted
    {
        std::uint64_t macsVerified = 0;
        std::uint64_t macsFailed = 0;
        std::uint64_t decryptsOk = 0;
        std::uint64_t decryptsBad = 0;
        std::uint64_t replaySuspects = 0;
        std::uint64_t ctrGaps = 0;
    };
    std::vector<Predicted> predicted_;
    /// @}

    /** @name Attack bookkeeping */
    /// @{
    struct TamperRec
    {
        AttackClass cls;
        bool credited = false;
    };
    std::map<PktKey, TamperRec> tampered_;
    /** Injected (replayed) packet keys awaiting a replay suspect. */
    std::map<PktKey, bool> injected_;

    struct DroppedAck
    {
        NodeId owner; ///< node whose replay window loses the ACK
        NodeId peer;
        std::uint64_t upTo;
        bool credited = false;
    };
    std::vector<DroppedAck> dropped_acks_;

    struct DroppedData
    {
        NodeId src;
        NodeId dst;
        std::uint64_t id;
        std::uint64_t ctr;
        std::uint64_t batchId;
        bool inWindow;        ///< tracked by the sender's window
        bool attributed = false; ///< loss explained (no LostMessage)
        bool detected = false;   ///< the channel saw a signal for it
    };
    std::vector<DroppedData> dropped_data_;
    /** Highest delivered cumulative ACK per (owner,peer). */
    std::map<PairKey, std::uint64_t> max_acked_;
    /// @}

    std::vector<Finding> findings_;
    std::vector<std::string> neutralized_;
    std::uint64_t stranded_batches_ = 0;
    std::uint64_t observed_ = 0;
};

} // namespace mgsec::verify

#endif // MGSEC_VERIFY_ORACLE_HH
