#include "verify/testbed.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/parallel_kernel.hh"

namespace mgsec::verify
{

namespace
{

/** Quiet period after the last scheduled event of interest. */
constexpr Cycles kSettle = 30000;

/** The deterministic plaintext both endpoints synthesize. */
crypto::BlockPayload
synthesize(NodeId src, NodeId dst, std::uint64_t ctr)
{
    crypto::BlockPayload p;
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = static_cast<std::uint8_t>(
            (ctr >> ((i % 8) * 8)) ^ (src * 131) ^ (dst * 193) ^
            (i * 7));
    }
    return p;
}

} // anonymous namespace

VerifyTestbed::VerifyTestbed(const TestbedConfig &cfg) : cfg_(cfg)
{
    MGSEC_ASSERT(cfg_.numNodes >= 2, "testbed needs >= 2 nodes");
    MGSEC_ASSERT(cfg_.scheme != OtpScheme::Unsecure,
                 "nothing to verify on an unsecured channel");

    sec_.scheme = cfg_.scheme;
    sec_.batching = cfg_.batching;
    sec_.batchSize = cfg_.batchSize;
    sec_.functionalCrypto = true;

    sim_threads_ = std::min(std::max(cfg_.simThreads, 1u),
                            cfg_.numNodes);
    if (sharded()) {
        domains_.push_back(std::make_unique<Domain>(0, eq_));
        for (NodeId n = 1; n < cfg_.numNodes; ++n)
            domains_.push_back(std::make_unique<Domain>(n));
    }

    net_ = std::make_unique<Network>("net", eq_, cfg_.numNodes,
                                     LinkParams{16.0, 50},
                                     LinkParams{25.0, 10},
                                     cfg_.topology);
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        channels_.push_back(std::make_unique<SecureChannel>(
            strformat("ch%u", n), queueOf(n), *net_, n, sec_));
        channels_.back()->setDeliver(
            [this](PacketPtr) { ++delivered_; });
    }
    oracle_ = std::make_unique<SecurityOracle>(cfg_.numNodes, sec_);
    adversary_ =
        std::make_unique<AdversaryModel>(eq_, *net_, oracle_.get());
    adversary_->setScript(cfg_.script);
    factory_ = std::make_unique<crypto::PadFactory>(sec_.sessionKey);
    if (sharded()) {
        net_->setParallelCapture(true);
        oracle_->setConcurrent(true);
    }
    mountHooks();
}

EventQueue &
VerifyTestbed::queueOf(NodeId n)
{
    return sharded() ? domains_[n]->eq() : eq_;
}

void
VerifyTestbed::mountHooks()
{
    // Pre-wire: the genuine stream, before accounting and before the
    // adversary — where a buggy channel (seeded or real) shows.
    net_->setTamper(
        Network::TamperPoint::PreWire, [this](Packet &p) {
            // The id record, not the transient injecting() flag:
            // under capture mode this hook runs at barrier replay,
            // after the flag has reset (peek only — the adversary's
            // own PostWire hook consumes the record).
            if (adversary_->injecting() ||
                adversary_->wasInjected(p, /*consume=*/false))
                return Network::TamperVerdict::Forward;
            if (cfg_.bug != SeededBug::None)
                maybeSeedBug(p);
            oracle_->onSent(p);
            return Network::TamperVerdict::Forward;
        });
    // Post-wire: the physical attacker.
    adversary_->install();
    // Delivery: the oracle sees what actually arrives, then the
    // channel runs its own checks on the same bytes.
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        net_->setHandler(n, [this, n](PacketPtr pkt) {
            oracle_->onDelivered(*pkt);
            channels_[n]->handleArrival(std::move(pkt));
        });
    }
}

void
VerifyTestbed::scheduleTraffic()
{
    Rng rng(cfg_.seed);
    Tick t = 10;
    for (std::uint32_t i = 0; i < cfg_.messages; ++i) {
        const NodeId src = rng.below(cfg_.numNodes);
        NodeId dst = rng.below(cfg_.numNodes - 1);
        if (dst >= src)
            ++dst;
        const bool req = rng.below(100) < cfg_.requestPercent;
        const std::uint64_t addr = rng.next() & 0xffffffc0ULL;
        // On the sender's own queue, so a sharded run executes the
        // send inside src's domain window with src's local clock.
        queueOf(src).schedule(t, [this, src, dst, req, addr]() {
            auto p = makePacket();
            p->src = src;
            p->dst = dst;
            if (req) {
                p->type = PacketType::ReadReq;
                p->addr = addr;
            } else {
                p->type = PacketType::ReadResp;
                p->payloadBytes = kBlockBytes;
            }
            channels_[src]->send(std::move(p));
        });
        last_send_ = t;
        t += 1 + rng.below(static_cast<std::uint32_t>(2 * cfg_.gap));
    }
}

void
VerifyTestbed::refreshCrypto(Packet &p) const
{
    if (p.func == nullptr)
        return;
    const crypto::MessagePad pad =
        factory_->derive(p.src, p.dst, p.msgCtr);
    if (p.func->hasCipher) {
        p.func->cipher = crypto::PadFactory::crypt(
            synthesize(p.src, p.dst, p.msgCtr), pad);
    }
    if (p.func->hasMac && p.batchId == 0) {
        crypto::BlockPayload cipher{};
        if (p.func->hasCipher)
            cipher = p.func->cipher;
        p.func->mac =
            factory_->mac(cipher, p.src, p.dst, p.msgCtr, pad);
    }
}

void
VerifyTestbed::maybeSeedBug(Packet &p)
{
    if (!p.secured || p.type == PacketType::SecAck ||
        p.type == PacketType::BatchMac)
        return;

    switch (cfg_.bug) {
      case SeededBug::None:
        return;
      case SeededBug::CounterSkip:
        // From the trigger on, the triggering sender's counters run
        // one ahead, crypto recomputed consistently: a self-
        // consistent but wrong stream.
        if (!bug_armed_ && bug_seen_ == cfg_.bugTrigger) {
            bug_armed_ = true;
            bug_src_ = p.src;
        }
        ++bug_seen_;
        if (bug_armed_ && p.src == bug_src_) {
            ++p.msgCtr;
            refreshCrypto(p);
        }
        return;
      case SeededBug::StaleCipher: {
        if (p.func == nullptr || !p.func->hasCipher || p.msgCtr == 0)
            return;
        if (!bug_fired_ && bug_seen_ == cfg_.bugTrigger) {
            bug_fired_ = true;
            // Encrypt with the previous counter's pad (pad reuse),
            // then recompute the MAC over that ciphertext with the
            // right pad so MAC verification still passes.
            const crypto::MessagePad stale =
                factory_->derive(p.src, p.dst, p.msgCtr - 1);
            p.func->cipher = crypto::PadFactory::crypt(
                synthesize(p.src, p.dst, p.msgCtr), stale);
            if (p.func->hasMac && p.batchId == 0) {
                const crypto::MessagePad pad =
                    factory_->derive(p.src, p.dst, p.msgCtr);
                p.func->mac = factory_->mac(p.func->cipher, p.src,
                                            p.dst, p.msgCtr, pad);
            }
        }
        ++bug_seen_;
        return;
      }
    }
}

void
VerifyTestbed::runUntil(Tick until)
{
    // run() stops once the queue drains or time passes `until`; the
    // bound matters because the Dynamic scheme's adjustment timer
    // re-arms forever.
    if (!sharded()) {
        eq_.run(until);
        return;
    }
    // One kernel per leg, resuming at the window the previous leg
    // stopped before. Lookahead = the minimum cross-domain link
    // latency, exactly as in the system proper.
    ParallelKernelConfig k;
    for (auto &d : domains_)
        k.domains.push_back(d.get());
    k.threads = sim_threads_;
    k.lookahead = net_->topology().minLatency();
    k.maxCycles = until;
    k.exchange = [this]() {
        return net_->replayCaptured([this](NodeId n) -> EventQueue & {
            return domains_[n]->eq();
        });
    };
    ParallelKernel kernel(std::move(k));
    pdes_next_ = kernel.run(pdes_next_);
}

TestbedResult
VerifyTestbed::run()
{
    scheduleTraffic();
    runUntil(last_send_ + kSettle);
    if (sharded()) {
        // Drain each channel inside its own domain (a drain sends
        // packets, which must be captured on the sender's lane with
        // the sender's clock), then settle.
        for (NodeId n = 0; n < cfg_.numNodes; ++n) {
            EventQueue &q = queueOf(n);
            q.schedule(std::max(pdes_next_, q.now()),
                       [this, n]() { channels_[n]->drainBatches(); });
        }
        runUntil(pdes_next_ + kSettle);
    } else {
        for (auto &ch : channels_)
            ch->drainBatches();
        runUntil(eq_.now() + kSettle);
    }

    TestbedResult r;
    std::vector<SecureChannel *> chans;
    for (auto &ch : channels_)
        chans.push_back(ch.get());
    r.findings = oracle_->finalize(chans);

    for (auto &ch : channels_) {
        r.macsVerified += ch->macsVerified();
        r.macsFailed += ch->macsFailed();
        r.decryptsOk += ch->decryptsOk();
        r.decryptsBad += ch->decryptsBad();
        r.replaySuspects += ch->replaySuspects();
        r.ctrGaps += ch->ctrGaps();
        r.outstandingTotal += ch->replayWindow().outstandingTotal();
    }
    r.delivered = delivered_;
    r.droppedPackets = net_->droppedPackets();
    r.strandedBatches = oracle_->strandedGenuineBatches();
    r.attacksMounted = adversary_->attacksMounted();
    r.stepsFired = adversary_->stepsFired();
    r.neutralized = oracle_->neutralizedNotes();
    r.attackLog = adversary_->attackLog();
    return r;
}

} // namespace mgsec::verify
