/**
 * @file
 * mgsec_fuzz core — randomized adversarial campaigns over the
 * VerifyTestbed with deterministic generation, coverage tracking and
 * automatic shrinking of failures to a minimal printable repro.
 *
 * A campaign draws (workload x scheme x adversary-script x config)
 * cases from one seed, runs each under the SecurityOracle, and stops
 * at a wall-clock budget or a run cap. Any case with findings is
 * shrunk greedily (drop script steps, halve traffic, shrink the
 * topology) to the smallest configuration that still fails, and that
 * configuration is printed as a one-line repro string accepted by
 * decodeRepro() / `mgsec_fuzz --repro`.
 *
 * Coverage is tracked as (scheme, batching, attack class, signal
 * set) tuples; cases that light up new tuples seed the mutation
 * corpus, biasing later cases toward unexplored behavior.
 */

#ifndef MGSEC_VERIFY_FUZZ_HH
#define MGSEC_VERIFY_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verify/testbed.hh"
#include "verify/verify_types.hh"

namespace mgsec::verify
{

/** Render @p cfg as a one-line printable repro string. */
std::string encodeRepro(const TestbedConfig &cfg);

/** Parse a repro string; returns false (and leaves @p out partially
 *  updated) on malformed input. */
bool decodeRepro(const std::string &text, TestbedConfig &out);

struct CaseOutcome
{
    TestbedResult result;
    /** The oracle reported at least one finding. */
    bool failed = false;
};

/** Run one configuration to completion. */
CaseOutcome runCase(const TestbedConfig &cfg);

/**
 * Greedily shrink a failing configuration: repeatedly try removing
 * script steps, halving the message count, shrinking the topology
 * and zeroing the request mix, keeping every mutation that still
 * fails. Returns the smallest failing configuration found.
 */
TestbedConfig shrinkCase(const TestbedConfig &failing,
                         std::uint32_t *runs_used = nullptr);

/** Draw the next case from the campaign generator (exposed so tests
 *  can pin down generator determinism). */
TestbedConfig generateCase(Rng &rng, SeededBug inject);

struct CampaignConfig
{
    std::uint64_t seed = 1;
    /** Wall-clock budget in seconds; 0 disables the clock. */
    double budgetSeconds = 60.0;
    /** Hard cap on generated cases; 0 means budget-only. */
    std::uint32_t maxRuns = 0;
    /** Seed this bug into every case (oracle mutation check). */
    SeededBug injectBug = SeededBug::None;
    /** Print a line per case to stdout. */
    bool verbose = false;
    /**
     * Event-kernel threads for every case (TestbedConfig::simThreads,
     * clamped per case to its node count). Repro strings deliberately
     * omit it: verdicts are thread-count invariant, so a repro always
     * replays serially.
     */
    std::uint32_t simThreads = 1;
    /**
     * Fabric for every case (knobs keep their defaults; only the
     * kind varies). Unlike simThreads this IS part of the repro —
     * switch contention changes arrival order, so a failure on
     * nvswitch/hier may not reproduce on p2p. shrinkCase() tries to
     * downgrade it (hier -> nvswitch -> p2p) like any other
     * dimension.
     */
    TopologyConfig topology{};
    /** Node-count override for every case; 0 = generator's choice. */
    std::uint32_t numNodes = 0;
};

struct CampaignResult
{
    std::uint64_t runs = 0;
    std::uint64_t attacksMounted = 0;
    /** Distinct (scheme, batching, class, signals) tuples seen. */
    std::size_t coverage = 0;
    bool failed = false;
    /** Shrunk repro of the first failing case (when failed). */
    std::string repro;
    /** Findings of the shrunk failing case (when failed). */
    std::vector<Finding> findings;
};

/** Run a campaign; stops at the first failure (after shrinking). */
CampaignResult runCampaign(const CampaignConfig &cc);

} // namespace mgsec::verify

#endif // MGSEC_VERIFY_FUZZ_HH
