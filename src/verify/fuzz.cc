#include "verify/fuzz.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "sim/logging.hh"

namespace mgsec::verify
{

namespace
{

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text.find('-') != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseSchemeName(const std::string &text, OtpScheme &out)
{
    static constexpr OtpScheme kSchemes[] = {
        OtpScheme::Unsecure, OtpScheme::Private, OtpScheme::Shared,
        OtpScheme::Cached, OtpScheme::Dynamic};
    const std::string t = lowered(text);
    for (OtpScheme s : kSchemes) {
        if (t == lowered(otpSchemeName(s))) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
parseBugName(const std::string &text, SeededBug &out)
{
    static constexpr SeededBug kBugs[] = {
        SeededBug::None, SeededBug::CounterSkip, SeededBug::StaleCipher};
    const std::string t = lowered(text);
    for (SeededBug b : kBugs) {
        if (t == lowered(seededBugName(b))) {
            out = b;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
parseScript(const std::string &text, std::vector<AttackStep> &out)
{
    out.clear();
    if (text.empty())
        return true;
    for (const std::string &tok : split(text, ',')) {
        const std::size_t at = tok.find('@');
        if (at == std::string::npos)
            return false;
        AttackStep step;
        if (!parseAttackClass(tok.substr(0, at), step.cls))
            return false;
        std::string rest = tok.substr(at + 1);
        const std::size_t slash = rest.find('/');
        std::uint64_t nth = 0;
        if (slash == std::string::npos) {
            if (!parseU64(rest, nth))
                return false;
        } else {
            if (!parseU64(rest.substr(0, slash), nth) ||
                !parseU64(rest.substr(slash + 1), step.param))
                return false;
        }
        step.nth = static_cast<std::uint32_t>(nth);
        out.push_back(step);
    }
    return true;
}

/** Index of a secured scheme in the coverage space. */
std::size_t
schemeIndex(OtpScheme s)
{
    switch (s) {
      case OtpScheme::Private:
        return 0;
      case OtpScheme::Shared:
        return 1;
      case OtpScheme::Cached:
        return 2;
      case OtpScheme::Dynamic:
        return 3;
      case OtpScheme::Unsecure:
        break;
    }
    return 0;
}

/** Signal set a run produced, as a bitmask. */
std::uint64_t
signalMask(const TestbedResult &r)
{
    std::uint64_t m = 0;
    m |= (r.macsFailed != 0) << 0;
    m |= (r.decryptsBad != 0) << 1;
    m |= (r.replaySuspects != 0) << 2;
    m |= (r.ctrGaps != 0) << 3;
    m |= (r.outstandingTotal != 0) << 4;
    m |= (r.strandedBatches != 0) << 5;
    m |= (!r.neutralized.empty()) << 6;
    return m;
}

/**
 * Coverage tuples of one run: (scheme, batching, fired attack class,
 * signal set), plus one tuple for the case as a whole (class slot
 * kNumAttackClasses).
 */
void
coverageKeys(const TestbedConfig &cfg, const TestbedResult &r,
             std::vector<std::uint64_t> &out)
{
    const std::uint64_t base =
        (schemeIndex(cfg.scheme) * 2 + (cfg.batching ? 1 : 0)) *
        (kNumAttackClasses + 1);
    const std::uint64_t mask = signalMask(r);
    out.push_back((base + kNumAttackClasses) * 128 + mask);
    for (const std::string &line : r.attackLog) {
        const std::size_t sp = line.find(' ');
        AttackClass cls;
        if (sp != std::string::npos &&
            parseAttackClass(line.substr(0, sp), cls)) {
            out.push_back(
                (base + static_cast<std::uint64_t>(cls)) * 128 + mask);
        }
    }
}

/** Attack classes the generator scripts for @p cfg. DataDrop is
 *  excluded for the Shared scheme (one global per-sender counter
 *  stream makes mid-stream drops genuinely invisible — a documented
 *  blind spot exercised by a dedicated regression test instead). */
std::vector<AttackClass>
scriptableClasses(const TestbedConfig &cfg)
{
    std::vector<AttackClass> out = {
        AttackClass::Replay,  AttackClass::PayloadFlip,
        AttackClass::MacFlip, AttackClass::HeaderFlip,
        AttackClass::AckDrop, AttackClass::AckDup,
        AttackClass::AckReorder, AttackClass::Splice};
    if (cfg.batching) {
        out.push_back(AttackClass::TrailerCorrupt);
        out.push_back(AttackClass::LengthCorrupt);
    }
    if (cfg.scheme != OtpScheme::Shared)
        out.push_back(AttackClass::DataDrop);
    return out;
}

AttackStep
drawStep(Rng &rng, const std::vector<AttackClass> &classes)
{
    AttackStep s;
    s.cls = classes[rng.below(static_cast<std::uint32_t>(
        classes.size()))];
    s.nth = rng.below(8);
    switch (s.cls) {
      case AttackClass::PayloadFlip:
        s.param = rng.below(512);
        break;
      case AttackClass::MacFlip:
      case AttackClass::TrailerCorrupt:
        s.param = rng.below(64);
        break;
      case AttackClass::HeaderFlip:
        s.param = rng.below(6);
        break;
      default:
        s.param = 0;
        break;
    }
    return s;
}

void
finishScript(Rng &rng, TestbedConfig &cfg)
{
    const std::vector<AttackClass> classes = scriptableClasses(cfg);
    const std::uint32_t n = rng.below(4);
    for (std::uint32_t i = 0; i < n; ++i) {
        const AttackStep s = drawStep(rng, classes);
        // HeaderFlip rewrites the counter stream a DataDrop-exposed
        // gap would be attributed through; never combine them.
        const bool has = [&](AttackClass c) {
            for (const AttackStep &e : cfg.script)
                if (e.cls == c)
                    return true;
            return false;
        }(s.cls == AttackClass::DataDrop ? AttackClass::HeaderFlip
                                         : AttackClass::DataDrop);
        if ((s.cls == AttackClass::DataDrop ||
             s.cls == AttackClass::HeaderFlip) &&
            has) {
            continue;
        }
        if (s.cls == AttackClass::DataDrop)
            cfg.requestPercent = 0;
        cfg.script.push_back(s);
    }
}

TestbedConfig
mutateCase(Rng &rng, const TestbedConfig &base)
{
    TestbedConfig cfg = base;
    cfg.seed = rng.next();
    switch (rng.below(4)) {
      case 0:
        cfg.messages = 24 + rng.below(41);
        break;
      case 1:
        cfg.gap = 5 + rng.below(40);
        break;
      case 2:
        if (!cfg.script.empty()) {
            cfg.script[rng.below(static_cast<std::uint32_t>(
                           cfg.script.size()))]
                .nth = rng.below(8);
            break;
        }
        [[fallthrough]];
      default:
        cfg.script.clear();
        finishScript(rng, cfg);
        break;
    }
    return cfg;
}

} // anonymous namespace

std::string
encodeRepro(const TestbedConfig &cfg)
{
    std::string script;
    for (const AttackStep &s : cfg.script) {
        if (!script.empty())
            script += ',';
        script += strformat("%s@%u/%llu", attackClassName(s.cls),
                            s.nth,
                            static_cast<unsigned long long>(s.param));
    }
    // topo= appears only off the default so historical repro strings
    // stay stable (and old repros keep decoding).
    std::string topo;
    if (cfg.topology.kind != TopologyKind::P2p)
        topo = strformat(";topo=%s",
                         topologyKindName(cfg.topology.kind));
    return strformat(
        "v1;seed=%llu;nodes=%u;scheme=%s;batch=%u;bsz=%u;msgs=%u;"
        "req=%u;gap=%llu;bug=%s;trigger=%u%s;script=%s",
        static_cast<unsigned long long>(cfg.seed), cfg.numNodes,
        otpSchemeName(cfg.scheme), cfg.batching ? 1 : 0,
        cfg.batchSize, cfg.messages, cfg.requestPercent,
        static_cast<unsigned long long>(cfg.gap),
        seededBugName(cfg.bug), cfg.bugTrigger, topo.c_str(),
        script.c_str());
}

bool
decodeRepro(const std::string &text, TestbedConfig &out)
{
    const std::vector<std::string> parts = split(text, ';');
    if (parts.empty() || parts[0] != "v1")
        return false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = parts[i].substr(0, eq);
        const std::string val = parts[i].substr(eq + 1);
        std::uint64_t v = 0;
        if (key == "seed") {
            if (!parseU64(val, v))
                return false;
            out.seed = v;
        } else if (key == "nodes") {
            if (!parseU64(val, v) || v < 2)
                return false;
            out.numNodes = static_cast<std::uint32_t>(v);
        } else if (key == "scheme") {
            if (!parseSchemeName(val, out.scheme))
                return false;
        } else if (key == "batch") {
            if (!parseU64(val, v) || v > 1)
                return false;
            out.batching = v != 0;
        } else if (key == "bsz") {
            if (!parseU64(val, v) || v < 2)
                return false;
            out.batchSize = static_cast<std::uint32_t>(v);
        } else if (key == "msgs") {
            if (!parseU64(val, v) || v == 0)
                return false;
            out.messages = static_cast<std::uint32_t>(v);
        } else if (key == "req") {
            if (!parseU64(val, v) || v > 100)
                return false;
            out.requestPercent = static_cast<std::uint32_t>(v);
        } else if (key == "gap") {
            if (!parseU64(val, v) || v == 0)
                return false;
            out.gap = static_cast<Cycles>(v);
        } else if (key == "bug") {
            if (!parseBugName(val, out.bug))
                return false;
        } else if (key == "trigger") {
            if (!parseU64(val, v))
                return false;
            out.bugTrigger = static_cast<std::uint32_t>(v);
        } else if (key == "topo") {
            if (!parseTopologyKind(val, out.topology.kind))
                return false;
        } else if (key == "script") {
            if (!parseScript(val, out.script))
                return false;
        } else {
            return false;
        }
    }
    return true;
}

CaseOutcome
runCase(const TestbedConfig &cfg)
{
    VerifyTestbed tb(cfg);
    CaseOutcome out;
    out.result = tb.run();
    out.failed = !out.result.pass();
    return out;
}

TestbedConfig
generateCase(Rng &rng, SeededBug inject)
{
    TestbedConfig cfg;
    static constexpr OtpScheme kSecured[] = {
        OtpScheme::Private, OtpScheme::Shared, OtpScheme::Cached,
        OtpScheme::Dynamic};
    cfg.scheme = kSecured[rng.below(4)];
    cfg.batching = rng.below(2) != 0;
    cfg.batchSize = 2 + rng.below(5);
    cfg.numNodes = 2 + rng.below(3);
    cfg.messages = 24 + rng.below(41);
    cfg.requestPercent = rng.below(2) != 0 ? 0 : rng.below(40);
    cfg.gap = 5 + rng.below(40);
    cfg.seed = rng.next();
    cfg.bug = inject;
    cfg.bugTrigger = 2 + rng.below(6);
    finishScript(rng, cfg);
    return cfg;
}

TestbedConfig
shrinkCase(const TestbedConfig &failing, std::uint32_t *runs_used)
{
    constexpr std::uint32_t kShrinkBudget = 200;
    TestbedConfig best = failing;
    std::uint32_t used = 0;
    const auto fails = [&used](const TestbedConfig &c) {
        ++used;
        return runCase(c).failed;
    };

    bool progress = true;
    while (progress && used < kShrinkBudget) {
        progress = false;
        for (std::size_t i = 0; i < best.script.size(); ++i) {
            TestbedConfig c = best;
            c.script.erase(c.script.begin() +
                           static_cast<std::ptrdiff_t>(i));
            if (fails(c)) {
                best = c;
                progress = true;
                break;
            }
        }
        if (progress)
            continue;
        if (best.messages > 4) {
            TestbedConfig c = best;
            c.messages = std::max<std::uint32_t>(4, best.messages / 2);
            if (fails(c)) {
                best = c;
                continue;
            }
        }
        if (best.topology.kind != TopologyKind::P2p) {
            // Downgrade one rung at a time: a hier failure may need
            // switch contention but not the inter-node trunk.
            TestbedConfig c = best;
            c.topology.kind = best.topology.kind == TopologyKind::Hier
                                  ? TopologyKind::NvSwitch
                                  : TopologyKind::P2p;
            if (fails(c)) {
                best = c;
                continue;
            }
        }
        if (best.numNodes > 4) {
            TestbedConfig c = best;
            c.numNodes = std::max<std::uint32_t>(2, best.numNodes / 2);
            if (fails(c)) {
                best = c;
                continue;
            }
        }
        if (best.numNodes > 2) {
            TestbedConfig c = best;
            c.numNodes = 2;
            if (fails(c)) {
                best = c;
                continue;
            }
        }
        if (best.requestPercent != 0) {
            TestbedConfig c = best;
            c.requestPercent = 0;
            if (fails(c)) {
                best = c;
                continue;
            }
        }
        if (best.batching) {
            TestbedConfig c = best;
            c.batching = false;
            if (fails(c)) {
                best = c;
                continue;
            }
        }
    }
    if (runs_used != nullptr)
        *runs_used = used;
    return best;
}

CampaignResult
runCampaign(const CampaignConfig &cc)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    const auto expired = [&] {
        if (cc.budgetSeconds <= 0)
            return false;
        const std::chrono::duration<double> dt = Clock::now() - start;
        return dt.count() >= cc.budgetSeconds;
    };
    // A campaign with neither bound would spin forever.
    const std::uint32_t max_runs =
        (cc.maxRuns == 0 && cc.budgetSeconds <= 0) ? 1 : cc.maxRuns;

    Rng rng(cc.seed);
    std::set<std::uint64_t> coverage;
    std::vector<TestbedConfig> corpus;
    CampaignResult out;

    while ((max_runs == 0 || out.runs < max_runs) && !expired()) {
        TestbedConfig cfg;
        if (!corpus.empty() && rng.below(2) != 0) {
            cfg = mutateCase(
                rng, corpus[rng.below(static_cast<std::uint32_t>(
                         corpus.size()))]);
        } else {
            cfg = generateCase(rng, cc.injectBug);
        }
        // Campaign-wide overrides land after generation so they never
        // perturb the seeded RNG stream (same trick as simThreads).
        cfg.simThreads = cc.simThreads;
        cfg.topology = cc.topology;
        if (cc.numNodes != 0)
            cfg.numNodes = cc.numNodes;
        const CaseOutcome oc = runCase(cfg);
        ++out.runs;
        out.attacksMounted += oc.result.attacksMounted;

        std::vector<std::uint64_t> keys;
        coverageKeys(cfg, oc.result, keys);
        bool fresh = false;
        for (std::uint64_t k : keys)
            fresh |= coverage.insert(k).second;
        if (fresh && corpus.size() < 32)
            corpus.push_back(cfg);

        if (cc.verbose) {
            std::printf("run %llu: %s | attacks=%llu findings=%zu "
                        "cov=%zu\n",
                        static_cast<unsigned long long>(out.runs),
                        encodeRepro(cfg).c_str(),
                        static_cast<unsigned long long>(
                            oc.result.attacksMounted),
                        oc.result.findings.size(), coverage.size());
        }

        if (oc.failed) {
            out.failed = true;
            std::uint32_t shrink_runs = 0;
            const TestbedConfig small =
                shrinkCase(cfg, &shrink_runs);
            out.runs += shrink_runs;
            out.repro = encodeRepro(small);
            out.findings = runCase(small).result.findings;
            ++out.runs;
            break;
        }
    }
    out.coverage = coverage.size();
    return out;
}

} // namespace mgsec::verify
