/**
 * @file
 * VerifyTestbed — a self-contained rig wiring N SecureChannels, the
 * SecurityOracle and the AdversaryModel onto one Network.
 *
 * The testbed owns the hook topology:
 *
 *   PreWire   (before accounting)   seeded-bug mutation, then
 *                                   oracle.onSent — the oracle sees
 *                                   the untampered genuine stream;
 *   PostWire  (exact wire bytes)    AdversaryModel — capture,
 *                                   mutate, drop, inject;
 *   delivery                        oracle.onDelivered, then the
 *                                   destination channel.
 *
 * Traffic is synthetic and fully determined by the config's seed, so
 * a (config, seed) pair is a complete repro. The seeded bugs mutate
 * genuine packets *before* the oracle observes them — they fake a
 * buggy channel implementation underneath an honest wire, proving
 * the oracle catches real channel defects (mutation checks).
 */

#ifndef MGSEC_VERIFY_TESTBED_HH
#define MGSEC_VERIFY_TESTBED_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "crypto/otp.hh"
#include "net/network.hh"
#include "secure/secure_channel.hh"
#include "sim/domain.hh"
#include "sim/event_queue.hh"
#include "verify/adversary.hh"
#include "verify/oracle.hh"
#include "verify/verify_types.hh"

namespace mgsec::verify
{

struct TestbedConfig
{
    std::uint32_t numNodes = 3;
    OtpScheme scheme = OtpScheme::Private;
    bool batching = false;
    std::uint32_t batchSize = 4;
    /** Data messages the traffic driver sends. */
    std::uint32_t messages = 48;
    /** Percent (0..100) of messages sent as read requests. */
    std::uint32_t requestPercent = 0;
    /** Mean inter-send spacing in cycles. */
    Cycles gap = 20;
    std::uint64_t seed = 1;
    /**
     * Fabric under test. The adversary, oracle and channels are all
     * routing-agnostic, so every security verdict must hold on every
     * topology; the default p2p keeps historical repros bit-exact.
     */
    TopologyConfig topology{};
    SeededBug bug = SeededBug::None;
    /** 0-based index of the eligible packet that triggers the bug. */
    std::uint32_t bugTrigger = 3;
    std::vector<AttackStep> script;

    /**
     * Event-kernel worker threads: 1 = the exact legacy serial path,
     * >= 2 = one event domain per node under the conservative-PDES
     * kernel (clamped to numNodes). Sharded campaigns keep every
     * verdict, counter and finding deterministic — only the append
     * order of the findings list and the exact delivery ticks can
     * differ from serial — and a repro is always replayed serially.
     */
    std::uint32_t simThreads = 1;
};

struct TestbedResult
{
    std::vector<Finding> findings;

    /** @name Channel detection signals (summed over nodes) */
    /// @{
    std::uint64_t macsVerified = 0;
    std::uint64_t macsFailed = 0;
    std::uint64_t decryptsOk = 0;
    std::uint64_t decryptsBad = 0;
    std::uint64_t replaySuspects = 0;
    std::uint64_t ctrGaps = 0;
    /** Replay-window entries never ACKed by end of run. */
    std::uint64_t outstandingTotal = 0;
    /// @}

    std::uint64_t delivered = 0;
    std::uint64_t droppedPackets = 0;
    std::uint64_t strandedBatches = 0;
    std::uint64_t attacksMounted = 0;
    std::size_t stepsFired = 0;
    std::vector<std::string> neutralized;
    std::vector<std::string> attackLog;

    bool pass() const { return findings.empty(); }
};

class VerifyTestbed
{
  public:
    explicit VerifyTestbed(const TestbedConfig &cfg);

    /** Drive the whole campaign and collect the verdict. */
    TestbedResult run();

    SecureChannel &channel(NodeId n) { return *channels_[n]; }
    SecurityOracle &oracle() { return *oracle_; }
    AdversaryModel &adversary() { return *adversary_; }
    EventQueue &eventQueue() { return eq_; }

  private:
    void mountHooks();
    void scheduleTraffic();
    void maybeSeedBug(Packet &p);
    void refreshCrypto(Packet &p) const;
    /** Run events until @p until (the Dynamic timer never drains). */
    void runUntil(Tick until);

    bool sharded() const { return sim_threads_ > 1; }
    /** The queue node @p n's channel lives on (domain n if sharded). */
    EventQueue &queueOf(NodeId n);

    TestbedConfig cfg_;
    SecurityConfig sec_;
    EventQueue eq_;
    /**
     * Sharded mode only: one event domain per node — domain 0 wraps
     * eq_ (keeping the network, adversary and node 0's channel on the
     * legacy queue), the rest own their queues. Empty when serial.
     */
    std::vector<std::unique_ptr<Domain>> domains_;
    std::uint32_t sim_threads_ = 1;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<SecureChannel>> channels_;
    std::unique_ptr<SecurityOracle> oracle_;
    std::unique_ptr<AdversaryModel> adversary_;
    /** The testbed's own pad factory for seeded-bug recomputation. */
    std::unique_ptr<crypto::PadFactory> factory_;

    /** Atomic: sharded deliveries count on concurrent domain threads. */
    std::atomic<std::uint64_t> delivered_{0};
    Tick last_send_ = 0;
    /** Sharded kernel time: where the next runUntil() resumes. */
    Tick pdes_next_ = 0;

    /** Seeded-bug state. */
    std::uint32_t bug_seen_ = 0;
    bool bug_armed_ = false;   ///< CounterSkip: shift active
    bool bug_fired_ = false;   ///< StaleCipher: one-shot spent
    NodeId bug_src_ = InvalidNode;
};

} // namespace mgsec::verify

#endif // MGSEC_VERIFY_TESTBED_HH
