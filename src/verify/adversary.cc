#include "verify/adversary.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "verify/oracle.hh"

namespace mgsec::verify
{

namespace
{

constexpr Cycles kReplayDelay = 3000;
constexpr Cycles kAckDupDelay = 500;
constexpr Cycles kAckReorderDelay = 2000;

/** Flip one bit of a byte buffer, selected modulo its width. */
void
flipBit(std::uint8_t *buf, std::size_t len, std::uint64_t bit)
{
    bit %= len * 8;
    buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

bool
isData(const Packet &p)
{
    return p.secured && p.type != PacketType::SecAck &&
           p.type != PacketType::BatchMac;
}

} // anonymous namespace

AdversaryModel::AdversaryModel(EventQueue &eq, Network &net,
                               SecurityOracle *oracle)
    : eq_(eq), net_(net), oracle_(oracle)
{
}

void
AdversaryModel::setScript(std::vector<AttackStep> script)
{
    steps_.clear();
    for (const AttackStep &s : script)
        steps_.push_back(ScriptStep{s, false});
}

void
AdversaryModel::install()
{
    net_.setTamper(Network::TamperPoint::PostWire,
                   [this](Packet &p) { return onWire(p); });
}

std::size_t
AdversaryModel::stepsFired() const
{
    std::size_t n = 0;
    for (const ScriptStep &s : steps_)
        n += s.fired ? 1 : 0;
    return n;
}

bool
AdversaryModel::eligible(AttackClass c, const Packet &p) const
{
    switch (c) {
      case AttackClass::Replay:
      case AttackClass::HeaderFlip:
      case AttackClass::DataDrop:
        return isData(p);
      case AttackClass::PayloadFlip:
        return isData(p) && p.func != nullptr && p.func->hasCipher;
      case AttackClass::MacFlip:
        return isData(p) && p.batchId == 0 && p.hasMac &&
               p.func != nullptr && p.func->hasMac;
      case AttackClass::TrailerCorrupt:
        if (p.func == nullptr || !p.func->hasMac)
            return false;
        return p.type == PacketType::BatchMac ||
               (isData(p) && p.batchId != 0 && p.batchLast);
      case AttackClass::LengthCorrupt:
        return isData(p) && p.batchLen != 0;
      case AttackClass::AckDrop:
      case AttackClass::AckDup:
      case AttackClass::AckReorder:
        return p.type == PacketType::SecAck;
      case AttackClass::Splice: {
        if (!isData(p) || p.func == nullptr || !p.func->hasCipher)
            return false;
        const std::uint64_t self = pairOf(p);
        for (const auto &[pair, cap] : captures_) {
            if (pair != self && cap.hasCipher)
                return true;
        }
        return false;
      }
    }
    return false;
}

bool
AdversaryModel::wasInjected(const Packet &p, bool consume)
{
    const auto it = injected_.find({pairOf(p), p.id});
    if (it == injected_.end())
        return false;
    if (consume && --it->second == 0)
        injected_.erase(it);
    return true;
}

Network::TamperVerdict
AdversaryModel::onWire(Packet &p)
{
    // Never tamper with our own injections. The id record, not the
    // transient flag, is what fires under the sharded kernel's
    // deferred (capture/replay) wire traversal.
    if (wasInjected(p, /*consume=*/true) || injecting_)
        return Network::TamperVerdict::Forward;

    // Count every class's eligibility stream exactly once per
    // packet, then fire at most the first matching script step.
    std::array<bool, kNumAttackClasses> elig{};
    std::array<std::uint32_t, kNumAttackClasses> index{};
    for (std::size_t c = 0; c < kNumAttackClasses; ++c) {
        elig[c] = eligible(static_cast<AttackClass>(c), p);
        if (elig[c])
            index[c] = seen_[c]++;
    }

    Network::TamperVerdict verdict = Network::TamperVerdict::Forward;
    for (ScriptStep &ss : steps_) {
        const auto c = static_cast<std::size_t>(ss.step.cls);
        if (ss.fired || !elig[c] || index[c] != ss.step.nth)
            continue;
        ss.fired = true;
        verdict = apply(ss, p);
        break;
    }

    // Record the wire image (post-mutation: what the probe saw) for
    // later cross-pair splicing.
    if (isData(p) && p.func != nullptr && p.func->hasCipher) {
        Capture &cap = captures_[pairOf(p)];
        cap.cipher = p.func->cipher;
        cap.hasCipher = true;
        if (p.func->hasMac) {
            cap.mac = p.func->mac;
            cap.hasMac = true;
        }
    }
    return verdict;
}

Network::TamperVerdict
AdversaryModel::apply(ScriptStep &ss, Packet &p)
{
    const AttackStep &s = ss.step;
    logAttack(s, p);
    switch (s.cls) {
      case AttackClass::Replay: {
        const Cycles delay =
            s.param != 0 ? static_cast<Cycles>(s.param) : kReplayDelay;
        inject(clonePacket(p), delay, true);
        return Network::TamperVerdict::Forward;
      }
      case AttackClass::PayloadFlip:
        flipBit(p.func->cipher.data(), p.func->cipher.size(),
                s.param != 0 ? s.param : 137);
        if (oracle_ != nullptr)
            oracle_->noteTampered(p.src, p.id, s.cls);
        return Network::TamperVerdict::Forward;
      case AttackClass::MacFlip:
        flipBit(p.func->mac.data(), p.func->mac.size(),
                s.param != 0 ? s.param : 13);
        if (oracle_ != nullptr)
            oracle_->noteTampered(p.src, p.id, s.cls);
        return Network::TamperVerdict::Forward;
      case AttackClass::HeaderFlip:
        p.msgCtr ^= 1ull << (s.param % 64);
        if (oracle_ != nullptr)
            oracle_->noteTampered(p.src, p.id, s.cls);
        return Network::TamperVerdict::Forward;
      case AttackClass::TrailerCorrupt:
        flipBit(p.func->mac.data(), p.func->mac.size(),
                s.param != 0 ? s.param : 5);
        if (oracle_ != nullptr)
            oracle_->noteTampered(p.src, p.id, s.cls);
        return Network::TamperVerdict::Forward;
      case AttackClass::LengthCorrupt: {
        const std::uint64_t delta = s.param != 0 ? s.param : 1;
        const std::uint64_t inflated = p.batchLen + delta;
        p.batchLen = static_cast<std::uint8_t>(
            std::min<std::uint64_t>(inflated, 255));
        if (oracle_ != nullptr)
            oracle_->noteTampered(p.src, p.id, s.cls);
        return Network::TamperVerdict::Forward;
      }
      case AttackClass::AckDrop:
        if (oracle_ != nullptr)
            oracle_->onDropped(p);
        return Network::TamperVerdict::Drop;
      case AttackClass::AckDup: {
        const Cycles delay =
            s.param != 0 ? static_cast<Cycles>(s.param) : kAckDupDelay;
        inject(clonePacket(p), delay, false);
        if (oracle_ != nullptr) {
            oracle_->noteNeutralized(strformat(
                "AckDup of packet id %llu %u->%u: cumulative ACKs "
                "are idempotent",
                static_cast<unsigned long long>(p.id), p.src, p.dst));
        }
        return Network::TamperVerdict::Forward;
      }
      case AttackClass::AckReorder: {
        const Cycles delay = s.param != 0
                                 ? static_cast<Cycles>(s.param)
                                 : kAckReorderDelay;
        inject(clonePacket(p), delay, false);
        if (oracle_ != nullptr) {
            oracle_->noteNeutralized(strformat(
                "AckReorder of packet id %llu %u->%u: the window "
                "only drains later",
                static_cast<unsigned long long>(p.id), p.src, p.dst));
        }
        return Network::TamperVerdict::Drop;
      }
      case AttackClass::Splice: {
        const std::uint64_t self = pairOf(p);
        for (const auto &[pair, cap] : captures_) {
            if (pair == self || !cap.hasCipher)
                continue;
            p.func->cipher = cap.cipher;
            if (p.func->hasMac && cap.hasMac)
                p.func->mac = cap.mac;
            break;
        }
        if (oracle_ != nullptr)
            oracle_->noteTampered(p.src, p.id, s.cls);
        return Network::TamperVerdict::Forward;
      }
      case AttackClass::DataDrop:
        if (oracle_ != nullptr)
            oracle_->onDropped(p);
        return Network::TamperVerdict::Drop;
    }
    return Network::TamperVerdict::Forward;
}

void
AdversaryModel::inject(PacketPtr clone, Cycles delay, bool is_replay)
{
    eq_.scheduleIn(delay,
                   [this, c = std::move(clone), is_replay]() mutable {
                       if (is_replay && oracle_ != nullptr)
                           oracle_->onInjected(*c);
                       injected_[{pairOf(*c), c->id}]++;
                       injecting_ = true;
                       net_.send(std::move(c));
                       injecting_ = false;
                   });
}

void
AdversaryModel::logAttack(const AttackStep &s, const Packet &p)
{
    log_.push_back(strformat(
        "%s nth=%u on %s id=%llu %u->%u ctr=%llu batch=%llu",
        attackClassName(s.cls), s.nth, packetTypeName(p.type),
        static_cast<unsigned long long>(p.id), p.src, p.dst,
        static_cast<unsigned long long>(p.msgCtr),
        static_cast<unsigned long long>(p.batchId)));
}

} // namespace mgsec::verify
