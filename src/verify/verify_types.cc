#include "verify/verify_types.hh"

namespace mgsec::verify
{

namespace
{

constexpr const char *kAttackNames[kNumAttackClasses] = {
    "Replay",         "PayloadFlip", "MacFlip",   "HeaderFlip",
    "TrailerCorrupt", "LengthCorrupt", "AckDrop", "AckDup",
    "AckReorder",     "Splice",      "DataDrop",
};

} // anonymous namespace

const char *
attackClassName(AttackClass c)
{
    const auto i = static_cast<std::size_t>(c);
    return i < kNumAttackClasses ? kAttackNames[i] : "?";
}

bool
parseAttackClass(const std::string &text, AttackClass &out)
{
    for (std::size_t i = 0; i < kNumAttackClasses; ++i) {
        if (text == kAttackNames[i]) {
            out = static_cast<AttackClass>(i);
            return true;
        }
    }
    return false;
}

const char *
findingKindName(FindingKind k)
{
    switch (k) {
      case FindingKind::Divergence:
        return "Divergence";
      case FindingKind::CounterAnomaly:
        return "CounterAnomaly";
      case FindingKind::CryptoMismatch:
        return "CryptoMismatch";
      case FindingKind::LostVerification:
        return "LostVerification";
      case FindingKind::UndetectedAttack:
        return "UndetectedAttack";
      case FindingKind::LostMessage:
        return "LostMessage";
    }
    return "?";
}

const char *
seededBugName(SeededBug b)
{
    switch (b) {
      case SeededBug::None:
        return "none";
      case SeededBug::CounterSkip:
        return "counterskip";
      case SeededBug::StaleCipher:
        return "stalecipher";
    }
    return "?";
}

} // namespace mgsec::verify
