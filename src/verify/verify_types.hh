/**
 * @file
 * Shared vocabulary of the adversarial validation subsystem: attack
 * classes the AdversaryModel mounts, the scripting unit, and the
 * findings the SecurityOracle reports.
 */

#ifndef MGSEC_VERIFY_VERIFY_TYPES_HH
#define MGSEC_VERIFY_VERIFY_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mgsec::verify
{

/**
 * Attack repertoire of the physical adversary (threat model Sec. III:
 * an attacker probing and meddling with the exposed inter-GPU
 * links). Each class targets the nth eligible wire packet of its
 * eligibility stream, so scripts are deterministic for a fixed
 * simulation.
 */
enum class AttackClass : std::uint8_t
{
    Replay,         ///< capture a data packet, re-inject it later
    PayloadFlip,    ///< flip a ciphertext bit
    MacFlip,        ///< flip a MsgMAC / batched-MAC bit
    HeaderFlip,     ///< corrupt the MsgCTR header field
    TrailerCorrupt, ///< corrupt a batch trailer's MAC
    LengthCorrupt,  ///< inflate a batch's 1 B declared-length field
    AckDrop,        ///< drop a standalone SecAck packet
    AckDup,         ///< duplicate a SecAck
    AckReorder,     ///< hold a SecAck and re-inject it later
    Splice,         ///< transplant ciphertext+MAC across (src,dst)
    DataDrop,       ///< drop a data packet in flight
};
constexpr std::size_t kNumAttackClasses = 11;

const char *attackClassName(AttackClass c);

/** Parse an attack-class name (repro strings). */
bool parseAttackClass(const std::string &text, AttackClass &out);

/** One scripted attack: hit the nth eligible packet of the class. */
struct AttackStep
{
    AttackClass cls = AttackClass::PayloadFlip;
    /** 0-based index into the class's eligible-packet stream. */
    std::uint32_t nth = 0;
    /**
     * Class-specific knob: bit index for flips, re-injection delay
     * for Replay/AckReorder, length delta for LengthCorrupt.
     * 0 selects the class default.
     */
    std::uint64_t param = 0;
};

/** Kinds of problems the subsystem can surface. */
enum class FindingKind : std::uint8_t
{
    /** Predicted channel counters differ from the real channel. */
    Divergence,
    /** A sender emitted an unexpected message counter. */
    CounterAnomaly,
    /** Wire crypto material differs from the shadow computation. */
    CryptoMismatch,
    /** A genuine batch never completed MAC verification. */
    LostVerification,
    /** An attack produced no detection signal anywhere. */
    UndetectedAttack,
    /** A genuine message disappeared without an attributable drop. */
    LostMessage,
};

const char *findingKindName(FindingKind k);

/** One security-property failure. Empty list == healthy run. */
struct Finding
{
    FindingKind kind = FindingKind::Divergence;
    std::string detail;
};

/**
 * Channel bugs the testbed can seed underneath the oracle — the
 * mutation checks proving the oracle actually bites. Both recompute
 * the crypto consistently, so the wire carries a self-consistent
 * (but wrong) stream.
 */
enum class SeededBug : std::uint8_t
{
    None,
    /**
     * From the trigger packet on, the sender's counters are shifted
     * +1 with pads/MACs recomputed: MACs verify and counters stay
     * monotonic, and under the Shared scheme (one global stream per
     * sender) even the receiver-side gap counter stays silent — only
     * the oracle's send-counter model notices the skipped counter.
     */
    CounterSkip,
    /**
     * One packet's ciphertext is produced with the previous
     * counter's pad (a stale-pad reuse); its MAC is recomputed over
     * that ciphertext so MAC verification still passes.
     */
    StaleCipher,
};

const char *seededBugName(SeededBug b);

/**
 * Deterministic xorshift64* generator. The standard distributions
 * are implementation-defined, so campaigns roll their own to keep
 * repro strings portable across toolchains.
 */
struct Rng
{
    std::uint64_t s;

    explicit Rng(std::uint64_t seed) : s(seed ? seed : 0x9e3779b9) {}

    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform-ish value in [0, n). @p n must be nonzero. */
    std::uint32_t
    below(std::uint32_t n)
    {
        return static_cast<std::uint32_t>(next() % n);
    }
};

} // namespace mgsec::verify

#endif // MGSEC_VERIFY_VERIFY_TYPES_HH
