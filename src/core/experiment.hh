/**
 * @file
 * High-level experiment runner shared by benches, examples, and
 * integration tests: one call = one simulated configuration.
 */

#ifndef MGSEC_CORE_EXPERIMENT_HH
#define MGSEC_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/system.hh"

namespace mgsec
{

/** The knobs the paper's figures sweep. */
struct ExperimentConfig
{
    std::uint32_t numGpus = 4;
    OtpScheme scheme = OtpScheme::Private;
    bool batching = false;
    std::uint32_t otpMult = 4;       ///< "OTP Nx"
    Cycles aesLatency = 40;
    std::uint32_t batchSize = 16;
    bool countMetadataBytes = true;  ///< false = Fig. 11 +SecureCommu
    double scale = 1.0;              ///< extra workload scaling
    std::uint64_t seed = 1;
    Cycles commSampleInterval = 0;

    /**
     * Hint for EventQueue::reserve(): expected peak of pending
     * events. 0 = auto (sized from the outstanding-request windows).
     * Purely a performance knob — never changes simulated results.
     */
    std::uint64_t expectedEvents = 0;

    /** Dynamic allocator hyperparameters (EWMA ablation). */
    DynamicPadTable::Params dynParams{};

    /**
     * Host DRAM protection: -1 = auto (enabled iff the scheme is
     * secure, the paper's threat model), 0 = force off, 1 = force on
     * (memprot ablation).
     */
    int hostMemProtect = -1;

    /**
     * The paper keeps the problem size fixed when growing the GPU
     * count (Sec. V-D), so per-GPU work shrinks as
     * kScalingBaselineGpus/numGpus.
     */
    bool strongScaling = true;

    /**
     * Fabric topology plus its knobs (SystemConfig::topology). Joins
     * configKey only when the kind is not the default p2p, so every
     * pre-existing configuration keeps its hash.
     */
    TopologyConfig topology{};

    /**
     * Traffic-shaping countermeasure (SecurityConfig::shaping) plus
     * its knobs. Joins configKey only when a policy is active, so
     * every pre-existing configuration keeps its hash.
     */
    ShapingPolicy shaping = ShapingPolicy::None;
    Cycles shapeInterval = 64;
    Bytes shapePadTo = 128;
    Cycles shapeJitter = 96;
    std::uint32_t shapeChaffSlots = 512;

    /**
     * Hidden debug knob (SecurityConfig::debugPadStallPct): inflate
     * exposed send-pad waits by this percentage so CI can prove the
     * mgsec_report regression gate trips. Part of configKey.
     */
    std::uint32_t debugPadStallPct = 0;

    /**
     * Crypto tier for the functional plane (auto/portable/simd).
     * Host-side speed knob with bit-identical outputs, so it is NOT
     * part of configKey — results must not depend on it.
     */
    crypto::CryptoImpl cryptoImpl = crypto::CryptoImpl::Auto;

    /**
     * Worker threads for the domain-sharded event kernel
     * (SystemConfig::simThreads): 0 = auto (MGSEC_SIM_THREADS env,
     * else serial), 1 = the exact legacy serial path, >= 2 =
     * conservative-PDES sharding. A host-side speed knob like
     * cryptoImpl — op counts are thread-count invariant and timing
     * aggregates agree to well under a percent — so it is NOT part
     * of configKey.
     */
    std::uint32_t simThreads = 0;

    /**
     * Observability sinks for this run (file paths; all empty =
     * disabled). Never part of a config's identity hash.
     */
    ObserveConfig observe{};
};

/** Expand an ExperimentConfig into a full SystemConfig. */
SystemConfig makeSystemConfig(const ExperimentConfig &cfg);

/**
 * Stable textual identity of one (workload, config) run: every knob
 * that can change simulated results, none that cannot (observe
 * paths, expectedEvents). Used to tag per-job observability files.
 */
std::string configKey(const std::string &workload,
                      const ExperimentConfig &cfg);

/** FNV-1a 64-bit hash of configKey(), as 16 hex digits. */
std::string configHash(const std::string &workload,
                       const ExperimentConfig &cfg);

/** Simulate one workload under one configuration. */
RunResult runWorkload(const std::string &workload,
                      const ExperimentConfig &cfg);

/**
 * Relative execution time of @p r against the unsecure baseline
 * result @p base (1.0 = no overhead).
 */
double normalizedTime(const RunResult &r, const RunResult &base);

/** Relative interconnect traffic against the unsecure baseline. */
double normalizedTraffic(const RunResult &r, const RunResult &base);

double geomean(const std::vector<double> &v);
double mean(const std::vector<double> &v);

} // namespace mgsec

#endif // MGSEC_CORE_EXPERIMENT_HH
