#include "core/sweep.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <utility>

#include "core/job_pool.hh"
#include "core/options.hh"
#include "sim/debug.hh"
#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace mgsec
{

void
SweepArgs::printUsage(std::ostream &os, const char *argv0) const
{
    os << "usage: " << argv0 << " [--scale S] [--seeds N] [--jobs N]";
    if (acceptGpus)
        os << " [--gpus N]";
    if (acceptJson)
        os << " [--json FILE]";
    os << "\n"
       << "  --scale S  workload size multiplier (default " << scale
       << ")\n"
       << "  --seeds N  seeds averaged per configuration (default "
       << seeds << ")\n"
       << "  --jobs N   parallel simulation jobs (default: all "
       << "hardware threads)\n";
    if (acceptGpus)
        os << "  --gpus N   GPUs in the simulated system (default "
           << gpus << ")\n";
    if (acceptJson)
        os << "  --json F   also write the results as JSON to F\n";
    if (acceptObserve)
        os << "  --observe DIR  write per-job METRICS_/TRACE_/STATS_/"
           << "HIST_/WIRE_/PROF_ JSON files\n"
           << "             (tagged by config hash) plus an "
           << "OBSERVE_INDEX.json and an\n"
           << "             append-only PROGRESS.jsonl heartbeat "
           << "into DIR\n";
    if (acceptShape)
        os << "  --shape P[,P...]  shaping policies to sweep: none|"
           << "constant-rate|batch-jitter\n"
           << "             (default none; extra policies add rows "
           << "to the matrix)\n";
    if (acceptWorkloads)
        os << "  --workloads W[,W...]  restrict the matrix to these "
           << "workloads (default all)\n";
    if (acceptTopology)
        os << "  --topology T  fabric for every run: p2p|nvswitch|"
           << "hier (default p2p)\n";
    os << "  --crypto-impl I  host crypto tier auto|portable|simd "
       << "(bit-identical results)\n"
       << "  --sim-threads N  event-kernel worker threads per run "
       << "(1 = serial; default MGSEC_SIM_THREADS or 1)\n"
       << "  --debug FLAGS  enable trace flags ('help' lists "
       << "them)\n";
}

void
SweepArgs::parseArgs(int argc, char **argv)
{
    // Honor MGSEC_DEBUG in every bench/tool; Sweep::run() drops to
    // one worker when any flag is on so traces stay readable.
    debug::enableFromEnv();
    auto die = [&](const char *fmt, const char *what) {
        std::fprintf(stderr, fmt, what);
        std::fputc('\n', stderr);
        printUsage(std::cerr, argv[0]);
        std::exit(2);
    };
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            die("missing value for '%s'", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            printUsage(std::cout, argv[0]);
            std::exit(0);
        } else if (std::strcmp(arg, "--scale") == 0) {
            if (!parseNumber(value(i), 1e-6, 1e6, scale))
                die("bad --scale value '%s'", argv[i]);
        } else if (std::strcmp(arg, "--seeds") == 0) {
            long long v = 0;
            if (!parseNumber(value(i), 1LL, 10000LL, v))
                die("bad --seeds value '%s'", argv[i]);
            seeds = static_cast<int>(v);
        } else if (std::strcmp(arg, "--jobs") == 0) {
            unsigned long long v = 0;
            if (!parseNumber(value(i), 1ULL, 1024ULL, v))
                die("bad --jobs value '%s'", argv[i]);
            jobs = static_cast<unsigned>(v);
        } else if (acceptGpus && std::strcmp(arg, "--gpus") == 0) {
            unsigned long long v = 0;
            if (!parseNumber(value(i), 1ULL, 256ULL, v))
                die("bad --gpus value '%s'", argv[i]);
            gpus = static_cast<std::uint32_t>(v);
        } else if (acceptJson && std::strcmp(arg, "--json") == 0) {
            jsonOut = value(i);
        } else if (acceptObserve &&
                   std::strcmp(arg, "--observe") == 0) {
            observeDir = value(i);
        } else if (acceptShape && std::strcmp(arg, "--shape") == 0) {
            shapes.clear();
            std::string list = value(i);
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string tok = list.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                ShapingPolicy p = ShapingPolicy::None;
                if (!parseShaping(tok, p))
                    die("bad --shape value '%s'", tok.c_str());
                shapes.push_back(p);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            if (shapes.empty())
                die("bad --shape value '%s'", argv[i]);
        } else if (acceptWorkloads &&
                   std::strcmp(arg, "--workloads") == 0) {
            workloads.clear();
            std::string list = value(i);
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string tok = list.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                const auto &names = workloadNames();
                bool known = false;
                for (const auto &n : names)
                    known = known || n == tok;
                if (!known)
                    die("unknown workload '%s'", tok.c_str());
                workloads.push_back(tok);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            if (workloads.empty())
                die("bad --workloads value '%s'", argv[i]);
        } else if (acceptTopology &&
                   std::strcmp(arg, "--topology") == 0) {
            if (!parseTopologyKind(value(i), topology.kind))
                die("bad --topology value '%s'", argv[i]);
        } else if (std::strcmp(arg, "--crypto-impl") == 0) {
            if (!crypto::parseCryptoImpl(value(i), cryptoImpl))
                die("bad --crypto-impl value '%s'", argv[i]);
        } else if (std::strcmp(arg, "--sim-threads") == 0) {
            unsigned long long v = 0;
            if (!parseNumber(value(i), 1ULL, 256ULL, v))
                die("bad --sim-threads value '%s'", argv[i]);
            simThreads = static_cast<std::uint32_t>(v);
        } else if (std::strcmp(arg, "--debug") == 0) {
            const char *flags = value(i);
            if (std::strcmp(flags, "help") == 0) {
                debug::listFlags(std::cout);
                std::exit(0);
            }
            if (!debug::DebugFlag::enableByName(flags))
                die("bad --debug value '%s'", argv[i]);
        } else {
            die("unknown flag '%s'", arg);
        }
    }
}

namespace
{

/** The unsecure configuration a normalized run measures against. */
ExperimentConfig
baselineConfig(ExperimentConfig cfg)
{
    cfg.scheme = OtpScheme::Unsecure;
    cfg.batching = false;
    cfg.countMetadataBytes = true;
    cfg.hostMemProtect = -1; // auto: disabled for Unsecure
    // Shaping is gated on secured(), so an unsecure baseline never
    // shapes; clearing the knob keeps one memoized baseline (and one
    // stable config hash) shared across every shaping policy.
    cfg.shaping = ShapingPolicy::None;
    return cfg;
}

/**
 * Cache key of a baseline: only the knobs that can change an
 * unsecure run. The security knobs (otpMult, aesLatency, batchSize,
 * dynParams, countMetadataBytes) are all gated behind
 * SecurityConfig::secured(), so sweeps over them share one baseline.
 */
std::string
baselineKey(const std::string &workload, const ExperimentConfig &cfg)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "|g%u|s%.17g|d%llu|ss%d|ci%llu",
                  cfg.numGpus, cfg.scale,
                  static_cast<unsigned long long>(cfg.seed),
                  cfg.strongScaling ? 1 : 0,
                  static_cast<unsigned long long>(
                      cfg.commSampleInterval));
    std::string key = workload + buf;
    // The fabric changes an unsecure run's timing, so non-default
    // topologies get their own memoized baselines; p2p keeps the
    // historical key.
    if (cfg.topology.kind != TopologyKind::P2p) {
        char tb[96];
        std::snprintf(tb, sizeof(tb), "|t%s/%u/%llu/%.17g/%u/%llu/"
                                      "%.17g",
                      topologyKindName(cfg.topology.kind),
                      cfg.topology.switchRadix,
                      static_cast<unsigned long long>(
                          cfg.topology.switchLatency),
                      cfg.topology.switchBytesPerCycle,
                      cfg.topology.gpusPerNode,
                      static_cast<unsigned long long>(
                          cfg.topology.interLatency),
                      cfg.topology.interBytesPerCycle);
        key += tb;
    }
    return key;
}

} // anonymous namespace

Sweep::Sweep(const SweepArgs &args)
    : Sweep(args.scale, args.seeds, args.jobs)
{
    crypto_impl_ = args.cryptoImpl;
    sim_threads_ = args.simThreads;
    if (!args.observeDir.empty())
        setObservability(args.observeDir);
}

Sweep::Sweep(double scale, int seeds, unsigned jobs)
    : scale_(scale), seeds_(seeds), jobs_(jobs)
{
    MGSEC_ASSERT(scale_ > 0.0, "non-positive sweep scale");
    MGSEC_ASSERT(seeds_ >= 1, "sweep needs at least one seed");
}

void
Sweep::setObservability(const std::string &dir, Cycles interval)
{
    MGSEC_ASSERT(!ran_, "Sweep::setObservability after run()");
    MGSEC_ASSERT(!dir.empty(), "empty observability directory");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create observability directory '%s': %s",
             dir.c_str(), ec.message().c_str());
        return;
    }
    observe_dir_ = dir;
    observe_interval_ = interval;
}

std::size_t
Sweep::addNormalized(const std::string &workload,
                     ExperimentConfig cfg)
{
    MGSEC_ASSERT(!ran_, "Sweep::add after run()");
    cfg.scale = scale_;
    cfg.cryptoImpl = crypto_impl_;
    cfg.simThreads = sim_threads_;
    norm_.push_back(NormRequest{workload, cfg, NormResult{}});
    return norm_.size() - 1;
}

std::size_t
Sweep::addRaw(const std::string &workload, ExperimentConfig cfg)
{
    MGSEC_ASSERT(!ran_, "Sweep::add after run()");
    cfg.scale = scale_;
    cfg.cryptoImpl = crypto_impl_;
    cfg.simThreads = sim_threads_;
    raw_.push_back(RawRequest{workload, cfg, RunResult{}});
    return raw_.size() - 1;
}

void
Sweep::run()
{
    MGSEC_ASSERT(!ran_, "Sweep::run() called twice");
    ran_ = true;

    unsigned jobs = jobs_ == 0 ? JobPool::defaultWorkers() : jobs_;
    if (jobs > 1) {
        // Debug traces from concurrent runs interleave into one
        // stream; keep them readable by serializing.
        for (const debug::DebugFlag *f : debug::DebugFlag::all()) {
            if (f->enabled()) {
                warn("debug tracing enabled; running sweep with "
                     "--jobs 1 so traces stay readable");
                jobs = 1;
                break;
            }
        }
    }
    resolved_jobs_ = jobs;

    JobPool pool(jobs);

    // With an observability directory set, each distinct
    // configuration writes sinks tagged by its config hash, so
    // parallel jobs never share a file name. A duplicate submission
    // (the same config queued twice) keeps only the first writer.
    struct IndexEntry
    {
        std::string hash;
        std::string key;
    };
    std::vector<IndexEntry> observe_index;
    std::set<std::string> observe_seen;
    auto withObserve = [&](const std::string &workload,
                           ExperimentConfig cfg) {
        if (observe_dir_.empty())
            return cfg;
        const std::string h = configHash(workload, cfg);
        if (!observe_seen.insert(h).second) {
            cfg.observe = ObserveConfig{};
            return cfg;
        }
        cfg.observe.metricsOut =
            observe_dir_ + "/METRICS_" + h + ".json";
        cfg.observe.traceOut = observe_dir_ + "/TRACE_" + h + ".json";
        cfg.observe.statsJsonOut =
            observe_dir_ + "/STATS_" + h + ".json";
        cfg.observe.histJsonOut =
            observe_dir_ + "/HIST_" + h + ".json";
        cfg.observe.wireOut = observe_dir_ + "/WIRE_" + h + ".json";
        cfg.observe.profOut = observe_dir_ + "/PROF_" + h + ".json";
        cfg.observe.metricsInterval = observe_interval_;
        observe_index.push_back(
            IndexEntry{h, configKey(workload, cfg)});
        return cfg;
    };

    // Incremental OBSERVE_INDEX: rewritten through an atomic
    // tmp-file + rename after every harvested job, listing only the
    // entries whose runs have been harvested so far — a killed
    // campaign keeps a valid index of completed artifacts, and the
    // final rewrite is byte-identical to the historical post-sweep
    // write.
    std::set<std::string> harvested;
    auto writeIndex = [&]() {
        if (observe_dir_.empty())
            return;
        const std::string path =
            observe_dir_ + "/OBSERVE_INDEX.json";
        const std::string tmp = path + ".tmp";
        {
            std::ofstream os(tmp);
            if (!os) {
                warn("cannot write '%s'", tmp.c_str());
                return;
            }
            JsonWriter w(os);
            w.beginObject();
            w.field("interval", static_cast<std::uint64_t>(
                                    observe_interval_));
            w.key("runs");
            w.beginArray();
            for (const IndexEntry &e : observe_index) {
                if (harvested.find(e.hash) == harvested.end())
                    continue;
                w.beginObject();
                w.field("hash", e.hash);
                w.field("key", e.key);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            os << "\n";
        }
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec)
            warn("cannot rename '%s': %s", tmp.c_str(),
                 ec.message().c_str());
    };
    auto harvestedJob = [&](const std::string &workload,
                            const ExperimentConfig &cfg) {
        if (observe_dir_.empty())
            return;
        harvested.insert(configHash(workload, cfg));
        writeIndex();
    };

    // Campaign heartbeat: every job appends queued/started/finished
    // lines to an append-only PROGRESS.jsonl (one JSON object per
    // line) so a long campaign's health — throughput, stragglers, a
    // running ETA — is observable while it runs. Wall-clock data
    // lives only here and in PROF files, never in sim artifacts.
    std::ofstream progress;
    std::mutex prog_mu;
    std::uint64_t submitted = 0; ///< guarded by prog_mu
    std::uint64_t finished = 0;  ///< guarded by prog_mu
    const auto sweep_t0 = std::chrono::steady_clock::now();
    auto secsSince = [sweep_t0]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - sweep_t0)
            .count();
    };
    if (!observe_dir_.empty()) {
        progress.open(observe_dir_ + "/PROGRESS.jsonl",
                      std::ios::app);
        if (!progress)
            warn("cannot open '%s/PROGRESS.jsonl'",
                 observe_dir_.c_str());
    }
    auto submitJob = [&](const std::string &workload,
                         const ExperimentConfig &cfg) {
        if (!progress.is_open())
            return pool.submit(workload, cfg);
        const std::string h = configHash(workload, cfg);
        std::uint64_t seq = 0;
        {
            std::lock_guard<std::mutex> g(prog_mu);
            seq = submitted++;
            JsonWriter w(progress);
            w.beginObject();
            w.field("event", std::string("queued"));
            w.field("seq", seq);
            w.field("hash", h);
            w.field("workload", workload);
            w.endObject();
            progress << "\n" << std::flush;
        }
        return pool.submitTask([&, workload, cfg, h, seq]() {
            {
                std::lock_guard<std::mutex> g(prog_mu);
                JsonWriter w(progress);
                w.beginObject();
                w.field("event", std::string("started"));
                w.field("seq", seq);
                w.field("hash", h);
                w.field("workload", workload);
                w.field("tSec", secsSince());
                w.endObject();
                progress << "\n" << std::flush;
            }
            const double t0 = secsSince();
            RunResult r = runWorkload(workload, cfg);
            const double wall = secsSince() - t0;
            {
                std::lock_guard<std::mutex> g(prog_mu);
                const std::uint64_t done = ++finished;
                const double elapsed = secsSince();
                const double eta =
                    done > 0 && submitted > done
                        ? elapsed / static_cast<double>(done) *
                              static_cast<double>(submitted - done)
                        : 0.0;
                JsonWriter w(progress);
                w.beginObject();
                w.field("event", std::string("finished"));
                w.field("seq", seq);
                w.field("hash", h);
                w.field("workload", workload);
                w.field("tSec", elapsed);
                w.field("wallSec", wall);
                w.field("done", done);
                w.field("total", submitted);
                w.field("etaSec", eta);
                w.endObject();
                progress << "\n" << std::flush;
            }
            return r;
        });
    };

    // Submit in deterministic (handle, seed) order. Baselines are
    // memoized as shared futures so every normalized request of the
    // same (workload, gpus, scale, seed) reuses one simulation.
    std::map<std::string, std::shared_future<RunResult>> baselines;
    struct NormFutures
    {
        std::vector<std::future<RunResult>> secure;
        std::vector<std::shared_future<RunResult>> base;
    };
    std::vector<NormFutures> norm_futs(norm_.size());

    for (std::size_t i = 0; i < norm_.size(); ++i) {
        NormRequest &req = norm_[i];
        for (int s = 1; s <= seeds_; ++s) {
            ExperimentConfig cfg = req.cfg;
            cfg.seed = static_cast<std::uint64_t>(s);
            const ExperimentConfig base = baselineConfig(cfg);
            const std::string key = baselineKey(req.workload, base);
            auto it = baselines.find(key);
            if (it == baselines.end()) {
                it = baselines
                         .emplace(key,
                                  submitJob(req.workload,
                                            withObserve(
                                                req.workload, base))
                                      .share())
                         .first;
                ++baseline_runs_;
            } else {
                ++baseline_hits_;
            }
            norm_futs[i].base.push_back(it->second);
            norm_futs[i].secure.push_back(submitJob(
                req.workload, withObserve(req.workload, cfg)));
        }
    }

    std::vector<std::future<RunResult>> raw_futs;
    raw_futs.reserve(raw_.size());
    for (RawRequest &req : raw_)
        raw_futs.push_back(submitJob(
            req.workload, withObserve(req.workload, req.cfg)));

    // Seed the index right away: a campaign killed before its first
    // harvest still leaves a parseable (empty) manifest behind.
    writeIndex();

    // Harvest in submission order; the reduction below is the exact
    // arithmetic of the historical serial runNormalized() loop, so
    // converted benches reproduce their old output digit-for-digit.
    for (std::size_t i = 0; i < norm_.size(); ++i) {
        NormRequest &req = norm_[i];
        for (int s = 1; s <= seeds_; ++s) {
            const std::size_t k = static_cast<std::size_t>(s - 1);
            ExperimentConfig cfg = req.cfg;
            cfg.seed = static_cast<std::uint64_t>(s);
            const RunResult &b = norm_futs[i].base[k].get();
            harvestedJob(req.workload, baselineConfig(cfg));
            const RunResult r = norm_futs[i].secure[k].get();
            harvestedJob(req.workload, cfg);
            req.result.time += normalizedTime(r, b) / seeds_;
            req.result.traffic += normalizedTraffic(r, b) / seeds_;
            if (s == seeds_)
                req.result.sample = r;
        }
    }
    for (std::size_t i = 0; i < raw_.size(); ++i) {
        raw_[i].result = raw_futs[i].get();
        harvestedJob(raw_[i].workload, raw_[i].cfg);
    }
}

const NormResult &
Sweep::normalized(std::size_t handle) const
{
    MGSEC_ASSERT(ran_, "Sweep::normalized before run()");
    MGSEC_ASSERT(handle < norm_.size(), "bad normalized handle");
    return norm_[handle].result;
}

const RunResult &
Sweep::raw(std::size_t handle) const
{
    MGSEC_ASSERT(ran_, "Sweep::raw before run()");
    MGSEC_ASSERT(handle < raw_.size(), "bad raw handle");
    return raw_[handle].result;
}

} // namespace mgsec
