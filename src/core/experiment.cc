#include "core/experiment.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mgsec
{

SystemConfig
makeSystemConfig(const ExperimentConfig &cfg)
{
    SystemConfig sys;
    sys.numGpus = cfg.numGpus;
    sys.seed = cfg.seed;
    sys.commSampleInterval = cfg.commSampleInterval;
    sys.expectedEvents = cfg.expectedEvents;
    sys.simThreads = cfg.simThreads;

    sys.security.scheme = cfg.scheme;
    sys.security.batching = cfg.batching;
    sys.security.batchSize = cfg.batchSize;
    sys.security.aesLatency = cfg.aesLatency;
    sys.security.otpMultiplier = cfg.otpMult;
    sys.security.countMetadataBytes = cfg.countMetadataBytes;
    sys.security.dynParams = cfg.dynParams;
    sys.security.debugPadStallPct = cfg.debugPadStallPct;
    sys.security.cryptoImpl = cfg.cryptoImpl;
    sys.security.shaping = cfg.shaping;
    sys.security.shapeInterval = cfg.shapeInterval;
    sys.security.shapePadTo = cfg.shapePadTo;
    sys.security.shapeJitter = cfg.shapeJitter;
    sys.security.shapeChaffSlots = cfg.shapeChaffSlots;
    // The trusted host of the paper's architecture protects its
    // untrusted DRAM (PENGLAI-style); the vanilla baseline has no
    // protection anywhere. The ablation benches override the default.
    sys.cpu.memProtect.enabled = cfg.hostMemProtect < 0
                                     ? cfg.scheme != OtpScheme::Unsecure
                                     : cfg.hostMemProtect != 0;
    sys.topology = cfg.topology;
    sys.observe = cfg.observe;
    return sys;
}

namespace
{

/** The historical key: every knob predating traffic shaping. */
std::string
configKeyBase(const std::string &workload, const ExperimentConfig &cfg)
{
    return strformat(
        "%s|gpus=%u|scheme=%s|batch=%d/%u|otp=%ux|aes=%u|meta=%d|"
        "scale=%g|seed=%llu|comm=%u|dyn=%u/%g/%g/%u/%u|memprot=%d|"
        "strong=%d|padstall=%u",
        workload.c_str(), cfg.numGpus, otpSchemeName(cfg.scheme),
        cfg.batching ? 1 : 0, cfg.batchSize, cfg.otpMult,
        cfg.aesLatency, cfg.countMetadataBytes ? 1 : 0, cfg.scale,
        static_cast<unsigned long long>(cfg.seed),
        cfg.commSampleInterval, cfg.dynParams.interval,
        cfg.dynParams.alpha, cfg.dynParams.beta,
        cfg.dynParams.confidenceDir, cfg.dynParams.confidencePeer,
        cfg.hostMemProtect, cfg.strongScaling ? 1 : 0,
        cfg.debugPadStallPct);
}

} // namespace

std::string
configKey(const std::string &workload, const ExperimentConfig &cfg)
{
    std::string key = configKeyBase(workload, cfg);
    // Conditional suffix: a run without shaping keeps the exact key
    // (and hash, and observability file names) it had before the
    // shaping knobs existed.
    if (cfg.shaping != ShapingPolicy::None) {
        key += strformat(
            "|shape=%s/%llu/%llu/%llu/%u",
            shapingPolicyName(cfg.shaping),
            static_cast<unsigned long long>(cfg.shapeInterval),
            static_cast<unsigned long long>(cfg.shapePadTo),
            static_cast<unsigned long long>(cfg.shapeJitter),
            cfg.shapeChaffSlots);
    }
    // Same contract for the fabric: p2p (the paper's machine) keeps
    // the historical key.
    if (cfg.topology.kind != TopologyKind::P2p) {
        key += strformat(
            "|topo=%s/%u/%llu/%g/%u/%llu/%g",
            topologyKindName(cfg.topology.kind),
            cfg.topology.switchRadix,
            static_cast<unsigned long long>(
                cfg.topology.switchLatency),
            cfg.topology.switchBytesPerCycle,
            cfg.topology.gpusPerNode,
            static_cast<unsigned long long>(
                cfg.topology.interLatency),
            cfg.topology.interBytesPerCycle);
    }
    return key;
}

std::string
configHash(const std::string &workload, const ExperimentConfig &cfg)
{
    const std::string key = configKey(workload, cfg);
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return strformat("%016llx", static_cast<unsigned long long>(h));
}

RunResult
runWorkload(const std::string &workload, const ExperimentConfig &cfg)
{
    double scale = cfg.scale;
    if (cfg.strongScaling && cfg.numGpus != 0)
        scale *= static_cast<double>(kScalingBaselineGpus) /
                 static_cast<double>(cfg.numGpus);
    const WorkloadProfile profile =
        makeProfile(workload, scale, cfg.numGpus);
    MultiGpuSystem sys(makeSystemConfig(cfg), profile);
    return sys.run();
}

double
normalizedTime(const RunResult &r, const RunResult &base)
{
    MGSEC_ASSERT(base.cycles > 0, "baseline ran for zero cycles");
    return static_cast<double>(r.cycles) /
           static_cast<double>(base.cycles);
}

double
normalizedTraffic(const RunResult &r, const RunResult &base)
{
    MGSEC_ASSERT(base.totalBytes > 0, "baseline moved zero bytes");
    return static_cast<double>(r.totalBytes) /
           static_cast<double>(base.totalBytes);
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v) {
        MGSEC_ASSERT(x > 0.0, "geomean needs positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(v.size()));
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

} // namespace mgsec
