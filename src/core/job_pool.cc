#include "core/job_pool.hh"

#include <utility>

#include "sim/logging.hh"

namespace mgsec
{

unsigned
JobPool::defaultWorkers()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

JobPool::JobPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this]() { workerLoop(); });
}

JobPool::~JobPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

std::future<RunResult>
JobPool::submit(const std::string &workload,
                const ExperimentConfig &cfg)
{
    return submitTask(
        [workload, cfg]() { return runWorkload(workload, cfg); });
}

std::future<RunResult>
JobPool::submitTask(std::function<RunResult()> fn)
{
    MGSEC_ASSERT(fn != nullptr, "null job");
    std::packaged_task<RunResult()> task(std::move(fn));
    std::future<RunResult> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        MGSEC_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

void
JobPool::workerLoop()
{
    for (;;) {
        std::packaged_task<RunResult()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // A packaged_task captures exceptions into the future, so a
        // throwing job surfaces at the caller's get(), not here.
        task();
    }
}

} // namespace mgsec
