/**
 * @file
 * Batched sweep execution: the (workload x scheme x seed) matrices
 * the figure benches run, executed on a JobPool with the unsecure
 * baselines memoized.
 *
 * Two invariants make parallel sweeps safe to trust:
 *  - results are keyed by the handle add*() returned (submission
 *    order), never by completion order, so `--jobs N` produces
 *    bit-identical output to `--jobs 1`;
 *  - a normalized measurement's unsecure baseline depends only on
 *    (workload, gpus, scale, seed), so each distinct baseline is
 *    simulated exactly once per sweep and shared across every secure
 *    configuration that normalizes against it.
 */

#ifndef MGSEC_CORE_SWEEP_HH
#define MGSEC_CORE_SWEEP_HH

#include <cstdint>
#include <future>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace mgsec
{

/**
 * The command-line arguments shared by every figure bench and the
 * sweep tools. Parsing is strict: values are range-checked and an
 * unknown flag prints usage and exits instead of being ignored.
 */
struct SweepArgs
{
    double scale = 0.6; ///< workload size multiplier
    int seeds = 2;      ///< seeds averaged per configuration
    unsigned jobs = 0;  ///< worker threads; 0 = all hardware threads

    std::uint32_t gpus = 4; ///< parsed only when acceptGpus
    std::string jsonOut;    ///< parsed only when acceptJson
    std::string observeDir; ///< parsed only when acceptObserve

    /**
     * Shaping policies to sweep (--shape, comma-separated; parsed
     * only when acceptShape). The default single None entry keeps
     * the historical matrix — and its output — unchanged.
     */
    std::vector<ShapingPolicy> shapes{ShapingPolicy::None};
    /**
     * Workload filter (--workloads, comma-separated; parsed only
     * when acceptWorkloads). Empty = every paper workload.
     */
    std::vector<std::string> workloads;

    /**
     * Fabric for every queued run (--topology, parsed only when
     * acceptTopology; switch/fabric knobs keep their defaults).
     * Benches apply it to the configs they queue; the default p2p
     * keeps the historical matrix byte-identical.
     */
    TopologyConfig topology{};

    /**
     * Host crypto tier for every queued run (--crypto-impl). Speed
     * knob only; any setting produces bit-identical sweep output.
     */
    crypto::CryptoImpl cryptoImpl = crypto::CryptoImpl::Auto;

    /**
     * Event-kernel worker threads per queued run (--sim-threads).
     * 0 = auto (MGSEC_SIM_THREADS, else serial). Speeds up a single
     * large simulation, where --jobs only helps across independent
     * runs; op counts are thread-count invariant (see
     * ExperimentConfig::simThreads).
     */
    std::uint32_t simThreads = 0;

    bool acceptGpus = false;
    bool acceptJson = false;
    bool acceptObserve = false;
    bool acceptShape = false;
    bool acceptWorkloads = false;
    bool acceptTopology = false;

    /**
     * Parse argv into *this (current members are the defaults).
     * Prints usage and exits on --help (status 0) or on any unknown
     * flag, missing value, or out-of-range value (status 2).
     */
    void parseArgs(int argc, char **argv);

    void printUsage(std::ostream &os, const char *argv0) const;
};

/**
 * Seed-averaged metrics of one configuration vs. its unsecure
 * baseline.
 */
struct NormResult
{
    double time = 0.0;
    double traffic = 0.0;
    RunResult sample; ///< last-seed secure run (for OTP stats etc.)
};

/**
 * A batch of measurements executed in parallel. Queue everything
 * with addNormalized()/addRaw(), call run() once, then read results
 * through the returned handles.
 */
class Sweep
{
  public:
    explicit Sweep(const SweepArgs &args);
    Sweep(double scale, int seeds, unsigned jobs);

    /**
     * Queue a seed-averaged normalized measurement of @p cfg
     * (cfg.scale and cfg.seed are overridden by the sweep's scale
     * and seed loop, mirroring the historical runNormalized()).
     */
    std::size_t addNormalized(const std::string &workload,
                              ExperimentConfig cfg);

    /**
     * Queue one raw run. Only cfg.scale is overridden; cfg.seed is
     * used verbatim — the sweep's seed count deliberately does NOT
     * apply (pattern/burstiness figures show one representative run,
     * not a seed average).
     */
    std::size_t addRaw(const std::string &workload,
                       ExperimentConfig cfg);

    /**
     * Write per-job observability files into @p dir (created if
     * missing): METRICS_<hash>.json, TRACE_<hash>.json and
     * STATS_<hash>.json per distinct configuration, where <hash> is
     * configHash(workload, cfg), plus an OBSERVE_INDEX.json manifest
     * mapping each hash back to its configKey(). Hash-tagged names
     * keep parallel jobs from ever clobbering each other's files.
     * Call before run().
     */
    void setObservability(const std::string &dir,
                          Cycles interval = 1000);

    /** Execute everything queued; blocks until all results are in. */
    void run();

    const NormResult &normalized(std::size_t handle) const;
    const RunResult &raw(std::size_t handle) const;

    /** Distinct unsecure baselines actually simulated by run(). */
    std::uint64_t baselineRuns() const { return baseline_runs_; }
    /** Baseline requests served from the memoization cache. */
    std::uint64_t baselineHits() const { return baseline_hits_; }

    /** Worker threads run() used (resolved after run()). */
    unsigned jobs() const { return resolved_jobs_; }

  private:
    struct NormRequest
    {
        std::string workload;
        ExperimentConfig cfg;
        NormResult result;
    };
    struct RawRequest
    {
        std::string workload;
        ExperimentConfig cfg;
        RunResult result;
    };

    double scale_;
    int seeds_;
    unsigned jobs_;
    crypto::CryptoImpl crypto_impl_ = crypto::CryptoImpl::Auto;
    std::uint32_t sim_threads_ = 0;
    unsigned resolved_jobs_ = 0;
    bool ran_ = false;

    std::string observe_dir_;
    Cycles observe_interval_ = 1000;

    std::vector<NormRequest> norm_;
    std::vector<RawRequest> raw_;

    std::uint64_t baseline_runs_ = 0;
    std::uint64_t baseline_hits_ = 0;
};

} // namespace mgsec

#endif // MGSEC_CORE_SWEEP_HH
