/**
 * @file
 * Plain-text table formatting for the bench harnesses that
 * regenerate the paper's tables and figures.
 */

#ifndef MGSEC_CORE_REPORT_HH
#define MGSEC_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mgsec
{

/** A simple aligned-column text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format as a percentage ("12.3%"). */
std::string fmtPct(double frac, int precision = 1);

/** Human-readable byte count ("2.75 KB"). */
std::string fmtBytes(double bytes);

} // namespace mgsec

#endif // MGSEC_CORE_REPORT_HH
