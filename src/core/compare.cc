#include "core/compare.hh"

#include <cmath>
#include <map>
#include <set>

#include "core/json_in.hh"

namespace mgsec
{

void
flatten(const JsonValue &v, const std::string &path,
        std::vector<std::pair<std::string, double>> &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Number:
        out.emplace_back(path, v.number);
        break;
      case JsonValue::Kind::Object: {
        std::map<std::string, std::size_t> seen;
        for (const auto &[k, child] : v.fields) {
            if (k == "buckets")
                continue;
            const std::size_t n = ++seen[k];
            const std::string name =
                n == 1 ? k : k + "#" + std::to_string(n);
            flatten(child, path.empty() ? name : path + "." + name,
                    out);
        }
        break;
      }
      case JsonValue::Kind::Array:
        for (std::size_t i = 0; i < v.items.size(); ++i)
            flatten(v.items[i],
                    path + "[" + std::to_string(i) + "]", out);
        break;
      default:
        break;
    }
}

bool
ignoredPath(const std::string &path,
            const std::vector<std::string> &ignores)
{
    for (const std::string &s : ignores) {
        if (path.find(s) != std::string::npos)
            return true;
    }
    return false;
}

const std::vector<std::string> &
defaultCompareIgnores()
{
    // The first six are the historical throughput/wall-clock keys;
    // the rest cover the self-profiler (PROF documents flattened as
    // phases./pdes., prof-prefixed keys elsewhere) and the sweep
    // progress telemetry. All substring-matched against dotted
    // paths, so "busyNs" also catches sumBusyNs/sumMaxBusyNs.
    static const std::vector<std::string> ignores = {
        "wallSec",  "PerSec",   "MBps",   "perSec", "speedup",
        "overheadPct", "prof",  "phases.", "pdes.", "wallNs",
        "busyNs",   "etaSec",
    };
    return ignores;
}

void
compareDocs(const JsonValue &oldDoc, const JsonValue &newDoc,
            const std::string &prefix, double threshold,
            const std::vector<std::string> &ignores,
            CompareStats &cs)
{
    std::vector<std::pair<std::string, double>> a, b;
    flatten(oldDoc, prefix, a);
    flatten(newDoc, prefix, b);
    std::map<std::string, double> bmap(b.begin(), b.end());
    std::set<std::string> matched;
    for (const auto &[path, ov] : a) {
        if (ignoredPath(path, ignores))
            continue;
        auto it = bmap.find(path);
        if (it == bmap.end()) {
            ++cs.onlyOld;
            continue;
        }
        matched.insert(path);
        ++cs.checked;
        const double nv = it->second;
        double delta = 0.0;
        if (ov != 0.0)
            delta = (nv - ov) / std::fabs(ov) * 100.0;
        else if (nv != 0.0)
            delta = nv > 0 ? 1e9 : -1e9; // appeared from zero
        if (std::fabs(delta) > threshold)
            cs.flagged.push_back(FlaggedLeaf{path, ov, nv, delta});
    }
    for (const auto &[path, nv] : b) {
        if (!ignoredPath(path, ignores) && !matched.count(path))
            ++cs.onlyNew;
    }
}

} // namespace mgsec
