/**
 * @file
 * Command-line / config-file option handling for the mgsec_run
 * tool (and any embedding application).
 *
 * Options are `--key value` pairs on the command line or `key =
 * value` lines in a config file (`--config FILE`; '#' comments).
 * Command-line settings override file settings.
 */

#ifndef MGSEC_CORE_OPTIONS_HH
#define MGSEC_CORE_OPTIONS_HH

#include <iosfwd>
#include <string>

#include "core/experiment.hh"

namespace mgsec
{

/** Parse a scheme name ("private", "Dynamic", ...). */
bool parseScheme(const std::string &text, OtpScheme &out);

/** Parse a shaping-policy name ("none", "constant-rate", ...). */
bool parseShaping(const std::string &text, ShapingPolicy &out);

/**
 * @name Strict numeric parsing
 * The entire string must convert (no trailing junk, no empty string)
 * and the value must lie in [lo, hi]; @p out is untouched on failure.
 * Shared by the bench/tool argument parsers and RunOptions.
 */
/// @{
bool parseNumber(const std::string &text, double lo, double hi,
                 double &out);
bool parseNumber(const std::string &text, long long lo, long long hi,
                 long long &out);
bool parseNumber(const std::string &text, unsigned long long lo,
                 unsigned long long hi, unsigned long long &out);
/// @}

struct RunOptions
{
    ExperimentConfig exp;
    std::string workload = "mm";
    /** Also run the unsecure baseline and print normalized numbers. */
    bool baseline = true;
    /** Dump per-component statistics to this file ("-" = stdout). */
    std::string statsOut;
    /** Write the RunResult as JSON to this file ("-" = stdout). */
    std::string jsonOut;
    /** Record each GPU's op stream to <prefix>.gpu<N>.trace. */
    std::string traceRecord;
    /** Replay GPU 1's stream from this trace file. */
    std::string tracePlay;
    /**
     * Bundle every observability sink into one directory using the
     * sweep's naming scheme (METRICS_/TRACE_/STATS_/HIST_/WIRE_
     * <confighash>.json plus OBSERVE_INDEX.json). Mutually
     * exclusive with the explicit per-sink path options.
     */
    std::string observeDir;

    /**
     * Resolve observeDir into concrete sink paths (after parse(),
     * before running). Rejects conflicting explicit paths and
     * creates the directory.
     * @retval false on conflict or unusable directory (reported to
     *         stderr).
     */
    bool finalizeObservability();

    /**
     * Pair --prof-out with an explicitly given --trace-out by
     * turning the trace's "host" (wall-clock) process track on.
     * Call after parse() but before finalizeObservability(), so an
     * observe-dir bundle's TRACE_ file — which tests byte-compare
     * across runs and thread counts — never grows wall-clock spans.
     */
    void finalizeProfiler();

    /**
     * Apply one key=value setting.
     * @retval false the key is unknown (error reported to stderr).
     */
    bool set(const std::string &key, const std::string &value);

    /** Load `key = value` lines. @retval false on any bad line. */
    bool loadFile(const std::string &path);

    /**
     * Parse argv.
     * @retval false on error or after printing --help.
     */
    bool parse(int argc, char **argv);

    static void usage(std::ostream &os);
};

} // namespace mgsec

#endif // MGSEC_CORE_OPTIONS_HH
