#include "core/json_in.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mgsec
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : fields) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        if (!value(out) || (skipWs(), pos_ != text_.size())) {
            if (error_.empty())
                error_ = "trailing characters after document";
            std::ostringstream os;
            os << "line " << line_ << ": " << error_;
            err = os.str();
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const char *msg)
    {
        if (error_.empty())
            error_ = msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n')
                ++line_;
            else if (c != ' ' && c != '\t' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("bad literal");
        pos_ += len;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        // Hard depth cap: the recursion tracks document nesting, so
        // a pathological input cannot blow the stack.
        if (++depth_ > 256)
            return fail("nesting deeper than 256 levels");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        bool ok = false;
        switch (text_[pos_]) {
          case '{':
            ok = object(out);
            break;
          case '[':
            ok = array(out);
            break;
          case '"':
            out.kind = JsonValue::Kind::String;
            ok = string(out.string);
            break;
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            ok = literal("true", 4);
            break;
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            ok = literal("false", 5);
            break;
          case 'n':
            out.kind = JsonValue::Kind::Null;
            ok = literal("null", 4);
            break;
          default:
            ok = number(out);
            break;
        }
        --depth_;
        return ok;
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            JsonValue v;
            if (!value(v))
                return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue v;
            if (!value(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    hex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            unsigned d = 0;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = 10 + (c - 'a');
            else if (c >= 'A' && c <= 'F')
                d = 10 + (c - 'A');
            else
                return fail("bad \\u escape digit");
            out = out * 16 + d;
        }
        pos_ += 4;
        return true;
    }

    bool
    string(std::string &out)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!hex4(cp))
                    return false;
                // Surrogate pair -> one code point.
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    pos_ + 1 < text_.size() &&
                    text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    unsigned lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("unpaired surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (errno != 0 || end != tok.c_str() + tok.size())
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int depth_ = 0;
    std::string error_;
};

} // anonymous namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string &err)
{
    return Parser(text).parse(out, err);
}

bool
jsonParseFile(const std::string &path, JsonValue &out,
              std::string &err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return jsonParse(ss.str(), out, err);
}

} // namespace mgsec
