/**
 * @file
 * The full simulated system: CPU + N GPUs + interconnect + unified
 * memory + secure channels, assembled per Table III and driven by a
 * workload profile.
 */

#ifndef MGSEC_CORE_SYSTEM_HH
#define MGSEC_CORE_SYSTEM_HH

#include <array>
#include <atomic>
#include <deque>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gpu/node.hh"
#include "mem/page_table.hh"
#include "net/network.hh"
#include "secure/security_config.hh"
#include "sim/domain.hh"
#include "sim/event_queue.hh"
#include "sim/latency_attr.hh"
#include "sim/metric_sampler.hh"
#include "sim/profiler.hh"
#include "sim/trace_sink.hh"
#include "sim/wire_observer.hh"
#include "workload/profile.hh"

namespace mgsec
{

/**
 * Observability sinks for one run. Empty paths disable a sink; with
 * every sink disabled the only run-time cost is one null-pointer
 * test per trace hook (the zero-allocation hot path is untouched).
 */
struct ObserveConfig
{
    /** METRICS time-series JSON (MetricSampler ring flush). */
    std::string metricsOut;
    /** Chrome trace_event JSON (chrome://tracing / Perfetto). */
    std::string traceOut;
    /** Full stats dump as one JSON object. */
    std::string statsJsonOut;
    /** Standalone latency-attribution histogram JSON. */
    std::string histJsonOut;
    /** Passive wire-observer dump (WIRE_<hash>.json schema). */
    std::string wireOut;
    /** Host-side self-profiler dump (PROF_<hash>.json schema). */
    std::string profOut;
    /**
     * Mirror profiler spans into the Chrome trace as a second
     * ("host", pid 1) process track. Off by default even when both
     * the profiler and the trace are on, because host spans carry
     * wall-clock timestamps and would break the trace's byte-for-
     * byte determinism contract (run-to-run and across thread
     * counts). Requires profOut and traceOut.
     */
    bool profHostTrack = false;
    /** Cycles between metric samples. */
    Cycles metricsInterval = 1000;
    /** Metric ring rows kept (oldest rows drop beyond this). */
    std::uint32_t metricsRing = 4096;
    /**
     * Collect per-message lifecycle histograms even without a
     * histJsonOut file (they then ride statsJsonOut / dumpStats).
     */
    bool latencyAttr = false;

    bool
    any() const
    {
        return !metricsOut.empty() || !traceOut.empty() ||
               !statsJsonOut.empty() || !histJsonOut.empty() ||
               !wireOut.empty() || !profOut.empty() || latencyAttr;
    }
};

struct SystemConfig
{
    std::uint32_t numGpus = 4;

    /**
     * Table III quotes aggregate channel rates (PCIe v4 32 GB/s,
     * NVLink2-class 50 GB/s); at 1 GHz each direction of the
     * full-duplex channel carries half, and cache-block-sized
     * transfers only realize ~70-75 % of that as payload bandwidth
     * (flit/TLP framing). Each GPU has a dedicated PCIe channel to
     * the CPU and one NVLink port shared across peers.
     */
    LinkParams pcie{12.0, 500};
    LinkParams nvlink{18.0, 100};

    /**
     * Fabric topology carrying the links above (net/topology.hh).
     * The default p2p fabric reproduces the paper's target system
     * byte-identically; nvswitch/hier model the scale-out machines
     * of the 8/16/64-GPU studies.
     */
    TopologyConfig topology{};

    NodeParams gpu{
        HbmParams{512.0, 120},
        CacheParams{2 * 1024 * 1024, 16, kBlockBytes, 20},
        20,
        256, // 64 CUs x 4 outstanding remote misses each
        64,  // compute units (Table III)
        ComputeUnitParams{},
        TlbParams{1024, 8},
        100,
    };
    NodeParams cpu{
        HbmParams{64.0, 160},
        CacheParams{8 * 1024 * 1024, 16, kBlockBytes, 30},
        30,
        64,
        0, // no CUs: the host only serves
        ComputeUnitParams{},
        TlbParams{1024, 8},
        100,
    };

    PageTableParams pageTable{};
    SecurityConfig security{};

    std::uint64_t seed = 1;
    /** Safety valve: abort runs that exceed this many cycles. */
    Tick maxCycles = 500'000'000;
    /**
     * Expected peak of simultaneously-pending events; pre-sizes the
     * event queue so steady-state scheduling never reallocates.
     * 0 = derive from the node count and outstanding-request windows.
     */
    std::uint64_t expectedEvents = 0;
    /** >0: sample GPU 1's communication mix every N cycles. */
    Cycles commSampleInterval = 0;

    /**
     * Worker threads for the domain-sharded kernel. 1 runs the exact
     * legacy serial path (byte-identical artifacts); >= 2 shards the
     * kernel into one event domain per GPU plus a host/fabric domain,
     * synchronized conservatively at barrier windows of the minimum
     * cross-domain link latency. 0 = auto: the MGSEC_SIM_THREADS
     * environment variable if set, else 1. Thread counts beyond the
     * domain count (numGpus + 1) are clamped.
     */
    std::uint32_t simThreads = 0;

    /** Observability sinks (all disabled by default). */
    ObserveConfig observe{};

    std::uint32_t numNodes() const { return numGpus + 1; }
};

/** One sampling point of GPU 1's communication mix (Fig. 13/14). */
struct CommSample
{
    Tick tick = 0;
    std::vector<std::uint64_t> sendsTo; ///< delta per destination
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
};

/** Everything a bench needs from one simulation. */
struct RunResult
{
    std::string workload;
    bool completed = false;
    Tick cycles = 0;

    Bytes totalBytes = 0;
    std::array<Bytes, kNumTrafficClasses> classBytes{};
    std::uint64_t packets = 0;

    OtpStats otp;
    std::uint64_t remoteOps = 0;
    std::uint64_t localOps = 0;
    std::uint64_t migrations = 0;
    std::uint64_t standaloneAcks = 0;
    double avgRemoteLatency = 0.0;

    /** Non-overlapping per-pair accumulation times (Fig. 15/16). */
    std::vector<Cycles> burst16;
    std::vector<Cycles> burst32;

    /** GPU 1 communication mix over time (Fig. 13/14). */
    std::vector<CommSample> commSeries;

    /** @name Sharded-kernel run accounting (1/0s on serial runs). */
    /// @{
    std::uint32_t simThreads = 1;
    std::uint64_t pdesWindows = 0;
    std::uint64_t domainCrossings = 0;
    std::uint64_t windowStalls = 0;
    /** Fresh packet-pool allocations summed over worker threads. */
    std::uint64_t poolFreshPackets = 0;
    std::uint64_t poolFreshPayloads = 0;
    /// @}
};

class MultiGpuSystem
{
  public:
    MultiGpuSystem(const SystemConfig &cfg,
                   const WorkloadProfile &profile);

    /**
     * Flushes the observability sinks if run() never got to (an
     * exception mid-run, a bailing driver): partial artifacts beat
     * silently truncated ones.
     */
    ~MultiGpuSystem();

    /** Run to completion (or the cycle cap) and harvest results. */
    RunResult run();

    /**
     * Substitute a GPU's traffic source before run() — e.g. replay
     * a recorded trace instead of the synthetic profile.
     */
    void replaceWorkload(NodeId gpu, std::unique_ptr<OpSource> src);

    /** Dump every component's statistics ("component.stat value"). */
    void dumpStats(std::ostream &os) const;

    /** Dump every component's statistics as one JSON object. */
    void dumpStatsJson(std::ostream &os) const;

    /** Zero every registered stat (explicit per-job collection). */
    void resetStats();

    /**
     * Attach a Chrome-trace sink writing to @p os. Call before
     * run(); the stream must outlive the system.
     */
    void enableTrace(std::ostream &os);

    /**
     * Register the standard gauge set (pad occupancy per (pair,
     * direction), EWMA weights, batch fill, replay span, in-flight
     * packets, every Scalar stat) on a fresh sampler. Sampling
     * starts inside run().
     */
    void enableMetrics(Cycles interval, std::size_t capacity);

    /** Flush collected metric samples as JSON. */
    void writeMetricsJson(std::ostream &os) const;

    /**
     * Attach the passive wire observer to the network. Call before
     * run(); a null observer pointer in the Network is the entire
     * cost when disabled. Idempotent.
     */
    void enableWireObserver();

    /**
     * Attach the per-message latency-attribution collector. Call
     * before run() — and before enableMetrics() if the percentile
     * gauge columns are wanted. Stamping/folding costs nothing when
     * this is never called (one null test per hook).
     */
    void enableAttribution();

    /**
     * Attach the host-side self-profiler (sim/profiler.hh). Call
     * before run(); idempotent. Never touches sim results or
     * deterministic artifacts — its wall-clock data goes only to
     * observe.profOut (and, with profHostTrack, a separate trace
     * process track).
     */
    void enableProfiler();

    const TraceSink *traceSink() const { return trace_.get(); }
    const MetricSampler *metrics() const { return sampler_.get(); }
    const Profiler *profiler() const { return prof_.get(); }
    const WireObserver *wireObserver() const { return wire_.get(); }
    const LatencyAttribution *attribution() const
    {
        return attr_.get();
    }

    EventQueue &eventq() { return eq_; }
    Network &network() { return *net_; }
    PageTable &pageTable() { return *pt_; }
    Node &node(NodeId id) { return *nodes_[id]; }
    std::uint32_t numNodes() const { return cfg_.numNodes(); }

    /** Resolved worker-thread count (config / env, clamped). */
    std::uint32_t simThreads() const { return sim_threads_; }
    /** True when the run uses the domain-sharded kernel. */
    bool sharded() const { return sim_threads_ > 1; }
    /** Events executed across every domain queue. */
    std::uint64_t executedEvents() const;

  private:
    void recordBlock(NodeId src, NodeId dst, Tick t);
    void sampleComm(Tick tick, bool reschedule);
    /** The sharded-kernel main loop (run() with simThreads >= 2). */
    void runParallel();
    /** Open the file-backed sinks cfg_.observe asks for. */
    void openObservability();
    /** Flush and close them at the end of run(). */
    void flushObservability();

    SystemConfig cfg_;
    WorkloadProfile profile_;
    EventQueue eq_;
    /**
     * Event domains of a sharded run: [0] wraps eq_ (host/fabric),
     * [1..numGpus] own one queue per GPU node. Empty on serial runs
     * so the legacy path constructs nothing new.
     */
    std::vector<std::unique_ptr<Domain>> domains_;
    std::uint32_t sim_threads_ = 1;
    std::unique_ptr<Network> net_;
    std::unique_ptr<PageTable> pt_;
    std::vector<std::unique_ptr<Node>> nodes_;

    /**
     * Declared before trace_: ~TraceSink seals the JSON array, so
     * the stream it writes to must still be alive when the sink is
     * destroyed (members destruct in reverse declaration order).
     */
    std::unique_ptr<std::ofstream> trace_file_;
    std::unique_ptr<TraceSink> trace_;
    std::unique_ptr<MetricSampler> sampler_;
    std::unique_ptr<LatencyAttribution> attr_;
    std::unique_ptr<WireObserver> wire_;
    std::unique_ptr<Profiler> prof_;
    /** openObservability() ran (destructor may need to flush). */
    bool observ_opened_ = false;
    /** flushObservability() already ran (flush exactly once). */
    bool observ_flushed_ = false;

    /** Atomic: GPU done callbacks fire on domain threads. */
    std::atomic<std::uint32_t> done_gpus_{0};

    /** Burst accumulation state per (src, dst). */
    struct BurstState
    {
        std::deque<Tick> ticks;
    };
    std::vector<BurstState> burst_state_;
    std::vector<Cycles> burst16_;
    std::vector<Cycles> burst32_;
    /**
     * Sharded runs append bursts per source node (the only writer of
     * a (src, *) row is src's domain thread) and concatenate in node
     * order at harvest — deterministic without a lock. Serial runs
     * keep the legacy shared vectors, preserving their global
     * interleave order byte-for-byte.
     */
    std::vector<std::vector<Cycles>> burst16_by_src_;
    std::vector<std::vector<Cycles>> burst32_by_src_;

    std::vector<std::uint64_t> prev_sends_to_;
    std::uint64_t prev_recvs_ = 0;
    std::vector<CommSample> comm_series_;

    /** @name Sharded-kernel run state */
    /// @{
    std::uint64_t pdes_windows_ = 0;
    std::uint64_t pdes_crossings_ = 0;
    std::uint64_t pdes_stalls_ = 0;
    /** Next due ticks of the barrier-driven samplers. */
    Tick metrics_due_ = 0;
    Tick comm_due_ = 0;
    /** max over domains of eq().now() when the kernel exited. */
    Tick parallel_end_ = 0;
    /** Worker packet-pool deltas, accumulated under pool_mu_. */
    std::mutex pool_mu_;
    std::uint64_t pool_fresh_packets_ = 0;
    std::uint64_t pool_fresh_payloads_ = 0;
    /// @}
};

} // namespace mgsec

#endif // MGSEC_CORE_SYSTEM_HH
