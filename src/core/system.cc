#include "core/system.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "net/packet_pool.hh"
#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/parallel_kernel.hh"

namespace mgsec
{

namespace
{

/**
 * 0 = auto: MGSEC_SIM_THREADS if set (mirroring the
 * MGSEC_CRYPTO_IMPL override), else the serial kernel. Clamped to
 * the domain count — extra threads would only idle at barriers.
 */
std::uint32_t
resolveSimThreads(std::uint32_t cfg_threads, std::uint32_t num_domains)
{
    std::uint64_t t = cfg_threads;
    if (t == 0) {
        t = 1;
        if (const char *env = std::getenv("MGSEC_SIM_THREADS")) {
            char *end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end != env && *end == '\0' && v >= 1 && v <= 256) {
                t = v;
            } else {
                warn("ignoring invalid MGSEC_SIM_THREADS='%s'", env);
            }
        }
    }
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(t, num_domains));
}

} // namespace

MultiGpuSystem::MultiGpuSystem(const SystemConfig &cfg,
                               const WorkloadProfile &profile)
    : cfg_(cfg), profile_(profile)
{
    const std::uint32_t n = cfg_.numNodes();
    // Select the host crypto tier before any Aes128/GhashKey is
    // built (process-global; last system constructed wins, which is
    // fine — every tier computes identical bytes).
    crypto::setCryptoImpl(cfg_.security.cryptoImpl);
    // Pre-size the event queue: the pending population is bounded by
    // each node's outstanding-request window plus per-peer ACK/batch
    // timers and in-flight link deliveries; 2x covers lazily
    // cancelled leftovers still parked in the heap.
    const std::uint64_t window =
        std::max(cfg_.gpu.maxOutstanding, cfg_.cpu.maxOutstanding);
    std::uint64_t hint = cfg_.expectedEvents;
    if (hint == 0)
        hint = static_cast<std::uint64_t>(n) * (window + 64) * 2;
    eq_.reserve(hint);

    sim_threads_ = resolveSimThreads(cfg_.simThreads, n);
    if (sharded()) {
        // One event domain per GPU node plus the host/fabric domain
        // (CPU + network + page table on the legacy queue). Wire
        // hops are the only cross-domain edges, so the Network is
        // the explicit cross-domain channel (capture mode below).
        domains_.reserve(n);
        domains_.push_back(std::make_unique<Domain>(0, eq_));
        // A GPU domain hosts one node: its outstanding window plus
        // per-peer timers and in-flight deliveries landing in its
        // queue. 4x slack keeps the no-reallocation guarantee that
        // the serial queue gets from the full-system hint.
        const std::uint64_t per = (window + 64) * 4;
        for (NodeId id = 1; id < n; ++id) {
            auto d = std::make_unique<Domain>(id);
            d->eq().reserve(per);
            domains_.push_back(std::move(d));
        }
        burst16_by_src_.resize(n);
        burst32_by_src_.resize(n);
    }

    net_ = std::make_unique<Network>("net", eq_, n, cfg_.pcie,
                                     cfg_.nvlink, cfg_.topology);
    pt_ = std::make_unique<PageTable>("pt", eq_, cfg_.pageTable, n);
    if (sharded()) {
        net_->setParallelCapture(true);
        pt_->setConcurrent(true);
    }

    nodes_.resize(n);
    for (NodeId id = 0; id < n; ++id) {
        const bool is_cpu = id == 0;
        const NodeParams &np = is_cpu ? cfg_.cpu : cfg_.gpu;
        const std::string nm =
            is_cpu ? std::string("cpu") : strformat("gpu%u", id);
        EventQueue &neq = sharded() ? domains_[id]->eq() : eq_;
        nodes_[id] = std::make_unique<Node>(
            nm, neq, id, *net_, *pt_, cfg_.security, np);
        if (!is_cpu) {
            nodes_[id]->attachWorkload(std::make_unique<TraceSource>(
                profile_, id, n, cfg_.seed));
            nodes_[id]->setOnDone([this]() { ++done_gpus_; });
        }
        nodes_[id]->channel().setBlockObserver(
            [this, id](NodeId dst, Tick t) {
                recordBlock(id, dst, t);
            });
    }
    burst_state_.resize(static_cast<std::size_t>(n) * n);
    prev_sends_to_.assign(n, 0);
}

MultiGpuSystem::~MultiGpuSystem()
{
    // RAII flush: a run that threw (or a driver that bailed before
    // run() finished) still seals its trace/metrics/stats files into
    // parseable JSON instead of losing the buffered tail.
    if (observ_opened_ && !observ_flushed_)
        flushObservability();
}

void
MultiGpuSystem::recordBlock(NodeId src, NodeId dst, Tick t)
{
    BurstState &bs =
        burst_state_[static_cast<std::size_t>(src) * cfg_.numNodes() +
                     dst];
    // Non-overlapping windows: time for 16 (and 32) consecutive data
    // blocks on this pair to accumulate. Sharded runs append to
    // per-source vectors (only src's domain thread writes the
    // (src, *) rows), concatenated in node order at harvest.
    std::vector<Cycles> &b16 =
        sharded() ? burst16_by_src_[src] : burst16_;
    std::vector<Cycles> &b32 =
        sharded() ? burst32_by_src_[src] : burst32_;
    bs.ticks.push_back(t);
    if (bs.ticks.size() >= 32) {
        b32.push_back(bs.ticks.back() - bs.ticks.front());
        // The first 16 of this window already closed a 16-window.
        bs.ticks.clear();
    } else if (bs.ticks.size() == 16) {
        b16.push_back(bs.ticks.back() - bs.ticks.front());
    }
}

void
MultiGpuSystem::sampleComm(Tick tick, bool reschedule)
{
    const Node &g1 = *nodes_[1];
    CommSample s;
    s.tick = tick;
    s.sendsTo.resize(cfg_.numNodes(), 0);
    std::uint64_t sends = 0;
    for (NodeId d = 0; d < cfg_.numNodes(); ++d) {
        s.sendsTo[d] = g1.sendsTo()[d] - prev_sends_to_[d];
        sends += s.sendsTo[d];
        prev_sends_to_[d] = g1.sendsTo()[d];
    }
    std::uint64_t recvs_now = 0;
    for (NodeId d = 0; d < cfg_.numNodes(); ++d)
        recvs_now += g1.recvsFrom()[d];
    s.sends = sends;
    s.recvs = recvs_now - prev_recvs_;
    prev_recvs_ = recvs_now;
    comm_series_.push_back(std::move(s));

    if (reschedule && done_gpus_ < cfg_.numGpus) {
        eq_.scheduleIn(cfg_.commSampleInterval, [this]() {
            sampleComm(eq_.now(), true);
        });
    }
}

void
MultiGpuSystem::replaceWorkload(NodeId gpu,
                                std::unique_ptr<OpSource> src)
{
    MGSEC_ASSERT(gpu >= 1 && gpu < cfg_.numNodes(),
                 "only GPUs run workloads");
    nodes_[gpu]->attachWorkload(std::move(src));
}

void
MultiGpuSystem::dumpStats(std::ostream &os) const
{
    // Registered only when attribution is enabled, keeping the
    // figure-bench dumps byte-identical with profiling off (same
    // contract as the conditional ctrGaps registration).
    if (attr_)
        attr_->statGroup().dump(os);
    net_->statGroup().dump(os);
    pt_->statGroup().dump(os);
    for (const auto &n : nodes_) {
        n->statGroup().dump(os);
        n->channel().statGroup().dump(os);
        if (const PadTable *padt = n->channel().padTable())
            padt->statGroup().dump(os);
        n->l2().statGroup().dump(os);
        n->memory().statGroup().dump(os);
        const_cast<Node &>(*n).l2Tlb().statGroup().dump(os);
    }
}

void
MultiGpuSystem::dumpStatsJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    if (attr_)
        attr_->statGroup().dumpJson(w);
    net_->statGroup().dumpJson(w);
    pt_->statGroup().dumpJson(w);
    for (const auto &n : nodes_) {
        n->statGroup().dumpJson(w);
        n->channel().statGroup().dumpJson(w);
        if (const PadTable *padt = n->channel().padTable())
            padt->statGroup().dumpJson(w);
        n->l2().statGroup().dumpJson(w);
        n->memory().statGroup().dumpJson(w);
        const_cast<Node &>(*n).l2Tlb().statGroup().dumpJson(w);
    }
    w.endObject();
    os << "\n";
}

void
MultiGpuSystem::resetStats()
{
    if (attr_)
        attr_->reset();
    net_->statGroup().resetAll();
    pt_->statGroup().resetAll();
    for (auto &n : nodes_) {
        n->statGroup().resetAll();
        n->channel().statGroup().resetAll();
        if (PadTable *padt = n->channel().padTable())
            padt->statGroup().resetAll();
        n->l2().statGroup().resetAll();
        n->memory().statGroup().resetAll();
        n->l2Tlb().statGroup().resetAll();
    }
}

void
MultiGpuSystem::enableTrace(std::ostream &os)
{
    MGSEC_ASSERT(!trace_, "trace sink already attached");
    trace_ = std::make_unique<TraceSink>(os);
    eq_.setTraceSink(trace_.get());
    if (sharded()) {
        // Named lanes for the sharded kernel's traces: without the
        // metadata, about:tracing shows bare tids. Serial traces
        // stay byte-identical to their historical form.
        trace_->metadata(0, "process_name", "mgsec " + profile_.name);
        for (const auto &n : nodes_)
            trace_->metadata(n->nodeId(), "thread_name", n->name());
    }
}

void
MultiGpuSystem::enableMetrics(Cycles interval, std::size_t capacity)
{
    MGSEC_ASSERT(!sampler_, "metric sampler already attached");
    sampler_ = std::make_unique<MetricSampler>(
        eq_, interval, capacity,
        [this]() { return done_gpus_ < cfg_.numGpus; });
    MetricSampler &ms = *sampler_;

    ms.addGauge("eq.pending", [this](Tick) {
        double p = static_cast<double>(eq_.pending());
        // Sharded runs: the pending population spans every domain
        // queue (domain 0 wraps eq_, already counted above).
        for (std::size_t d = 1; d < domains_.size(); ++d)
            p += static_cast<double>(domains_[d]->eq().pending());
        return p;
    });
    ms.addGauge("net.inFlight", [this](Tick) {
        return static_cast<double>(net_->inFlight());
    });
    if (sharded()) {
        // Window-sync overhead pair: how much cross-domain traffic
        // the barriers replay vs how often a domain sat idle inside
        // a window other domains were executing.
        ms.addGauge("pdes.domainCrossings", [this](Tick) {
            return static_cast<double>(pdes_crossings_);
        });
        ms.addGauge("pdes.windowStalls", [this](Tick) {
            return static_cast<double>(pdes_stalls_);
        });
    }

    for (auto &nptr : nodes_) {
        Node &n = *nptr;
        const std::string nm = n.name();
        SecureChannel &ch = n.channel();

        ms.addGauge(nm + ".replay.outstanding", [&ch](Tick) {
            return static_cast<double>(
                ch.replayWindow().outstandingTotal());
        });

        if (const PadTable *ptab = ch.padTable()) {
            // Pad-buffer occupancy per (pair, direction): the quota
            // the pair owns and how many of those pads exist now.
            for (NodeId p = 0; p < cfg_.numNodes(); ++p) {
                if (p == n.nodeId())
                    continue;
                const std::string peer = nodes_[p]->name();
                for (Direction d :
                     {Direction::Send, Direction::Recv}) {
                    const std::string base = nm + ".pads." +
                        directionName(d) + "." + peer;
                    ms.addGauge(base + ".quota", [ptab, p, d](Tick) {
                        return static_cast<double>(
                            ptab->padQuota(p, d));
                    });
                    ms.addGauge(base + ".ready",
                                [ptab, p, d](Tick t) {
                        return static_cast<double>(
                            ptab->padsReady(p, d, t));
                    });
                }
            }
            if (const auto *dyn =
                    dynamic_cast<const DynamicPadTable *>(ptab)) {
                ms.addGauge(nm + ".ewma.S", [dyn](Tick) {
                    return dyn->sendWeight();
                });
                for (NodeId p = 0; p < cfg_.numNodes(); ++p) {
                    if (p == n.nodeId())
                        continue;
                    const std::string peer = nodes_[p]->name();
                    for (Direction d :
                         {Direction::Send, Direction::Recv}) {
                        ms.addGauge(nm + ".ewma." +
                                        directionName(d) + "." + peer,
                                    [dyn, p, d](Tick) {
                            return dyn->peerWeight(p, d);
                        });
                    }
                }
            }
        }

        if (const BatchAssembler *ba = ch.assembler()) {
            ms.addGauge(nm + ".batch.open", [ba](Tick) {
                return static_cast<double>(ba->openCount());
            });
            ms.addGauge(nm + ".batch.fill", [ba](Tick) {
                return static_cast<double>(ba->fillTotal());
            });
        }
        if (const MsgMacStorage *mss = ch.macStorage()) {
            ms.addGauge(nm + ".macstore.parked", [mss](Tick) {
                return static_cast<double>(mss->occupancyTotal());
            });
        }
        if (const PadTable *ptab = ch.padTable()) {
            ms.addGauge(nm + ".pads.wasted", [ptab](Tick) {
                return static_cast<double>(
                    ptab->wastedGenerations());
            });
        }
    }

    if (attr_) {
        // Running-percentile columns: each sample reads the
        // histogram accumulated so far (call enableAttribution()
        // first, as openObservability() does).
        const LatencyAttribution *attr = attr_.get();
        for (std::size_t l = 0; l < attr_->numLinks(); ++l) {
            const LinkType link = static_cast<LinkType>(l);
            const std::string base =
                std::string("attr.") + linkTypeName(link);
            ms.addGauge(base + ".e2e.p50", [attr, link](Tick) {
                return attr->e2e(link).percentile(50.0);
            });
            ms.addGauge(base + ".e2e.p99", [attr, link](Tick) {
                return attr->e2e(link).percentile(99.0);
            });
            ms.addGauge(base + ".padWait.p99", [attr, link](Tick) {
                return attr->stage(link, 1).percentile(99.0);
            });
            ms.addGauge(base + ".recvVerify.p99",
                        [attr, link](Tick) {
                return attr->stage(link, 4).percentile(99.0);
            });
        }
    }

    // One column per Scalar stat of the traffic- and security-
    // critical groups (cache/memory scalars stay in the stats dump).
    ms.addScalars(net_->statGroup());
    for (auto &n : nodes_) {
        ms.addScalars(n->statGroup());
        ms.addScalars(n->channel().statGroup());
        if (const PadTable *ptab = n->channel().padTable())
            ms.addScalars(ptab->statGroup());
    }
}

void
MultiGpuSystem::writeMetricsJson(std::ostream &os) const
{
    MGSEC_ASSERT(sampler_ != nullptr, "metrics were never enabled");
    sampler_->writeJson(os);
}

void
MultiGpuSystem::enableAttribution()
{
    MGSEC_ASSERT(!attr_, "attribution already enabled");
    attr_ = std::make_unique<LatencyAttribution>(
        otpSchemeName(cfg_.security.scheme),
        net_->topology().numLinkClasses());
    eq_.setAttribution(attr_.get());
    if (sharded()) {
        // One shared collector across every domain, folding under an
        // internal mutex: histogram accumulation commutes, so the
        // values stay deterministic, and the conservation telescope
        // remains a single global identity.
        attr_->setConcurrent(true);
        for (std::size_t d = 1; d < domains_.size(); ++d)
            domains_[d]->eq().setAttribution(attr_.get());
    }
}

void
MultiGpuSystem::enableProfiler()
{
    if (prof_)
        return;
    // One span lane per kernel worker: the kernel pins domain d to
    // worker d % threads, so lane attribution must be built from the
    // same (already clamped) thread count to keep every lane
    // single-writer.
    const unsigned workers = sharded() ? sim_threads_ : 1;
    const unsigned doms =
        sharded() ? static_cast<unsigned>(domains_.size()) : 1;
    prof_ = std::make_unique<Profiler>(workers, doms);
    eq_.setProfiler(prof_.get());
    for (std::size_t d = 1; d < domains_.size(); ++d)
        domains_[d]->eq().setProfiler(prof_.get());
    prof_->start();
}

void
MultiGpuSystem::enableWireObserver()
{
    if (wire_)
        return;
    wire_ = std::make_unique<WireObserver>(cfg_.numNodes());
    if (cfg_.topology.kind != TopologyKind::P2p) {
        // Tag flows with the fabric's own link classes; the default
        // pcie/nvlink split already matches the p2p fabric, and
        // leaving it untouched keeps p2p WIRE artifacts
        // byte-identical.
        const Topology *topo = &net_->topology();
        std::vector<std::string> names;
        for (std::size_t l = 0; l < topo->numLinkClasses(); ++l)
            names.emplace_back(
                linkTypeName(static_cast<LinkType>(l)));
        wire_->setLinkClasses(
            std::move(names), [topo](NodeId src, NodeId dst) {
                return static_cast<std::size_t>(
                    topo->linkType(src, dst));
            });
    }
    net_->setWireObserver(wire_.get());
}

void
MultiGpuSystem::openObservability()
{
    observ_opened_ = true;
    observ_flushed_ = false;
    if ((cfg_.observe.latencyAttr ||
         !cfg_.observe.histJsonOut.empty()) &&
        !attr_)
        enableAttribution();
    if (!cfg_.observe.traceOut.empty() && !trace_) {
        trace_file_ =
            std::make_unique<std::ofstream>(cfg_.observe.traceOut);
        if (!*trace_file_) {
            warn("cannot open trace output '%s'",
                 cfg_.observe.traceOut.c_str());
            trace_file_.reset();
        } else {
            enableTrace(*trace_file_);
        }
    }
    if (!cfg_.observe.metricsOut.empty() && !sampler_)
        enableMetrics(cfg_.observe.metricsInterval,
                      cfg_.observe.metricsRing);
    if (!cfg_.observe.wireOut.empty())
        enableWireObserver();
    if (!cfg_.observe.profOut.empty()) {
        enableProfiler();
        if (cfg_.observe.profHostTrack && trace_)
            prof_->setHostTrack(trace_.get());
    }
}

void
MultiGpuSystem::flushObservability()
{
    observ_flushed_ = true;
    {
        // The profiler times the flush itself (it is real wall time
        // a sweep job spends off the hot path); the span must close
        // before the profiler's own outputs are drained and written.
        ProfSpan span(prof_.get(), 0, kProfSinkFlush);
        if (sampler_) {
            // Final snapshot so short runs and run tails are
            // captured.
            if (sharded() && parallel_end_ > 0)
                sampler_->sampleAt(parallel_end_);
            else
                sampler_->sampleNow();
            if (!cfg_.observe.metricsOut.empty()) {
                std::ofstream f(cfg_.observe.metricsOut);
                if (!f) {
                    warn("cannot open metrics output '%s'",
                         cfg_.observe.metricsOut.c_str());
                } else {
                    sampler_->writeJson(f);
                }
            }
        }
        if (!cfg_.observe.statsJsonOut.empty()) {
            std::ofstream f(cfg_.observe.statsJsonOut);
            if (!f) {
                warn("cannot open stats output '%s'",
                     cfg_.observe.statsJsonOut.c_str());
            } else {
                dumpStatsJson(f);
            }
        }
        if (attr_ && !cfg_.observe.histJsonOut.empty()) {
            std::ofstream f(cfg_.observe.histJsonOut);
            if (!f) {
                warn("cannot open histogram output '%s'",
                     cfg_.observe.histJsonOut.c_str());
            } else {
                attr_->writeJson(f);
            }
        }
        if (wire_ && !cfg_.observe.wireOut.empty()) {
            std::ofstream f(cfg_.observe.wireOut);
            if (!f) {
                warn("cannot open wire-observer output '%s'",
                     cfg_.observe.wireOut.c_str());
            } else {
                wire_->writeJson(f);
            }
        }
    }
    if (prof_) {
        // Threads are joined by now, so draining every lane's host
        // spans here is single-threaded; the trace must still be
        // open for them.
        for (unsigned l = 0; l < prof_->workers(); ++l)
            prof_->drainHostTrack(l);
        prof_->finish();
        if (!cfg_.observe.profOut.empty()) {
            std::ofstream f(cfg_.observe.profOut);
            if (!f) {
                warn("cannot open profiler output '%s'",
                     cfg_.observe.profOut.c_str());
            } else {
                prof_->writeJson(f);
            }
        }
    }
    if (trace_)
        trace_->finish();
}

std::uint64_t
MultiGpuSystem::executedEvents() const
{
    std::uint64_t total = eq_.executed();
    for (std::size_t d = 1; d < domains_.size(); ++d)
        total += domains_[d]->eq().executed();
    return total;
}

void
MultiGpuSystem::runParallel()
{
    // GPU domains buffer trace events privately; the coordinator
    // splices the buffers into the master sink at every barrier, in
    // domain order, so the merged file is run-to-run deterministic.
    if (trace_) {
        for (std::size_t d = 1; d < domains_.size(); ++d)
            domains_[d]->enableTraceBuffer();
    }
    if (sampler_)
        metrics_due_ = sampler_->interval();
    if (sampler_ && trace_) {
        // Counter tracks: mirror each barrier-driven sample into the
        // trace so gauges render as lanes next to the named threads.
        // Sharded-only, keeping serial trace artifacts byte-stable.
        sampler_->setTraceSink(trace_.get());
    }
    if (cfg_.commSampleInterval > 0)
        comm_due_ = cfg_.commSampleInterval;

    const std::uint64_t window =
        std::max(cfg_.gpu.maxOutstanding, cfg_.cpu.maxOutstanding);

    ParallelKernelConfig kc;
    kc.domains.reserve(domains_.size());
    for (auto &d : domains_)
        kc.domains.push_back(d.get());
    kc.threads = sim_threads_;
    kc.profiler = prof_.get();
    // Conservative lookahead: no domain can affect another sooner
    // than the fastest cross-domain wire of the selected fabric.
    kc.lookahead = net_->topology().minLatency();
    kc.maxCycles = cfg_.maxCycles;
    kc.done = [this]() { return done_gpus_ >= cfg_.numGpus; };
    kc.exchange = [this]() {
        return net_->replayCaptured(
            [this](NodeId dst) -> EventQueue & {
                return domains_[dst]->eq();
            });
    };

    // Each worker provisions its thread-local packet pool up front
    // (a worker cannot warm its free lists from packets released on
    // other threads) and reports its fresh-allocation delta at exit.
    const std::size_t preload = (window + 64) * 8;
    std::vector<PacketPool::Stats> base(sim_threads_);
    kc.workerStart = [&base, preload](unsigned w) {
        PacketPool::preload(preload, preload);
        base[w] = PacketPool::stats();
    };
    kc.workerEnd = [this, &base](unsigned w) {
        const PacketPool::Stats s = PacketPool::stats();
        std::lock_guard<std::mutex> g(pool_mu_);
        pool_fresh_packets_ += s.freshPackets - base[w].freshPackets;
        pool_fresh_payloads_ +=
            s.freshPayloads - base[w].freshPayloads;
    };

    ParallelKernel *kptr = nullptr;
    kc.atBarrier = [this, &kptr](Tick window_end) {
        pdes_windows_ = kptr->windows();
        pdes_crossings_ = kptr->domainCrossings();
        pdes_stalls_ = kptr->windowStalls();
        if (trace_) {
            for (std::size_t d = 1; d < domains_.size(); ++d) {
                std::uint64_t ne = 0;
                const std::string buf = domains_[d]->takeTraceBuf(ne);
                if (!buf.empty())
                    trace_->appendRaw(buf, ne);
            }
        }
        // Catch up the barrier-driven samplers on every due tick the
        // closed window covered (idle-window skips can cover many).
        if (sampler_) {
            while (metrics_due_ <= window_end) {
                sampler_->sampleAt(metrics_due_);
                metrics_due_ += sampler_->interval();
            }
        }
        if (cfg_.commSampleInterval > 0) {
            while (comm_due_ <= window_end) {
                sampleComm(comm_due_, false);
                comm_due_ += cfg_.commSampleInterval;
            }
        }
    };

    ParallelKernel kernel(std::move(kc));
    kptr = &kernel;
    kernel.run(0);

    pdes_windows_ = kernel.windows();
    pdes_crossings_ = kernel.domainCrossings();
    pdes_stalls_ = kernel.windowStalls();
    parallel_end_ = 0;
    for (auto &d : domains_)
        parallel_end_ = std::max(parallel_end_, d->eq().now());
}

RunResult
MultiGpuSystem::run()
{
    openObservability();
    for (auto &n : nodes_)
        n->start();
    if (cfg_.commSampleInterval > 0 && !sharded()) {
        eq_.scheduleIn(cfg_.commSampleInterval, [this]() {
            sampleComm(eq_.now(), true);
        });
    }
    if (sampler_) {
        if (sharded())
            sampler_->startManual();
        else
            sampler_->start();
    }

    if (sharded()) {
        runParallel();
    } else {
        if (prof_) {
            // Sliced timing: clock a bounded batch of events as one
            // serialExec span so the per-event steady_clock cost
            // stays amortized. The loop evaluates exactly the same
            // conditions in the same order as the legacy loop below,
            // so event execution is identical.
            constexpr std::uint64_t kSlice = 4096;
            bool live = true;
            while (live && done_gpus_ < cfg_.numGpus &&
                   eq_.now() <= cfg_.maxCycles) {
                const std::uint64_t t0 = Profiler::nowNs();
                std::uint64_t n = 0;
                do {
                    if (!eq_.runOne()) {
                        live = false;
                        break;
                    }
                    ++n;
                } while (n < kSlice && done_gpus_ < cfg_.numGpus &&
                         eq_.now() <= cfg_.maxCycles);
                if (n > 0)
                    prof_->serialSlice(t0, Profiler::nowNs(), n);
            }
        } else {
            while (done_gpus_ < cfg_.numGpus &&
                   eq_.now() <= cfg_.maxCycles) {
                if (!eq_.runOne())
                    break;
            }
        }
        if (net_->canonicalWireOrder() &&
            done_gpus_ >= cfg_.numGpus) {
            // The sharded kernel only polls the done flag at window
            // boundaries, so it always finishes the lookahead window
            // that completed the workload. Run the serial queue to
            // that same boundary so end-of-run timers (ACK deadline
            // flushes) fire in both kernels or in neither — without
            // this the two disagree on trailing control traffic.
            const Tick L = net_->topology().minLatency();
            const Tick tail_end = eq_.now() / L * L + L - 1;
            if (prof_) {
                const std::uint64_t t0 = Profiler::nowNs();
                const std::uint64_t n = eq_.run(tail_end);
                if (n > 0)
                    prof_->serialSlice(t0, Profiler::nowNs(), n);
            } else {
                eq_.run(tail_end);
            }
        }
    }
    flushObservability();

    RunResult r;
    r.workload = profile_.name;
    r.completed = done_gpus_ == cfg_.numGpus;
    if (!r.completed) {
        warn("run of %s did not complete within %llu cycles",
             profile_.name.c_str(),
             static_cast<unsigned long long>(cfg_.maxCycles));
    }

    Tick finish = 0;
    for (NodeId id = 1; id < cfg_.numNodes(); ++id)
        finish = std::max(finish, nodes_[id]->finishTick());
    r.cycles = r.completed ? finish
                           : (sharded() ? parallel_end_ : eq_.now());

    r.totalBytes = net_->totalBytes();
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c)
        r.classBytes[c] =
            net_->classBytes(static_cast<TrafficClass>(c));
    r.packets = net_->totalPackets();

    double lat_sum = 0.0;
    std::uint64_t lat_n = 0;
    for (auto &n : nodes_) {
        if (const PadTable *pt = n->channel().padTable())
            r.otp += pt->otpStats();
        r.remoteOps += n->remoteOps();
        r.localOps += n->localOps();
        r.standaloneAcks += n->channel().standaloneAcks();
        lat_sum += n->latency().sum();
        lat_n += n->latency().count();
    }
    r.migrations = pt_->migrations();
    r.avgRemoteLatency =
        lat_n > 0 ? lat_sum / static_cast<double>(lat_n) : 0.0;

    if (sharded()) {
        for (auto &v : burst16_by_src_)
            burst16_.insert(burst16_.end(), v.begin(), v.end());
        for (auto &v : burst32_by_src_)
            burst32_.insert(burst32_.end(), v.begin(), v.end());
        burst16_by_src_.clear();
        burst32_by_src_.clear();
    }
    r.burst16 = std::move(burst16_);
    r.burst32 = std::move(burst32_);
    r.commSeries = std::move(comm_series_);

    r.simThreads = sim_threads_;
    r.pdesWindows = pdes_windows_;
    r.domainCrossings = pdes_crossings_;
    r.windowStalls = pdes_stalls_;
    r.poolFreshPackets = pool_fresh_packets_;
    r.poolFreshPayloads = pool_fresh_payloads_;
    return r;
}

} // namespace mgsec
