/**
 * @file
 * JSON emission of run results — the bridge to plotting pipelines.
 *
 * A tiny purpose-built writer (no dependency): RunResult and
 * friends serialize into stable, documented keys.
 */

#ifndef MGSEC_CORE_JSON_OUT_HH
#define MGSEC_CORE_JSON_OUT_HH

#include <iosfwd>
#include <string>

#include "core/system.hh"
#include "sim/json_writer.hh"

namespace mgsec
{

/**
 * Serialize a run result:
 * {workload, completed, cycles, traffic{total, header, payload,
 *  secMeta, secAck, packets}, otp{send{hit,partial,miss},
 *  recv{...}}, remoteOps, localOps, migrations, avgRemoteLatency}
 */
void writeResultJson(std::ostream &os, const RunResult &r);

/** Convenience: serialize to a string. */
std::string resultToJson(const RunResult &r);

} // namespace mgsec

#endif // MGSEC_CORE_JSON_OUT_HH
