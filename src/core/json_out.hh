/**
 * @file
 * JSON emission of run results — the bridge to plotting pipelines.
 *
 * A tiny purpose-built writer (no dependency): RunResult and
 * friends serialize into stable, documented keys.
 */

#ifndef MGSEC_CORE_JSON_OUT_HH
#define MGSEC_CORE_JSON_OUT_HH

#include <iosfwd>
#include <string>

#include "core/system.hh"

namespace mgsec
{

/** Minimal JSON writer: objects, arrays, scalars, strings. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();

    JsonWriter &key(const std::string &k);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(bool v);

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

  private:
    void separate();
    static std::string escape(const std::string &s);

    std::ostream &os_;
    /** Whether the current nesting level already has an element. */
    std::string has_elem_; // one char per depth: '0' or '1'
    bool pending_key_ = false;
};

/**
 * Serialize a run result:
 * {workload, completed, cycles, traffic{total, header, payload,
 *  secMeta, secAck, packets}, otp{send{hit,partial,miss},
 *  recv{...}}, remoteOps, localOps, migrations, avgRemoteLatency}
 */
void writeResultJson(std::ostream &os, const RunResult &r);

/** Convenience: serialize to a string. */
std::string resultToJson(const RunResult &r);

} // namespace mgsec

#endif // MGSEC_CORE_JSON_OUT_HH
