#include "core/options.hh"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace mgsec
{

bool
parseNumber(const std::string &text, double lo, double hi, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    if (!(v >= lo && v <= hi))
        return false;
    out = v;
    return true;
}

bool
parseNumber(const std::string &text, long long lo, long long hi,
            long long &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    if (v < lo || v > hi)
        return false;
    out = v;
    return true;
}

bool
parseNumber(const std::string &text, unsigned long long lo,
            unsigned long long hi, unsigned long long &out)
{
    // strtoull silently wraps negatives; reject them up front.
    if (text.empty() || text.find('-') != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    if (v < lo || v > hi)
        return false;
    out = v;
    return true;
}

bool
parseShaping(const std::string &text, ShapingPolicy &out)
{
    std::string t = text;
    std::transform(t.begin(), t.end(), t.begin(), ::tolower);
    if (t == "none" || t == "off")
        out = ShapingPolicy::None;
    else if (t == "constant-rate" || t == "constant")
        out = ShapingPolicy::ConstantRate;
    else if (t == "batch-jitter" || t == "jitter")
        out = ShapingPolicy::BatchJitter;
    else
        return false;
    return true;
}

bool
parseScheme(const std::string &text, OtpScheme &out)
{
    std::string t = text;
    std::transform(t.begin(), t.end(), t.begin(), ::tolower);
    if (t == "unsecure" || t == "none")
        out = OtpScheme::Unsecure;
    else if (t == "private")
        out = OtpScheme::Private;
    else if (t == "shared")
        out = OtpScheme::Shared;
    else if (t == "cached")
        out = OtpScheme::Cached;
    else if (t == "dynamic")
        out = OtpScheme::Dynamic;
    else
        return false;
    return true;
}

namespace
{

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        out = true;
    else if (v == "0" || v == "false" || v == "no" || v == "off")
        out = false;
    else
        return false;
    return true;
}

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // anonymous namespace

bool
RunOptions::set(const std::string &key, const std::string &value)
{
    // Range-checked parsing into temporaries: a bad value reports an
    // error instead of throwing (std::stoul) or silently wrapping.
    unsigned long long u = 0;
    double d = 0.0;
    bool ok = true;
    if (key == "workload") {
        workload = value;
    } else if (key == "gpus") {
        if ((ok = parseNumber(value, 1ULL, 256ULL, u)))
            exp.numGpus = static_cast<std::uint32_t>(u);
    } else if (key == "scheme") {
        ok = parseScheme(value, exp.scheme);
    } else if (key == "batching") {
        ok = parseBool(value, exp.batching);
    } else if (key == "batch-size") {
        if ((ok = parseNumber(value, 1ULL, 1ULL << 20, u)))
            exp.batchSize = static_cast<std::uint32_t>(u);
    } else if (key == "otp-mult") {
        if ((ok = parseNumber(value, 1ULL, 1ULL << 20, u)))
            exp.otpMult = static_cast<std::uint32_t>(u);
    } else if (key == "aes-latency") {
        if ((ok = parseNumber(value, 0ULL, 1ULL << 32, u)))
            exp.aesLatency = u;
    } else if (key == "scale") {
        if ((ok = parseNumber(value, 1e-6, 1e6, d)))
            exp.scale = d;
    } else if (key == "seed") {
        if ((ok = parseNumber(value, 0ULL, UINT64_MAX, u)))
            exp.seed = u;
    } else if (key == "count-metadata") {
        ok = parseBool(value, exp.countMetadataBytes);
    } else if (key == "comm-sample-interval") {
        if ((ok = parseNumber(value, 0ULL, UINT64_MAX, u)))
            exp.commSampleInterval = u;
    } else if (key == "strong-scaling") {
        ok = parseBool(value, exp.strongScaling);
    } else if (key == "baseline") {
        ok = parseBool(value, baseline);
    } else if (key == "stats-out") {
        statsOut = value;
    } else if (key == "json-out") {
        jsonOut = value;
    } else if (key == "trace-record") {
        traceRecord = value;
    } else if (key == "trace-play") {
        tracePlay = value;
    } else if (key == "metrics-out") {
        exp.observe.metricsOut = value;
    } else if (key == "trace-out") {
        exp.observe.traceOut = value;
    } else if (key == "stats-json") {
        exp.observe.statsJsonOut = value;
    } else if (key == "metrics-interval") {
        if ((ok = parseNumber(value, 1ULL, UINT64_MAX, u)))
            exp.observe.metricsInterval = u;
    } else if (key == "metrics-ring") {
        if ((ok = parseNumber(value, 1ULL, 1ULL << 24, u)))
            exp.observe.metricsRing = static_cast<std::uint32_t>(u);
    } else if (key == "attr") {
        ok = parseBool(value, exp.observe.latencyAttr);
    } else if (key == "hist-json") {
        exp.observe.histJsonOut = value;
    } else if (key == "wire-json") {
        exp.observe.wireOut = value;
    } else if (key == "prof-out") {
        exp.observe.profOut = value;
    } else if (key == "observe-dir") {
        observeDir = value;
    } else if (key == "shape") {
        ok = parseShaping(value, exp.shaping);
    } else if (key == "shape-interval") {
        if ((ok = parseNumber(value, 1ULL, 1ULL << 32, u)))
            exp.shapeInterval = u;
    } else if (key == "shape-pad-to") {
        if ((ok = parseNumber(value, 1ULL, 1ULL << 20, u)))
            exp.shapePadTo = u;
    } else if (key == "shape-jitter") {
        if ((ok = parseNumber(value, 0ULL, 1ULL << 32, u)))
            exp.shapeJitter = u;
    } else if (key == "shape-chaff") {
        if ((ok = parseNumber(value, 0ULL, 1ULL << 20, u)))
            exp.shapeChaffSlots = static_cast<std::uint32_t>(u);
    } else if (key == "topology") {
        ok = parseTopologyKind(value, exp.topology.kind);
    } else if (key == "switch-radix") {
        if ((ok = parseNumber(value, 1ULL, 1024ULL, u)))
            exp.topology.switchRadix = static_cast<std::uint32_t>(u);
    } else if (key == "switch-latency") {
        if ((ok = parseNumber(value, 0ULL, 1ULL << 32, u)))
            exp.topology.switchLatency = u;
    } else if (key == "switch-bw") {
        if ((ok = parseNumber(value, 1e-3, 1e6, d)))
            exp.topology.switchBytesPerCycle = d;
    } else if (key == "gpus-per-node") {
        if ((ok = parseNumber(value, 1ULL, 256ULL, u)))
            exp.topology.gpusPerNode = static_cast<std::uint32_t>(u);
    } else if (key == "inter-latency") {
        if ((ok = parseNumber(value, 0ULL, 1ULL << 32, u)))
            exp.topology.interLatency = u;
    } else if (key == "inter-bw") {
        if ((ok = parseNumber(value, 1e-3, 1e6, d)))
            exp.topology.interBytesPerCycle = d;
    } else if (key == "crypto-impl") {
        ok = crypto::parseCryptoImpl(value, exp.cryptoImpl);
    } else if (key == "sim-threads") {
        if ((ok = parseNumber(value, 1ULL, 256ULL, u)))
            exp.simThreads = static_cast<std::uint32_t>(u);
    } else if (key == "debug-pad-stall-pct") {
        // Deliberately absent from usage(): a CI-only fault injector
        // for the mgsec_report regression-gate self-check.
        if ((ok = parseNumber(value, 0ULL, 10000ULL, u)))
            exp.debugPadStallPct = static_cast<std::uint32_t>(u);
    } else if (key == "debug") {
        if (value == "help") {
            debug::listFlags(std::cout);
            std::exit(0);
        }
        ok = debug::DebugFlag::enableByName(value);
    } else {
        std::cerr << "unknown option '" << key << "'\n";
        return false;
    }
    if (!ok)
        std::cerr << "bad value '" << value << "' for '" << key
                  << "'\n";
    return ok;
}

bool
RunOptions::finalizeObservability()
{
    if (observeDir.empty())
        return true;
    if (!exp.observe.metricsOut.empty() ||
        !exp.observe.traceOut.empty() ||
        !exp.observe.statsJsonOut.empty() ||
        !exp.observe.histJsonOut.empty() ||
        !exp.observe.wireOut.empty()) {
        std::cerr << "--observe-dir bundles --metrics-out/--trace-out/"
                     "--stats-json/--hist-json/--wire-json; remove "
                     "the explicit path options\n";
        return false;
    }
    std::error_code ec;
    std::filesystem::create_directories(observeDir, ec);
    if (ec) {
        std::cerr << "cannot create observability directory '"
                  << observeDir << "': " << ec.message() << "\n";
        return false;
    }
    const std::string h = configHash(workload, exp);
    exp.observe.metricsOut = observeDir + "/METRICS_" + h + ".json";
    exp.observe.traceOut = observeDir + "/TRACE_" + h + ".json";
    exp.observe.statsJsonOut = observeDir + "/STATS_" + h + ".json";
    exp.observe.histJsonOut = observeDir + "/HIST_" + h + ".json";
    exp.observe.wireOut = observeDir + "/WIRE_" + h + ".json";
    return true;
}

void
RunOptions::finalizeProfiler()
{
    // Opt-in pairing: host-track spans carry wall-clock timestamps,
    // so they only enter the trace when the user explicitly asked
    // for both artifacts — a bare --trace-out stays byte-identical
    // run to run and across thread counts.
    if (!exp.observe.profOut.empty() &&
        !exp.observe.traceOut.empty())
        exp.observe.profHostTrack = true;
}

bool
RunOptions::loadFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "cannot open config file '" << path << "'\n";
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            std::cerr << path << ":" << lineno
                      << ": expected 'key = value'\n";
            return false;
        }
        if (!set(trim(line.substr(0, eq)),
                 trim(line.substr(eq + 1))))
            return false;
    }
    return true;
}

bool
RunOptions::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            std::cerr << "unexpected argument '" << arg << "'\n";
            return false;
        }
        arg = arg.substr(2);
        if (i + 1 >= argc) {
            std::cerr << "missing value for '--" << arg << "'\n";
            return false;
        }
        const std::string value = argv[++i];
        if (arg == "config") {
            if (!loadFile(value))
                return false;
        } else if (!set(arg, value)) {
            return false;
        }
    }
    return true;
}

void
RunOptions::usage(std::ostream &os)
{
    os << "mgsec_run — simulate one secure multi-GPU configuration\n"
          "\n"
          "  --workload NAME        one of the 17 paper workloads "
          "(default mm)\n"
          "  --gpus N               GPU count (default 4)\n"
          "  --scheme S             unsecure|private|shared|cached|"
          "dynamic\n"
          "  --batching B           metadata batching on/off\n"
          "  --batch-size N         batch length (default 16)\n"
          "  --otp-mult N           OTP Nx quota (default 4)\n"
          "  --aes-latency C        AES-GCM latency in cycles\n"
          "  --scale F              workload size multiplier\n"
          "  --seed N               RNG seed\n"
          "  --count-metadata B     account metadata wire bytes\n"
          "  --comm-sample-interval C  sample GPU1's comm mix\n"
          "  --strong-scaling B     shrink per-GPU work with N\n"
          "  --baseline B           also run the unsecure baseline\n"
          "  --stats-out FILE       dump component stats ('-' = "
          "stdout)\n"
          "  --json-out FILE        write the result as JSON\n"
          "  --trace-record PREFIX  write <prefix>.gpuN.trace files\n"
          "  --trace-play FILE      replay GPU 1 from a trace file\n"
          "  --metrics-out FILE     write sampled time-series "
          "metrics as JSON\n"
          "  --trace-out FILE       write a Chrome trace_event "
          "timeline (Perfetto)\n"
          "  --stats-json FILE      dump component stats as JSON\n"
          "  --metrics-interval C   cycles between metric samples "
          "(default 1000)\n"
          "  --metrics-ring N       metric rows kept before dropping "
          "(default 4096)\n"
          "  --attr B               per-message latency attribution "
          "histograms\n"
          "  --hist-json FILE       write attribution histograms as "
          "JSON (implies --attr on)\n"
          "  --wire-json FILE       write the passive wire-observer "
          "dump as JSON\n"
          "  --prof-out FILE        write the host-side self-profiler "
          "dump as JSON\n"
          "                         (with --trace-out: adds a "
          "wall-clock host track)\n"
          "  --observe-dir DIR      bundle all sinks into DIR with "
          "sweep's METRICS_/TRACE_/\n"
          "                         STATS_/HIST_/WIRE_<hash>.json "
          "naming (+ OBSERVE_INDEX.json)\n"
          "  --shape P              traffic shaping: none|"
          "constant-rate|batch-jitter\n"
          "  --shape-interval C     constant-rate slot width in "
          "cycles (default 64)\n"
          "  --shape-pad-to B       constant-rate wire-size quantum "
          "in bytes (default 128)\n"
          "  --shape-jitter C       max batch-close jitter in cycles "
          "(default 96)\n"
          "  --shape-chaff N        constant-rate cover traffic: "
          "full-mesh chaff until a\n"
          "                         node idles N slots "
          "(0 = off; default 512)\n"
          "  --topology T           fabric: p2p|nvswitch|hier "
          "(default p2p, the paper's machine)\n"
          "  --switch-radix N       max GPUs per crossbar "
          "(default 64)\n"
          "  --switch-latency C     crossbar traversal in cycles "
          "(default 60)\n"
          "  --switch-bw F          switch egress port bytes/cycle "
          "(default 50)\n"
          "  --gpus-per-node N      hier: GPUs per fabric node "
          "(default 8)\n"
          "  --inter-latency C      hier: trunk crossing in cycles "
          "(default 300)\n"
          "  --inter-bw F           hier: trunk port bytes/cycle "
          "(default 25)\n"
          "  --crypto-impl I        host crypto tier: auto|portable|"
          "simd (bit-identical results)\n"
          "  --sim-threads N        event-kernel worker threads "
          "(1 = serial; default MGSEC_SIM_THREADS or 1)\n"
          "  --debug FLAGS          enable trace flags "
          "('help' lists them)\n"
          "  --config FILE          read 'key = value' lines first\n";
}

} // namespace mgsec
