#include "core/json_out.hh"

#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace mgsec
{

void
JsonWriter::separate()
{
    if (!has_elem_.empty() && has_elem_.back() == '1' && !pending_key_)
        os_ << ",";
    if (!has_elem_.empty())
        has_elem_.back() = '1';
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    pending_key_ = false;
    os_ << "{";
    has_elem_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    MGSEC_ASSERT(!has_elem_.empty(), "unbalanced endObject");
    has_elem_.pop_back();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &k)
{
    if (!k.empty())
        key(k);
    separate();
    pending_key_ = false;
    os_ << "[";
    has_elem_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    MGSEC_ASSERT(!has_elem_.empty(), "unbalanced endArray");
    has_elem_.pop_back();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    os_ << "\"" << escape(k) << "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    pending_key_ = false;
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    pending_key_ = false;
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    pending_key_ = false;
    os_ << "\"" << escape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    pending_key_ = false;
    os_ << (v ? "true" : "false");
    return *this;
}

namespace
{

void
writeOtpDir(JsonWriter &w, const OtpStats &otp, Direction d)
{
    w.beginObject();
    w.field("hit", otp.frac(d, OtpOutcome::Hit));
    w.field("partial", otp.frac(d, OtpOutcome::Partial));
    w.field("miss", otp.frac(d, OtpOutcome::Miss));
    w.field("total", otp.total(d));
    w.endObject();
}

} // anonymous namespace

void
writeResultJson(std::ostream &os, const RunResult &r)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("workload", r.workload);
    w.field("completed", r.completed);
    w.field("cycles", static_cast<std::uint64_t>(r.cycles));

    w.key("traffic").beginObject();
    w.field("total", static_cast<std::uint64_t>(r.totalBytes));
    w.field("header", static_cast<std::uint64_t>(r.classBytes[0]));
    w.field("payload", static_cast<std::uint64_t>(r.classBytes[1]));
    w.field("secMeta", static_cast<std::uint64_t>(r.classBytes[2]));
    w.field("secAck", static_cast<std::uint64_t>(r.classBytes[3]));
    w.field("packets", r.packets);
    w.endObject();

    w.key("otp").beginObject();
    w.key("send");
    writeOtpDir(w, r.otp, Direction::Send);
    w.key("recv");
    writeOtpDir(w, r.otp, Direction::Recv);
    w.endObject();

    w.field("remoteOps", r.remoteOps);
    w.field("localOps", r.localOps);
    w.field("migrations", r.migrations);
    w.field("standaloneAcks", r.standaloneAcks);
    w.field("avgRemoteLatency", r.avgRemoteLatency);
    w.endObject();
    os << "\n";
}

std::string
resultToJson(const RunResult &r)
{
    std::ostringstream ss;
    writeResultJson(ss, r);
    return ss.str();
}

} // namespace mgsec
