#include "core/json_out.hh"

#include <ostream>
#include <sstream>

namespace mgsec
{

namespace
{

void
writeOtpDir(JsonWriter &w, const OtpStats &otp, Direction d)
{
    w.beginObject();
    w.field("hit", otp.frac(d, OtpOutcome::Hit));
    w.field("partial", otp.frac(d, OtpOutcome::Partial));
    w.field("miss", otp.frac(d, OtpOutcome::Miss));
    w.field("total", otp.total(d));
    w.endObject();
}

} // anonymous namespace

void
writeResultJson(std::ostream &os, const RunResult &r)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("workload", r.workload);
    w.field("completed", r.completed);
    w.field("cycles", static_cast<std::uint64_t>(r.cycles));

    w.key("traffic").beginObject();
    w.field("total", static_cast<std::uint64_t>(r.totalBytes));
    w.field("header", static_cast<std::uint64_t>(r.classBytes[0]));
    w.field("payload", static_cast<std::uint64_t>(r.classBytes[1]));
    w.field("secMeta", static_cast<std::uint64_t>(r.classBytes[2]));
    w.field("secAck", static_cast<std::uint64_t>(r.classBytes[3]));
    w.field("packets", r.packets);
    w.endObject();

    w.key("otp").beginObject();
    w.key("send");
    writeOtpDir(w, r.otp, Direction::Send);
    w.key("recv");
    writeOtpDir(w, r.otp, Direction::Recv);
    w.endObject();

    w.field("remoteOps", r.remoteOps);
    w.field("localOps", r.localOps);
    w.field("migrations", r.migrations);
    w.field("standaloneAcks", r.standaloneAcks);
    w.field("avgRemoteLatency", r.avgRemoteLatency);
    w.endObject();
    os << "\n";
}

std::string
resultToJson(const RunResult &r)
{
    std::ostringstream ss;
    writeResultJson(ss, r);
    return ss.str();
}

} // namespace mgsec
