#include "core/report.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace mgsec
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MGSEC_ASSERT(!headers_.empty(), "table needs headers");
}

void
Table::addRow(std::vector<std::string> cells)
{
    MGSEC_ASSERT(cells.size() == headers_.size(),
                 "row width %zu != header width %zu", cells.size(),
                 headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };
    line(headers_);
    std::size_t total = headers_.size() - 1;
    for (std::size_t w : width)
        total += w + 1;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        line(row);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
fmtPct(double frac, int precision)
{
    return fmtDouble(frac * 100.0, precision) + "%";
}

std::string
fmtBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    return fmtDouble(bytes, 2) + " " + units[u];
}

} // namespace mgsec
