/**
 * @file
 * Minimal recursive-descent JSON reader for the project's own
 * artifacts (stats dumps, metric samples, observability indexes).
 *
 * The writer side (sim/json_writer.hh) emits plain RFC 8259 JSON, so
 * this parser accepts exactly that grammar — no comments, no
 * trailing commas, no NaN/Infinity literals. Objects preserve key
 * order (vector of pairs) so reports print fields in the order the
 * producing tool wrote them.
 */

#ifndef MGSEC_CORE_JSON_IN_HH
#define MGSEC_CORE_JSON_IN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mgsec
{

/** One parsed JSON value; a tree of these owns a whole document. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;                       ///< Array
    std::vector<std::pair<std::string, JsonValue>> fields; ///< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** number, or @p fallback when this is not a Number. */
    double asNumber(double fallback = 0.0) const
    {
        return isNumber() ? number : fallback;
    }
};

/**
 * Parse @p text into @p out. On failure returns false and describes
 * the first error (with line number) in @p err.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string &err);

/** Parse the file at @p path; same contract as jsonParse(). */
bool jsonParseFile(const std::string &path, JsonValue &out,
                   std::string &err);

} // namespace mgsec

#endif // MGSEC_CORE_JSON_IN_HH
