/**
 * @file
 * A fixed-size worker-thread pool for simulation jobs.
 *
 * Independent simulations are embarrassingly parallel: every
 * MultiGpuSystem owns its event queue, RNG, and stats, so concurrent
 * runWorkload() calls share nothing but immutable configuration.
 * The pool hands results back through futures keyed to the submit()
 * call, so callers always consume them in submission order and the
 * completion order of the workers can never reorder a downstream
 * reduction — parallel sweeps are bit-identical to serial ones.
 */

#ifndef MGSEC_CORE_JOB_POOL_HH
#define MGSEC_CORE_JOB_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"

namespace mgsec
{

class JobPool
{
  public:
    /**
     * @param workers worker-thread count; 0 = defaultWorkers().
     */
    explicit JobPool(unsigned workers = 0);

    /** Drains the queue (every submitted job completes), then joins. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    unsigned
    workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Queue one simulation of @p workload under @p cfg. */
    std::future<RunResult> submit(const std::string &workload,
                                  const ExperimentConfig &cfg);

    /** Queue an arbitrary job producing a RunResult. */
    std::future<RunResult> submitTask(std::function<RunResult()> fn);

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned defaultWorkers();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::packaged_task<RunResult()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace mgsec

#endif // MGSEC_CORE_JOB_POOL_HH
