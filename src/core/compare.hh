/**
 * @file
 * Flatten-and-diff over parsed JSON documents: the engine behind
 * mgsec_report --compare, extracted so the collision handling is
 * unit-testable.
 *
 * Every numeric leaf becomes one (dotted path, value) pair. JSON
 * objects may carry duplicate keys (the stats dump nests several
 * unnamed StatGroups, which all serialize as "stats"); a repeated
 * sibling key gets an occurrence suffix ("stats", "stats#2", ...)
 * so two distinct leaves can never silently collapse onto one path
 * — the bug that made --compare miss regressions in the second
 * group of a duplicated key.
 */

#ifndef MGSEC_CORE_COMPARE_HH
#define MGSEC_CORE_COMPARE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mgsec
{

struct JsonValue;

/** One leaf whose move exceeded the compare threshold. */
struct FlaggedLeaf
{
    std::string path;
    double oldVal = 0.0;
    double newVal = 0.0;
    double deltaPct = 0.0;
};

/** Accumulated over every document pair of one compare run. */
struct CompareStats
{
    std::uint64_t checked = 0;
    std::uint64_t onlyOld = 0;
    std::uint64_t onlyNew = 0;
    std::vector<FlaggedLeaf> flagged;
};

/**
 * Append every numeric leaf of @p v as (path, value), rooted at
 * @p path. Histogram "buckets" arrays are skipped — bucket movement
 * always also moves the summary fields, and path-per-bucket noise
 * would drown a report. Duplicate sibling keys are disambiguated
 * with "#N" occurrence suffixes (N >= 2; the first keeps the plain
 * key, preserving historical paths).
 */
void flatten(const JsonValue &v, const std::string &path,
             std::vector<std::pair<std::string, double>> &out);

/** True when @p path contains any of the @p ignores substrings. */
bool ignoredPath(const std::string &path,
                 const std::vector<std::string> &ignores);

/**
 * The default --compare ignore list: every host-wall-clock-derived
 * key — throughput rates, speedups, and all self-profiler output
 * (PROF documents and prof-tagged keys) — because wall time varies
 * run to run while sim results must not. Shared between
 * mgsec_report and the regression tests so the two can never drift.
 */
const std::vector<std::string> &defaultCompareIgnores();

/**
 * Flatten both documents under @p prefix and flag every shared leaf
 * moving more than @p threshold percent into @p cs; unmatched paths
 * count as onlyOld/onlyNew.
 */
void compareDocs(const JsonValue &oldDoc, const JsonValue &newDoc,
                 const std::string &prefix, double threshold,
                 const std::vector<std::string> &ignores,
                 CompareStats &cs);

} // namespace mgsec

#endif // MGSEC_CORE_COMPARE_HH
