/**
 * @file
 * Compute unit front end (Table III): each of a GPU's 64 CUs owns a
 * private L1 vector cache and a private L1 TLB. The node model
 * deals memory operations to CUs round-robin (the wavefront
 * scheduler's view) and consults the CU for translation and L1
 * filtering before anything reaches the L2 / remote-access path.
 */

#ifndef MGSEC_GPU_COMPUTE_UNIT_HH
#define MGSEC_GPU_COMPUTE_UNIT_HH

#include <string>

#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "sim/sim_object.hh"

namespace mgsec
{

struct ComputeUnitParams
{
    CacheParams l1{16 * 1024, 4, kBlockBytes, 1};
    TlbParams l1Tlb{64, 1};
};

class ComputeUnit : public SimObject
{
  public:
    ComputeUnit(const std::string &name, EventQueue &eq,
                ComputeUnitParams params);

    /**
     * Translate the page of @p addr through the private L1 TLB.
     * @retval true the translation was resident.
     */
    bool translate(std::uint64_t addr);

    /**
     * Run a local access through the private L1 vector cache.
     * @retval true the block was resident.
     */
    bool l1Access(std::uint64_t addr, bool write);

    /** Migration shootdown support. */
    void invalidatePage(std::uint64_t page);

    Cache &l1() { return l1_; }
    Tlb &l1Tlb() { return tlb_; }

  private:
    Cache l1_;
    Tlb tlb_;
};

} // namespace mgsec

#endif // MGSEC_GPU_COMPUTE_UNIT_HH
