#include "gpu/node.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace mgsec
{

Node::Node(const std::string &name, EventQueue &eq, NodeId id,
           Network &net, PageTable &pt, const SecurityConfig &sec,
           NodeParams params)
    : SimObject(name, eq), id_(id), net_(net), pt_(pt),
      params_(params),
      channel_(name + ".channel", eq, net, id, sec),
      l2_(name + ".l2", eq, params.l2),
      mem_(name + ".mem", eq, params.mem),
      l2_tlb_(name + ".l2tlb", eq, params.l2Tlb),
      sends_to_(net.numNodes(), 0), recvs_from_(net.numNodes(), 0)
{
    if (params_.memProtect.enabled) {
        memprot_ = std::make_unique<MemProtectEngine>(
            name + ".memprot", eq, params_.memProtect, mem_);
    }
    for (std::uint32_t c = 0; c < params_.numCus; ++c) {
        cus_.push_back(std::make_unique<ComputeUnit>(
            strformat("%s.cu%u", name.c_str(), c), eq, params_.cu));
    }
    channel_.setDeliver([this](PacketPtr pkt) {
        handleDeliver(std::move(pkt));
    });
    regStat(remote_ops_);
    regStat(local_ops_);
    regStat(served_);
    regStat(migrations_);
    regStat(window_stalls_);
    regStat(iommu_walks_);
    regStat(l1_hits_);
    regStat(latency_);
}

void
Node::translateThroughTlbs(std::uint64_t addr)
{
    if (cus_.empty())
        return;
    ComputeUnit &cu = *cus_[next_cu_];
    next_cu_ = (next_cu_ + 1) % cus_.size();
    if (cu.translate(addr))
        return;
    const std::uint64_t page = addr / kPageBytes;
    if (l2_tlb_.lookup(page))
        return;
    // L2 TLB miss: the IOMMU on the CPU side resolves it (Fig. 2).
    // The walk overlaps the (optimistically issued) data access, so
    // its cost is secure-channel traffic and a window slot, not a
    // serial stall.
    if (id_ == 0)
        return;
    ++iommu_walks_;
    const std::uint64_t txn_id = next_txn_++;
    Txn txn;
    txn.issued = now();
    txn.translation = true;
    txns_.emplace(txn_id, txn);
    ++outstanding_;

    auto pkt = makePacket();
    pkt->txnId = txn_id;
    pkt->type = PacketType::TransReq;
    pkt->src = id_;
    pkt->dst = 0;
    pkt->addr = addr;
    ++sends_to_[0];
    channel_.send(std::move(pkt));
}

void
Node::attachWorkload(std::unique_ptr<OpSource> src)
{
    MGSEC_ASSERT(!started_, "cannot swap workloads after start()");
    source_ = std::move(src);
}

void
Node::start()
{
    MGSEC_ASSERT(!started_, "node started twice");
    started_ = true;
    if (source_ == nullptr) {
        // A pure server (the CPU): it is done by definition.
        done_ = true;
        return;
    }
    tryIssue();
}

void
Node::scheduleIssueAt(Tick when)
{
    if (issue_event_pending_)
        return;
    issue_event_pending_ = true;
    eventq().schedule(when, [this]() {
        issue_event_pending_ = false;
        tryIssue();
    });
}

void
Node::tryIssue()
{
    while (true) {
        if (!have_op_) {
            if (!source_->next(cur_op_)) {
                checkDone();
                return;
            }
            have_op_ = true;
            next_issue_tick_ =
                std::max(now(), next_issue_tick_) + cur_op_.gap;
        }
        if (next_issue_tick_ > now()) {
            scheduleIssueAt(next_issue_tick_);
            return;
        }
        if (migrations_in_flight_ > 0) {
            // Unified-memory fault semantics: the context stalls
            // while the driver moves and remaps the page (this is
            // why Section II calls page migration expensive, and why
            // securing the 64-block train shows up in run time).
            return;
        }
        if (outstanding_ >= params_.maxOutstanding) {
            // A completion will resume us.
            ++window_stalls_;
            waiting_for_slot_ = true;
            return;
        }
        issueCurrent();
        have_op_ = false;
    }
}

void
Node::issueCurrent()
{
    const std::uint64_t page = cur_op_.addr / kPageBytes;
    const NodeId home = pt_.home(page, regionOwner(cur_op_.addr));

    // Address translation happens for every access; a CU's L1 TLB
    // miss escalates to the shared L2 TLB and then to the host IOMMU.
    translateThroughTlbs(cur_op_.addr);

    if (home == id_) {
        // Satisfied from local memory; assumed hidden by the GPU's
        // thread-level parallelism. The CU L1 filters the L2.
        ++local_ops_;
        if (!cus_.empty()) {
            ComputeUnit &cu =
                *cus_[(cur_op_.addr / kBlockBytes) % cus_.size()];
            if (cu.l1Access(cur_op_.addr, cur_op_.write)) {
                ++l1_hits_;
                return;
            }
        }
        if (!l2_.access(cur_op_.addr, cur_op_.write).hit)
            mem_.access(kBlockBytes);
        return;
    }

    ++remote_ops_;
    const std::uint64_t txn_id = next_txn_++;
    Txn txn;
    txn.issued = now();
    txns_.emplace(txn_id, txn);
    ++outstanding_;

    auto pkt = makePacket();
    pkt->txnId = txn_id;
    pkt->type = cur_op_.write ? PacketType::WriteReq
                              : PacketType::ReadReq;
    pkt->src = id_;
    pkt->dst = home;
    pkt->addr = cur_op_.addr;
    pkt->payloadBytes = cur_op_.write ? kBlockBytes : 0;
    ++sends_to_[home];
    channel_.send(std::move(pkt));

    if (cur_op_.migratable &&
        migrating_pages_.find(page) == migrating_pages_.end() &&
        pt_.recordRemoteAccess(page, id_)) {
        startMigration(page, home);
    }
}

void
Node::startMigration(std::uint64_t page, NodeId home)
{
    MGSEC_DPRINTF(debug::NodeFlag,
                  "migrating page %llu from node %u",
                  static_cast<unsigned long long>(page), home);
    ++migrations_;
    ++migrations_in_flight_;
    migrating_pages_.insert(page);
    const std::uint64_t txn_id = next_txn_++;
    Txn txn;
    txn.issued = now();
    txn.migration = true;
    txn.page = page;
    txn.blocksLeft = kBlocksPerPage;
    txns_.emplace(txn_id, txn);
    ++outstanding_;

    // The migration request itself: one secured control message.
    auto pkt = makePacket();
    pkt->txnId = txn_id;
    pkt->type = PacketType::ReadReq;
    pkt->src = id_;
    pkt->dst = home;
    pkt->addr = page * kPageBytes;
    pkt->payloadBytes = 0;
    pkt->migration = true;
    ++sends_to_[home];
    channel_.send(std::move(pkt));
}

void
Node::handleDeliver(PacketPtr pkt)
{
    ++recvs_from_[pkt->src];
    if (pkt->isRequest())
        serveRequest(std::move(pkt));
    else
        completeResponse(std::move(pkt));
}

void
Node::serveRequest(PacketPtr pkt)
{
    ++served_;
    const NodeId requester = pkt->src;
    const std::uint64_t txn_id = pkt->txnId;
    const bool write = pkt->type == PacketType::WriteReq;

    if (pkt->type == PacketType::TransReq) {
        // Host IOMMU walk: fixed-latency table lookup, small reply.
        const Tick ready = now() + params_.iommuLatency +
                           params_.serviceOverhead;
        eventq().schedule(ready, [this, requester, txn_id]() {
            auto resp = makePacket();
            resp->txnId = txn_id;
            resp->type = PacketType::TransResp;
            resp->src = id_;
            resp->dst = requester;
            resp->payloadBytes = 8; // the translated entry
            ++sends_to_[requester];
            channel_.send(std::move(resp));
        });
        return;
    }

    if (pkt->migration) {
        // Stream the whole page back as a train of data blocks.
        const Bytes bytes = kPageBytes;
        Tick data_ready = mem_.access(bytes) + params_.serviceOverhead;
        if (memprot_)
            data_ready =
                memprot_->access(pkt->addr, false, data_ready);
        for (std::uint32_t b = 0; b < kBlocksPerPage; ++b) {
            // Blocks drain one per cycle once the page is read.
            const Tick send_at = data_ready + b;
            eventq().schedule(send_at, [this, requester, txn_id]() {
                auto resp = makePacket();
                resp->txnId = txn_id;
                resp->type = PacketType::ReadResp;
                resp->src = id_;
                resp->dst = requester;
                resp->payloadBytes = kBlockBytes;
                resp->migration = true;
                ++sends_to_[requester];
                channel_.send(std::move(resp));
            });
        }
        return;
    }

    const auto res = l2_.access(pkt->addr, write);
    Tick ready;
    if (res.hit) {
        ready = now() + l2_.params().hitLatency +
                params_.serviceOverhead;
    } else {
        ready = mem_.access(kBlockBytes) + params_.serviceOverhead;
        // Untrusted off-chip memory pays decryption/verification.
        if (memprot_)
            ready = memprot_->access(pkt->addr, write, ready);
    }

    eventq().schedule(ready, [this, requester, txn_id, write]() {
        auto resp = makePacket();
        resp->txnId = txn_id;
        resp->type = write ? PacketType::WriteResp
                           : PacketType::ReadResp;
        resp->src = id_;
        resp->dst = requester;
        resp->payloadBytes = write ? 0 : kBlockBytes;
        ++sends_to_[requester];
        channel_.send(std::move(resp));
    });
}

void
Node::completeResponse(PacketPtr pkt)
{
    auto it = txns_.find(pkt->txnId);
    MGSEC_ASSERT(it != txns_.end(), "response for unknown txn %llu",
                 static_cast<unsigned long long>(pkt->txnId));
    Txn &txn = it->second;

    bool resume_after_migration = false;
    if (txn.migration) {
        MGSEC_ASSERT(txn.blocksLeft > 0, "extra migration block");
        if (--txn.blocksLeft > 0)
            return;
        // Page fully arrived: commit the mapping and pay the
        // driver-side shootdown before further issues.
        pt_.finishMigration(txn.page, id_);
        migrating_pages_.erase(txn.page);
        // Remap: stale translations and cached blocks of the moved
        // page are shot down locally.
        l2_tlb_.invalidate(txn.page);
        for (auto &cu : cus_)
            cu->invalidatePage(txn.page);
        MGSEC_ASSERT(migrations_in_flight_ > 0, "migration underflow");
        --migrations_in_flight_;
        next_issue_tick_ = std::max(next_issue_tick_, now()) +
                           pt_.params().shootdownCycles;
        resume_after_migration = true;
    }

    if (!txn.translation)
        latency_.sample(static_cast<double>(now() - txn.issued));
    txns_.erase(it);
    MGSEC_ASSERT(outstanding_ > 0, "window underflow");
    --outstanding_;
    if (waiting_for_slot_) {
        waiting_for_slot_ = false;
        tryIssue();
    } else if (resume_after_migration) {
        // Issue was parked on the migration, not the window.
        tryIssue();
    } else {
        checkDone();
    }
}

void
Node::checkDone()
{
    if (done_ || source_ == nullptr)
        return;
    if (have_op_ || outstanding_ > 0)
        return;
    if (source_->generated() < source_->totalOps())
        return;
    done_ = true;
    finish_tick_ = now();
    if (on_done_)
        on_done_();
}

} // namespace mgsec
