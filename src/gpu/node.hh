/**
 * @file
 * Processor node model (GPU or host CPU).
 *
 * A GPU node runs a workload-driven traffic engine: remote block
 * accesses issue into a bounded outstanding-request window (the
 * thread-level parallelism that hides latency), while accesses whose
 * page has migrated home are satisfied locally. Every node also
 * serves remote requests against its local memory, and every message
 * crosses this node's SecureChannel.
 *
 * Page migration follows the access-counter policy: when a
 * migratable page crosses the threshold, the home node streams the
 * 64 blocks of the page through the secure channel (so migrations
 * pay encryption, metadata, and — with batching — amortized MAC/ACK
 * costs), then the requester pays the TLB-shootdown stall.
 */

#ifndef MGSEC_GPU_NODE_HH
#define MGSEC_GPU_NODE_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gpu/compute_unit.hh"
#include "mem/cache.hh"
#include "mem/hbm.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "memsec/mem_protect.hh"
#include "net/network.hh"
#include "secure/secure_channel.hh"
#include "sim/sim_object.hh"
#include "workload/source.hh"

namespace mgsec
{

struct NodeParams
{
    HbmParams mem;           ///< HBM (GPU) or host DRAM (CPU)
    CacheParams l2;
    Cycles serviceOverhead = 20; ///< request decode + L2 path
    std::uint32_t maxOutstanding = 64;
    /** Compute units (0 for the CPU, Table III: 64 per GPU). */
    std::uint32_t numCus = 0;
    ComputeUnitParams cu{};
    TlbParams l2Tlb{1024, 8};
    /** Host-side IOMMU table-walk latency for L2 TLB misses. */
    Cycles iommuLatency = 100;
    /**
     * Off-chip memory protection (counters + integrity tree). Used
     * by the CPU, whose DRAM is outside the trust boundary; GPU HBM
     * is trusted and never pays this.
     */
    MemProtectParams memProtect{};
};

class Node : public SimObject
{
  public:
    Node(const std::string &name, EventQueue &eq, NodeId id,
         Network &net, PageTable &pt, const SecurityConfig &sec,
         NodeParams params);

    NodeId nodeId() const { return id_; }
    SecureChannel &channel() { return channel_; }
    const SecureChannel &channel() const { return channel_; }
    Cache &l2() { return l2_; }
    Hbm &memory() { return mem_; }
    Tlb &l2Tlb() { return l2_tlb_; }
    /** Null unless host memory protection is enabled. */
    const MemProtectEngine *memProtect() const
    {
        return memprot_.get();
    }
    std::uint32_t numCus() const
    {
        return static_cast<std::uint32_t>(cus_.size());
    }
    ComputeUnit &cu(std::uint32_t i) { return *cus_[i]; }

    /**
     * Give this node (a GPU) a workload to drive. May be called
     * again before start() to substitute a different source (e.g. a
     * replayed trace).
     */
    void attachWorkload(std::unique_ptr<OpSource> src);

    /** Begin issuing (no-op without a workload). */
    void start();

    bool done() const { return done_; }
    Tick finishTick() const { return finish_tick_; }

    /** Invoked once when this node's workload completes. */
    void setOnDone(std::function<void()> cb) { on_done_ = std::move(cb); }

    /** @name Cumulative communication counters (Fig. 13/14) */
    /// @{
    const std::vector<std::uint64_t> &sendsTo() const
    {
        return sends_to_;
    }
    const std::vector<std::uint64_t> &recvsFrom() const
    {
        return recvs_from_;
    }
    /// @}

    std::uint64_t remoteOps() const
    {
        return static_cast<std::uint64_t>(remote_ops_.value());
    }
    std::uint64_t localOps() const
    {
        return static_cast<std::uint64_t>(local_ops_.value());
    }
    std::uint64_t migrationsStarted() const
    {
        return static_cast<std::uint64_t>(migrations_.value());
    }
    const stats::Distribution &latency() const { return latency_; }

  private:
    struct Txn
    {
        Tick issued = 0;
        bool migration = false;
        bool translation = false;
        std::uint64_t page = 0;
        std::uint32_t blocksLeft = 0;
    };

    void tryIssue();
    void scheduleIssueAt(Tick when);
    void issueCurrent();
    /** CU-side translation; may launch an IOMMU walk message. */
    void translateThroughTlbs(std::uint64_t addr);
    void startMigration(std::uint64_t page, NodeId home);
    void handleDeliver(PacketPtr pkt);
    void serveRequest(PacketPtr pkt);
    void completeResponse(PacketPtr pkt);
    void finishTxn(std::uint64_t txn_id);
    void checkDone();

    NodeId id_;
    Network &net_;
    PageTable &pt_;
    NodeParams params_;
    SecureChannel channel_;
    Cache l2_;
    Hbm mem_;
    Tlb l2_tlb_;
    std::unique_ptr<MemProtectEngine> memprot_;
    std::vector<std::unique_ptr<ComputeUnit>> cus_;
    std::uint32_t next_cu_ = 0;

    std::unique_ptr<OpSource> source_;
    bool started_ = false;
    bool done_ = false;
    Tick finish_tick_ = 0;
    std::function<void()> on_done_;

    /** Issue engine state. */
    RemoteOp cur_op_{};
    bool have_op_ = false;
    Tick next_issue_tick_ = 0;
    bool issue_event_pending_ = false;
    bool waiting_for_slot_ = false;

    std::uint32_t outstanding_ = 0;
    /** Page moves in flight: the context is stalled on a fault. */
    std::uint32_t migrations_in_flight_ = 0;
    std::uint64_t next_txn_ = 1;
    std::unordered_map<std::uint64_t, Txn> txns_;
    std::unordered_set<std::uint64_t> migrating_pages_;

    std::vector<std::uint64_t> sends_to_;
    std::vector<std::uint64_t> recvs_from_;

    stats::Scalar remote_ops_{"remoteOps", "remote accesses issued"};
    stats::Scalar local_ops_{"localOps",
                             "accesses satisfied locally"};
    stats::Scalar served_{"served", "remote requests served"};
    stats::Scalar migrations_{"migrationsStarted",
                              "page migrations initiated"};
    stats::Scalar window_stalls_{"windowStalls",
                                 "issues delayed by a full window"};
    stats::Scalar iommu_walks_{"iommuWalks",
                               "L2 TLB misses sent to the IOMMU"};
    stats::Scalar l1_hits_{"l1Hits", "local ops filtered by a CU L1"};
    stats::Distribution latency_{"remoteLatency",
                                 "remote access round-trip cycles",
                                 0, 4000, 40};
};

} // namespace mgsec

#endif // MGSEC_GPU_NODE_HH
