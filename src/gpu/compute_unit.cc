#include "gpu/compute_unit.hh"

namespace mgsec
{

ComputeUnit::ComputeUnit(const std::string &name, EventQueue &eq,
                         ComputeUnitParams params)
    : SimObject(name, eq), l1_(name + ".l1", eq, params.l1),
      tlb_(name + ".tlb", eq, params.l1Tlb)
{
}

bool
ComputeUnit::translate(std::uint64_t addr)
{
    return tlb_.lookup(addr / kPageBytes);
}

bool
ComputeUnit::l1Access(std::uint64_t addr, bool write)
{
    return l1_.access(addr, write).hit;
}

void
ComputeUnit::invalidatePage(std::uint64_t page)
{
    tlb_.invalidate(page);
    l1_.invalidateRange(page * kPageBytes, kPageBytes);
}

} // namespace mgsec
