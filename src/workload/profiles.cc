#include "workload/profile.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mgsec
{

const char *
rpkiClassName(RpkiClass c)
{
    switch (c) {
      case RpkiClass::High:
        return "high";
      case RpkiClass::Medium:
        return "medium";
      case RpkiClass::Low:
        return "low";
    }
    return "?";
}

namespace
{

/**
 * The profile construction below encodes the Section III / Table IV
 * characterization of each benchmark: RPKI class decides traffic
 * intensity (burst cadence), the phase list encodes the observed
 * destination locality and its drift over time, and migratableFrac
 * sets the page-migration vs. direct-block-access split.
 */
WorkloadProfile
build(const std::string &abbr)
{
    WorkloadProfile p;
    p.name = abbr;

    auto phase = [](double frac, CommPattern pat, std::uint32_t off,
                    double cpu, double wr, double mig, double burst,
                    Cycles intra, Cycles inter) {
        PhaseSpec s;
        s.fraction = frac;
        s.pattern = pat;
        s.hotOffset = off;
        s.cpuShare = cpu;
        s.writeFrac = wr;
        s.migratableFrac = mig;
        s.meanBurst = burst;
        s.intraGap = intra;
        s.interGap = inter;
        return s;
    };

    if (abbr == "mt") {
        // Matrix transpose: streaming all-to-all scatter, nearly no
        // reuse, write-heavy remote stores.
        p.suite = "AMD APP SDK";
        p.rpki = RpkiClass::High;
        p.opsPerGpu = 14000;
        p.pagesPerPeer = 512;
        p.phases = {
            phase(1.0, CommPattern::Uniform, 0, 0.05, 0.45, 0.10,
                  48, 1, 150),
        };
    } else if (abbr == "relu") {
        // DNN activation: stream tensor shards in from the host,
        // apply, stream results out.
        p.suite = "DNNMark";
        p.rpki = RpkiClass::High;
        p.opsPerGpu = 13000;
        p.pagesPerPeer = 384;
        p.phases = {
            phase(0.55, CommPattern::CpuHeavy, 0, 0.55, 0.10, 0.30,
                  48, 1, 130),
            phase(0.45, CommPattern::CpuHeavy, 0, 0.50, 0.60, 0.30,
                  48, 1, 135),
        };
    } else if (abbr == "pr") {
        // PageRank: irregular gather over a partitioned graph.
        p.suite = "Hetero-Mark";
        p.rpki = RpkiClass::High;
        p.opsPerGpu = 15000;
        p.pagesPerPeer = 512;
        p.phases = {
            phase(1.0, CommPattern::Uniform, 0, 0.10, 0.10, 0.05,
                  48, 1, 185),
        };
    } else if (abbr == "syr2k") {
        // Rank-2k update: tiles sweep the peers phase by phase.
        p.suite = "Polybench";
        p.rpki = RpkiClass::High;
        p.opsPerGpu = 14000;
        p.pagesPerPeer = 256;
        p.phases = {
            phase(0.34, CommPattern::HotSpot, 0, 0.08, 0.25, 0.40,
                  32, 1, 210),
            phase(0.33, CommPattern::HotSpot, 1, 0.08, 0.25, 0.40,
                  32, 1, 210),
            phase(0.33, CommPattern::HotSpot, 2, 0.08, 0.25, 0.40,
                  32, 1, 210),
        };
    } else if (abbr == "spmv") {
        // Sparse matrix-vector: irregular vector gathers, host
        // holds the dense vector.
        p.suite = "SHOC";
        p.rpki = RpkiClass::High;
        p.opsPerGpu = 15000;
        p.pagesPerPeer = 512;
        p.phases = {
            phase(1.0, CommPattern::Uniform, 0, 0.15, 0.05, 0.10,
                  48, 1, 185),
        };
    } else if (abbr == "sc") {
        // Simple convolution: halo exchange with ring neighbours.
        p.suite = "AMD APP SDK";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 8000;
        p.pagesPerPeer = 128;
        p.phases = {
            phase(1.0, CommPattern::Ring, 0, 0.15, 0.20, 0.50,
                  12, 2, 80),
        };
    } else if (abbr == "mm") {
        // Matrix multiplication: the Fig. 13/14 workload — input
        // fetch from the host, then the B-tile sweeps the peer GPUs
        // one phase at a time, then result writeback.
        p.suite = "AMD APP SDK";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 9000;
        p.pagesPerPeer = 160;
        p.phases = {
            phase(0.25, CommPattern::HotSpot, 0, 0.30, 0.10, 0.45,
                  16, 2, 60),
            phase(0.25, CommPattern::HotSpot, 1, 0.10, 0.10, 0.45,
                  16, 2, 60),
            phase(0.25, CommPattern::HotSpot, 2, 0.10, 0.10, 0.45,
                  16, 2, 60),
            phase(0.25, CommPattern::HotSpot, 3, 0.25, 0.50, 0.45,
                  16, 2, 70),
        };
    } else if (abbr == "atax") {
        // A^T * A * x: partner sweep, then host-side reduction.
        p.suite = "Polybench";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 7000;
        p.pagesPerPeer = 128;
        p.phases = {
            phase(0.6, CommPattern::Partner, 0, 0.10, 0.10, 0.35,
                  12, 2, 100),
            phase(0.4, CommPattern::CpuHeavy, 0, 0.70, 0.40, 0.35,
                  12, 2, 110),
        };
    } else if (abbr == "bicg") {
        // BiCG kernel: two matrix-vector sweeps with different
        // access orders.
        p.suite = "Polybench";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 7000;
        p.pagesPerPeer = 128;
        p.phases = {
            phase(0.5, CommPattern::Partner, 0, 0.15, 0.10, 0.35,
                  12, 2, 90),
            phase(0.5, CommPattern::HotSpot, 1, 0.15, 0.30, 0.35,
                  12, 2, 90),
        };
    } else if (abbr == "ges") {
        // gesummv: two matrices stream by, host supplies the vector.
        p.suite = "Polybench";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 7500;
        p.pagesPerPeer = 128;
        p.phases = {
            phase(1.0, CommPattern::CpuHeavy, 0, 0.40, 0.15, 0.30,
                  12, 2, 85),
        };
    } else if (abbr == "mvt") {
        // Matrix-vector transposed: alternating sweep directions.
        p.suite = "Polybench";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 7000;
        p.pagesPerPeer = 128;
        p.phases = {
            phase(0.5, CommPattern::Partner, 0, 0.12, 0.10, 0.35,
                  12, 2, 100),
            phase(0.5, CommPattern::HotSpot, 2, 0.12, 0.30, 0.35,
                  12, 2, 100),
        };
    } else if (abbr == "st") {
        // Stencil2D: tight halo exchange, high page reuse.
        p.suite = "SHOC";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 6500;
        p.pagesPerPeer = 96;
        p.phases = {
            phase(1.0, CommPattern::Ring, 0, 0.05, 0.25, 0.60,
                  8, 3, 130),
        };
    } else if (abbr == "fft") {
        // FFT: butterfly exchanges at growing strides; metadata-
        // bandwidth sensitive (Fig. 23 calls it out).
        p.suite = "SHOC";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 8000;
        p.pagesPerPeer = 192;
        p.phases = {
            phase(0.34, CommPattern::HotSpot, 1, 0.05, 0.30, 0.20,
                  32, 1, 210),
            phase(0.33, CommPattern::HotSpot, 2, 0.05, 0.30, 0.20,
                  32, 1, 210),
            phase(0.33, CommPattern::HotSpot, 3, 0.05, 0.30, 0.20,
                  32, 1, 210),
        };
    } else if (abbr == "km") {
        // K-means: centroids live with the host, points local.
        p.suite = "Hetero-Mark";
        p.rpki = RpkiClass::Medium;
        p.opsPerGpu = 7000;
        p.pagesPerPeer = 96;
        p.phases = {
            phase(0.7, CommPattern::CpuHeavy, 0, 0.60, 0.10, 0.30,
                  8, 3, 170),
            phase(0.3, CommPattern::CpuHeavy, 0, 0.65, 0.45, 0.30,
                  8, 3, 180),
        };
    } else if (abbr == "floyd") {
        // Floyd-Warshall: pivot-row broadcast phases, mostly local.
        p.suite = "AMD APP SDK";
        p.rpki = RpkiClass::Low;
        p.opsPerGpu = 3000;
        p.pagesPerPeer = 48;
        p.phases = {
            phase(0.5, CommPattern::HotSpot, 0, 0.05, 0.20, 0.55,
                  8, 3, 600),
            phase(0.5, CommPattern::HotSpot, 2, 0.05, 0.20, 0.55,
                  8, 3, 600),
        };
    } else if (abbr == "aes") {
        // Hetero-Mark AES: blocks stream in from the host and
        // results stream back — almost all traffic is page
        // migration, whose 64-block trains stress the OTP pipelines
        // despite the low RPKI.
        p.suite = "Hetero-Mark";
        p.rpki = RpkiClass::Low;
        p.opsPerGpu = 4000;
        p.pagesPerPeer = 64;
        p.phases = {
            phase(0.6, CommPattern::CpuHeavy, 0, 0.85, 0.10, 0.90,
                  8, 2, 350),
            phase(0.4, CommPattern::CpuHeavy, 0, 0.85, 0.50, 0.90,
                  8, 2, 350),
        };
    } else if (abbr == "fir") {
        // FIR filter: small streaming working set via the host.
        p.suite = "Hetero-Mark";
        p.rpki = RpkiClass::Low;
        p.opsPerGpu = 2500;
        p.pagesPerPeer = 32;
        p.phases = {
            phase(1.0, CommPattern::CpuHeavy, 0, 0.70, 0.30, 0.30,
                  4, 3, 900),
        };
    } else {
        fatal("unknown workload '%s'", abbr.c_str());
    }
    return p;
}

} // anonymous namespace

WorkloadProfile
makeProfile(const std::string &abbr, double scale,
            std::uint32_t num_gpus)
{
    WorkloadProfile p = build(abbr);
    MGSEC_ASSERT(scale > 0.0, "bad workload scale %f", scale);
    MGSEC_ASSERT(num_gpus >= 1, "bad GPU count");
    p.opsPerGpu = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                std::llround(static_cast<double>(p.opsPerGpu) *
                             scale)));
    if (num_gpus != kScalingBaselineGpus) {
        // Strong scaling: the same problem cut into more partitions
        // has more boundary per unit of compute, so communication
        // density rises with the partition count.
        const double g =
            std::pow(static_cast<double>(kScalingBaselineGpus) /
                         static_cast<double>(num_gpus),
                     kScalingGapExponent);
        for (auto &ph : p.phases) {
            ph.interGap = std::max<Cycles>(
                1, static_cast<Cycles>(std::llround(
                       static_cast<double>(ph.interGap) * g)));
        }
    }
    double total = 0.0;
    for (const auto &ph : p.phases)
        total += ph.fraction;
    MGSEC_ASSERT(std::abs(total - 1.0) < 1e-6,
                 "phase fractions of %s sum to %f", abbr.c_str(),
                 total);
    return p;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        // High RPKI
        "mt", "relu", "pr", "syr2k", "spmv",
        // Medium RPKI
        "sc", "mm", "atax", "bicg", "ges", "mvt", "st", "fft", "km",
        // Low RPKI
        "floyd", "aes", "fir",
    };
    return names;
}

std::vector<std::string>
workloadNames(RpkiClass c)
{
    std::vector<std::string> out;
    for (const auto &n : workloadNames())
        if (build(n).rpki == c)
            out.push_back(n);
    return out;
}

} // namespace mgsec
