#include "workload/source.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mgsec
{

std::vector<double>
destWeights(const PhaseSpec &phase, NodeId self,
            std::uint32_t num_nodes)
{
    MGSEC_ASSERT(self >= 1 && self < num_nodes,
                 "destination mixes are for GPUs");
    const std::uint32_t num_gpus = num_nodes - 1;
    std::vector<double> w(num_nodes, 0.0);

    const double cpu = std::clamp(phase.cpuShare, 0.0, 0.95);
    w[0] = cpu;
    const double gpu_share = 1.0 - cpu;

    if (num_gpus == 1) {
        // Nobody else to talk to: everything goes to the host.
        w[0] = 1.0;
        return w;
    }

    const std::uint32_t peers = num_gpus - 1; // GPUs other than self
    const std::uint32_t self_idx = self - 1;
    auto gpu_node = [num_gpus](std::uint32_t idx) {
        return static_cast<NodeId>((idx % num_gpus) + 1);
    };

    switch (phase.pattern) {
      case CommPattern::Uniform:
      case CommPattern::CpuHeavy: {
        for (std::uint32_t g = 1; g <= num_gpus; ++g)
            if (g != self)
                w[g] = gpu_share / peers;
        break;
      }
      case CommPattern::Ring: {
        const NodeId left = gpu_node(self_idx + num_gpus - 1);
        const NodeId right = gpu_node(self_idx + 1);
        if (left == right) {
            w[left] = gpu_share;
            break;
        }
        double rest = gpu_share;
        w[left] += gpu_share * 0.4;
        w[right] += gpu_share * 0.4;
        rest -= gpu_share * 0.8;
        if (peers > 2) {
            for (std::uint32_t g = 1; g <= num_gpus; ++g)
                if (g != self && g != left && g != right)
                    w[g] += rest / (peers - 2);
        } else {
            w[left] += rest / 2;
            w[right] += rest / 2;
        }
        break;
      }
      case CommPattern::Partner: {
        std::uint32_t buddy_idx = self_idx ^ 1u;
        if (buddy_idx >= num_gpus)
            buddy_idx = (self_idx + 1) % num_gpus;
        const NodeId buddy = gpu_node(buddy_idx);
        w[buddy] += gpu_share * 0.85;
        if (peers > 1) {
            for (std::uint32_t g = 1; g <= num_gpus; ++g)
                if (g != self && g != buddy)
                    w[g] += gpu_share * 0.15 / (peers - 1);
        } else {
            w[buddy] = gpu_share;
        }
        break;
      }
      case CommPattern::HotSpot: {
        NodeId hot = gpu_node(self_idx + 1 + phase.hotOffset);
        if (hot == self)
            hot = gpu_node(self_idx + 2 + phase.hotOffset);
        w[hot] += gpu_share * 0.75;
        if (peers > 1) {
            for (std::uint32_t g = 1; g <= num_gpus; ++g)
                if (g != self && g != hot)
                    w[g] += gpu_share * 0.25 / (peers - 1);
        } else {
            w[hot] = gpu_share;
        }
        break;
      }
    }

    // Normalize defensively (cpu clamp can leave tiny drift).
    double total = 0.0;
    for (double v : w)
        total += v;
    MGSEC_ASSERT(total > 0.0, "empty destination mix");
    for (double &v : w)
        v /= total;
    return w;
}

TraceSource::TraceSource(const WorkloadProfile &profile, NodeId self,
                         std::uint32_t num_nodes, std::uint64_t seed)
    : profile_(profile), self_(self), num_nodes_(num_nodes),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (self + 1)))
{
    MGSEC_ASSERT(!profile_.phases.empty(), "profile without phases");
    total_ops_ = profile_.opsPerGpu;
    phase_idx_ = static_cast<std::size_t>(-1);
    phase_remaining_ = 0;
}

void
TraceSource::startPhaseIfNeeded()
{
    if (phase_remaining_ > 0)
        return;
    ++phase_idx_;
    if (phase_idx_ >= profile_.phases.size())
        phase_idx_ = profile_.phases.size() - 1; // absorb rounding
    const PhaseSpec &ph = profile_.phases[phase_idx_];
    const bool last = phase_idx_ == profile_.phases.size() - 1;
    if (last) {
        phase_remaining_ = total_ops_ - generated_;
    } else {
        phase_remaining_ = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(
                   ph.fraction * static_cast<double>(total_ops_))));
        phase_remaining_ =
            std::min(phase_remaining_, total_ops_ - generated_);
    }
    weights_ = destWeights(ph, self_, num_nodes_);
    burst_remaining_ = 0;
}

void
TraceSource::startBurst()
{
    const PhaseSpec &ph = profile_.phases[phase_idx_];
    burst_dst_ = static_cast<NodeId>(rng_.weighted(weights_));
    MGSEC_ASSERT(burst_dst_ != self_, "burst aimed at self");

    // Burst length scales with how dominant the destination is:
    // tiled/streaming transfers hammer the hot peer in long trains,
    // while traffic to minor destinations is scattered accesses.
    // Under a uniform mix every destination gets full-size bursts.
    double wmax = 0.0;
    for (double v : weights_)
        wmax = std::max(wmax, v);
    const double shape = wmax > 0.0 ? weights_[burst_dst_] / wmax : 1.0;
    const double mean = std::max(1.0, ph.meanBurst * shape);
    burst_remaining_ = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(rng_.gap(mean), 1, 256));
    burst_migratable_ = rng_.chance(ph.migratableFrac);

    // Pick the page this burst walks. Migratable pages live in a
    // per-requester pool inside the destination's region (they will
    // migrate to us); direct-access pages come from the shared pool.
    const std::uint64_t pool = profile_.pagesPerPeer;
    std::uint64_t page_idx = rng_.range(0, pool - 1);
    std::uint64_t base = regionBase(burst_dst_);
    if (burst_migratable_) {
        base += (1ULL << 30); // migratable sub-region
        page_idx += static_cast<std::uint64_t>(self_) * pool;
    }
    burst_page_ = base / kPageBytes + page_idx;
    burst_block_ = static_cast<std::uint32_t>(
        rng_.range(0, kBlocksPerPage - 1));
    first_of_burst_ = true;
}

bool
TraceSource::next(RemoteOp &op)
{
    if (generated_ >= total_ops_)
        return false;
    startPhaseIfNeeded();
    if (burst_remaining_ == 0)
        startBurst();

    const PhaseSpec &ph = profile_.phases[phase_idx_];
    op.dst = burst_dst_;
    op.migratable = burst_migratable_;
    op.write = rng_.chance(ph.writeFrac);
    op.addr = burst_page_ * kPageBytes +
              static_cast<std::uint64_t>(burst_block_) * kBlockBytes;
    burst_block_ = (burst_block_ + 1) % kBlocksPerPage;
    op.gap = first_of_burst_ ? rng_.gap(static_cast<double>(ph.interGap))
                             : ph.intraGap;
    first_of_burst_ = false;

    --burst_remaining_;
    --phase_remaining_;
    ++generated_;
    return true;
}

} // namespace mgsec
