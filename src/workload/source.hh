/**
 * @file
 * Per-GPU remote-traffic generator.
 *
 * Turns a WorkloadProfile into a deterministic stream of remote
 * operations: bursts of block accesses aimed at one destination,
 * with phase-dependent destination mixes and a page-migration-
 * eligible subset. Each burst walks consecutive blocks of one page,
 * which is what lets the access-counter migration policy fire.
 */

#ifndef MGSEC_WORKLOAD_SOURCE_HH
#define MGSEC_WORKLOAD_SOURCE_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "workload/op_source.hh"
#include "workload/profile.hh"

namespace mgsec
{

/** One remote access the GPU wants to perform. */
struct RemoteOp
{
    Cycles gap = 0;       ///< issue gap after the previous op
    NodeId dst = InvalidNode; ///< region owner (home may migrate)
    bool write = false;
    std::uint64_t addr = 0;
    bool migratable = false;
};

/** Unified-address-space layout: one 1 TB region per node. */
constexpr std::uint64_t kRegionShift = 40;

inline std::uint64_t
regionBase(NodeId node)
{
    return static_cast<std::uint64_t>(node) << kRegionShift;
}

inline NodeId
regionOwner(std::uint64_t addr)
{
    return static_cast<NodeId>(addr >> kRegionShift);
}

/**
 * Destination mix for @p self in a system of @p num_nodes
 * (index 0 = CPU). Weights are normalized; weights[self] == 0.
 */
std::vector<double> destWeights(const PhaseSpec &phase, NodeId self,
                                std::uint32_t num_nodes);

class TraceSource : public OpSource
{
  public:
    TraceSource(const WorkloadProfile &profile, NodeId self,
                std::uint32_t num_nodes, std::uint64_t seed);

    /** @retval false the workload is exhausted. */
    bool next(RemoteOp &op) override;

    std::uint64_t totalOps() const override { return total_ops_; }
    std::uint64_t generated() const override { return generated_; }

  private:
    void startPhaseIfNeeded();
    void startBurst();

    const WorkloadProfile profile_;
    NodeId self_;
    std::uint32_t num_nodes_;
    Rng rng_;

    std::uint64_t total_ops_ = 0;
    std::uint64_t generated_ = 0;

    /** Phase bookkeeping. */
    std::size_t phase_idx_ = 0;
    std::uint64_t phase_remaining_ = 0;
    std::vector<double> weights_;

    /** Burst bookkeeping. */
    std::uint32_t burst_remaining_ = 0;
    NodeId burst_dst_ = InvalidNode;
    std::uint64_t burst_page_ = 0;
    std::uint32_t burst_block_ = 0;
    bool burst_migratable_ = false;
    bool first_of_burst_ = true;
};

} // namespace mgsec

#endif // MGSEC_WORKLOAD_SOURCE_HH
