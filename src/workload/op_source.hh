/**
 * @file
 * Abstract stream of remote operations driving one GPU.
 *
 * The synthetic TraceSource implements this; so does
 * TraceFileSource, which replays a recorded trace — the hook for
 * users who want to drive the secure-communication architecture
 * with traffic captured from a real simulator or application.
 */

#ifndef MGSEC_WORKLOAD_OP_SOURCE_HH
#define MGSEC_WORKLOAD_OP_SOURCE_HH

#include <cstdint>

namespace mgsec
{

struct RemoteOp;

class OpSource
{
  public:
    virtual ~OpSource() = default;

    /** @retval false the stream is exhausted. */
    virtual bool next(RemoteOp &op) = 0;

    /** Total operations this source will produce. */
    virtual std::uint64_t totalOps() const = 0;

    /** Operations produced so far. */
    virtual std::uint64_t generated() const = 0;
};

} // namespace mgsec

#endif // MGSEC_WORKLOAD_OP_SOURCE_HH
