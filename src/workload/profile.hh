/**
 * @file
 * Synthetic workload profiles for the paper's 17 benchmarks.
 *
 * The paper drives MGPUSim with real OpenCL kernels; this
 * reproduction substitutes parameterized traffic models that match
 * the characterization in Section III:
 *   - RPKI class (Table IV) sets remote-traffic intensity,
 *   - phased destination mixes reproduce the Fig. 13/14 locality,
 *   - burst parameters reproduce the Fig. 15/16 accumulation times,
 *   - the page-migration share splits traffic between 4 KB page
 *     moves and 64 B direct block accesses.
 * DESIGN.md documents why this substitution preserves the studied
 * behaviour (the mechanisms live entirely in the communication
 * path).
 */

#ifndef MGSEC_WORKLOAD_PROFILE_HH
#define MGSEC_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mgsec
{

/**
 * GPU count of the paper's reference machine (Table III). Strong
 * scaling keeps the problem size fixed at this baseline: per-GPU
 * work shrinks as kScalingBaselineGpus/numGpus and inter-burst gaps
 * as (kScalingBaselineGpus/numGpus)^kScalingGapExponent (Sec. V-D;
 * docs/MODEL.md §7). Every strong-scaling site derives from these
 * two constants.
 */
inline constexpr std::uint32_t kScalingBaselineGpus = 4;
inline constexpr double kScalingGapExponent = 0.7;

/** Remote-requests-per-kilo-instruction class (paper Table IV). */
enum class RpkiClass : std::uint8_t { High, Medium, Low };

const char *rpkiClassName(RpkiClass c);

/** Inter-GPU destination mix shapes. */
enum class CommPattern : std::uint8_t
{
    Uniform,     ///< even over all peers
    CpuHeavy,    ///< most traffic to/from the host
    Ring,        ///< nearest GPU neighbours
    Partner,     ///< fixed buddy GPU
    HotSpot,     ///< one (rotating) hot GPU
};

/** One execution phase of a workload. */
struct PhaseSpec
{
    double fraction = 1.0;      ///< share of the GPU's remote ops
    CommPattern pattern = CommPattern::Uniform;
    /** Rotation applied to ring/hotspot peers (phase index etc.). */
    std::uint32_t hotOffset = 0;
    double cpuShare = 0.1;      ///< fraction of traffic to the CPU
    double writeFrac = 0.2;
    double migratableFrac = 0.3;///< ops in migration-eligible pages
    double meanBurst = 16.0;    ///< mean blocks per burst
    Cycles intraGap = 2;        ///< issue gap inside a burst
    Cycles interGap = 100;      ///< mean gap between bursts
};

struct WorkloadProfile
{
    std::string name;   ///< abbreviation used by the paper ("mm")
    std::string suite;  ///< benchmark suite of origin
    RpkiClass rpki = RpkiClass::Medium;
    std::uint64_t opsPerGpu = 8000;
    std::uint32_t pagesPerPeer = 64; ///< working-set pages per peer
    std::vector<PhaseSpec> phases;
};

/**
 * Build the profile for one of the 17 paper workloads.
 * @param abbr paper abbreviation (Table IV), e.g. "mm", "spmv".
 * @param scale multiplies opsPerGpu (tests use < 1 for speed).
 * @param num_gpus partitioning degree: with the problem size fixed
 *        (the paper's strong-scaling setup), finer partitioning
 *        raises boundary traffic per unit of compute, so inter-burst
 *        gaps shrink as (4 / num_gpus)^0.7.
 * @throws via fatal() when the name is unknown.
 */
WorkloadProfile makeProfile(const std::string &abbr,
                            double scale = 1.0,
                            std::uint32_t num_gpus = 4);

/** All 17 abbreviations, in the paper's Table IV order. */
const std::vector<std::string> &workloadNames();

/** The subset with a given RPKI class. */
std::vector<std::string> workloadNames(RpkiClass c);

} // namespace mgsec

#endif // MGSEC_WORKLOAD_PROFILE_HH
