/**
 * @file
 * Trace recording and replay.
 *
 * Format: one text line per operation —
 *   gap dst write addr migratable
 * preceded by a header line "mgsec-trace v1 <ops>". Text keeps the
 * traces greppable and diffable; they compress well if needed.
 */

#ifndef MGSEC_WORKLOAD_TRACE_IO_HH
#define MGSEC_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/op_source.hh"
#include "workload/source.hh"

namespace mgsec
{

/** Write every op of @p src to @p os. Returns ops written. */
std::uint64_t writeTrace(std::ostream &os, OpSource &src);

/** Convenience: record a synthetic workload's stream to a file. */
std::uint64_t recordTrace(const std::string &path,
                          const WorkloadProfile &profile, NodeId gpu,
                          std::uint32_t num_nodes,
                          std::uint64_t seed);

/** Replays a recorded trace. */
class TraceFileSource : public OpSource
{
  public:
    /** Parse from a stream (fatal() on malformed input). */
    explicit TraceFileSource(std::istream &is);
    /** Parse from a file (fatal() when unreadable). */
    explicit TraceFileSource(const std::string &path);

    bool next(RemoteOp &op) override;
    std::uint64_t totalOps() const override { return ops_.size(); }
    std::uint64_t generated() const override { return pos_; }

  private:
    void parse(std::istream &is);

    std::vector<RemoteOp> ops_;
    std::uint64_t pos_ = 0;
};

} // namespace mgsec

#endif // MGSEC_WORKLOAD_TRACE_IO_HH
