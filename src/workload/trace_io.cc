#include "workload/trace_io.hh"

#include <fstream>
#include <sstream>
#include <string>

#include "sim/logging.hh"

namespace mgsec
{

std::uint64_t
writeTrace(std::ostream &os, OpSource &src)
{
    os << "mgsec-trace v1 " << src.totalOps() << "\n";
    RemoteOp op;
    std::uint64_t n = 0;
    while (src.next(op)) {
        os << op.gap << " " << op.dst << " "
           << (op.write ? 1 : 0) << " " << op.addr << " "
           << (op.migratable ? 1 : 0) << "\n";
        ++n;
    }
    return n;
}

std::uint64_t
recordTrace(const std::string &path, const WorkloadProfile &profile,
            NodeId gpu, std::uint32_t num_nodes, std::uint64_t seed)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write trace file '%s'", path.c_str());
    TraceSource src(profile, gpu, num_nodes, seed);
    return writeTrace(os, src);
}

TraceFileSource::TraceFileSource(std::istream &is)
{
    parse(is);
}

TraceFileSource::TraceFileSource(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read trace file '%s'", path.c_str());
    parse(is);
}

void
TraceFileSource::parse(std::istream &is)
{
    std::string magic, version;
    std::uint64_t count = 0;
    if (!(is >> magic >> version >> count) ||
        magic != "mgsec-trace" || version != "v1") {
        fatal("not an mgsec-trace v1 stream");
    }
    ops_.reserve(count);
    RemoteOp op;
    std::uint64_t gap = 0;
    std::uint32_t dst = 0;
    int write = 0, migratable = 0;
    std::uint64_t addr = 0;
    while (is >> gap >> dst >> write >> addr >> migratable) {
        op.gap = gap;
        op.dst = dst;
        op.write = write != 0;
        op.addr = addr;
        op.migratable = migratable != 0;
        ops_.push_back(op);
    }
    if (ops_.size() != count) {
        fatal("trace truncated: header says %llu ops, found %zu",
              static_cast<unsigned long long>(count), ops_.size());
    }
}

bool
TraceFileSource::next(RemoteOp &op)
{
    if (pos_ >= ops_.size())
        return false;
    op = ops_[pos_++];
    return true;
}

} // namespace mgsec
