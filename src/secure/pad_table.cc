#include "secure/pad_table.hh"

#include <algorithm>
#include <cmath>

#include "sim/debug.hh"

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace mgsec
{

OtpStats &
OtpStats::operator+=(const OtpStats &o)
{
    for (std::size_t d = 0; d < kNumDirections; ++d) {
        for (std::size_t k = 0; k < kNumOutcomes; ++k)
            counts[d][k] += o.counts[d][k];
        exposedCycles[d] += o.exposedCycles[d];
    }
    return *this;
}

PadTable::PadTable(const std::string &name, EventQueue &eq, NodeId self,
                   std::uint32_t num_nodes,
                   std::uint32_t total_entries, Cycles latency)
    : SimObject(name, eq), self_(self), num_nodes_(num_nodes),
      total_entries_(total_entries), latency_(latency)
{
    MGSEC_ASSERT(num_nodes_ >= 2 && self_ < num_nodes_,
                 "bad pad table topology");
    MGSEC_ASSERT(latency_ > 0, "AES latency must be positive");
    regStat(send_hits_);
    regStat(send_partials_);
    regStat(send_misses_);
    regStat(recv_hits_);
    regStat(recv_partials_);
    regStat(recv_misses_);
}

void
PadTable::record(Direction d, OtpOutcome o, Tick ready)
{
    const auto di = static_cast<std::size_t>(d);
    otp_stats_.counts[di][static_cast<std::size_t>(o)] += 1;
    const Tick t = now();
    if (ready > t)
        otp_stats_.exposedCycles[di] += static_cast<double>(ready - t);

    if (o == OtpOutcome::Miss) {
        if (TraceSink *ts = eventq().traceSink()) {
            ts->instant(self_, "pad",
                        d == Direction::Send ? "sendMiss" : "recvMiss",
                        t);
        }
    }

    if (d == Direction::Send) {
        switch (o) {
          case OtpOutcome::Hit:
            ++send_hits_;
            break;
          case OtpOutcome::Partial:
            ++send_partials_;
            break;
          case OtpOutcome::Miss:
            ++send_misses_;
            break;
        }
    } else {
        switch (o) {
          case OtpOutcome::Hit:
            ++recv_hits_;
            break;
          case OtpOutcome::Partial:
            ++recv_partials_;
            break;
          case OtpOutcome::Miss:
            ++recv_misses_;
            break;
        }
    }
}

// ---------------------------------------------------------------- Private

PrivatePadTable::PrivatePadTable(const std::string &name,
                                 EventQueue &eq, NodeId self,
                                 std::uint32_t num_nodes,
                                 std::uint32_t total_entries,
                                 Cycles latency)
    : PadTable(name, eq, self, num_nodes, total_entries, latency),
      send_pipes_(num_nodes), recv_pipes_(num_nodes)
{
    const std::uint32_t peers = num_nodes_ - 1;
    // Scale-out guard: the floor of one staged pad per (peer,
    // direction) pipe already consumes 2*peers entries, so a table
    // configured smaller would silently hold more pads than its
    // nominal capacity — exactly the sizing bug that shows up first
    // at 64 GPUs, where peers outgrow a 4-GPU-tuned pool.
    MGSEC_ASSERT(total_entries_ >= 2 * peers,
                 "OTP table of %u entries cannot cover %u peers",
                 total_entries_, peers);
    quota_per_pair_ =
        std::max<std::uint32_t>(1, total_entries_ / (peers * 2));
    for (NodeId p = 0; p < num_nodes_; ++p) {
        if (p == self_)
            continue;
        send_pipes_[p].init(now(), latency_, quota_per_pair_, 0);
        recv_pipes_[p].init(now(), latency_, quota_per_pair_, 0);
    }
}

SendGrant
PrivatePadTable::acquireSend(NodeId dst)
{
    MGSEC_ASSERT(dst < num_nodes_ && dst != self_, "bad dst %u", dst);
    PadPipeline &pipe = send_pipes_[dst];
    const auto c = pipe.claim(now());
    const OtpOutcome o = PadPipeline::classify(now(), c.ready, latency_);
    record(Direction::Send, o, c.ready);
    return SendGrant{c.ctr, o, c.ready};
}

RecvGrant
PrivatePadTable::acquireRecv(NodeId src, std::uint64_t ctr, bool)
{
    MGSEC_ASSERT(src < num_nodes_ && src != self_, "bad src %u", src);
    PadPipeline &pipe = recv_pipes_[src];
    if (pipe.nextCtr() != ctr) {
        // Counter discontinuity: staged pads are for the wrong
        // counters; restart the pipeline at the arriving counter.
        pipe.resync(now(), ctr);
    }
    const auto c = pipe.claim(now());
    MGSEC_ASSERT(c.ctr == ctr, "recv counter skew");
    const OtpOutcome o = PadPipeline::classify(now(), c.ready, latency_);
    record(Direction::Recv, o, c.ready);
    return RecvGrant{o, c.ready};
}

// ----------------------------------------------------------------- Shared

SharedPadTable::SharedPadTable(const std::string &name, EventQueue &eq,
                               NodeId self, std::uint32_t num_nodes,
                               std::uint32_t total_entries,
                               Cycles latency)
    : PadTable(name, eq, self, num_nodes, total_entries, latency),
      recv_slots_(num_nodes)
{
}

SendGrant
SharedPadTable::acquireSend(NodeId dst)
{
    MGSEC_ASSERT(dst < num_nodes_ && dst != self_, "bad dst %u", dst);
    const std::uint64_t ctr = send_ctr_++;

    Tick ready;
    if (dst == last_dst_) {
        // The single slot pre-generated for (ctr, last_dst_).
        ready = send_slot_ready_;
    } else {
        // Wrong destination baked into the staged pad: regenerate.
        ready = now() + latency_;
    }
    const OtpOutcome o = PadPipeline::classify(now(), ready, latency_);
    record(Direction::Send, o, ready);

    // The slot re-arms for (ctr + 1, dst) once this pad is consumed.
    const Tick claim_time = std::max(now(), ready);
    send_slot_ready_ = claim_time + latency_;
    last_dst_ = dst;
    return SendGrant{ctr, o, ready};
}

RecvGrant
SharedPadTable::acquireRecv(NodeId src, std::uint64_t ctr, bool)
{
    MGSEC_ASSERT(src < num_nodes_ && src != self_, "bad src %u", src);
    RecvSlot &slot = recv_slots_[src];

    Tick ready;
    if (slot.primed && slot.expectCtr == ctr) {
        ready = slot.ready;
    } else {
        // The sender's global counter advanced while it talked to
        // other processors; the staged pad is useless.
        ready = now() + latency_;
    }
    const OtpOutcome o = PadPipeline::classify(now(), ready, latency_);
    record(Direction::Recv, o, ready);

    const Tick claim_time = std::max(now(), ready);
    slot.primed = true;
    slot.expectCtr = ctr + 1;
    slot.ready = claim_time + latency_;
    return RecvGrant{o, ready};
}

std::uint32_t
SharedPadTable::padQuota(NodeId peer, Direction d) const
{
    if (d == Direction::Send)
        return peer == last_dst_ ? 1 : 0;
    return recv_slots_[peer].primed ? 1 : 0;
}

std::uint32_t
SharedPadTable::padsReady(NodeId peer, Direction d, Tick now) const
{
    if (d == Direction::Send)
        return peer == last_dst_ && send_slot_ready_ <= now ? 1 : 0;
    const RecvSlot &slot = recv_slots_[peer];
    return slot.primed && slot.ready <= now ? 1 : 0;
}

// ----------------------------------------------------------------- Cached

CachedPadTable::CachedPadTable(const std::string &name, EventQueue &eq,
                               NodeId self, std::uint32_t num_nodes,
                               std::uint32_t total_entries,
                               Cycles latency)
    : PadTable(name, eq, self, num_nodes, total_entries, latency),
      pairs_(static_cast<std::size_t>(num_nodes) * kNumDirections),
      send_ctrs_(num_nodes, 0), free_entries_(total_entries),
      pair_cap_(std::max<std::uint32_t>(
          2, (3 * total_entries) / (4 * (num_nodes - 1))))
{
    MGSEC_ASSERT(total_entries_ > 0, "cached table needs entries");
}

std::uint32_t
CachedPadTable::owned(NodeId peer, Direction d) const
{
    return static_cast<std::uint32_t>(pairs_[keyOf(peer, d)]
                                          .ready.size());
}

std::uint32_t
CachedPadTable::padsReady(NodeId peer, Direction d, Tick now) const
{
    std::uint32_t n = 0;
    for (Tick t : pairs_[keyOf(peer, d)].ready)
        n += t <= now ? 1 : 0;
    return n;
}

Tick
CachedPadTable::claimFrom(PairState &ps, Tick now)
{
    const Tick ready = ps.ready.front();
    ps.ready.pop_front();
    const Tick claim_time = std::max(now, ready);
    ps.ready.push_back(claim_time + latency_);
    ++ps.frontCtr;
    ++ps.nextGenCtr;
    return ready;
}

bool
CachedPadTable::grabEntry(std::size_t for_key)
{
    if (free_entries_ > 0) {
        --free_entries_;
        return true;
    }
    return stealEntry(for_key);
}

bool
CachedPadTable::stealEntry(std::size_t for_key)
{
    std::size_t victim = pairs_.size();
    for (std::size_t k = 0; k < pairs_.size(); ++k) {
        if (k == for_key || pairs_[k].ready.empty())
            continue;
        if (victim == pairs_.size() ||
            pairs_[k].lastUse < pairs_[victim].lastUse) {
            victim = k;
        }
    }
    if (victim == pairs_.size())
        return false;
    // Drop the victim's highest-counter pad (the least useful one).
    pairs_[victim].ready.pop_back();
    --pairs_[victim].nextGenCtr;
    return true;
}

SendGrant
CachedPadTable::acquireSend(NodeId dst)
{
    MGSEC_ASSERT(dst < num_nodes_ && dst != self_, "bad dst %u", dst);
    const std::size_t key = keyOf(dst, Direction::Send);
    PairState &ps = pairs_[key];
    ps.lastUse = ++lru_clock_;
    const std::uint64_t ctr = send_ctrs_[dst]++;

    if (!ps.ready.empty()) {
        MGSEC_ASSERT(ps.frontCtr == ctr, "cached send counter skew");
        // Demand outpacing this pair's slots by a full generation
        // latency: widen it by stealing the LRU victim's slot (this
        // is what lets Cached adapt to hot pairs). The pad cache is
        // set-associative (one pair cannot hoard the whole pool) and
        // the allocation FSM re-tags at most one entry per pair per
        // couple of generation latencies.
        if (ps.ready.front() >= now() + latency_ &&
            ps.ready.size() < pair_cap_ &&
            now() >= ps.lastGrow + 2 * latency_ && grabEntry(key) &&
            (ps.lastGrow = now(), true))
            ps.ready.push_back(now() + latency_);
        const Tick ready = claimFrom(ps, now());
        const OtpOutcome o =
            PadPipeline::classify(now(), ready, latency_);
        record(Direction::Send, o, ready);
        return SendGrant{ctr, o, ready};
    }

    // Pool miss: grab a free entry or steal the LRU pair's slot,
    // generate this pad on demand in it, then leave the entry staged
    // for the pair's next counter.
    const bool have_entry = grabEntry(key);
    const Tick ready = now() + latency_;
    record(Direction::Send, OtpOutcome::Miss, ready);
    if (have_entry) {
        ps.frontCtr = ctr + 1;
        ps.nextGenCtr = ctr + 2;
        ps.ready.push_back(ready + latency_);
    }
    return SendGrant{ctr, OtpOutcome::Miss, ready};
}

RecvGrant
CachedPadTable::acquireRecv(NodeId src, std::uint64_t ctr,
                            bool sender_fallback)
{
    MGSEC_ASSERT(src < num_nodes_ && src != self_, "bad src %u", src);
    const std::size_t key = keyOf(src, Direction::Recv);
    PairState &ps = pairs_[key];
    ps.lastUse = ++lru_clock_;

    if (sender_fallback) {
        // The sender generated this pad outside the pre-generated
        // stream (Shared-style max-counter fallback): whatever we
        // staged cannot match, and the stream interleave also breaks
        // the counter prediction behind it, so the whole staged
        // pipeline restarts.
        const Tick ready = now() + latency_;
        if (!ps.ready.empty() && ps.frontCtr == ctr) {
            for (auto &t : ps.ready)
                t = ready + latency_;
            claimFrom(ps, now());
        } else if (ps.ready.empty() && grabEntry(key)) {
            ps.frontCtr = ctr + 1;
            ps.nextGenCtr = ctr + 2;
            ps.ready.push_back(ready + latency_);
        }
        record(Direction::Recv, OtpOutcome::Miss, ready);
        return RecvGrant{OtpOutcome::Miss, ready};
    }

    if (!ps.ready.empty() && ps.frontCtr == ctr) {
        if (ps.ready.front() >= now() + latency_ &&
            ps.ready.size() < pair_cap_ &&
            now() >= ps.lastGrow + 2 * latency_ && grabEntry(key) &&
            (ps.lastGrow = now(), true))
            ps.ready.push_back(now() + latency_);
        const Tick ready = claimFrom(ps, now());
        const OtpOutcome o =
            PadPipeline::classify(now(), ready, latency_);
        record(Direction::Recv, o, ready);
        return RecvGrant{o, ready};
    }

    if (!ps.ready.empty()) {
        // Counter jump: every staged pad restarts at the new stream.
        for (auto &r : ps.ready)
            r = now() + latency_;
        ps.frontCtr = ctr;
        ps.nextGenCtr = ctr + static_cast<std::uint64_t>(
                                  ps.ready.size());
        const Tick ready = claimFrom(ps, now());
        record(Direction::Recv, OtpOutcome::Miss, ready);
        return RecvGrant{OtpOutcome::Miss, ready};
    }

    const bool have_entry = grabEntry(key);
    const Tick ready = now() + latency_;
    record(Direction::Recv, OtpOutcome::Miss, ready);
    if (have_entry) {
        ps.frontCtr = ctr + 1;
        ps.nextGenCtr = ctr + 2;
        ps.ready.push_back(ready + latency_);
    }
    return RecvGrant{OtpOutcome::Miss, ready};
}

// ---------------------------------------------------------------- Dynamic

DynamicPadTable::DynamicPadTable(const std::string &name,
                                 EventQueue &eq, NodeId self,
                                 std::uint32_t num_nodes,
                                 std::uint32_t total_entries,
                                 Cycles latency, Params params)
    : PrivatePadTable(name, eq, self, num_nodes, total_entries,
                      latency),
      params_(params), sreq_peer_(num_nodes, 0),
      rreq_peer_(num_nodes, 0), s_peer_weight_(num_nodes, 0.0),
      r_peer_weight_(num_nodes, 0.0)
{
    MGSEC_ASSERT(params_.interval > 0, "bad adjustment interval");
    MGSEC_ASSERT(params_.alpha >= 0.0 && params_.alpha <= 1.0 &&
                     params_.beta >= 0.0 && params_.beta <= 1.0,
                 "EWMA weights must be in [0, 1]");
    const double even = 1.0 / static_cast<double>(num_nodes_ - 1);
    for (NodeId p = 0; p < num_nodes_; ++p) {
        if (p == self_)
            continue;
        s_peer_weight_[p] = even;
        r_peer_weight_[p] = even;
    }
    applied_s_peer_ = s_peer_weight_;
    applied_r_peer_ = r_peer_weight_;
    regStat(adjustments_);
    scheduleNext();
}

void
DynamicPadTable::scheduleNext()
{
    eventq().scheduleIn(params_.interval, [this]() {
        adjust();
        scheduleNext();
    });
}

SendGrant
DynamicPadTable::acquireSend(NodeId dst)
{
    ++sreq_;
    ++sreq_peer_[dst];
    return PrivatePadTable::acquireSend(dst);
}

RecvGrant
DynamicPadTable::acquireRecv(NodeId src, std::uint64_t ctr,
                             bool sender_fallback)
{
    ++rreq_;
    ++rreq_peer_[src];
    return PrivatePadTable::acquireRecv(src, ctr, sender_fallback);
}

std::uint32_t
DynamicPadTable::quota(NodeId peer, Direction d) const
{
    return d == Direction::Send ? send_pipes_[peer].quota()
                                : recv_pipes_[peer].quota();
}

std::vector<std::uint32_t>
DynamicPadTable::partition(std::uint32_t total,
                           const std::vector<double> &weights) const
{
    const std::uint32_t peers = num_nodes_ - 1;
    MGSEC_ASSERT(total >= peers, "cannot give every pair an entry");
    std::vector<std::uint32_t> out(num_nodes_, 0);

    double wsum = 0.0;
    for (NodeId p = 0; p < num_nodes_; ++p)
        if (p != self_)
            wsum += weights[p];

    // One guaranteed entry per pair (even a cold pair still sees
    // occasional bursts, and on-demand generation serializes); the
    // surplus follows the weights with largest-remainder rounding.
    const std::uint32_t surplus = total - peers;
    std::vector<std::pair<double, NodeId>> rema;
    std::uint32_t given = 0;
    for (NodeId p = 0; p < num_nodes_; ++p) {
        if (p == self_)
            continue;
        const double share = wsum > 0.0
            ? weights[p] / wsum * static_cast<double>(surplus)
            : static_cast<double>(surplus) / peers;
        const auto fl = static_cast<std::uint32_t>(share);
        out[p] = 1 + fl;
        given += fl;
        rema.emplace_back(share - static_cast<double>(fl), p);
    }
    std::sort(rema.begin(), rema.end(), [](const auto &a,
                                           const auto &b) {
        if (a.first != b.first)
            return a.first > b.first;
        return a.second < b.second;
    });
    for (std::size_t i = 0; given < surplus && i < rema.size(); ++i) {
        ++out[rema[i].second];
        ++given;
    }
    MGSEC_ASSERT(given == surplus, "partition accounting error");
    return out;
}

void
DynamicPadTable::adjust()
{
    const std::uint64_t total = sreq_ + rreq_;
    if (total > 0) {
        // Confidence scaling: an interval carrying few messages is a
        // noisy ratio estimate, so it moves the EWMA proportionally
        // less. Dense intervals (the common case on a real GPU's
        // traffic volume) use the paper's alpha/beta unchanged.
        auto confide = [](double w, std::uint64_t n,
                          std::uint32_t scale) {
            const double c = static_cast<double>(n) /
                             (static_cast<double>(n) +
                              static_cast<double>(scale));
            return w * c;
        };
        // Formula 1: direction weight.
        const double a =
            confide(params_.alpha, total, params_.confidenceDir);
        s_weight_ = (1.0 - a) * s_weight_ +
                    a * (static_cast<double>(sreq_) /
                         static_cast<double>(total));
        // Formula 3: per-destination weights, one EWMA per peer.
        const double bs =
            confide(params_.beta, sreq_, params_.confidencePeer);
        const double br =
            confide(params_.beta, rreq_, params_.confidencePeer);
        for (NodeId p = 0; p < num_nodes_; ++p) {
            if (p == self_)
                continue;
            if (sreq_ > 0) {
                s_peer_weight_[p] =
                    (1.0 - bs) * s_peer_weight_[p] +
                    bs * (static_cast<double>(sreq_peer_[p]) /
                          static_cast<double>(sreq_));
            }
            if (rreq_ > 0) {
                r_peer_weight_[p] =
                    (1.0 - br) * r_peer_weight_[p] +
                    br * (static_cast<double>(rreq_peer_[p]) /
                          static_cast<double>(rreq_));
            }
        }
    }

    if (TraceSink *ts = eventq().traceSink())
        ts->counter(self_, "ewma", "S", now(), s_weight_);

    // Re-partitioning throws away staged pads in every resized
    // pipe, so only act when the traffic picture actually moved:
    // rounding noise on stable traffic must not churn the tables.
    double drift = std::abs(s_weight_ - applied_s_);
    for (NodeId p = 0; p < num_nodes_; ++p) {
        if (p == self_)
            continue;
        drift = std::max(drift,
                         std::abs(s_peer_weight_[p] -
                                  applied_s_peer_[p]));
        drift = std::max(drift,
                         std::abs(r_peer_weight_[p] -
                                  applied_r_peer_[p]));
    }
    if (drift >= kDriftThreshold) {
        // Formula 2: split the pool between directions; every pair
        // keeps at least one entry in each direction.
        const std::uint32_t peers = num_nodes_ - 1;
        auto spad = static_cast<std::uint32_t>(std::lround(
            static_cast<double>(total_entries_) * s_weight_));
        spad = std::clamp(spad, peers, total_entries_ - peers);
        const std::uint32_t rpad = total_entries_ - spad;

        // Formula 4: per-destination split inside each direction.
        const auto squota = partition(spad, s_peer_weight_);
        const auto rquota = partition(rpad, r_peer_weight_);
        for (NodeId p = 0; p < num_nodes_; ++p) {
            if (p == self_)
                continue;
            send_pipes_[p].resize(now(), squota[p]);
            recv_pipes_[p].resize(now(), rquota[p]);
        }
        applied_s_ = s_weight_;
        applied_s_peer_ = s_peer_weight_;
        applied_r_peer_ = r_peer_weight_;
        if (TraceSink *ts = eventq().traceSink()) {
            ts->instant(self_, "ewma", "repartition", now(), "spad",
                        static_cast<double>(spad));
        }
        MGSEC_DPRINTF(debug::PadTable,
                      "re-partitioned: S=%.3f spad=%u", s_weight_,
                      spad);
    }

    sreq_ = 0;
    rreq_ = 0;
    std::fill(sreq_peer_.begin(), sreq_peer_.end(), 0);
    std::fill(rreq_peer_.begin(), rreq_peer_.end(), 0);
    ++adjustments_;
}

// ---------------------------------------------------------------- factory

const char *
otpSchemeName(OtpScheme s)
{
    switch (s) {
      case OtpScheme::Unsecure:
        return "Unsecure";
      case OtpScheme::Private:
        return "Private";
      case OtpScheme::Shared:
        return "Shared";
      case OtpScheme::Cached:
        return "Cached";
      case OtpScheme::Dynamic:
        return "Dynamic";
    }
    return "?";
}

std::unique_ptr<PadTable>
makePadTable(OtpScheme scheme, const std::string &name, EventQueue &eq,
             NodeId self, std::uint32_t num_nodes,
             std::uint32_t total_entries, Cycles latency,
             DynamicPadTable::Params dyn_params)
{
    switch (scheme) {
      case OtpScheme::Private:
        return std::make_unique<PrivatePadTable>(
            name, eq, self, num_nodes, total_entries, latency);
      case OtpScheme::Shared:
        return std::make_unique<SharedPadTable>(
            name, eq, self, num_nodes, total_entries, latency);
      case OtpScheme::Cached:
        return std::make_unique<CachedPadTable>(
            name, eq, self, num_nodes, total_entries, latency);
      case OtpScheme::Dynamic:
        return std::make_unique<DynamicPadTable>(
            name, eq, self, num_nodes, total_entries, latency,
            dyn_params);
      case OtpScheme::Unsecure:
        break;
    }
    panic("no pad table for scheme %s", otpSchemeName(scheme));
}

} // namespace mgsec
