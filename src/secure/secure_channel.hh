/**
 * @file
 * Per-processor secure communication endpoint.
 *
 * Sits between a node's protocol logic and the interconnect and
 * implements the paper's Fig. 5 flow:
 *
 *   send:  claim a send pad (assigning the MsgCTR), wait until the
 *          pad exists plus one XOR cycle, attach security metadata
 *          bytes (and batch fields when batching data responses),
 *          piggyback pending ACKs, and launch the packet.
 *   recv:  claim the receive pad for (src, MsgCTR), wait for it plus
 *          one XOR cycle, then deliver upward; decryption and MAC
 *          check share the pad, so no further latency is exposed.
 *          Every received data message owes an ACK: per message
 *          conventionally, per batch when batching.
 *
 * With OtpScheme::Unsecure the channel is a transparent pass-through
 * that only sets the base header size — the paper's baseline.
 */

#ifndef MGSEC_SECURE_SECURE_CHANNEL_HH
#define MGSEC_SECURE_SECURE_CHANNEL_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "crypto/otp.hh"
#include "net/network.hh"
#include "secure/batching.hh"
#include "secure/pad_table.hh"
#include "secure/replay_window.hh"
#include "secure/security_config.hh"
#include "sim/sim_object.hh"

namespace mgsec
{

class SecureChannel : public SimObject
{
  public:
    using Deliver = std::function<void(PacketPtr)>;

    SecureChannel(const std::string &name, EventQueue &eq,
                  Network &net, NodeId self,
                  const SecurityConfig &cfg);

    /** Handler receiving decrypted, ready packets. */
    void setDeliver(Deliver d) { deliver_ = std::move(d); }

    /**
     * Secure and transmit a packet built by the node logic (the
     * caller sets type/src/dst/payload/txnId; the channel owns
     * header/metadata bytes and all security fields).
     */
    void send(PacketPtr pkt);

    /** Entry point installed as the network handler for this node. */
    void handleArrival(PacketPtr pkt);

    NodeId nodeId() const { return self_; }
    const SecurityConfig &config() const { return cfg_; }

    /** Null when the scheme is Unsecure. */
    PadTable *padTable() { return pad_table_.get(); }
    const PadTable *padTable() const { return pad_table_.get(); }

    const ReplayWindow &replayWindow() const { return replay_; }
    const BatchAssembler *assembler() const { return assembler_.get(); }
    const MsgMacStorage *macStorage() const { return storage_.get(); }

    /** Observer for burstiness studies: (dst, tick) per data block. */
    using BlockObserver = std::function<void(NodeId, Tick)>;
    void setBlockObserver(BlockObserver o) { observer_ = std::move(o); }

    /** End-of-run: flush open batches and pending ACKs. */
    void drainBatches();

    std::uint64_t standaloneAcks() const
    {
        return static_cast<std::uint64_t>(standalone_acks_.value());
    }

    /** Stale (<= last seen) counters observed from any peer. */
    std::uint64_t replaySuspects() const
    {
        return static_cast<std::uint64_t>(replay_suspects_.value());
    }

    /**
     * Skipped counters observed on per-pair streams. Counters are
     * assigned contiguously per (src,dst) in every scheme except
     * Shared, so a hole in the arriving stream means messages were
     * suppressed in flight (or a sender skipped counters).
     */
    std::uint64_t ctrGaps() const
    {
        return static_cast<std::uint64_t>(ctr_gaps_.value());
    }

    /** @name Functional-crypto verification outcomes */
    /// @{
    std::uint64_t macsVerified() const
    {
        return static_cast<std::uint64_t>(mac_verified_.value());
    }
    std::uint64_t macsFailed() const
    {
        return static_cast<std::uint64_t>(mac_failed_.value());
    }
    std::uint64_t decryptsOk() const
    {
        return static_cast<std::uint64_t>(decrypt_ok_.value());
    }
    std::uint64_t decryptsBad() const
    {
        return static_cast<std::uint64_t>(decrypt_bad_.value());
    }
    /// @}

  private:
    /** Deterministic plaintext both endpoints can reconstruct. */
    static crypto::BlockPayload synthesize(NodeId src, NodeId dst,
                                           std::uint64_t ctr);
    /** Pad masking a batch's MAC, derivable from the batch id. */
    crypto::MessagePad batchMaskPad(NodeId sender, NodeId receiver,
                                    std::uint64_t batch_id) const;
    void applyFunctionalSend(Packet &pkt);
    /**
     * Per-message receive crypto. Returns false only when this
     * message's MsgMAC failed right here; batched members defer
     * their verdict to finishFunctionalBatch().
     */
    bool verifyFunctionalRecv(const Packet &pkt);
    /** Lazy batch verification; true when the batched MAC held. */
    bool finishFunctionalBatch(NodeId src, std::uint64_t batch_id);
    /** Extend the verified-counter watermark toward @p src. */
    void advanceVerified(NodeId src, std::uint64_t ctr);

    void finishSend(PacketPtr pkt, Tick departure);
    void queueAck(NodeId peer, const AckRecord &rec);
    void flushAcks(NodeId peer);
    void processAcks(NodeId from, const AckList &acks);
    void sendBatchTrailer(NodeId dst, std::uint64_t batch_id,
                          std::uint8_t count);

    /** @name Traffic shaping (SecurityConfig::shaping) */
    /// @{
    bool shapingOn() const
    {
        return cfg_.secured() && cfg_.shaping != ShapingPolicy::None;
    }
    /**
     * Shape a data departure: @p base is the unshaped departure
     * (already clamped to counter order); returns the shaped one,
     * never earlier than @p base. @p salt feeds the jitter policy
     * (the batch identity, so each close jitters differently).
     */
    Tick shapeDeparture(NodeId dst, Tick base, bool batch_close,
                        std::uint64_t salt);
    /** Constant-rate only: pad the wire image up to the quantum. */
    void shapePad(Packet &pkt);
    /** Deterministic jitter in [0, shapeJitter) from protocol state. */
    Cycles jitterFor(std::uint64_t salt) const;
    /**
     * Launch a protocol-only packet (trailer / standalone ACK)
     * through the shaping policy instead of calling net_.send()
     * directly; @p batch_close marks batch-close signatures for the
     * jitter policy.
     */
    void dispatchCtl(PacketPtr pkt, bool batch_close);
    /**
     * Constant-rate cover traffic: start filling empty slots toward
     * EVERY peer with chaff (no-op unless the policy and chaff
     * budget call for it). Full-mesh cover, not just the flow that
     * triggered it — per-link packet density must not reveal which
     * pairs actually communicate.
     */
    void armChaff();
    /** One chaff slot boundary for @p dst at tick @p slot_time. */
    void chaffTick(NodeId dst, Tick slot_time);
    /** Whether the constant-rate cover-traffic machinery is live. */
    bool chaffOn() const
    {
        return cfg_.shaping == ShapingPolicy::ConstantRate &&
               cfg_.shapeChaffSlots != 0 && cfg_.shapeInterval != 0;
    }
    /** Record a real shaped departure's slot for the chaff chain. */
    void claimChaffSlot(NodeId dst, Tick dep)
    {
        if (chaffOn())
            chaff_claims_[dst].push_back(dep);
    }
    /// @}

    Network &net_;
    NodeId self_;
    SecurityConfig cfg_;
    Deliver deliver_;
    BlockObserver observer_;

    std::unique_ptr<PadTable> pad_table_;
    std::unique_ptr<BatchAssembler> assembler_;
    std::unique_ptr<MsgMacStorage> storage_;
    ReplayWindow replay_;

    /** Functional-crypto state (null unless enabled). */
    std::unique_ptr<crypto::PadFactory> factory_;
    std::map<std::uint64_t, std::vector<crypto::MsgMac>>
        batch_macs_out_;
    struct RecvBatch
    {
        std::vector<crypto::MsgMac> macs;
        crypto::MsgMac trailer{};
        bool haveTrailer = false;
        std::uint64_t maxCtr = 0; ///< highest member counter seen
    };
    std::map<std::pair<NodeId, std::uint64_t>, RecvBatch>
        recv_batches_;

    /** Pending ACK records per peer plus their flush timers. */
    std::vector<std::vector<AckRecord>> pending_acks_;
    std::vector<EventId> ack_timers_;

    /** Per-destination departure clamp keeping counters in order. */
    std::vector<Tick> last_departure_;
    /** Per-destination flag: a chaff timer chain is running. */
    std::vector<std::uint8_t> chaff_armed_;
    /**
     * Per-destination queue of grid slots claimed by real shaped
     * departures that the chaff chain has not stepped past yet.
     * last_departure_ alone cannot drive the chain: a pad-wait can
     * push a real departure two boundaries ahead, and treating the
     * high-water mark as "covered through here" would leave the
     * skipped slot empty — a wire-visible hole that scales with the
     * workload's idle-to-burst transitions. Pushed only while chaff
     * is enabled; pruned by chaffTick as slots pass.
     */
    std::vector<std::deque<Tick>> chaff_claims_;
    /**
     * Latest real (non-chaff) shaped activity at this node — its own
     * departures and every genuine arrival. Chaff stays armed while
     * this clock is within the chaff budget, so cover lapses only
     * when the system around the node actually went quiet (chaff
     * arrivals deliberately do not refresh it, or cover would
     * sustain itself forever).
     */
    Tick last_real_activity_ = 0;
    /**
     * Latest generation-0 chaff arrival. A node whose peers are
     * still really active must keep chaffing even if nothing real
     * reaches it (or a quiet receiver's lapsed cover would expose
     * which links carry real flows), so peers' real activity is
     * relayed one hop through the generation bit on their chaff.
     * Generation-1 chaff never refreshes either clock, so the mesh
     * still drains within ~two chaff budgets of the last real
     * packet anywhere.
     */
    Tick last_cover_activity_ = 0;
    /** Per-source delivery clamp (FIFO toward the node logic). */
    std::vector<Tick> last_deliver_;
    /** Highest counter seen per source (replay detection). */
    std::vector<std::uint64_t> last_recv_ctr_;
    std::vector<std::uint8_t> has_recv_;
    /**
     * Highest counter per source whose MAC actually verified
     * (individually, or through its batch). Cumulative ACKs draw
     * from this watermark, never from last_recv_ctr_: the replay
     * watermark advances on sight and a counter flipped in flight
     * would otherwise poison it into acknowledging messages the
     * peer never sent or never authenticated. Only maintained when
     * functional crypto is on.
     */
    std::vector<std::uint64_t> verified_recv_ctr_;
    std::vector<std::uint8_t> has_verified_;

    std::uint64_t next_pkt_id_ = 1;

    stats::Scalar packets_sent_{"packetsSent", "data packets sent"};
    stats::Scalar standalone_acks_{"standaloneAcks",
                                   "ACK-only packets sent"};
    stats::Scalar piggybacked_acks_{"piggybackedAcks",
                                    "ACK records piggybacked"};
    stats::Scalar trailers_{"batchTrailers",
                            "standalone batch trailers sent"};
    stats::Scalar replay_suspects_{"replaySuspects",
                                   "stale counters observed"};
    stats::Scalar ctr_gaps_{"ctrGaps",
                            "skipped counters on per-pair streams"};
    stats::Scalar mac_verified_{"macsVerified",
                                "MsgMAC/batch MACs verified"};
    stats::Scalar mac_failed_{"macsFailed",
                              "MsgMAC/batch MAC verification failures"};
    stats::Scalar decrypt_ok_{"decryptsOk",
                              "payloads decrypted to expected data"};
    stats::Scalar decrypt_bad_{"decryptsBad",
                               "payload decryption mismatches"};
    /** Registered only when shaping is on (stats dumps stay stable
     *  for every unshaped configuration). */
    stats::Scalar shape_pad_bytes_{"shapePadBytes",
                                   "wire bytes added by shaping"};
    stats::Scalar shape_delay_cycles_{
        "shapeDelayCycles", "departure delay added by shaping"};
    stats::Scalar shape_chaff_pkts_{"shapeChaffPackets",
                                    "cover-traffic packets sent"};
};

} // namespace mgsec

#endif // MGSEC_SECURE_SECURE_CHANNEL_HH
