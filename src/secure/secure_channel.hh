/**
 * @file
 * Per-processor secure communication endpoint.
 *
 * Sits between a node's protocol logic and the interconnect and
 * implements the paper's Fig. 5 flow:
 *
 *   send:  claim a send pad (assigning the MsgCTR), wait until the
 *          pad exists plus one XOR cycle, attach security metadata
 *          bytes (and batch fields when batching data responses),
 *          piggyback pending ACKs, and launch the packet.
 *   recv:  claim the receive pad for (src, MsgCTR), wait for it plus
 *          one XOR cycle, then deliver upward; decryption and MAC
 *          check share the pad, so no further latency is exposed.
 *          Every received data message owes an ACK: per message
 *          conventionally, per batch when batching.
 *
 * With OtpScheme::Unsecure the channel is a transparent pass-through
 * that only sets the base header size — the paper's baseline.
 */

#ifndef MGSEC_SECURE_SECURE_CHANNEL_HH
#define MGSEC_SECURE_SECURE_CHANNEL_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "crypto/otp.hh"
#include "net/network.hh"
#include "secure/batching.hh"
#include "secure/pad_table.hh"
#include "secure/replay_window.hh"
#include "secure/security_config.hh"
#include "sim/sim_object.hh"

namespace mgsec
{

class SecureChannel : public SimObject
{
  public:
    using Deliver = std::function<void(PacketPtr)>;

    SecureChannel(const std::string &name, EventQueue &eq,
                  Network &net, NodeId self,
                  const SecurityConfig &cfg);

    /** Handler receiving decrypted, ready packets. */
    void setDeliver(Deliver d) { deliver_ = std::move(d); }

    /**
     * Secure and transmit a packet built by the node logic (the
     * caller sets type/src/dst/payload/txnId; the channel owns
     * header/metadata bytes and all security fields).
     */
    void send(PacketPtr pkt);

    /** Entry point installed as the network handler for this node. */
    void handleArrival(PacketPtr pkt);

    NodeId nodeId() const { return self_; }
    const SecurityConfig &config() const { return cfg_; }

    /** Null when the scheme is Unsecure. */
    PadTable *padTable() { return pad_table_.get(); }
    const PadTable *padTable() const { return pad_table_.get(); }

    const ReplayWindow &replayWindow() const { return replay_; }
    const BatchAssembler *assembler() const { return assembler_.get(); }
    const MsgMacStorage *macStorage() const { return storage_.get(); }

    /** Observer for burstiness studies: (dst, tick) per data block. */
    using BlockObserver = std::function<void(NodeId, Tick)>;
    void setBlockObserver(BlockObserver o) { observer_ = std::move(o); }

    /** End-of-run: flush open batches and pending ACKs. */
    void drainBatches();

    std::uint64_t standaloneAcks() const
    {
        return static_cast<std::uint64_t>(standalone_acks_.value());
    }

    /** Stale (<= last seen) counters observed from any peer. */
    std::uint64_t replaySuspects() const
    {
        return static_cast<std::uint64_t>(replay_suspects_.value());
    }

    /**
     * Skipped counters observed on per-pair streams. Counters are
     * assigned contiguously per (src,dst) in every scheme except
     * Shared, so a hole in the arriving stream means messages were
     * suppressed in flight (or a sender skipped counters).
     */
    std::uint64_t ctrGaps() const
    {
        return static_cast<std::uint64_t>(ctr_gaps_.value());
    }

    /** @name Functional-crypto verification outcomes */
    /// @{
    std::uint64_t macsVerified() const
    {
        return static_cast<std::uint64_t>(mac_verified_.value());
    }
    std::uint64_t macsFailed() const
    {
        return static_cast<std::uint64_t>(mac_failed_.value());
    }
    std::uint64_t decryptsOk() const
    {
        return static_cast<std::uint64_t>(decrypt_ok_.value());
    }
    std::uint64_t decryptsBad() const
    {
        return static_cast<std::uint64_t>(decrypt_bad_.value());
    }
    /// @}

  private:
    /** Deterministic plaintext both endpoints can reconstruct. */
    static crypto::BlockPayload synthesize(NodeId src, NodeId dst,
                                           std::uint64_t ctr);
    /** Pad masking a batch's MAC, derivable from the batch id. */
    crypto::MessagePad batchMaskPad(NodeId sender, NodeId receiver,
                                    std::uint64_t batch_id) const;
    void applyFunctionalSend(Packet &pkt);
    /**
     * Per-message receive crypto. Returns false only when this
     * message's MsgMAC failed right here; batched members defer
     * their verdict to finishFunctionalBatch().
     */
    bool verifyFunctionalRecv(const Packet &pkt);
    /** Lazy batch verification; true when the batched MAC held. */
    bool finishFunctionalBatch(NodeId src, std::uint64_t batch_id);
    /** Extend the verified-counter watermark toward @p src. */
    void advanceVerified(NodeId src, std::uint64_t ctr);

    void finishSend(PacketPtr pkt, Tick departure);
    void queueAck(NodeId peer, const AckRecord &rec);
    void flushAcks(NodeId peer);
    void processAcks(NodeId from, const AckList &acks);
    void sendBatchTrailer(NodeId dst, std::uint64_t batch_id,
                          std::uint8_t count);

    Network &net_;
    NodeId self_;
    SecurityConfig cfg_;
    Deliver deliver_;
    BlockObserver observer_;

    std::unique_ptr<PadTable> pad_table_;
    std::unique_ptr<BatchAssembler> assembler_;
    std::unique_ptr<MsgMacStorage> storage_;
    ReplayWindow replay_;

    /** Functional-crypto state (null unless enabled). */
    std::unique_ptr<crypto::PadFactory> factory_;
    std::map<std::uint64_t, std::vector<crypto::MsgMac>>
        batch_macs_out_;
    struct RecvBatch
    {
        std::vector<crypto::MsgMac> macs;
        crypto::MsgMac trailer{};
        bool haveTrailer = false;
        std::uint64_t maxCtr = 0; ///< highest member counter seen
    };
    std::map<std::pair<NodeId, std::uint64_t>, RecvBatch>
        recv_batches_;

    /** Pending ACK records per peer plus their flush timers. */
    std::vector<std::vector<AckRecord>> pending_acks_;
    std::vector<EventId> ack_timers_;

    /** Per-destination departure clamp keeping counters in order. */
    std::vector<Tick> last_departure_;
    /** Per-source delivery clamp (FIFO toward the node logic). */
    std::vector<Tick> last_deliver_;
    /** Highest counter seen per source (replay detection). */
    std::vector<std::uint64_t> last_recv_ctr_;
    std::vector<std::uint8_t> has_recv_;
    /**
     * Highest counter per source whose MAC actually verified
     * (individually, or through its batch). Cumulative ACKs draw
     * from this watermark, never from last_recv_ctr_: the replay
     * watermark advances on sight and a counter flipped in flight
     * would otherwise poison it into acknowledging messages the
     * peer never sent or never authenticated. Only maintained when
     * functional crypto is on.
     */
    std::vector<std::uint64_t> verified_recv_ctr_;
    std::vector<std::uint8_t> has_verified_;

    std::uint64_t next_pkt_id_ = 1;

    stats::Scalar packets_sent_{"packetsSent", "data packets sent"};
    stats::Scalar standalone_acks_{"standaloneAcks",
                                   "ACK-only packets sent"};
    stats::Scalar piggybacked_acks_{"piggybackedAcks",
                                    "ACK records piggybacked"};
    stats::Scalar trailers_{"batchTrailers",
                            "standalone batch trailers sent"};
    stats::Scalar replay_suspects_{"replaySuspects",
                                   "stale counters observed"};
    stats::Scalar ctr_gaps_{"ctrGaps",
                            "skipped counters on per-pair streams"};
    stats::Scalar mac_verified_{"macsVerified",
                                "MsgMAC/batch MACs verified"};
    stats::Scalar mac_failed_{"macsFailed",
                              "MsgMAC/batch MAC verification failures"};
    stats::Scalar decrypt_ok_{"decryptsOk",
                              "payloads decrypted to expected data"};
    stats::Scalar decrypt_bad_{"decryptsBad",
                               "payload decryption mismatches"};
};

} // namespace mgsec

#endif // MGSEC_SECURE_SECURE_CHANNEL_HH
