#include "secure/pad_pipeline.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mgsec
{

const char *
directionName(Direction d)
{
    return d == Direction::Send ? "send" : "recv";
}

const char *
otpOutcomeName(OtpOutcome o)
{
    switch (o) {
      case OtpOutcome::Hit:
        return "hit";
      case OtpOutcome::Partial:
        return "partial";
      case OtpOutcome::Miss:
        return "miss";
    }
    return "?";
}

void
PadPipeline::init(Tick now, Cycles latency, std::uint32_t quota,
                  std::uint64_t next_ctr)
{
    MGSEC_ASSERT(latency > 0, "AES latency must be positive");
    latency_ = latency;
    quota_ = quota;
    front_ctr_ = next_ctr;
    ready_.clear();
    for (std::uint32_t i = 0; i < quota; ++i)
        ready_.push_back(now + latency_);
    ondemand_free_ = now;
}

Tick
PadPipeline::frontReady() const
{
    return ready_.empty() ? MaxTick : ready_.front();
}

PadPipeline::Claim
PadPipeline::claim(Tick now)
{
    Claim c;
    c.ctr = front_ctr_++;
    if (ready_.empty()) {
        // No staging slot: generate on demand, serialized.
        const Tick start = std::max(now, ondemand_free_);
        c.ready = start + latency_;
        ondemand_free_ = c.ready;
        return c;
    }
    c.ready = ready_.front();
    ready_.pop_front();
    // The slot frees when the pad is consumed (at claim time) and
    // immediately starts on the pad quota_ counters ahead.
    const Tick claim_time = std::max(now, c.ready);
    ready_.push_back(claim_time + latency_);
    return c;
}

void
PadPipeline::resize(Tick now, std::uint32_t new_quota)
{
    if (new_quota == quota_)
        return;
    while (ready_.size() > new_quota) {
        ready_.pop_back();
        ++wasted_;
    }
    while (ready_.size() < new_quota)
        ready_.push_back(now + latency_);
    quota_ = new_quota;
    if (quota_ > 0)
        ondemand_free_ = now;
}

void
PadPipeline::resync(Tick now, std::uint64_t next_ctr)
{
    wasted_ += ready_.size();
    front_ctr_ = next_ctr;
    for (std::size_t i = 0; i < ready_.size(); ++i)
        ready_[i] = now + latency_;
    ondemand_free_ = now;
}

} // namespace mgsec
