/**
 * @file
 * Security-metadata batching (paper Section IV-C).
 *
 * Sender side (BatchAssembler): consecutive data responses to the
 * same destination join a batch of up to n messages. Per-message
 * MsgMACs are withheld; the batch's first message carries a 1 B
 * length field and the closing message carries the single batched
 * MsgMAC. One ACK covers the whole batch. Idle batches flush early
 * through a standalone trailer.
 *
 * Receiver side (MsgMacStorage): per-message MACs computed locally
 * are parked (2 KB per GPU, Sec. IV-D) until the batch completes,
 * enabling lazy verification and out-of-order arrival.
 */

#ifndef MGSEC_SECURE_BATCHING_HH
#define MGSEC_SECURE_BATCHING_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mgsec
{

/** What a packet must carry for the batch protocol. */
struct BatchTag
{
    std::uint64_t batchId = 0;
    bool first = false;       ///< carries the length byte
    bool last = false;        ///< carries the batched MsgMAC
    std::uint8_t declaredLen = 0;
};

class BatchAssembler : public SimObject
{
  public:
    /**
     * @param flush called when an idle batch must close via a
     *        standalone trailer: (dst, batchId, count).
     */
    using FlushFn =
        std::function<void(NodeId, std::uint64_t, std::uint8_t)>;

    BatchAssembler(const std::string &name, EventQueue &eq,
                   std::uint32_t num_nodes, std::uint32_t batch_size,
                   Cycles idle_timeout, FlushFn flush);

    /** Register a data response heading to @p dst. */
    BatchTag onSend(NodeId dst);

    /** Force-close every open batch (end-of-run drain). */
    void drain();

    std::uint64_t batchesOpened() const
    {
        return static_cast<std::uint64_t>(opened_.value());
    }
    std::uint64_t batchesClosedFull() const
    {
        return static_cast<std::uint64_t>(closed_full_.value());
    }
    std::uint64_t batchesFlushed() const
    {
        return static_cast<std::uint64_t>(flushed_.value());
    }

    /** Batches currently open (occupancy gauge). */
    std::uint32_t
    openCount() const
    {
        std::uint32_t n = 0;
        for (const Open &b : open_)
            n += b.active ? 1 : 0;
        return n;
    }

    /** Messages accumulated across all open batches (fill gauge). */
    std::uint32_t
    fillTotal() const
    {
        std::uint32_t n = 0;
        for (const Open &b : open_)
            n += b.active ? b.count : 0;
        return n;
    }

  private:
    struct Open
    {
        std::uint64_t id = 0;
        std::uint8_t count = 0;
        EventId timeout;
        bool active = false;
    };

    void armTimeout(NodeId dst);
    void flushDst(NodeId dst);

    std::uint32_t batch_size_;
    Cycles idle_timeout_;
    FlushFn flush_;
    std::vector<Open> open_;
    std::uint64_t next_id_ = 1;

    stats::Scalar opened_{"batchesOpened", "batches opened"};
    stats::Scalar closed_full_{"batchesClosedFull",
                               "batches closed at full size"};
    stats::Scalar flushed_{"batchesFlushed",
                           "batches flushed by idle timeout"};
};

class MsgMacStorage : public SimObject
{
  public:
    /** Called when a batch fully verifies: (src, batchId). */
    using CompleteFn = std::function<void(NodeId, std::uint64_t)>;

    MsgMacStorage(const std::string &name, EventQueue &eq,
                  std::uint32_t num_nodes, std::uint32_t per_peer_cap,
                  CompleteFn complete);

    /**
     * A batched data message arrived from @p src.
     * @param declared_len nonzero on the batch's first message.
     * @param has_trailer true when this message closes the batch.
     */
    void onData(NodeId src, std::uint64_t batch_id,
                std::uint8_t declared_len, bool has_trailer);

    /** A standalone trailer arrived with the real batch length. */
    void onTrailer(NodeId src, std::uint64_t batch_id,
                   std::uint8_t count);

    /** MACs currently parked for @p src. */
    std::uint32_t occupancy(NodeId src) const;

    /** MACs parked across all peers (occupancy gauge). */
    std::uint32_t
    occupancyTotal() const
    {
        std::uint32_t n = 0;
        for (NodeId src = 0; src < pending_.size(); ++src)
            n += occupancy(src);
        return n;
    }

    std::uint64_t overflows() const
    {
        return static_cast<std::uint64_t>(overflow_.value());
    }
    std::uint64_t completions() const
    {
        return static_cast<std::uint64_t>(complete_count_.value());
    }

  private:
    struct Pending
    {
        std::uint8_t received = 0;
        std::uint8_t declared = 0;  ///< length byte, first message
        std::uint8_t expected = 0;  ///< 0 while unknown
        bool trailer = false;
        /** First member's arrival (batchClose attribution). */
        Tick firstTick = 0;
    };

    void maybeComplete(NodeId src, std::uint64_t batch_id);

    std::uint32_t per_peer_cap_;
    CompleteFn complete_;
    /** pending_[src][batchId]. */
    std::vector<std::unordered_map<std::uint64_t, Pending>> pending_;

    stats::Scalar overflow_{"macStorageOverflow",
                            "MAC storage capacity exceeded"};
    stats::Scalar complete_count_{"batchesVerified",
                                  "batches lazily verified"};
    stats::Scalar peak_{"macStoragePeak", "peak parked MACs"};
};

} // namespace mgsec

#endif // MGSEC_SECURE_BATCHING_HH
