/**
 * @file
 * Knobs of the secure-communication layer (paper Section IV /
 * Table III).
 */

#ifndef MGSEC_SECURE_SECURITY_CONFIG_HH
#define MGSEC_SECURE_SECURITY_CONFIG_HH

#include <array>
#include <cstdint>

#include "crypto/dispatch.hh"
#include "secure/pad_table.hh"
#include "sim/types.hh"

namespace mgsec
{

/**
 * Traffic-shaping countermeasure against passive wire observers
 * (sim/wire_observer.hh). Shaping acts at the secure channel's
 * departure point, so it composes with every OTP scheme but is a
 * no-op for Unsecure runs (there is no trusted shaping agent below
 * the secure layer in the threat model).
 */
enum class ShapingPolicy : std::uint8_t
{
    None = 0,
    /**
     * Constant-rate padding: departures are quantized up to a fixed
     * slot grid (shapeInterval) with at most one data departure per
     * destination per slot, and every wire image is padded up to a
     * multiple of shapePadTo bytes. Collapses the gap and size
     * distributions the observer classifies on, at the cost of
     * added latency and pad bytes.
     */
    ConstantRate = 1,
    /**
     * Batch-close jitter: only the batch-closing events (the MAC
     * trailer and the final message of each batch) are delayed by a
     * deterministic pseudo-random jitter in [0, shapeJitter). Much
     * cheaper than constant-rate; blurs only the batch-close
     * signature, not sizes or per-message gaps.
     */
    BatchJitter = 2,
};

inline const char *
shapingPolicyName(ShapingPolicy p)
{
    switch (p) {
      case ShapingPolicy::ConstantRate:
        return "constant-rate";
      case ShapingPolicy::BatchJitter:
        return "batch-jitter";
      default:
        return "none";
    }
}

struct SecurityConfig
{
    OtpScheme scheme = OtpScheme::Private;

    /** Enable the paper's security-metadata batching (Sec. IV-C). */
    bool batching = false;
    std::uint32_t batchSize = 16;

    /** AES-GCM pad generation latency (Table III: 40 cycles). */
    Cycles aesLatency = 40;

    /**
     * OTP quota multiplier "OTP Nx": every node owns
     * (numNodes-1) * 2 * N entries, matching Table I.
     */
    std::uint32_t otpMultiplier = 4;
    /** Nonzero overrides the Table-I formula with an exact total. */
    std::uint32_t totalOtpOverride = 0;

    /**
     * When false, security metadata consumes no wire bytes: the
     * "+SecureCommu" scenario of Fig. 11 (latency effects only).
     */
    bool countMetadataBytes = true;

    /** @name Wire-format byte costs */
    /// @{
    Bytes headerBytes = 16;     ///< packet header (addr, ids, type)
    Bytes ctrBytes = 8;         ///< MsgCTR + sender id per message
    Bytes macBytes = 8;         ///< MsgMAC
    Bytes ackBytes = 8;         ///< one ACK record
    Bytes ackHeaderBytes = 8;   ///< standalone ACK/trailer header
    Bytes batchLenBytes = 1;    ///< batch length on first message
    /// @}

    /** Pending ACKs flush standalone after this many cycles. */
    Cycles ackTimeout = 100;

    /**
     * Hidden debug knob: inflate every exposed send-pad wait by this
     * percentage. Exists solely so CI can verify the mgsec_report
     * regression gate trips on a synthetic pad-wait regression;
     * joins configKey because it changes results. 0 = off.
     */
    std::uint32_t debugPadStallPct = 0;
    /** An open batch flushes (short) after this many idle cycles. */
    Cycles batchTimeout = 400;
    /** Max ACK records piggybacked on one data packet. */
    std::uint32_t maxPiggybackAcks = 2;

    /** Receiver MsgMAC storage per peer (Sec. IV-D: 64 entries). */
    std::uint32_t msgMacStoragePerPeer = 64;

    /** @name Traffic shaping (countermeasure; see ShapingPolicy) */
    /// @{
    ShapingPolicy shaping = ShapingPolicy::None;
    /** Constant-rate slot width in cycles. */
    Cycles shapeInterval = 64;
    /** Constant-rate wire-size quantum in bytes. */
    Bytes shapePadTo = 128;
    /** Max batch-close jitter in cycles (exclusive). */
    Cycles shapeJitter = 96;
    /**
     * Constant-rate cover traffic: while a node has sent real
     * traffic within this many slots, it fills every empty slot
     * toward EVERY peer with a padded chaff packet (0 = no chaff).
     * Full-mesh cover hides both activity intensity and which
     * pairs actually communicate; the idle budget bounds the event
     * queue so a run still drains shortly after the workload
     * finishes. The default is sized to bridge the intra-run idle
     * spans of the sparsest bundled workload, so a whole run reads
     * as one continuous metronome.
     */
    std::uint32_t shapeChaffSlots = 512;
    /// @}

    DynamicPadTable::Params dynParams{};

    /**
     * Carry and verify real AES-GCM-derived pads/MACs on every data
     * message (slow; for protocol validation and attack tests).
     */
    bool functionalCrypto = false;
    /** Session key exchanged at boot (Sec. IV-A). */
    std::array<std::uint8_t, 16> sessionKey{
        0x6d, 0x67, 0x73, 0x65, 0x63, 0x2d, 0x6b, 0x65,
        0x79, 0x2d, 0x76, 0x31, 0x00, 0x00, 0x00, 0x00};

    /**
     * Which crypto tier the functional plane runs on (Auto picks
     * SIMD when the CPU has AES-NI/PCLMULQDQ). Host-side speed knob
     * only: every tier produces bit-identical pads, MACs, and tags,
     * and the timing model never touches it — so it stays out of
     * configKey.
     */
    crypto::CryptoImpl cryptoImpl = crypto::CryptoImpl::Auto;

    bool secured() const { return scheme != OtpScheme::Unsecure; }

    std::uint32_t
    totalOtpEntries(std::uint32_t num_nodes) const
    {
        if (totalOtpOverride != 0)
            return totalOtpOverride;
        return (num_nodes - 1) * 2 * otpMultiplier;
    }
};

} // namespace mgsec

#endif // MGSEC_SECURE_SECURITY_CONFIG_HH
