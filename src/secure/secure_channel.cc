#include "secure/secure_channel.hh"

#include <algorithm>

#include "sim/debug.hh"

#include "sim/latency_attr.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/trace_sink.hh"

namespace mgsec
{

SecureChannel::SecureChannel(const std::string &name, EventQueue &eq,
                             Network &net, NodeId self,
                             const SecurityConfig &cfg)
    : SimObject(name, eq), net_(net), self_(self), cfg_(cfg),
      replay_(net.numNodes(), 16384),
      pending_acks_(net.numNodes()), ack_timers_(net.numNodes()),
      last_departure_(net.numNodes(), 0),
      chaff_armed_(net.numNodes(), 0),
      chaff_claims_(net.numNodes())
{
    if (cfg_.secured()) {
        pad_table_ = makePadTable(
            cfg_.scheme, name + ".pads", eq, self_, net_.numNodes(),
            cfg_.totalOtpEntries(net_.numNodes()), cfg_.aesLatency,
            cfg_.dynParams);
        if (cfg_.batching) {
            assembler_ = std::make_unique<BatchAssembler>(
                name + ".batcher", eq, net_.numNodes(),
                cfg_.batchSize, cfg_.batchTimeout,
                [this](NodeId dst, std::uint64_t id,
                       std::uint8_t count) {
                    sendBatchTrailer(dst, id, count);
                });
            storage_ = std::make_unique<MsgMacStorage>(
                name + ".macstore", eq, net_.numNodes(),
                cfg_.msgMacStoragePerPeer,
                [this](NodeId src, std::uint64_t batch_id) {
                    // Lazy verification done: one cumulative ACK
                    // covers the whole batch — but only a batch
                    // whose MAC actually held. Acknowledging
                    // unverified counters would let an attacker
                    // discharge the sender's replay window with
                    // traffic that never authenticated.
                    const bool ok = factory_
                        ? finishFunctionalBatch(src, batch_id)
                        : true;
                    // The ACK carries the verified watermark, not
                    // the replay one: last_recv_ctr_ advances on
                    // sight, so a counter flipped in flight would
                    // let it acknowledge (and discharge from the
                    // peer's replay window) messages that never
                    // authenticated — or were never even sent.
                    if (ok && (!factory_ || has_verified_[src])) {
                        queueAck(src,
                                 AckRecord{self_,
                                           factory_
                                               ? verified_recv_ctr_
                                                     [src]
                                               : last_recv_ctr_[src],
                                           0});
                    }
                });
        }
    }
    if (cfg_.secured() && cfg_.functionalCrypto)
        factory_ = std::make_unique<crypto::PadFactory>(
            cfg_.sessionKey);
    last_recv_ctr_.assign(net_.numNodes(), 0);
    has_recv_.assign(net_.numNodes(), 0);
    verified_recv_ctr_.assign(net_.numNodes(), 0);
    has_verified_.assign(net_.numNodes(), 0);
    last_deliver_.assign(net_.numNodes(), 0);

    regStat(packets_sent_);
    regStat(standalone_acks_);
    regStat(piggybacked_acks_);
    regStat(trailers_);
    regStat(replay_suspects_);
    // Surfaced with the verify subsystem only, keeping figure-bench
    // stats dumps stable; the ctrGaps() accessor works regardless.
    if (cfg_.functionalCrypto)
        regStat(ctr_gaps_);
    regStat(mac_verified_);
    regStat(mac_failed_);
    regStat(decrypt_ok_);
    regStat(decrypt_bad_);
    if (shapingOn()) {
        regStat(shape_pad_bytes_);
        regStat(shape_delay_cycles_);
        regStat(shape_chaff_pkts_);
    }

    net_.setHandler(self_, [this](PacketPtr pkt) {
        handleArrival(std::move(pkt));
    });
}

void
SecureChannel::send(PacketPtr pkt)
{
    MGSEC_ASSERT(pkt->src == self_, "packet src %u from node %u",
                 pkt->src, self_);
    pkt->id = next_pkt_id_++;
    pkt->headerBytes = cfg_.headerBytes;
    pkt->injectTick = now();

    LatencyAttribution *attr = eventq().attribution();
    if (attr)
        lifeStamp(pkt->life, LifeStamp::Enqueue) = now();

    if (!cfg_.secured()) {
        if (attr) {
            // No pad stages: both boundaries collapse onto enqueue.
            lifeStamp(pkt->life, LifeStamp::PadClaim) = now();
            lifeStamp(pkt->life, LifeStamp::PadReady) = now();
        }
        finishSend(std::move(pkt), now());
        return;
    }

    const SendGrant grant = pad_table_->acquireSend(pkt->dst);
    pkt->secured = true;
    pkt->msgCtr = grant.ctr;
    pkt->padFallback = grant.outcome == OtpOutcome::Miss;

    Bytes meta = cfg_.ctrBytes;
    // In batching mode every data message's MsgMAC joins its
    // destination's batch (the paper describes data responses; page
    // migration blocks and requests batch the same way — one MsgMAC
    // and one ACK per group).
    const bool batch_eligible = cfg_.batching;
    if (batch_eligible) {
        const BatchTag tag = assembler_->onSend(pkt->dst);
        pkt->batchId = tag.batchId;
        pkt->batchLast = tag.last;
        pkt->batchLen = tag.first ? tag.declaredLen : 0;
        pkt->hasMac = tag.last; // the batched MsgMAC rides the closer
        if (tag.first)
            meta += cfg_.batchLenBytes;
        if (tag.last) {
            meta += cfg_.macBytes;
            if (TraceSink *ts = eventq().traceSink()) {
                ts->instant(self_, "batch", "close", now(), "id",
                            static_cast<double>(tag.batchId));
            }
        }
        if (replay_.add(pkt->dst, grant.ctr)) {
            if (TraceSink *ts = eventq().traceSink())
                ts->instant(self_, "replay", "overflow", now());
        }
    } else {
        pkt->hasMac = true;
        meta += cfg_.macBytes;
        // Requests are implicitly acknowledged by their data
        // response; only responses join the replay window and draw
        // a dedicated ACK.
        if (pkt->isResponse() && replay_.add(pkt->dst, grant.ctr)) {
            if (TraceSink *ts = eventq().traceSink())
                ts->instant(self_, "replay", "overflow", now());
        }
    }
    if (cfg_.countMetadataBytes)
        pkt->secMetaBytes = meta;

    if (factory_)
        applyFunctionalSend(*pkt);

    MGSEC_DPRINTF(debug::Channel,
                  "send %s to %u ctr=%llu outcome=%s",
                  packetTypeName(pkt->type), pkt->dst,
                  static_cast<unsigned long long>(grant.ctr),
                  otpOutcomeName(grant.outcome));

    Tick pad_ready = grant.padReady;
    // Hidden debug knob (CI gate self-check): stretch the exposed
    // pad wait by a percentage to fake an OTP-management regression.
    if (cfg_.debugPadStallPct != 0 && pad_ready > now())
        pad_ready += (pad_ready - now()) * cfg_.debugPadStallPct / 100;

    if (attr) {
        lifeStamp(pkt->life, LifeStamp::PadClaim) = now();
        lifeStamp(pkt->life, LifeStamp::PadReady) =
            std::max(now(), pad_ready);
    }

    // Pad wait plus the one-cycle XOR; clamped so a pair's packets
    // depart in counter order (the link preserves it from there).
    Tick dep = std::max(now(), pad_ready) + 1;
    dep = std::max(dep, last_departure_[pkt->dst]);
    if (shapingOn()) {
        const Tick shaped =
            shapeDeparture(pkt->dst, dep,
                           pkt->batchLast && pkt->hasMac,
                           pkt->batchId);
        shape_delay_cycles_ += static_cast<double>(shaped - dep);
        dep = shaped;
    }
    last_departure_[pkt->dst] = dep;
    if (shapingOn()) {
        claimChaffSlot(pkt->dst, dep);
        last_real_activity_ = std::max(last_real_activity_, dep);
        armChaff();
    }

    if (dep > now()) {
        if (TraceSink *ts = eventq().traceSink())
            ts->complete(self_, "pad", "sendWait", now(), dep - now());
    }

    if (dep <= now()) {
        finishSend(std::move(pkt), now());
    } else {
        eventq().schedule(dep, [this, p = std::move(pkt)]() mutable {
            finishSend(std::move(p), now());
        });
    }
}

namespace
{

/** splitmix64 finalizer: a pure function of protocol state, so the
 *  "randomness" is identical across runs and thread counts. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

Cycles
SecureChannel::jitterFor(std::uint64_t salt) const
{
    if (cfg_.shapeJitter == 0)
        return 0;
    return mix64((static_cast<std::uint64_t>(self_) << 48) ^ salt) %
           cfg_.shapeJitter;
}

Tick
SecureChannel::shapeDeparture(NodeId dst, Tick base, bool batch_close,
                              std::uint64_t salt)
{
    switch (cfg_.shaping) {
      case ShapingPolicy::ConstantRate: {
        const Cycles slot = cfg_.shapeInterval;
        if (slot == 0)
            return base;
        // Quantize up to the slot grid, with at most one data
        // departure per destination per slot: every busy stretch of
        // the flow shows the observer the same metronome regardless
        // of what the workload is doing.
        Tick dep = (base + slot - 1) / slot * slot;
        dep = std::max(dep, last_departure_[dst] + slot);
        return dep;
      }
      case ShapingPolicy::BatchJitter: {
        if (!batch_close)
            return base;
        // Deterministic jitter keyed on the batch identity: blurs
        // the close-to-close cadence without reordering counters
        // (the result only ever moves the departure later).
        return base + jitterFor(0x5ca1ab1eULL ^ salt ^
                                (static_cast<std::uint64_t>(dst)
                                 << 32));
      }
      default:
        return base;
    }
}

void
SecureChannel::shapePad(Packet &pkt)
{
    if (cfg_.shaping != ShapingPolicy::ConstantRate ||
        cfg_.shapePadTo == 0)
        return;
    const Bytes rem = pkt.wireBytes() % cfg_.shapePadTo;
    if (rem == 0)
        return;
    const Bytes pad = cfg_.shapePadTo - rem;
    // Pad rides the security-metadata class: it is chaff the secure
    // layer appends, indistinguishable on the wire from real
    // metadata, and the traffic accounting charges it to security.
    pkt.secMetaBytes += pad;
    shape_pad_bytes_ += static_cast<double>(pad);
}

void
SecureChannel::dispatchCtl(PacketPtr pkt, bool batch_close)
{
    if (!shapingOn()) {
        net_.send(std::move(pkt));
        return;
    }
    shapePad(*pkt);
    Tick dep = now();
    if (cfg_.shaping == ShapingPolicy::ConstantRate &&
        cfg_.shapeInterval > 0) {
        const Cycles slot = cfg_.shapeInterval;
        // Control packets claim a slot on the same one-per-slot grid
        // as data: a slot carrying two packets (data + ACK) would
        // hand the observer a sub-slot gap that scales with control
        // volume — exactly the signal constant rate must erase.
        dep = std::max((now() + slot) / slot * slot,
                       last_departure_[pkt->dst] + slot);
        last_departure_[pkt->dst] = dep;
        claimChaffSlot(pkt->dst, dep);
    } else if (cfg_.shaping == ShapingPolicy::BatchJitter &&
               batch_close) {
        dep = now() + jitterFor(0x7ea11e55ULL ^ pkt->batchId ^
                                (static_cast<std::uint64_t>(pkt->dst)
                                 << 32));
    }
    last_real_activity_ = std::max(last_real_activity_, dep);
    armChaff();
    if (dep <= now()) {
        net_.send(std::move(pkt));
        return;
    }
    shape_delay_cycles_ += static_cast<double>(dep - now());
    eventq().schedule(dep, [this, p = std::move(pkt)]() mutable {
        net_.send(std::move(p));
    });
}

void
SecureChannel::armChaff()
{
    if (!chaffOn())
        return;
    const Cycles slot = cfg_.shapeInterval;
    // First check at the next grid boundary; chaffTick steps over
    // the individual slots real departures have claimed.
    const Tick next = (now() / slot + 1) * slot;
    for (NodeId dst = 0; dst < net_.numNodes(); ++dst) {
        if (dst == self_ || chaff_armed_[dst])
            continue;
        chaff_armed_[dst] = 1;
        eventq().schedule(next, [this, dst, next]() {
            chaffTick(dst, next);
        });
    }
}

void
SecureChannel::chaffTick(NodeId dst, Tick slot_time)
{
    const Cycles slot = cfg_.shapeInterval;
    // Step past exactly the slots real departures claimed. A claim
    // can jump boundaries (a pad-wait rounds its departure up past
    // the next slot), so the chain must test slot ownership, not a
    // high-water mark: the boundary a claim skipped still needs a
    // chaff packet or the observer sees a workload-shaped hole.
    // All claims for slot_time were pushed by strictly earlier
    // events (quantization rounds up past now()), so the queue is
    // complete by the time this fires.
    auto &claims = chaff_claims_[dst];
    while (!claims.empty() && claims.front() < slot_time)
        claims.pop_front();
    if (!claims.empty() && claims.front() == slot_time) {
        claims.pop_front();
        const Tick next = slot_time + slot;
        eventq().schedule(next, [this, dst, next]() {
            chaffTick(dst, next);
        });
        return;
    }
    const Tick budget =
        static_cast<Tick>(cfg_.shapeChaffSlots) * slot;
    const Tick alive =
        std::max(last_real_activity_, last_cover_activity_);
    if (slot_time > alive && slot_time - alive > budget) {
        // The whole neighbourhood has been idle past the chaff
        // budget: go quiet so the event queue drains shortly after
        // the workload's last real packet. Keyed to node (and
        // relayed peer) activity, not this flow's — a silent flow
        // inside an active mesh is exactly what full-mesh cover
        // must hide.
        chaff_armed_[dst] = 0;
        return;
    }
    // Empty slot inside the chaff window: fill it with a dummy that
    // wears the same padded wire image as real shaped traffic. The
    // receiver drops it on arrival; it never touches last_departure_,
    // so it cannot retrigger or extend its own window.
    auto pkt = makePacket();
    pkt->id = next_pkt_id_++;
    pkt->type = PacketType::Chaff;
    pkt->src = self_;
    pkt->dst = dst;
    // Generation 0 while this node's own real clock is fresh; 1 when
    // only relayed cover keeps it alive (receivers must not relay
    // that further, or the mesh would chaff forever).
    pkt->chaffGen =
        (slot_time <= last_real_activity_ + budget) ? 0 : 1;
    pkt->injectTick = now();
    pkt->headerBytes =
        cfg_.countMetadataBytes ? cfg_.ackHeaderBytes : 1;
    shapePad(*pkt);
    ++shape_chaff_pkts_;
    net_.send(std::move(pkt));
    const Tick next = slot_time + slot;
    eventq().schedule(next, [this, dst, next]() {
        chaffTick(dst, next);
    });
}

crypto::BlockPayload
SecureChannel::synthesize(NodeId src, NodeId dst, std::uint64_t ctr)
{
    crypto::BlockPayload p;
    for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = static_cast<std::uint8_t>(
            (ctr >> ((i % 8) * 8)) ^ (src * 131) ^ (dst * 193) ^
            (i * 7));
    }
    return p;
}

crypto::MessagePad
SecureChannel::batchMaskPad(NodeId sender, NodeId receiver,
                            std::uint64_t batch_id) const
{
    // Both endpoints can derive this from the batch id alone.
    return factory_->derive(sender, receiver,
                            0x8000000000000000ULL | batch_id);
}

void
SecureChannel::applyFunctionalSend(Packet &pkt)
{
    ProfSpan seal(eventq().profiler(), eventq().domainId(),
                  kProfCryptoSeal);
    crypto::MessagePad pad;
    {
        ProfSpan gen(eventq().profiler(), eventq().domainId(),
                     kProfPadGen);
        pad = factory_->derive(self_, pkt.dst, pkt.msgCtr);
    }
    auto fp = makeFunctionalPayload();
    crypto::BlockPayload cipher{};
    if (pkt.payloadBytes >= kBlockBytes) {
        const crypto::BlockPayload pt =
            synthesize(self_, pkt.dst, pkt.msgCtr);
        cipher = crypto::PadFactory::crypt(pt, pad);
        fp->cipher = cipher;
        fp->hasCipher = true;
    }
    const crypto::MsgMac msg_mac =
        factory_->mac(cipher, self_, pkt.dst, pkt.msgCtr, pad);
    if (pkt.batchId != 0) {
        auto &macs = batch_macs_out_[pkt.batchId];
        macs.push_back(msg_mac);
        if (pkt.batchLast && pkt.hasMac) {
            fp->mac = factory_->batchMac(
                macs, batchMaskPad(self_, pkt.dst, pkt.batchId));
            fp->hasMac = true;
            batch_macs_out_.erase(pkt.batchId);
        }
    } else if (pkt.hasMac) {
        fp->mac = msg_mac;
        fp->hasMac = true;
    }
    pkt.func = std::move(fp);
}

void
SecureChannel::advanceVerified(NodeId src, std::uint64_t ctr)
{
    if (!has_verified_[src] || ctr > verified_recv_ctr_[src]) {
        verified_recv_ctr_[src] = ctr;
        has_verified_[src] = 1;
    }
}

bool
SecureChannel::finishFunctionalBatch(NodeId src,
                                     std::uint64_t batch_id)
{
    const auto key = std::make_pair(src, batch_id);
    auto it = recv_batches_.find(key);
    if (it == recv_batches_.end())
        return false;
    RecvBatch &rb = it->second;
    if (!rb.haveTrailer)
        return false;
    ProfSpan open(eventq().profiler(), eventq().domainId(),
                  kProfCryptoOpen);
    const crypto::MsgMac expect = factory_->batchMac(
        rb.macs, batchMaskPad(src, self_, batch_id));
    const bool ok = expect == rb.trailer;
    if (ok) {
        ++mac_verified_;
        advanceVerified(src, rb.maxCtr);
    } else {
        ++mac_failed_;
    }
    recv_batches_.erase(it);
    return ok;
}

bool
SecureChannel::verifyFunctionalRecv(const Packet &pkt)
{
    ProfSpan open(eventq().profiler(), eventq().domainId(),
                  kProfCryptoOpen);
    crypto::MessagePad pad;
    {
        ProfSpan gen(eventq().profiler(), eventq().domainId(),
                     kProfPadGen);
        pad = factory_->derive(pkt.src, self_, pkt.msgCtr);
    }
    crypto::BlockPayload cipher{};
    if (pkt.func && pkt.func->hasCipher) {
        cipher = pkt.func->cipher;
        const crypto::BlockPayload plain =
            crypto::PadFactory::crypt(cipher, pad);
        if (plain == synthesize(pkt.src, self_, pkt.msgCtr))
            ++decrypt_ok_;
        else
            ++decrypt_bad_;
    }
    const crypto::MsgMac msg_mac =
        factory_->mac(cipher, pkt.src, self_, pkt.msgCtr, pad);
    if (pkt.batchId != 0) {
        RecvBatch &rb =
            recv_batches_[std::make_pair(pkt.src, pkt.batchId)];
        rb.macs.push_back(msg_mac);
        rb.maxCtr = std::max(rb.maxCtr, pkt.msgCtr);
        if (pkt.batchLast && pkt.func && pkt.func->hasMac) {
            rb.trailer = pkt.func->mac;
            rb.haveTrailer = true;
        }
    } else if (pkt.hasMac) {
        if (pkt.func && pkt.func->hasMac && pkt.func->mac == msg_mac) {
            ++mac_verified_;
            advanceVerified(pkt.src, pkt.msgCtr);
        } else {
            ++mac_failed_;
            return false;
        }
    }
    return true;
}

void
SecureChannel::finishSend(PacketPtr pkt, Tick departure)
{
    pkt->sendReady = departure;

    // Ride pending ACKs for this destination.
    auto &pa = pending_acks_[pkt->dst];
    const std::size_t n = std::min<std::size_t>(
        pa.size(), cfg_.maxPiggybackAcks);
    if (n > 0) {
        pkt->acks.assign(pa.begin(),
                         pa.begin() + static_cast<std::ptrdiff_t>(n));
        pa.erase(pa.begin(), pa.begin() + static_cast<std::ptrdiff_t>(n));
        piggybacked_acks_ += static_cast<double>(n);
        if (cfg_.countMetadataBytes)
            pkt->ackBytes = static_cast<Bytes>(n) * cfg_.ackBytes;
        if (pa.empty() && ack_timers_[pkt->dst].valid()) {
            eventq().cancel(ack_timers_[pkt->dst]);
            ack_timers_[pkt->dst] = EventId{};
        }
    }

    if (shapingOn())
        shapePad(*pkt); // after piggyback: pads the final wire image

    ++packets_sent_;
    if (observer_ && pkt->isResponse() &&
        pkt->payloadBytes >= kBlockBytes)
        observer_(pkt->dst, now());
    net_.send(std::move(pkt));
}

void
SecureChannel::queueAck(NodeId peer, const AckRecord &rec)
{
    auto &pa = pending_acks_[peer];
    pa.push_back(rec);
    pa.back().queuedAt = now();
    if (!ack_timers_[peer].valid()) {
        ack_timers_[peer] =
            eventq().scheduleIn(cfg_.ackTimeout, [this, peer]() {
                ack_timers_[peer] = EventId{};
                flushAcks(peer);
            });
    }
}

void
SecureChannel::flushAcks(NodeId peer)
{
    auto &pa = pending_acks_[peer];
    if (pa.empty())
        return;
    auto pkt = makePacket();
    pkt->id = next_pkt_id_++;
    pkt->type = PacketType::SecAck;
    pkt->src = self_;
    pkt->dst = peer;
    pkt->injectTick = now();
    pkt->acks.assign(pa.begin(), pa.end());
    pa.clear();
    if (cfg_.countMetadataBytes) {
        pkt->headerBytes = cfg_.ackHeaderBytes;
        pkt->ackBytes = static_cast<Bytes>(pkt->acks.size()) *
                        cfg_.ackBytes;
    } else {
        pkt->headerBytes = 1; // protocol-only packet, token cost
    }
    ++standalone_acks_;
    dispatchCtl(std::move(pkt), false);
}

void
SecureChannel::sendBatchTrailer(NodeId dst, std::uint64_t batch_id,
                                std::uint8_t count)
{
    if (TraceSink *ts = eventq().traceSink()) {
        ts->instant(self_, "batch", "flush", now(), "id",
                    static_cast<double>(batch_id));
    }
    auto pkt = makePacket();
    pkt->id = next_pkt_id_++;
    pkt->type = PacketType::BatchMac;
    pkt->src = self_;
    pkt->dst = dst;
    pkt->injectTick = now();
    pkt->batchId = batch_id;
    pkt->batchLen = count;
    pkt->hasMac = true;
    if (factory_) {
        auto it = batch_macs_out_.find(batch_id);
        if (it != batch_macs_out_.end()) {
            auto fp = makeFunctionalPayload();
            ProfSpan seal(eventq().profiler(), eventq().domainId(),
                          kProfCryptoSeal);
            fp->mac = factory_->batchMac(
                it->second, batchMaskPad(self_, dst, batch_id));
            fp->hasMac = true;
            pkt->func = std::move(fp);
            batch_macs_out_.erase(it);
        }
    }
    if (cfg_.countMetadataBytes) {
        pkt->headerBytes = cfg_.ackHeaderBytes;
        pkt->secMetaBytes = cfg_.macBytes + cfg_.batchLenBytes;
    } else {
        pkt->headerBytes = 1;
    }
    ++trailers_;
    dispatchCtl(std::move(pkt), true);
}

void
SecureChannel::processAcks(NodeId from, const AckList &acks)
{
    LatencyAttribution *attr = eventq().attribution();
    for (const AckRecord &rec : acks) {
        replay_.ackUpTo(from, rec.upToCtr);
        if (attr && rec.queuedAt != 0 && now() >= rec.queuedAt)
            attr->recordAckReturn(now() - rec.queuedAt);
    }
}

void
SecureChannel::handleArrival(PacketPtr pkt)
{
    MGSEC_ASSERT(pkt->dst == self_, "misrouted packet");
    if (!pkt->acks.empty())
        processAcks(pkt->src, pkt->acks);

    // Genuine arrivals refresh the cover-traffic clock too: a node
    // that is only listening must still chaff, or its silence would
    // expose the communication pattern around it.
    if (shapingOn() && pkt->type != PacketType::Chaff) {
        last_real_activity_ = std::max(last_real_activity_, now());
        armChaff();
    }

    switch (pkt->type) {
      case PacketType::Chaff:
        // Cover traffic carries nothing — but generation-0 chaff
        // relays "my sender is really active", which must keep this
        // node's own cover running (a listening-only node going
        // quiet would betray the flow pattern around it).
        if (shapingOn() && pkt->chaffGen == 0) {
            last_cover_activity_ =
                std::max(last_cover_activity_, now());
            armChaff();
        }
        return;
      case PacketType::SecAck:
        return;
      case PacketType::BatchMac:
        if (factory_ && pkt->func && pkt->func->hasMac) {
            RecvBatch &rb = recv_batches_[std::make_pair(
                pkt->src, pkt->batchId)];
            rb.trailer = pkt->func->mac;
            rb.haveTrailer = true;
        }
        if (storage_)
            storage_->onTrailer(pkt->src, pkt->batchId, pkt->batchLen);
        return;
      default:
        break;
    }

    if (!pkt->secured) {
        if (TraceSink *ts = eventq().traceSink()) {
            ts->complete(self_, "packet", packetTypeName(pkt->type),
                         pkt->injectTick, now() - pkt->injectTick);
        }
        if (LatencyAttribution *attr = eventq().attribution()) {
            lifeStamp(pkt->life, LifeStamp::DeliverReady) = now();
            attr->fold(net_.linkType(pkt->src, self_), pkt->life,
                       eventq().traceSink(), self_);
        }
        MGSEC_ASSERT(deliver_ != nullptr, "no deliver handler");
        deliver_(std::move(pkt));
        return;
    }

    const NodeId src = pkt->src;
    // Every scheme but Shared assigns counters contiguously per
    // (src,dst) pair, so a hole in the arriving stream means
    // something in flight went missing. Shared draws one global
    // stream per sender; its holes are routine (sends to peers).
    if (cfg_.scheme != OtpScheme::Shared) {
        const bool gap = has_recv_[src]
                             ? pkt->msgCtr > last_recv_ctr_[src] + 1
                             : pkt->msgCtr > 0;
        if (gap)
            ++ctr_gaps_;
    }
    if (has_recv_[src] && pkt->msgCtr <= last_recv_ctr_[src]) {
        ++replay_suspects_;
    } else {
        // The watermark only moves forward: letting a replayed old
        // counter rewind it would make a follow-up replay of the
        // next counter look like a fresh successor.
        last_recv_ctr_[src] = pkt->msgCtr;
    }
    has_recv_[src] = 1;

    const RecvGrant grant =
        pad_table_->acquireRecv(src, pkt->msgCtr, pkt->padFallback);
    MGSEC_DPRINTF(debug::Channel,
                  "recv %s from %u ctr=%llu outcome=%s",
                  packetTypeName(pkt->type), src,
                  static_cast<unsigned long long>(pkt->msgCtr),
                  otpOutcomeName(grant.outcome));

    const bool verified =
        factory_ == nullptr || verifyFunctionalRecv(*pkt);

    if (pkt->batchId != 0 && storage_ != nullptr) {
        storage_->onData(src, pkt->batchId, pkt->batchLen,
                         pkt->batchLast && pkt->hasMac);
    } else if (pkt->isResponse() && verified &&
               (factory_ == nullptr || has_verified_[src])) {
        // Only authenticated counters draw an ACK: a header flipped
        // in flight must not be able to mint cumulative coverage
        // for messages the receiver never verified. The record
        // carries the verified watermark for the same reason.
        queueAck(src, AckRecord{self_,
                                factory_ ? verified_recv_ctr_[src]
                                         : pkt->msgCtr,
                                0});
    }

    Tick ready = std::max(now(), grant.padReady) + 1;
    ready = std::max(ready, last_deliver_[src]);
    last_deliver_[src] = ready;

    if (LatencyAttribution *attr = eventq().attribution()) {
        // Decrypt and MAC check share the pad: `ready` is both the
        // delivery and the MAC-verify boundary.
        lifeStamp(pkt->life, LifeStamp::DeliverReady) = ready;
        attr->fold(net_.linkType(src, self_), pkt->life,
                   eventq().traceSink(), self_);
    }

    if (TraceSink *ts = eventq().traceSink()) {
        // The packet's lifetime runs from channel injection at the
        // sender to decrypted delivery here (inject -> pad lookup ->
        // encrypt -> wire -> verify); any tail past the wire arrival
        // is pad/verify wait, shown as its own span.
        ts->complete(self_, "packet", packetTypeName(pkt->type),
                     pkt->injectTick, ready - pkt->injectTick);
        if (ready > now())
            ts->complete(self_, "pad", "recvWait", now(),
                         ready - now());
    }

    MGSEC_ASSERT(deliver_ != nullptr, "no deliver handler");
    if (ready <= now()) {
        deliver_(std::move(pkt));
    } else {
        eventq().schedule(ready, [this, p = std::move(pkt)]() mutable {
            deliver_(std::move(p));
        });
    }
}

void
SecureChannel::drainBatches()
{
    if (assembler_)
        assembler_->drain();
    for (NodeId p = 0; p < net_.numNodes(); ++p)
        flushAcks(p);
}

} // namespace mgsec
