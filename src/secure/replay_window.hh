/**
 * @file
 * Replay-attack protection bookkeeping (paper Section II-C).
 *
 * The sender keeps the MsgCTR of every message until the matching
 * ACK returns; the window is per destination. ACKs are cumulative
 * along a pair's in-order counter stream.
 */

#ifndef MGSEC_SECURE_REPLAY_WINDOW_HH
#define MGSEC_SECURE_REPLAY_WINDOW_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/types.hh"

namespace mgsec
{

class ReplayWindow
{
  public:
    ReplayWindow(std::uint32_t num_nodes, std::uint32_t capacity)
        : pending_(num_nodes), capacity_(capacity)
    {}

    /**
     * Track an un-ACKed outgoing message.
     * @retval true the window just exceeded its capacity.
     */
    bool
    add(NodeId dst, std::uint64_t ctr)
    {
        pending_[dst].push_back(ctr);
        const std::size_t total = outstandingTotal();
        peak_ = std::max(peak_, total);
        if (total > capacity_) {
            ++overflows_;
            return true;
        }
        return false;
    }

    /** Cumulative ACK: everything on the pair up to @p ctr is safe. */
    std::uint32_t
    ackUpTo(NodeId dst, std::uint64_t ctr)
    {
        auto &q = pending_[dst];
        std::uint32_t n = 0;
        while (!q.empty() && q.front() <= ctr) {
            q.pop_front();
            ++n;
        }
        return n;
    }

    std::size_t
    outstanding(NodeId dst) const
    {
        return pending_[dst].size();
    }

    std::size_t
    outstandingTotal() const
    {
        std::size_t total = 0;
        for (const auto &q : pending_)
            total += q.size();
        return total;
    }

    std::size_t peak() const { return peak_; }
    std::uint64_t overflows() const { return overflows_; }
    std::uint32_t capacity() const { return capacity_; }

  private:
    std::vector<std::deque<std::uint64_t>> pending_;
    std::uint32_t capacity_;
    std::size_t peak_ = 0;
    std::uint64_t overflows_ = 0;
};

} // namespace mgsec

#endif // MGSEC_SECURE_REPLAY_WINDOW_HH
