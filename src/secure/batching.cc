#include "secure/batching.hh"

#include "sim/debug.hh"
#include "sim/latency_attr.hh"
#include "sim/logging.hh"

namespace mgsec
{

// ---------------------------------------------------------- BatchAssembler

BatchAssembler::BatchAssembler(const std::string &name, EventQueue &eq,
                               std::uint32_t num_nodes,
                               std::uint32_t batch_size,
                               Cycles idle_timeout, FlushFn flush)
    : SimObject(name, eq), batch_size_(batch_size),
      idle_timeout_(idle_timeout), flush_(std::move(flush)),
      open_(num_nodes)
{
    MGSEC_ASSERT(batch_size_ >= 2 && batch_size_ <= 255,
                 "batch size %u out of range", batch_size_);
    regStat(opened_);
    regStat(closed_full_);
    regStat(flushed_);
}

void
BatchAssembler::armTimeout(NodeId dst)
{
    Open &b = open_[dst];
    if (b.timeout.valid())
        eventq().cancel(b.timeout);
    b.timeout = eventq().scheduleIn(idle_timeout_, [this, dst]() {
        flushDst(dst);
    });
}

void
BatchAssembler::flushDst(NodeId dst)
{
    Open &b = open_[dst];
    if (!b.active)
        return;
    ++flushed_;
    MGSEC_DPRINTF(debug::Batch, "flush batch %llu to %u at %u",
                  static_cast<unsigned long long>(b.id), dst,
                  b.count);
    const std::uint64_t id = b.id;
    const std::uint8_t count = b.count;
    b.active = false;
    b.timeout = EventId{};
    if (flush_)
        flush_(dst, id, count);
}

BatchTag
BatchAssembler::onSend(NodeId dst)
{
    Open &b = open_[dst];
    BatchTag tag;
    if (!b.active) {
        b.active = true;
        b.id = next_id_++;
        b.count = 0;
        ++opened_;
        tag.first = true;
        tag.declaredLen = static_cast<std::uint8_t>(batch_size_);
    }
    ++b.count;
    tag.batchId = b.id;
    if (b.count >= batch_size_) {
        tag.last = true;
        ++closed_full_;
        b.active = false;
        if (b.timeout.valid()) {
            eventq().cancel(b.timeout);
            b.timeout = EventId{};
        }
    } else {
        armTimeout(dst);
    }
    return tag;
}

void
BatchAssembler::drain()
{
    for (NodeId d = 0; d < open_.size(); ++d) {
        if (open_[d].active) {
            if (open_[d].timeout.valid()) {
                eventq().cancel(open_[d].timeout);
                open_[d].timeout = EventId{};
            }
            flushDst(d);
        }
    }
}

// ----------------------------------------------------------- MsgMacStorage

MsgMacStorage::MsgMacStorage(const std::string &name, EventQueue &eq,
                             std::uint32_t num_nodes,
                             std::uint32_t per_peer_cap,
                             CompleteFn complete)
    : SimObject(name, eq), per_peer_cap_(per_peer_cap),
      complete_(std::move(complete)), pending_(num_nodes)
{
    regStat(overflow_);
    regStat(complete_count_);
    regStat(peak_);
}

std::uint32_t
MsgMacStorage::occupancy(NodeId src) const
{
    std::uint32_t n = 0;
    for (const auto &[id, p] : pending_[src])
        n += p.received;
    return n;
}

void
MsgMacStorage::maybeComplete(NodeId src, std::uint64_t batch_id)
{
    auto it = pending_[src].find(batch_id);
    if (it == pending_[src].end())
        return;
    const Pending &p = it->second;
    if (!p.trailer || p.expected == 0 || p.received < p.expected)
        return;
    if (LatencyAttribution *attr = eventq().attribution()) {
        // How long the first member's MAC sat parked before its
        // batch verdict (a trailer-only batch has no member yet).
        if (p.firstTick != 0)
            attr->recordBatchClose(now() - p.firstTick);
    }
    pending_[src].erase(it);
    ++complete_count_;
    if (complete_)
        complete_(src, batch_id);
}

void
MsgMacStorage::onData(NodeId src, std::uint64_t batch_id,
                      std::uint8_t declared_len, bool has_trailer)
{
    Pending &p = pending_[src][batch_id];
    if (p.received == 0)
        p.firstTick = now();
    ++p.received;
    if (declared_len != 0)
        p.declared = declared_len;
    if (has_trailer) {
        // The in-band trailer rides the batch's final message, so
        // the batch closed at its declared size.
        p.trailer = true;
        p.expected = p.declared != 0 ? p.declared : p.received;
    }
    const std::uint32_t occ = occupancy(src);
    if (occ > per_peer_cap_)
        ++overflow_;
    if (static_cast<double>(occ) > peak_.value())
        peak_.set(static_cast<double>(occ));
    maybeComplete(src, batch_id);
}

void
MsgMacStorage::onTrailer(NodeId src, std::uint64_t batch_id,
                         std::uint8_t count)
{
    Pending &p = pending_[src][batch_id];
    p.trailer = true;
    p.expected = count;
    maybeComplete(src, batch_id);
}

} // namespace mgsec
