/**
 * @file
 * Abstract OTP buffer manager for one processor.
 *
 * Concrete schemes (Section II-C and IV-B of the paper):
 *   PrivatePadTable  - fixed per-(pair, direction) quotas.
 *   SharedPadTable   - one send slot; one receive slot per peer.
 *   CachedPadTable   - an LRU pool over (pair, direction).
 *   DynamicPadTable  - Private plus EWMA-driven re-partitioning.
 *
 * The table assigns message counters on send, classifies every pad
 * claim as hit/partial/miss, and accounts the exposed latency per
 * direction for the Fig. 10 / Fig. 22 reports.
 */

#ifndef MGSEC_SECURE_PAD_TABLE_HH
#define MGSEC_SECURE_PAD_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "secure/otp_types.hh"
#include "secure/pad_pipeline.hh"
#include "sim/sim_object.hh"

namespace mgsec
{

/** Aggregated OTP accounting, queryable per direction. */
struct OtpStats
{
    std::array<std::array<std::uint64_t, kNumOutcomes>,
               kNumDirections> counts{};
    std::array<double, kNumDirections> exposedCycles{};

    std::uint64_t
    total(Direction d) const
    {
        const auto &row = counts[static_cast<std::size_t>(d)];
        return row[0] + row[1] + row[2];
    }

    double
    frac(Direction d, OtpOutcome o) const
    {
        const std::uint64_t t = total(d);
        if (t == 0)
            return 0.0;
        return static_cast<double>(
                   counts[static_cast<std::size_t>(d)]
                         [static_cast<std::size_t>(o)]) /
               static_cast<double>(t);
    }

    OtpStats &operator+=(const OtpStats &o);
};

class PadTable : public SimObject
{
  public:
    /**
     * @param self this processor's node id.
     * @param num_nodes total processors in the system.
     * @param total_entries OTP buffer entries this node owns.
     * @param latency AES-GCM pad generation latency (cycles).
     */
    PadTable(const std::string &name, EventQueue &eq, NodeId self,
             std::uint32_t num_nodes, std::uint32_t total_entries,
             Cycles latency);

    /**
     * Claim the pad for the next message to @p dst; assigns the
     * message counter.
     */
    virtual SendGrant acquireSend(NodeId dst) = 0;

    /**
     * Claim the pad for an arriving message (src, ctr).
     * @param sender_fallback the sender generated its pad on demand
     *        outside the pre-generated stream (Cached falls back to
     *        the Shared max-counter scheme on a miss, so the
     *        receiver cannot have the matching pad staged).
     */
    virtual RecvGrant acquireRecv(NodeId src, std::uint64_t ctr,
                                  bool sender_fallback = false) = 0;

    NodeId self() const { return self_; }
    std::uint32_t numNodes() const { return num_nodes_; }
    std::uint32_t totalEntries() const { return total_entries_; }
    Cycles aesLatency() const { return latency_; }

    const OtpStats &otpStats() const { return otp_stats_; }

    /** @name Occupancy gauges (metric sampling, not hot-path) */
    /// @{
    /** Staging slots currently assigned to (peer, direction). */
    virtual std::uint32_t padQuota(NodeId peer, Direction d) const = 0;
    /** Of those, pads already generated at @p now. */
    virtual std::uint32_t padsReady(NodeId peer, Direction d,
                                    Tick now) const = 0;
    /**
     * Pad generations discarded unconsumed (shrinking re-partitions,
     * counter resyncs) — wasted crypto work, surfaced by the
     * attribution layer. Schemes without staged pipelines report 0.
     */
    virtual std::uint64_t wastedGenerations() const { return 0; }
    /// @}

  protected:
    /** Record an outcome and the latency it exposed. */
    void record(Direction d, OtpOutcome o, Tick ready);

    NodeId self_;
    std::uint32_t num_nodes_;
    std::uint32_t total_entries_;
    Cycles latency_;

    OtpStats otp_stats_;

    stats::Scalar send_hits_{"sendHits", "send pads fully hidden"};
    stats::Scalar send_partials_{"sendPartials",
                                 "send pads partially hidden"};
    stats::Scalar send_misses_{"sendMisses", "send pads not hidden"};
    stats::Scalar recv_hits_{"recvHits", "recv pads fully hidden"};
    stats::Scalar recv_partials_{"recvPartials",
                                 "recv pads partially hidden"};
    stats::Scalar recv_misses_{"recvMisses", "recv pads not hidden"};
};

/** Private: quota / pair / direction, fixed for the whole run. */
class PrivatePadTable : public PadTable
{
  public:
    PrivatePadTable(const std::string &name, EventQueue &eq,
                    NodeId self, std::uint32_t num_nodes,
                    std::uint32_t total_entries, Cycles latency);

    SendGrant acquireSend(NodeId dst) override;
    RecvGrant acquireRecv(NodeId src, std::uint64_t ctr,
                          bool sender_fallback = false) override;

    std::uint32_t quotaPerPair() const { return quota_per_pair_; }

    std::uint32_t
    padQuota(NodeId peer, Direction d) const override
    {
        return (d == Direction::Send ? send_pipes_
                                     : recv_pipes_)[peer].quota();
    }

    std::uint32_t
    padsReady(NodeId peer, Direction d, Tick now) const override
    {
        return (d == Direction::Send ? send_pipes_
                                     : recv_pipes_)[peer].readyAt(now);
    }

    std::uint64_t
    wastedGenerations() const override
    {
        std::uint64_t n = 0;
        for (const PadPipeline &p : send_pipes_)
            n += p.wastedGenerations();
        for (const PadPipeline &p : recv_pipes_)
            n += p.wastedGenerations();
        return n;
    }

  protected:
    std::uint32_t quota_per_pair_;
    std::vector<PadPipeline> send_pipes_;
    std::vector<PadPipeline> recv_pipes_;
};

/**
 * Shared: one send slot total (seeded with the last destination, so
 * only back-to-back sends to the same peer hit) plus one receive
 * slot per peer that tracks that sender's global counter.
 */
class SharedPadTable : public PadTable
{
  public:
    SharedPadTable(const std::string &name, EventQueue &eq,
                   NodeId self, std::uint32_t num_nodes,
                   std::uint32_t total_entries, Cycles latency);

    SendGrant acquireSend(NodeId dst) override;
    RecvGrant acquireRecv(NodeId src, std::uint64_t ctr,
                          bool sender_fallback = false) override;

    std::uint32_t padQuota(NodeId peer, Direction d) const override;
    std::uint32_t padsReady(NodeId peer, Direction d,
                            Tick now) const override;

  private:
    /** Global send counter (one stream for all destinations). */
    std::uint64_t send_ctr_ = 0;
    NodeId last_dst_ = InvalidNode;
    /** Ready tick of the single pre-generated send pad. */
    Tick send_slot_ready_ = 0;

    /** Per-sender receive slot: expected counter + readiness. */
    struct RecvSlot
    {
        std::uint64_t expectCtr = 0;
        Tick ready = 0;
        bool primed = false;
    };
    std::vector<RecvSlot> recv_slots_;
};

/**
 * Cached: a pool of entries, LRU across (pair, direction). Hot pairs
 * accumulate entries (each miss steals the LRU victim's
 * highest-counter slot); a hit behaves like Private.
 */
class CachedPadTable : public PadTable
{
  public:
    CachedPadTable(const std::string &name, EventQueue &eq,
                   NodeId self, std::uint32_t num_nodes,
                   std::uint32_t total_entries, Cycles latency);

    SendGrant acquireSend(NodeId dst) override;
    RecvGrant acquireRecv(NodeId src, std::uint64_t ctr,
                          bool sender_fallback = false) override;

    /** Entries currently owned by a (peer, direction). */
    std::uint32_t owned(NodeId peer, Direction d) const;

    std::uint32_t
    padQuota(NodeId peer, Direction d) const override
    {
        return owned(peer, d);
    }

    std::uint32_t padsReady(NodeId peer, Direction d,
                            Tick now) const override;

  private:
    struct PairState
    {
        /** Ready ticks of the pads staged for this pair, counter
         *  order; size == entries owned. */
        std::deque<Tick> ready;
        /** Counter of the front staged pad. */
        std::uint64_t frontCtr = 0;
        /** Last time this pair won a new entry (rate limit). */
        Tick lastGrow = 0;
        /** Next counter a refill generation will target. */
        std::uint64_t nextGenCtr = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t
    keyOf(NodeId peer, Direction d) const
    {
        return static_cast<std::size_t>(peer) * kNumDirections +
               static_cast<std::size_t>(d);
    }

    /** Take a free entry, else steal the LRU victim's slot. */
    bool grabEntry(std::size_t for_key);
    /** Steal the LRU pool entry; returns false when pool empty. */
    bool stealEntry(std::size_t for_key);

    Tick claimFrom(PairState &ps, Tick now);

    std::vector<PairState> pairs_;
    std::vector<std::uint64_t> send_ctrs_;
    std::uint32_t free_entries_;
    /** Set-associativity limit on entries one pair may own. */
    std::uint32_t pair_cap_;
    std::uint64_t lru_clock_ = 0;
};

/**
 * Dynamic (the paper's contribution): Private-style per-pair
 * pipelines whose quotas are re-partitioned every T cycles using
 * EWMA-weighted traffic shares (Formulas 1-4).
 */
class DynamicPadTable : public PrivatePadTable
{
  public:
    struct Params
    {
        Cycles interval = 1000;  ///< T
        double alpha = 0.9;      ///< direction EWMA weight
        double beta = 0.5;       ///< per-destination EWMA weight
        /**
         * Message-count scales at which an interval's ratio estimate
         * is trusted at half the configured alpha/beta; intervals
         * carrying few messages move the EWMA proportionally less.
         * The direction split (S) is damped hard — send and receive
         * activity arrive in queue-induced waves that a fast EWMA
         * would chase — while the per-peer weights track workload
         * phases and stay more responsive.
         */
        std::uint32_t confidenceDir = 4096;
        std::uint32_t confidencePeer = 384;
    };

    DynamicPadTable(const std::string &name, EventQueue &eq,
                    NodeId self, std::uint32_t num_nodes,
                    std::uint32_t total_entries, Cycles latency,
                    Params params);

    SendGrant acquireSend(NodeId dst) override;
    RecvGrant acquireRecv(NodeId src, std::uint64_t ctr,
                          bool sender_fallback = false) override;

    /** Run one monitoring/adjustment step (normally event-driven). */
    void adjust();

    /** Current quota of a (peer, direction) pipe. */
    std::uint32_t quota(NodeId peer, Direction d) const;

    double sendWeight() const { return s_weight_; }

    /** EWMA traffic share of @p peer in direction @p d. */
    double
    peerWeight(NodeId peer, Direction d) const
    {
        return d == Direction::Send ? s_peer_weight_[peer]
                                    : r_peer_weight_[peer];
    }

    std::uint64_t adjustments() const
    {
        return static_cast<std::uint64_t>(adjustments_.value());
    }

  private:
    void scheduleNext();

    /**
     * Split @p total entries across peers proportionally to
     * @p weights, guaranteeing one entry per peer (largest-remainder
     * rounding).
     */
    std::vector<std::uint32_t>
    partition(std::uint32_t total, const std::vector<double> &weights)
        const;

    Params params_;

    /** This-interval request counts. */
    std::uint64_t sreq_ = 0;
    std::uint64_t rreq_ = 0;
    std::vector<std::uint64_t> sreq_peer_;
    std::vector<std::uint64_t> rreq_peer_;

    /** EWMA state. */
    double s_weight_ = 0.5;
    std::vector<double> s_peer_weight_;
    std::vector<double> r_peer_weight_;

    /** Weights in force at the last applied re-partition. */
    static constexpr double kDriftThreshold = 0.05;
    double applied_s_ = 0.5;
    std::vector<double> applied_s_peer_;
    std::vector<double> applied_r_peer_;

    stats::Scalar adjustments_{"adjustments",
                               "quota re-partition steps"};
};

/** The scheme selector used by configs and benches. */
enum class OtpScheme : std::uint8_t
{
    Unsecure,
    Private,
    Shared,
    Cached,
    Dynamic,
};

const char *otpSchemeName(OtpScheme s);

/** Factory building the right table for a scheme (not Unsecure). */
std::unique_ptr<PadTable>
makePadTable(OtpScheme scheme, const std::string &name, EventQueue &eq,
             NodeId self, std::uint32_t num_nodes,
             std::uint32_t total_entries, Cycles latency,
             DynamicPadTable::Params dyn_params = {});

} // namespace mgsec

#endif // MGSEC_SECURE_PAD_TABLE_HH
