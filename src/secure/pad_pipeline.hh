/**
 * @file
 * The pad staging pipeline for one (peer, direction) pair.
 *
 * An OTP buffer entry is the staging slot in which one pad is
 * generated and parked until its message consumes it. With quota N,
 * pads for the next N counters of the pair are in flight or ready;
 * consuming the front pad immediately re-tasks its slot with the
 * next counter in sequence. A pair-direction therefore sustains at
 * most quota/latency messages per cycle — the mechanism behind the
 * paper's Fig. 8 sensitivity to the number of OTP entries.
 *
 * With quota 0 the pair owns no staging slot and every pad is
 * generated on demand, serialized (there is nowhere to overlap
 * generations), which is the worst case.
 */

#ifndef MGSEC_SECURE_PAD_PIPELINE_HH
#define MGSEC_SECURE_PAD_PIPELINE_HH

#include <cstdint>
#include <deque>

#include "secure/otp_types.hh"
#include "sim/types.hh"

namespace mgsec
{

class PadPipeline
{
  public:
    PadPipeline() = default;

    /**
     * (Re)initialize: @p quota slots begin generating pads for
     * counters @p next_ctr, next_ctr+1, ... at time @p now.
     */
    void init(Tick now, Cycles latency, std::uint32_t quota,
              std::uint64_t next_ctr);

    struct Claim
    {
        std::uint64_t ctr = 0;
        Tick ready = 0;   ///< when the pad exists (claim time)
    };

    /**
     * Consume the pad for the next counter in sequence. The freed
     * slot immediately starts generating the pad quota counters
     * ahead. With quota 0, generation happens on demand and
     * serializes on the single implicit generation context.
     */
    Claim claim(Tick now);

    /**
     * Change the slot count. Growth adds slots that start
     * generating now; shrinkage drops the highest-counter pads
     * (their work is wasted, as in a real reallocation).
     */
    void resize(Tick now, std::uint32_t new_quota);

    /**
     * Counter discontinuity (Shared/Cached fallback): all staged
     * pads are useless. Restart the pipeline at @p next_ctr; the
     * first claim after a resync pays the full latency.
     */
    void resync(Tick now, std::uint64_t next_ctr);

    std::uint32_t quota() const { return quota_; }
    /** Counter the next claim will return. */
    std::uint64_t nextCtr() const { return front_ctr_; }

    /**
     * Pad generations discarded before any message consumed them:
     * slots dropped by a shrinking resize plus staged pads
     * invalidated by a resync. Wasted crypto work — the attribution
     * layer surfaces it as a run-level gauge.
     */
    std::uint64_t wastedGenerations() const { return wasted_; }
    /** Ready tick of the front pad (MaxTick when quota is 0). */
    Tick frontReady() const;

    /** Staged pads already generated at @p now (occupancy gauge). */
    std::uint32_t
    readyAt(Tick now) const
    {
        std::uint32_t n = 0;
        for (Tick t : ready_)
            n += t <= now ? 1 : 0;
        return n;
    }

    /** Classify a claim the way Fig. 10 does. */
    static OtpOutcome
    classify(Tick now, Tick ready, Cycles latency)
    {
        if (ready <= now)
            return OtpOutcome::Hit;
        if (ready - now < latency)
            return OtpOutcome::Partial;
        return OtpOutcome::Miss;
    }

  private:
    Cycles latency_ = 40;
    std::uint32_t quota_ = 0;
    std::uint64_t front_ctr_ = 0;
    /** ready_[k] = ready tick of the pad for counter front_ctr_+k. */
    std::deque<Tick> ready_;
    /** Serialization point for quota-0 on-demand generation. */
    Tick ondemand_free_ = 0;
    /** Generations discarded unconsumed (resize shrink, resync). */
    std::uint64_t wasted_ = 0;
};

} // namespace mgsec

#endif // MGSEC_SECURE_PAD_PIPELINE_HH
