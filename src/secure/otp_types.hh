/**
 * @file
 * Shared vocabulary for the OTP buffer-management schemes.
 */

#ifndef MGSEC_SECURE_OTP_TYPES_HH
#define MGSEC_SECURE_OTP_TYPES_HH

#include <cstdint>

#include "sim/types.hh"

namespace mgsec
{

/** Which half of a node's secure traffic a pad serves. */
enum class Direction : std::uint8_t { Send = 0, Recv = 1 };
constexpr std::size_t kNumDirections = 2;

const char *directionName(Direction d);

/**
 * How much of the AES-GCM latency the pad pre-generation hid
 * (the paper's Fig. 10 taxonomy):
 *   Hit     - pad ready on arrival: only the 1-cycle XOR is exposed.
 *   Partial - generation in flight: part of the latency is exposed.
 *   Miss    - the full generation latency (or more, queueing behind
 *             earlier pads) is exposed.
 */
enum class OtpOutcome : std::uint8_t { Hit = 0, Partial = 1, Miss = 2 };
constexpr std::size_t kNumOutcomes = 3;

const char *otpOutcomeName(OtpOutcome o);

/** Result of claiming a send pad. */
struct SendGrant
{
    std::uint64_t ctr = 0;   ///< MsgCTR assigned to the message
    OtpOutcome outcome = OtpOutcome::Hit;
    Tick padReady = 0;       ///< when the pad can be consumed
};

/** Result of claiming a receive pad. */
struct RecvGrant
{
    OtpOutcome outcome = OtpOutcome::Hit;
    Tick padReady = 0;
};

/**
 * On-chip cost of one OTP buffer entry, Section IV-D: valid bit +
 * 512 b encryption pad + 128 b authentication pad + 64 b counter.
 */
constexpr double kOtpEntryBits = 1 + 512 + 128 + 64;
constexpr double kOtpEntryBytes = kOtpEntryBits / 8.0; // 88.125 B

} // namespace mgsec

#endif // MGSEC_SECURE_OTP_TYPES_HH
