#include "memsec/mem_protect.hh"

#include <algorithm>

#include "sim/latency_attr.hh"
#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace mgsec
{

MemProtectEngine::MemProtectEngine(const std::string &name,
                                   EventQueue &eq,
                                   MemProtectParams params, Hbm &dram)
    : SimObject(name, eq), params_(params), dram_(dram),
      counter_cache_(name + ".ctrcache", eq,
                     TlbParams{params.counterCacheEntries, 1})
{
    MGSEC_ASSERT(params_.treeArity >= 2, "tree arity must be >= 2");
    MGSEC_ASSERT(params_.counterCoverage >= kBlockBytes,
                 "counter coverage below a block");

    // Depth: counter blocks fan in by treeArity until one node
    // (the on-chip root) covers the whole protected region.
    std::uint64_t nodes =
        std::max<std::uint64_t>(1, params_.protectedBytes /
                                       params_.counterCoverage);
    while (nodes > 1) {
        nodes = (nodes + params_.treeArity - 1) / params_.treeArity;
        ++levels_;
    }
    for (std::uint32_t l = 0; l < levels_; ++l) {
        level_caches_.push_back(std::make_unique<Tlb>(
            strformat("%s.tree%u", name.c_str(), l), eq,
            TlbParams{params_.treeCacheEntries, 1}));
    }

    regStat(counter_hits_);
    regStat(counter_misses_);
    regStat(meta_fetches_);
    regStat(mac_checks_);
    regStat(walk_depth_);
}

Tick
MemProtectEngine::access(std::uint64_t addr, bool write,
                         Tick data_ready)
{
    if (!params_.enabled)
        return data_ready;

    const std::uint64_t ctr_block = addr / params_.counterCoverage;
    Tick meta_ready = now();

    if (counter_cache_.lookup(ctr_block)) {
        ++counter_hits_;
        walk_depth_.sample(0.0);
    } else {
        ++counter_misses_;
        // Fetch the counter block, then authenticate ancestors until
        // a cached (already-trusted) tree node is found.
        meta_ready = dram_.access(kBlockBytes);
        ++meta_fetches_;
        std::uint32_t walked = 1;
        std::uint64_t node = ctr_block;
        for (std::uint32_t l = 0; l < levels_; ++l) {
            node /= params_.treeArity;
            if (level_caches_[l]->lookup(node))
                break;
            meta_ready = std::max(meta_ready, dram_.access(kBlockBytes));
            ++meta_fetches_;
            ++walked;
        }
        walk_depth_.sample(static_cast<double>(walked));
        // One pipelined MAC pass authenticates the fetched chain.
        meta_ready += params_.macLatency;
        mac_checks_ += static_cast<double>(walked);
        if (TraceSink *ts = eventq().traceSink()) {
            ts->complete(0, "memprot", "walk", now(),
                         meta_ready - now(), "levels", walked);
        }
        if (LatencyAttribution *attr = eventq().attribution())
            attr->recordMetaWalk(meta_ready - now());
    }

    // Decryption (read) or MAC update (write) cannot finish before
    // both the data and its counter are available; with the counter
    // on chip the pad is precomputable, so only the XOR remains.
    const Tick both = std::max(data_ready, meta_ready);
    ++mac_checks_;
    return both + (write ? 1 : 1);
}

} // namespace mgsec
