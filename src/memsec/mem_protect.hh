/**
 * @file
 * Host-memory protection engine.
 *
 * The threat model (paper Sec. II-B) trusts GPU-side HBM but not the
 * CPU's off-chip DRAM, so the host runs counter-mode memory
 * encryption with an integrity tree over its protected region —
 * "scalable memory protection as proposed in PENGLAI [13]" with
 * Morphable-Counters-style [37] counter packing.
 *
 * Model: every protected DRAM block access needs its counter. A
 * counter block (64 B) packs the counters of a 4 KB data region and
 * is cached on chip; on a counter-cache miss the block is fetched
 * from DRAM and authenticated up the integrity tree until a cached
 * (trusted) level is found — each uncached level costs another DRAM
 * access plus a MAC check. The root never leaves the chip.
 */

#ifndef MGSEC_MEMSEC_MEM_PROTECT_HH
#define MGSEC_MEMSEC_MEM_PROTECT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/hbm.hh"
#include "mem/tlb.hh"
#include "sim/sim_object.hh"

namespace mgsec
{

struct MemProtectParams
{
    bool enabled = false;
    /** Bytes of data covered by one counter block (4 KB). */
    Bytes counterCoverage = 4096;
    /** On-chip counter-cache entries (counter blocks). */
    std::uint32_t counterCacheEntries = 1024;
    /** Per-level on-chip tree caches (entries each). */
    std::uint32_t treeCacheEntries = 256;
    /** Integrity-tree arity. */
    std::uint32_t treeArity = 8;
    /** Size of the protected region (sets the tree depth). */
    Bytes protectedBytes = 16ull * 1024 * 1024 * 1024;
    /** MAC / AES-CTR engine latency per check. */
    Cycles macLatency = 40;
};

class MemProtectEngine : public SimObject
{
  public:
    /**
     * @param dram the DRAM device the extra metadata accesses hit.
     */
    MemProtectEngine(const std::string &name, EventQueue &eq,
                     MemProtectParams params, Hbm &dram);

    /**
     * Account the protection work for one data-block access ending
     * at @p data_ready.
     * @return the tick at which the decrypted, verified data is
     *         usable (>= data_ready).
     */
    Tick access(std::uint64_t addr, bool write, Tick data_ready);

    /** Levels in the integrity tree (excluding the on-chip root). */
    std::uint32_t treeLevels() const { return levels_; }

    const MemProtectParams &params() const { return params_; }

    std::uint64_t counterHits() const
    {
        return static_cast<std::uint64_t>(counter_hits_.value());
    }
    std::uint64_t counterMisses() const
    {
        return static_cast<std::uint64_t>(counter_misses_.value());
    }
    std::uint64_t metadataFetches() const
    {
        return static_cast<std::uint64_t>(meta_fetches_.value());
    }

  private:
    MemProtectParams params_;
    Hbm &dram_;
    std::uint32_t levels_ = 0;

    /** Counter-block cache plus one cache per tree level. */
    Tlb counter_cache_;
    std::vector<std::unique_ptr<Tlb>> level_caches_;

    stats::Scalar counter_hits_{"counterHits",
                                "counter cache hits"};
    stats::Scalar counter_misses_{"counterMisses",
                                  "counter cache misses"};
    stats::Scalar meta_fetches_{"metadataFetches",
                                "extra DRAM accesses for metadata"};
    stats::Scalar mac_checks_{"macChecks", "MAC verifications"};
    stats::Distribution walk_depth_{"walkDepth",
                                    "tree levels walked per miss",
                                    0, 16, 16};
};

} // namespace mgsec

#endif // MGSEC_MEMSEC_MEM_PROTECT_HH
