/**
 * @file
 * AES-NI implementations — the only TU compiled with `-maes`.
 */

#include "crypto/aesni.hh"

#include <wmmintrin.h>

namespace mgsec::crypto::aesni
{

namespace
{

/**
 * One round of the AES-128 schedule: fold the previous round key
 * into the SubWord/RotWord/Rcon output AESKEYGENASSIST leaves in the
 * high dword.
 */
inline __m128i
expandStep(__m128i key, __m128i assist)
{
    assist = _mm_shuffle_epi32(assist, _MM_SHUFFLE(3, 3, 3, 3));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    return _mm_xor_si128(key, assist);
}

} // anonymous namespace

void
expandKey(const std::uint8_t key[16], std::uint8_t round_keys[176])
{
    __m128i k = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(key));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(round_keys), k);
    // AESKEYGENASSIST takes the Rcon as an immediate, so the ten
    // rounds are spelled out rather than looped.
#define MGSEC_EXPAND_ROUND(i, rcon)                                   \
    k = expandStep(k, _mm_aeskeygenassist_si128(k, rcon));            \
    _mm_storeu_si128(                                                 \
        reinterpret_cast<__m128i *>(round_keys + 16 * (i)), k)
    MGSEC_EXPAND_ROUND(1, 0x01);
    MGSEC_EXPAND_ROUND(2, 0x02);
    MGSEC_EXPAND_ROUND(3, 0x04);
    MGSEC_EXPAND_ROUND(4, 0x08);
    MGSEC_EXPAND_ROUND(5, 0x10);
    MGSEC_EXPAND_ROUND(6, 0x20);
    MGSEC_EXPAND_ROUND(7, 0x40);
    MGSEC_EXPAND_ROUND(8, 0x80);
    MGSEC_EXPAND_ROUND(9, 0x1b);
    MGSEC_EXPAND_ROUND(10, 0x36);
#undef MGSEC_EXPAND_ROUND
}

void
encryptBlock(const std::uint8_t round_keys[176],
             std::uint8_t block[16])
{
    const __m128i *rk =
        reinterpret_cast<const __m128i *>(round_keys);
    __m128i b = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(block));
    b = _mm_xor_si128(b, _mm_loadu_si128(rk));
    for (int r = 1; r < 10; ++r)
        b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + r));
    b = _mm_aesenclast_si128(b, _mm_loadu_si128(rk + 10));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(block), b);
}

void
encryptBlocks(const std::uint8_t round_keys[176],
              std::uint8_t *blocks, std::size_t n)
{
    const __m128i *rkp =
        reinterpret_cast<const __m128i *>(round_keys);
    __m128i rk[11];
    for (int r = 0; r <= 10; ++r)
        rk[r] = _mm_loadu_si128(rkp + r);

    while (n >= 8) {
        __m128i *p = reinterpret_cast<__m128i *>(blocks);
        __m128i b0 = _mm_xor_si128(_mm_loadu_si128(p + 0), rk[0]);
        __m128i b1 = _mm_xor_si128(_mm_loadu_si128(p + 1), rk[0]);
        __m128i b2 = _mm_xor_si128(_mm_loadu_si128(p + 2), rk[0]);
        __m128i b3 = _mm_xor_si128(_mm_loadu_si128(p + 3), rk[0]);
        __m128i b4 = _mm_xor_si128(_mm_loadu_si128(p + 4), rk[0]);
        __m128i b5 = _mm_xor_si128(_mm_loadu_si128(p + 5), rk[0]);
        __m128i b6 = _mm_xor_si128(_mm_loadu_si128(p + 6), rk[0]);
        __m128i b7 = _mm_xor_si128(_mm_loadu_si128(p + 7), rk[0]);
        for (int r = 1; r < 10; ++r) {
            b0 = _mm_aesenc_si128(b0, rk[r]);
            b1 = _mm_aesenc_si128(b1, rk[r]);
            b2 = _mm_aesenc_si128(b2, rk[r]);
            b3 = _mm_aesenc_si128(b3, rk[r]);
            b4 = _mm_aesenc_si128(b4, rk[r]);
            b5 = _mm_aesenc_si128(b5, rk[r]);
            b6 = _mm_aesenc_si128(b6, rk[r]);
            b7 = _mm_aesenc_si128(b7, rk[r]);
        }
        _mm_storeu_si128(p + 0, _mm_aesenclast_si128(b0, rk[10]));
        _mm_storeu_si128(p + 1, _mm_aesenclast_si128(b1, rk[10]));
        _mm_storeu_si128(p + 2, _mm_aesenclast_si128(b2, rk[10]));
        _mm_storeu_si128(p + 3, _mm_aesenclast_si128(b3, rk[10]));
        _mm_storeu_si128(p + 4, _mm_aesenclast_si128(b4, rk[10]));
        _mm_storeu_si128(p + 5, _mm_aesenclast_si128(b5, rk[10]));
        _mm_storeu_si128(p + 6, _mm_aesenclast_si128(b6, rk[10]));
        _mm_storeu_si128(p + 7, _mm_aesenclast_si128(b7, rk[10]));
        blocks += 8 * 16;
        n -= 8;
    }
    // Tail: up to seven blocks, still overlapped in one pass.
    if (n > 0) {
        __m128i *p = reinterpret_cast<__m128i *>(blocks);
        __m128i b[7];
        for (std::size_t i = 0; i < n; ++i)
            b[i] = _mm_xor_si128(
                _mm_loadu_si128(p + static_cast<std::ptrdiff_t>(i)),
                rk[0]);
        for (int r = 1; r < 10; ++r)
            for (std::size_t i = 0; i < n; ++i)
                b[i] = _mm_aesenc_si128(b[i], rk[r]);
        for (std::size_t i = 0; i < n; ++i)
            _mm_storeu_si128(p + static_cast<std::ptrdiff_t>(i),
                             _mm_aesenclast_si128(b[i], rk[10]));
    }
}

} // namespace mgsec::crypto::aesni
