/**
 * @file
 * One-time-pad derivation for inter-processor secure communication.
 *
 * Following the paper (Fig. 4), a pad is derived from a seed made of
 * the per-pair message counter (MsgCTR), the sender id and the
 * receiver id, run through AES in counter mode:
 *
 *   - a 64-byte encryption pad (XORed with the cache-block payload),
 *   - a 16-byte authentication pad (masks the GHASH of the message).
 *
 * The MsgMAC is the first 8 bytes of GHASH(ciphertext || header)
 * XORed with the authentication pad, matching the 8 B MsgMAC the
 * paper's metadata accounting uses.
 */

#ifndef MGSEC_CRYPTO_OTP_HH
#define MGSEC_CRYPTO_OTP_HH

#include <array>
#include <cstdint>

#include "crypto/gcm.hh"
#include "sim/types.hh"

namespace mgsec::crypto
{

/** Pads pre-generated for one (sender, receiver, MsgCTR) triple. */
struct MessagePad
{
    std::array<std::uint8_t, 64> encPad{};
    std::array<std::uint8_t, 16> authPad{};
};

/** 8-byte message authentication code. */
using MsgMac = std::array<std::uint8_t, 8>;

/** A 64-byte wire payload (one cache block). */
using BlockPayload = std::array<std::uint8_t, 64>;

/**
 * Derives pads and MACs from a session key shared at boot.
 * Stateless with respect to counters: callers (the pad tables) own
 * counter sequencing.
 */
class PadFactory
{
  public:
    explicit PadFactory(const std::array<std::uint8_t, 16> &session_key);

    /** Derive the pad for (sender -> receiver, ctr). Deterministic. */
    MessagePad derive(NodeId sender, NodeId receiver,
                      std::uint64_t ctr) const;

    /** XOR a payload with a pad (encrypt == decrypt). */
    static BlockPayload crypt(const BlockPayload &data,
                              const MessagePad &pad);

    /** MsgMAC over a ciphertext with the pad's auth component. */
    MsgMac mac(const BlockPayload &cipher, NodeId sender,
               NodeId receiver, std::uint64_t ctr,
               const MessagePad &pad) const;

    /**
     * Batched MsgMAC per the paper's Eq. 5: GHASH over the
     * concatenation of the per-message MACs, masked by the pad of the
     * batch's first message.
     */
    MsgMac batchMac(const std::vector<MsgMac> &macs,
                    const MessagePad &first_pad) const;

  private:
    Iv96 seedIv(NodeId sender, NodeId receiver, std::uint64_t ctr,
                std::uint8_t domain) const;

    AesGcm gcm_;
};

} // namespace mgsec::crypto

#endif // MGSEC_CRYPTO_OTP_HH
