/**
 * @file
 * Runtime dispatch between the portable crypto tier (S-box AES,
 * 4-bit Shoup GHASH) and the SIMD tier (AES-NI pipelined CTR,
 * PCLMUL GHASH).
 *
 * The selection is process-global and functional-plane only: it can
 * never change a simulated result, only how fast the functional
 * pads/MACs are computed. Resolution order:
 *
 *   1. an explicit setCryptoImpl(Portable|Simd) call (the
 *      `--crypto-impl` flag, threaded through SecurityConfig);
 *   2. the MGSEC_CRYPTO_IMPL environment variable
 *      (`auto|portable|simd`);
 *   3. auto-detection: SIMD iff the binary carries the AES-NI/PCLMUL
 *      translation units *and* CPUID reports AES-NI + PCLMULQDQ +
 *      SSSE3.
 *
 * Forcing `simd` on a machine that cannot run it degrades to the
 * portable tier with a one-time warning instead of crashing — the
 * portable build must stay green everywhere.
 */

#ifndef MGSEC_CRYPTO_DISPATCH_HH
#define MGSEC_CRYPTO_DISPATCH_HH

#include <string>

namespace mgsec::crypto
{

/** Which functional-crypto tier to use. */
enum class CryptoImpl
{
    Auto,     ///< env override, else detect (the default)
    Portable, ///< force the portable S-box/Shoup-table tier
    Simd,     ///< force AES-NI/PCLMUL (falls back if unsupported)
};

/** The x86 feature bits the SIMD tier needs. */
struct CpuFeatures
{
    bool aesni = false;
    bool pclmul = false;
    bool ssse3 = false;

    bool all() const { return aesni && pclmul && ssse3; }
};

/** CPUID probe; cached after the first call. */
const CpuFeatures &cpuFeatures();

/** True when the aesni/clmul TUs were compiled into this binary. */
bool simdCompiledIn();

/** simdCompiledIn() and the CPU can actually run those TUs. */
bool simdAvailable();

/**
 * Request an implementation. Auto re-resolves from the environment
 * and CPU detection. Takes effect immediately for every subsequent
 * crypto call (the primitives dispatch per call, not per object).
 */
void setCryptoImpl(CryptoImpl impl);

/** The last value passed to setCryptoImpl() (Auto initially). */
CryptoImpl requestedCryptoImpl();

/** The tier actually in use right now: Portable or Simd, never Auto. */
CryptoImpl activeCryptoImpl();

/** activeCryptoImpl() == Simd. */
bool simdActive();

/** Parse "auto" / "portable" / "simd" (case-insensitive). */
bool parseCryptoImpl(const std::string &text, CryptoImpl &out);

/** Stable lowercase name of @p impl. */
const char *cryptoImplName(CryptoImpl impl);

} // namespace mgsec::crypto

#endif // MGSEC_CRYPTO_DISPATCH_HH
