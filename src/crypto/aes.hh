/**
 * @file
 * AES-128 block cipher (FIPS-197).
 *
 * A portable, table-light implementation: S-box lookups plus xtime()
 * arithmetic. The simulator's timing path never calls this (it uses
 * the paper's 40-cycle latency model); the functional secure-channel
 * layer and the test suite use it to prove the protocol actually
 * encrypts, authenticates, and round-trips.
 *
 * When the build carries the SIMD tier and crypto::simdActive(), the
 * encrypt paths route through AES-NI (see crypto/aesni.hh). Both
 * tiers share the same FIPS-197 expanded-key layout, so selection is
 * per call, not baked in at construction.
 */

#ifndef MGSEC_CRYPTO_AES_HH
#define MGSEC_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <cstddef>

namespace mgsec::crypto
{

/** A 16-byte cipher block. */
using Block = std::array<std::uint8_t, 16>;

/** AES-128: 128-bit key, 10 rounds. */
class Aes128
{
  public:
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr std::size_t kBlockBytes = 16;
    static constexpr int kRounds = 10;

    explicit Aes128(const std::array<std::uint8_t, kKeyBytes> &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(Block &b) const;
    /**
     * Encrypt @p n consecutive 16-byte blocks in place. On the SIMD
     * tier the blocks run eight-wide through the AES-NI pipeline;
     * callers with independent blocks (CTR keystream, OTP pads)
     * should batch through this instead of looping encryptBlock.
     */
    void encryptBlocks(std::uint8_t *blocks, std::size_t n) const;
    /** Decrypt one 16-byte block in place. */
    void decryptBlock(Block &b) const;

    /** Convenience: returns E_K(in). */
    Block encrypt(const Block &in) const;
    /** Convenience: returns D_K(in). */
    Block decrypt(const Block &in) const;

  private:
    /** Expanded round keys: (rounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (kRounds + 1)> round_keys_{};
};

} // namespace mgsec::crypto

#endif // MGSEC_CRYPTO_AES_HH
