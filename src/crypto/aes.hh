/**
 * @file
 * AES-128 block cipher (FIPS-197).
 *
 * A portable, table-light implementation: S-box lookups plus xtime()
 * arithmetic. The simulator's timing path never calls this (it uses
 * the paper's 40-cycle latency model); the functional secure-channel
 * layer and the test suite use it to prove the protocol actually
 * encrypts, authenticates, and round-trips.
 */

#ifndef MGSEC_CRYPTO_AES_HH
#define MGSEC_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <cstddef>

namespace mgsec::crypto
{

/** A 16-byte cipher block. */
using Block = std::array<std::uint8_t, 16>;

/** AES-128: 128-bit key, 10 rounds. */
class Aes128
{
  public:
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr std::size_t kBlockBytes = 16;
    static constexpr int kRounds = 10;

    explicit Aes128(const std::array<std::uint8_t, kKeyBytes> &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(Block &b) const;
    /** Decrypt one 16-byte block in place. */
    void decryptBlock(Block &b) const;

    /** Convenience: returns E_K(in). */
    Block encrypt(const Block &in) const;
    /** Convenience: returns D_K(in). */
    Block decrypt(const Block &in) const;

  private:
    /** Expanded round keys: (rounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (kRounds + 1)> round_keys_{};
};

} // namespace mgsec::crypto

#endif // MGSEC_CRYPTO_AES_HH
