#include "crypto/dispatch.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define MGSEC_DISPATCH_X86 1
#endif

namespace mgsec::crypto
{

namespace
{

CpuFeatures
probeCpu()
{
    CpuFeatures f;
#ifdef MGSEC_DISPATCH_X86
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
        f.pclmul = (ecx & bit_PCLMUL) != 0;
        f.ssse3 = (ecx & bit_SSSE3) != 0;
        f.aesni = (ecx & bit_AES) != 0;
    }
#endif
    return f;
}

/**
 * Resolved selection, reread by every crypto call. Relaxed atomics:
 * tools select an implementation before the job pool spawns workers,
 * and a torn read is impossible for a single enum-sized store.
 */
std::atomic<CryptoImpl> g_requested{CryptoImpl::Auto};
std::atomic<CryptoImpl> g_active{CryptoImpl::Portable};
std::atomic<bool> g_resolved{false};

CryptoImpl
envImpl()
{
    const char *env = std::getenv("MGSEC_CRYPTO_IMPL");
    if (env == nullptr)
        return CryptoImpl::Auto;
    CryptoImpl impl = CryptoImpl::Auto;
    if (!parseCryptoImpl(env, impl)) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::fprintf(stderr,
                         "mgsec: ignoring bad MGSEC_CRYPTO_IMPL "
                         "value '%s' (want auto|portable|simd)\n",
                         env);
        }
        return CryptoImpl::Auto;
    }
    return impl;
}

void
resolve()
{
    CryptoImpl want = g_requested.load(std::memory_order_relaxed);
    if (want == CryptoImpl::Auto)
        want = envImpl();
    if (want == CryptoImpl::Auto)
        want = simdAvailable() ? CryptoImpl::Simd
                               : CryptoImpl::Portable;
    if (want == CryptoImpl::Simd && !simdAvailable()) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::fprintf(stderr,
                         "mgsec: SIMD crypto requested but %s; "
                         "using the portable tier\n",
                         simdCompiledIn()
                             ? "this CPU lacks AES-NI/PCLMULQDQ/SSSE3"
                             : "this build carries no SIMD tier");
        }
        want = CryptoImpl::Portable;
    }
    g_active.store(want, std::memory_order_relaxed);
    g_resolved.store(true, std::memory_order_relaxed);
}

} // anonymous namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = probeCpu();
    return f;
}

bool
simdCompiledIn()
{
#ifdef MGSEC_HAVE_SIMD
    return true;
#else
    return false;
#endif
}

bool
simdAvailable()
{
    return simdCompiledIn() && cpuFeatures().all();
}

void
setCryptoImpl(CryptoImpl impl)
{
    g_requested.store(impl, std::memory_order_relaxed);
    resolve();
}

CryptoImpl
requestedCryptoImpl()
{
    return g_requested.load(std::memory_order_relaxed);
}

CryptoImpl
activeCryptoImpl()
{
    if (!g_resolved.load(std::memory_order_relaxed))
        resolve();
    return g_active.load(std::memory_order_relaxed);
}

bool
simdActive()
{
    return activeCryptoImpl() == CryptoImpl::Simd;
}

bool
parseCryptoImpl(const std::string &text, CryptoImpl &out)
{
    std::string t = text;
    std::transform(t.begin(), t.end(), t.begin(), ::tolower);
    if (t == "auto")
        out = CryptoImpl::Auto;
    else if (t == "portable")
        out = CryptoImpl::Portable;
    else if (t == "simd")
        out = CryptoImpl::Simd;
    else
        return false;
    return true;
}

const char *
cryptoImplName(CryptoImpl impl)
{
    switch (impl) {
      case CryptoImpl::Auto:
        return "auto";
      case CryptoImpl::Portable:
        return "portable";
      case CryptoImpl::Simd:
        return "simd";
    }
    return "?";
}

} // namespace mgsec::crypto
