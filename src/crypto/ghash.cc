#include "crypto/ghash.hh"

#include <cstring>

#include "crypto/dispatch.hh"

namespace mgsec::crypto
{

U128
blockToU128(const Block &b)
{
    return U128{load64be(b.data()), load64be(b.data() + 8)};
}

Block
u128ToBlock(const U128 &v)
{
    Block b;
    store64be(b.data(), v.hi);
    store64be(b.data() + 8, v.lo);
    return b;
}

U128
gfmul(const U128 &x, const U128 &y)
{
    // SP 800-38D algorithm 1: Z = 0, V = y; scan bits of x MSB-first.
    U128 z;
    U128 v = y;
    for (int i = 0; i < 128; ++i) {
        const bool xbit = (i < 64)
            ? ((x.hi >> (63 - i)) & 1) != 0
            : ((x.lo >> (127 - i)) & 1) != 0;
        if (xbit) {
            z.hi ^= v.hi;
            z.lo ^= v.lo;
        }
        const bool lsb = (v.lo & 1) != 0;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ULL;
    }
    return z;
}

namespace
{

/**
 * Reduction of the four bits shifted out of a right-shift-by-4,
 * premultiplied by the field polynomial (Shoup's "last4" table).
 * Entry r is (r * x^124 mod P) >> 64's top 16 bits; shifted into
 * place by mul().
 */
constexpr std::uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
};

} // anonymous namespace

GhashKey::GhashKey(const Block &h)
{
    // Populate the power-of-two entries by repeated halving of H
    // (table index 8 is H itself: GCM's bit order makes nibble
    // value 8 the polynomial 1).
    U128 v = blockToU128(h);
    hh_[8] = v.hi;
    hl_[8] = v.lo;
    for (int i = 4; i > 0; i >>= 1) {
        const bool lsb = (v.lo & 1) != 0;
        v.lo = (v.hi << 63) | (v.lo >> 1);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ULL;
        hh_[i] = v.hi;
        hl_[i] = v.lo;
    }
    // Remaining entries by linearity.
    for (int i = 2; i <= 8; i *= 2) {
        for (int j = 1; j < i; ++j) {
            hh_[i + j] = hh_[i] ^ hh_[j];
            hl_[i + j] = hl_[i] ^ hl_[j];
        }
    }
    // Precompute the PCLMUL powers whenever the machine can use them
    // (not only when SIMD is currently selected): the active tier is
    // process-global and may flip after this key is built.
#ifdef MGSEC_HAVE_SIMD
    if (simdAvailable()) {
        clmul::initPowers(h.data(), powers_);
        simd_ready_ = true;
    }
#endif
}

U128
GhashKey::mul(const U128 &x) const
{
    // Process the 32 nibbles of x from the field's "last" end (the
    // least-significant bits of lo) to its first, folding a 4-bit
    // reduction (kLast4) into each shift.
    std::uint64_t zh = 0;
    std::uint64_t zl = 0;
    for (int half = 0; half < 2; ++half) {
        const std::uint64_t word = half == 0 ? x.lo : x.hi;
        for (int i = 0; i < 16; ++i) {
            const std::size_t nib = (word >> (4 * i)) & 0xf;
            if (half != 0 || i != 0) {
                const std::size_t rem = zl & 0xf;
                zl = (zh << 60) | (zl >> 4);
                zh = (zh >> 4) ^ (kLast4[rem] << 48);
            }
            zh ^= hh_[nib];
            zl ^= hl_[nib];
        }
    }
    return U128{zh, zl};
}

void
Ghash::absorbBlocks(const std::uint8_t *data, std::size_t nblocks)
{
#ifdef MGSEC_HAVE_SIMD
    if (key_.simdReady() && simdActive()) {
        clmul::ghashBlocks(key_.powers(), y_.hi, y_.lo, data,
                           nblocks);
        return;
    }
#endif
    while (nblocks-- > 0) {
        y_.hi ^= load64be(data);
        y_.lo ^= load64be(data + 8);
        y_ = key_.mul(y_);
        data += 16;
    }
}

void
Ghash::update(const Block &b)
{
    absorbBlocks(b.data(), 1);
}

void
Ghash::updateBytes(const std::uint8_t *data, std::size_t len)
{
    absorbBlocks(data, len / 16);
    if (len % 16 != 0) {
        Block b;
        b.fill(0);
        std::memcpy(b.data(), data + (len - len % 16), len % 16);
        update(b);
    }
}

} // namespace mgsec::crypto
