#include "crypto/ghash.hh"

#include <cstring>

namespace mgsec::crypto
{

U128
blockToU128(const Block &b)
{
    U128 v;
    for (int i = 0; i < 8; ++i)
        v.hi = (v.hi << 8) | b[i];
    for (int i = 8; i < 16; ++i)
        v.lo = (v.lo << 8) | b[i];
    return v;
}

Block
u128ToBlock(const U128 &v)
{
    Block b;
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v.hi >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
        b[8 + i] = static_cast<std::uint8_t>(v.lo >> (56 - 8 * i));
    return b;
}

U128
gfmul(const U128 &x, const U128 &y)
{
    // SP 800-38D algorithm 1: Z = 0, V = y; scan bits of x MSB-first.
    U128 z;
    U128 v = y;
    for (int i = 0; i < 128; ++i) {
        const bool xbit = (i < 64)
            ? ((x.hi >> (63 - i)) & 1) != 0
            : ((x.lo >> (127 - i)) & 1) != 0;
        if (xbit) {
            z.hi ^= v.hi;
            z.lo ^= v.lo;
        }
        const bool lsb = (v.lo & 1) != 0;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ULL;
    }
    return z;
}

void
Ghash::update(const Block &b)
{
    const U128 x = blockToU128(b);
    y_.hi ^= x.hi;
    y_.lo ^= x.lo;
    y_ = gfmul(y_, h_);
}

void
Ghash::updateBytes(const std::uint8_t *data, std::size_t len)
{
    Block b;
    while (len >= 16) {
        std::memcpy(b.data(), data, 16);
        update(b);
        data += 16;
        len -= 16;
    }
    if (len > 0) {
        b.fill(0);
        std::memcpy(b.data(), data, len);
        update(b);
    }
}

} // namespace mgsec::crypto
