/**
 * @file
 * AES-NI backend of the SIMD crypto tier.
 *
 * Declarations only — this header is intrinsic-free so any TU can
 * include it; the definitions live in aesni.cc, the one translation
 * unit compiled with `-maes`. The functions operate on the standard
 * FIPS-197 byte layout of the expanded key (11 x 16 bytes), which is
 * exactly what the portable `Aes128` already stores, so the two
 * tiers share one key schedule representation and can be swapped per
 * call.
 *
 * Callers must gate every call on crypto::simdAvailable(): when the
 * SIMD TUs are not compiled in, these symbols do not exist.
 */

#ifndef MGSEC_CRYPTO_AESNI_HH
#define MGSEC_CRYPTO_AESNI_HH

#include <cstddef>
#include <cstdint>

namespace mgsec::crypto::aesni
{

/**
 * AES-128 key schedule via AESKEYGENASSIST. Produces the identical
 * 176 bytes the portable expansion computes.
 */
void expandKey(const std::uint8_t key[16],
               std::uint8_t round_keys[176]);

/** Encrypt one 16-byte block in place. */
void encryptBlock(const std::uint8_t round_keys[176],
                  std::uint8_t block[16]);

/**
 * Encrypt @p n consecutive 16-byte blocks in place, pipelined eight
 * at a time (the AESENC units of every AES-NI core overlap
 * independent blocks; eight keeps the pipeline full without spilling
 * xmm registers).
 */
void encryptBlocks(const std::uint8_t round_keys[176],
                   std::uint8_t *blocks, std::size_t n);

} // namespace mgsec::crypto::aesni

#endif // MGSEC_CRYPTO_AESNI_HH
