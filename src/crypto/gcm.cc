#include "crypto/gcm.hh"

#include <cstring>

namespace mgsec::crypto
{

AesGcm::AesGcm(const std::array<std::uint8_t, 16> &key) : aes_(key)
{
    Block zero{};
    h_ = aes_.encrypt(zero);
}

Block
AesGcm::counterBlock(const Iv96 &iv, std::uint32_t ctr) const
{
    Block b{};
    std::memcpy(b.data(), iv.data(), iv.size());
    b[12] = static_cast<std::uint8_t>(ctr >> 24);
    b[13] = static_cast<std::uint8_t>(ctr >> 16);
    b[14] = static_cast<std::uint8_t>(ctr >> 8);
    b[15] = static_cast<std::uint8_t>(ctr);
    return b;
}

void
AesGcm::ctrCrypt(const Iv96 &iv, const std::uint8_t *in,
                 std::uint8_t *out, std::size_t len) const
{
    std::uint32_t ctr = 2; // J0 = IV || 1; data starts at inc32(J0).
    std::size_t off = 0;
    while (off < len) {
        const Block ks = aes_.encrypt(counterBlock(iv, ctr++));
        const std::size_t n = std::min<std::size_t>(16, len - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = static_cast<std::uint8_t>(in[off + i] ^
                                                     ks[i]);
        off += n;
    }
}

Block
AesGcm::computeTag(const Iv96 &iv,
                   const std::vector<std::uint8_t> &aad,
                   const std::vector<std::uint8_t> &cipher) const
{
    Ghash gh(h_);
    if (!aad.empty())
        gh.updateBytes(aad.data(), aad.size());
    if (!cipher.empty())
        gh.updateBytes(cipher.data(), cipher.size());
    // Length block: 64-bit bit lengths of AAD and ciphertext.
    Block len{};
    const std::uint64_t abits = static_cast<std::uint64_t>(aad.size()) * 8;
    const std::uint64_t cbits =
        static_cast<std::uint64_t>(cipher.size()) * 8;
    for (int i = 0; i < 8; ++i) {
        len[i] = static_cast<std::uint8_t>(abits >> (56 - 8 * i));
        len[8 + i] = static_cast<std::uint8_t>(cbits >> (56 - 8 * i));
    }
    gh.update(len);
    Block tag = gh.digest();
    const Block ekj0 = aes_.encrypt(counterBlock(iv, 1));
    for (int i = 0; i < 16; ++i)
        tag[i] ^= ekj0[i];
    return tag;
}

GcmSealed
AesGcm::seal(const Iv96 &iv, const std::vector<std::uint8_t> &plaintext,
             const std::vector<std::uint8_t> &aad) const
{
    GcmSealed out;
    out.ciphertext.resize(plaintext.size());
    if (!plaintext.empty()) {
        ctrCrypt(iv, plaintext.data(), out.ciphertext.data(),
                 plaintext.size());
    }
    out.tag = computeTag(iv, aad, out.ciphertext);
    return out;
}

bool
AesGcm::open(const Iv96 &iv, const std::vector<std::uint8_t> &ciphertext,
             const Block &tag, std::vector<std::uint8_t> &plaintext,
             const std::vector<std::uint8_t> &aad) const
{
    const Block expect = computeTag(iv, aad, ciphertext);
    // Constant-time-ish comparison; timing of the simulator is not a
    // side channel we defend, but don't shortcut out of habit.
    std::uint8_t diff = 0;
    for (int i = 0; i < 16; ++i)
        diff |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
    if (diff != 0)
        return false;
    plaintext.resize(ciphertext.size());
    if (!ciphertext.empty()) {
        ctrCrypt(iv, ciphertext.data(), plaintext.data(),
                 ciphertext.size());
    }
    return true;
}

std::vector<std::uint8_t>
AesGcm::keystream(const Iv96 &iv, std::size_t len) const
{
    std::vector<std::uint8_t> zeros(len, 0);
    std::vector<std::uint8_t> out(len);
    if (len > 0)
        ctrCrypt(iv, zeros.data(), out.data(), len);
    return out;
}

} // namespace mgsec::crypto
