#include "crypto/gcm.hh"

#include <algorithm>
#include <cstring>

namespace mgsec::crypto
{

AesGcm::AesGcm(const std::array<std::uint8_t, 16> &key) : aes_(key)
{
    Block zero{};
    h_ = aes_.encrypt(zero);
    hkey_ = GhashKey(h_);
}

Block
AesGcm::counterBlock(const Iv96 &iv, std::uint32_t ctr) const
{
    Block b{};
    std::memcpy(b.data(), iv.data(), iv.size());
    b[12] = static_cast<std::uint8_t>(ctr >> 24);
    b[13] = static_cast<std::uint8_t>(ctr >> 16);
    b[14] = static_cast<std::uint8_t>(ctr >> 8);
    b[15] = static_cast<std::uint8_t>(ctr);
    return b;
}

namespace
{

/**
 * Keystream chunk size: eight counter blocks, matching the width of
 * the AES-NI pipeline in Aes128::encryptBlocks. The portable tier
 * just loops; the batch shape costs it nothing.
 */
constexpr std::size_t kBatchBytes = 8 * 16;

/** Format counter blocks IV||ctr .. IV||ctr+n-1 into @p buf. */
inline void
fillCounterBlocks(const Iv96 &iv, std::uint32_t &ctr,
                  std::uint8_t *buf, std::size_t nblocks)
{
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(buf + 16 * i, iv.data(), iv.size());
        store32be(buf + 16 * i + 12, ctr++);
    }
}

} // anonymous namespace

void
AesGcm::ctrCrypt(const Iv96 &iv, const std::uint8_t *in,
                 std::uint8_t *out, std::size_t len) const
{
    std::uint32_t ctr = 2; // J0 = IV || 1; data starts at inc32(J0).
    std::uint8_t ks[kBatchBytes];
    std::size_t off = 0;
    while (off < len) {
        const std::size_t want = len - off;
        const std::size_t nblk =
            std::min<std::size_t>(kBatchBytes, want + 15) / 16;
        fillCounterBlocks(iv, ctr, ks, nblk);
        aes_.encryptBlocks(ks, nblk);
        const std::size_t n = std::min(want, 16 * nblk);
        // Word-wise XOR: XOR is bytewise, so endianness is moot.
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            std::uint64_t a, k;
            std::memcpy(&a, in + off + i, 8);
            std::memcpy(&k, ks + i, 8);
            a ^= k;
            std::memcpy(out + off + i, &a, 8);
        }
        for (; i < n; ++i)
            out[off + i] =
                static_cast<std::uint8_t>(in[off + i] ^ ks[i]);
        off += n;
    }
}

void
AesGcm::keystreamTo(const Iv96 &iv, std::uint8_t *out,
                    std::size_t len) const
{
    std::uint32_t ctr = 2;
    std::uint8_t ks[kBatchBytes];
    std::size_t off = 0;
    while (off < len) {
        const std::size_t want = len - off;
        const std::size_t nblk =
            std::min<std::size_t>(kBatchBytes, want + 15) / 16;
        fillCounterBlocks(iv, ctr, ks, nblk);
        aes_.encryptBlocks(ks, nblk);
        const std::size_t n = std::min(want, 16 * nblk);
        std::memcpy(out + off, ks, n);
        off += n;
    }
}

Block
AesGcm::computeTag(const Iv96 &iv, const std::uint8_t *aad,
                   std::size_t aad_len, const std::uint8_t *cipher,
                   std::size_t cipher_len) const
{
    Ghash gh(hkey_);
    if (aad_len > 0)
        gh.updateBytes(aad, aad_len);
    if (cipher_len > 0)
        gh.updateBytes(cipher, cipher_len);
    // Length block: 64-bit bit lengths of AAD and ciphertext.
    Block len{};
    store64be(len.data(), static_cast<std::uint64_t>(aad_len) * 8);
    store64be(len.data() + 8,
              static_cast<std::uint64_t>(cipher_len) * 8);
    gh.update(len);
    Block tag = gh.digest();
    const Block ekj0 = aes_.encrypt(counterBlock(iv, 1));
    for (int i = 0; i < 16; ++i)
        tag[i] ^= ekj0[i];
    return tag;
}

GcmSealed
AesGcm::seal(const Iv96 &iv, const std::vector<std::uint8_t> &plaintext,
             const std::vector<std::uint8_t> &aad) const
{
    GcmSealed out;
    out.ciphertext.resize(plaintext.size());
    if (!plaintext.empty()) {
        ctrCrypt(iv, plaintext.data(), out.ciphertext.data(),
                 plaintext.size());
    }
    out.tag = computeTag(iv, aad.data(), aad.size(),
                         out.ciphertext.data(), out.ciphertext.size());
    return out;
}

bool
AesGcm::open(const Iv96 &iv, const std::vector<std::uint8_t> &ciphertext,
             const Block &tag, std::vector<std::uint8_t> &plaintext,
             const std::vector<std::uint8_t> &aad) const
{
    const Block expect = computeTag(iv, aad.data(), aad.size(),
                                    ciphertext.data(),
                                    ciphertext.size());
    // Constant-time-ish comparison; timing of the simulator is not a
    // side channel we defend, but don't shortcut out of habit.
    std::uint8_t diff = 0;
    for (int i = 0; i < 16; ++i)
        diff |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
    if (diff != 0)
        return false;
    plaintext.resize(ciphertext.size());
    if (!ciphertext.empty()) {
        ctrCrypt(iv, ciphertext.data(), plaintext.data(),
                 ciphertext.size());
    }
    return true;
}

std::vector<std::uint8_t>
AesGcm::keystream(const Iv96 &iv, std::size_t len) const
{
    std::vector<std::uint8_t> out(len);
    if (len > 0)
        keystreamTo(iv, out.data(), len);
    return out;
}

} // namespace mgsec::crypto
