/**
 * @file
 * AES-128-GCM authenticated encryption (NIST SP 800-38D), 96-bit IV.
 *
 * This is the reference algorithm the paper's hardware engines
 * implement; the secure-channel layer derives its one-time pads and
 * MsgMACs from the same primitives so the protocol tests exercise
 * real cryptography.
 */

#ifndef MGSEC_CRYPTO_GCM_HH
#define MGSEC_CRYPTO_GCM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/ghash.hh"

namespace mgsec::crypto
{

/** 96-bit GCM initialization vector. */
using Iv96 = std::array<std::uint8_t, 12>;

/** Result of a GCM seal operation. */
struct GcmSealed
{
    std::vector<std::uint8_t> ciphertext;
    Block tag;
};

class AesGcm
{
  public:
    explicit AesGcm(const std::array<std::uint8_t, 16> &key);

    /** Encrypt and authenticate. @p aad may be empty. */
    GcmSealed seal(const Iv96 &iv,
                   const std::vector<std::uint8_t> &plaintext,
                   const std::vector<std::uint8_t> &aad = {}) const;

    /**
     * Verify and decrypt.
     * @param[out] plaintext valid only when the call returns true.
     * @retval false the tag did not verify (output untouched).
     */
    bool open(const Iv96 &iv,
              const std::vector<std::uint8_t> &ciphertext,
              const Block &tag,
              std::vector<std::uint8_t> &plaintext,
              const std::vector<std::uint8_t> &aad = {}) const;

    /**
     * Raw CTR keystream starting at counter block J0+1, written into
     * @p out — the allocation-free core every pad derivation uses.
     */
    void keystreamTo(const Iv96 &iv, std::uint8_t *out,
                     std::size_t len) const;

    /** Convenience vector form of keystreamTo(). */
    std::vector<std::uint8_t> keystream(const Iv96 &iv,
                                        std::size_t len) const;

    /**
     * GCM tag over (aad, cipher) given as raw spans, so callers with
     * data already in arrays need not materialize vector copies.
     * Null pointers with zero lengths are valid.
     */
    Block computeTag(const Iv96 &iv, const std::uint8_t *aad,
                     std::size_t aad_len, const std::uint8_t *cipher,
                     std::size_t cipher_len) const;

    const Block &hashKey() const { return h_; }
    /** Precomputed GHASH tables for H (shared with PadFactory). */
    const GhashKey &hashTables() const { return hkey_; }

  private:
    Block counterBlock(const Iv96 &iv, std::uint32_t ctr) const;
    void ctrCrypt(const Iv96 &iv, const std::uint8_t *in,
                  std::uint8_t *out, std::size_t len) const;

    Aes128 aes_;
    Block h_{};
    GhashKey hkey_;
};

} // namespace mgsec::crypto

#endif // MGSEC_CRYPTO_GCM_HH
