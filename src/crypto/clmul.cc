/**
 * @file
 * PCLMUL GHASH implementation — the only TU compiled with
 * `-mpclmul` (plus `-mssse3` for the byte-swap shuffle).
 */

#include "crypto/clmul.hh"

#include <tmmintrin.h>
#include <wmmintrin.h>

namespace mgsec::crypto::clmul
{

namespace
{

/** Byte-reverse a block: GCM byte order <-> reflected domain. */
inline __m128i
bswap(__m128i x)
{
    const __m128i mask =
        _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                     14, 15);
    return _mm_shuffle_epi8(x, mask);
}

/**
 * 128x128 -> 256-bit carry-less product via Karatsuba: three
 * PCLMULQDQs instead of four. @p mid is the cross term, to be folded
 * in at bit offset 64 by the caller.
 */
inline void
mulNoReduce(__m128i a, __m128i b, __m128i &lo, __m128i &hi,
            __m128i &mid)
{
    const __m128i t0 = _mm_clmulepi64_si128(a, b, 0x00);
    const __m128i t1 = _mm_clmulepi64_si128(a, b, 0x11);
    const __m128i ax = _mm_xor_si128(a, _mm_srli_si128(a, 8));
    const __m128i bx = _mm_xor_si128(b, _mm_srli_si128(b, 8));
    const __m128i t2 = _mm_clmulepi64_si128(ax, bx, 0x00);
    lo = t0;
    hi = t1;
    mid = _mm_xor_si128(t2, _mm_xor_si128(t0, t1));
}

/**
 * Shift the 256-bit product (hi:lo, mid already folded) left one bit
 * — the reflected-domain fix-up — and reduce modulo the reflected
 * GCM polynomial x^128 + x^7 + x^2 + x + 1.
 */
inline __m128i
shiftAndReduce(__m128i lo, __m128i hi)
{
    __m128i t7 = _mm_srli_epi32(lo, 31);
    __m128i t8 = _mm_srli_epi32(hi, 31);
    lo = _mm_slli_epi32(lo, 1);
    hi = _mm_slli_epi32(hi, 1);
    const __m128i t9 = _mm_srli_si128(t7, 12);
    t8 = _mm_slli_si128(t8, 4);
    t7 = _mm_slli_si128(t7, 4);
    lo = _mm_or_si128(lo, t7);
    hi = _mm_or_si128(hi, t8);
    hi = _mm_or_si128(hi, t9);

    t7 = _mm_slli_epi32(lo, 31);
    t8 = _mm_xor_si128(_mm_slli_epi32(lo, 30),
                       _mm_slli_epi32(lo, 25));
    t7 = _mm_xor_si128(t7, t8);
    const __m128i carry = _mm_srli_si128(t7, 4);
    t7 = _mm_slli_si128(t7, 12);
    lo = _mm_xor_si128(lo, t7);

    __m128i t2 = _mm_srli_epi32(lo, 1);
    t2 = _mm_xor_si128(t2, _mm_srli_epi32(lo, 2));
    t2 = _mm_xor_si128(t2, _mm_srli_epi32(lo, 7));
    t2 = _mm_xor_si128(t2, carry);
    lo = _mm_xor_si128(lo, t2);
    return _mm_xor_si128(hi, lo);
}

/** Full single multiplication in the reflected domain. */
inline __m128i
gfmulReflected(__m128i a, __m128i b)
{
    __m128i lo, hi, mid;
    mulNoReduce(a, b, lo, hi, mid);
    lo = _mm_xor_si128(lo, _mm_slli_si128(mid, 8));
    hi = _mm_xor_si128(hi, _mm_srli_si128(mid, 8));
    return shiftAndReduce(lo, hi);
}

inline __m128i
loadPower(const GhashPowers &key, int i)
{
    return _mm_load_si128(
        reinterpret_cast<const __m128i *>(key.p[i]));
}

} // anonymous namespace

void
initPowers(const std::uint8_t h[16], GhashPowers &out)
{
    const __m128i h1 = bswap(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(h)));
    __m128i p = h1;
    _mm_store_si128(reinterpret_cast<__m128i *>(out.p[0]), p);
    for (int i = 1; i < 4; ++i) {
        p = gfmulReflected(p, h1);
        _mm_store_si128(reinterpret_cast<__m128i *>(out.p[i]), p);
    }
}

void
ghashBlocks(const GhashPowers &key, std::uint64_t &yhi,
            std::uint64_t &ylo, const std::uint8_t *data,
            std::size_t nblocks)
{
    // The byte-swapped form of a GCM block is exactly (hi:lo) of its
    // U128 big-endian halves, so the state converts for free.
    __m128i y = _mm_set_epi64x(static_cast<long long>(yhi),
                               static_cast<long long>(ylo));
    const __m128i h1 = loadPower(key, 0);

    if (nblocks >= 4) {
        const __m128i h2 = loadPower(key, 1);
        const __m128i h3 = loadPower(key, 2);
        const __m128i h4 = loadPower(key, 3);
        while (nblocks >= 4) {
            const __m128i *p =
                reinterpret_cast<const __m128i *>(data);
            // Y' = (Y^X0)H^4 ^ X1 H^3 ^ X2 H^2 ^ X3 H, with one
            // shared shift-and-reduce for the whole aggregate.
            __m128i lo, hi, mid, l, h, m;
            mulNoReduce(_mm_xor_si128(bswap(_mm_loadu_si128(p)), y),
                        h4, lo, hi, mid);
            mulNoReduce(bswap(_mm_loadu_si128(p + 1)), h3, l, h, m);
            lo = _mm_xor_si128(lo, l);
            hi = _mm_xor_si128(hi, h);
            mid = _mm_xor_si128(mid, m);
            mulNoReduce(bswap(_mm_loadu_si128(p + 2)), h2, l, h, m);
            lo = _mm_xor_si128(lo, l);
            hi = _mm_xor_si128(hi, h);
            mid = _mm_xor_si128(mid, m);
            mulNoReduce(bswap(_mm_loadu_si128(p + 3)), h1, l, h, m);
            lo = _mm_xor_si128(lo, l);
            hi = _mm_xor_si128(hi, h);
            mid = _mm_xor_si128(mid, m);
            lo = _mm_xor_si128(lo, _mm_slli_si128(mid, 8));
            hi = _mm_xor_si128(hi, _mm_srli_si128(mid, 8));
            y = shiftAndReduce(lo, hi);
            data += 64;
            nblocks -= 4;
        }
    }
    while (nblocks > 0) {
        const __m128i x = bswap(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data)));
        y = gfmulReflected(_mm_xor_si128(y, x), h1);
        data += 16;
        --nblocks;
    }

    alignas(16) std::uint64_t out[2];
    _mm_store_si128(reinterpret_cast<__m128i *>(out), y);
    ylo = out[0];
    yhi = out[1];
}

} // namespace mgsec::crypto::clmul
