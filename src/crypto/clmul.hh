/**
 * @file
 * PCLMULQDQ GHASH backend of the SIMD crypto tier.
 *
 * Declarations and the power-table POD only — intrinsic-free so the
 * portable `GhashKey` can embed a `GhashPowers` unconditionally; the
 * definitions live in clmul.cc, the one TU compiled with `-mpclmul`.
 *
 * The implementation follows the reflected-reduction construction of
 * Intel's carry-less-multiplication GCM white paper: operands are
 * byte-swapped into the bit-reflected domain, products are formed
 * with three PCLMULQDQs per multiplication (Karatsuba), four blocks
 * are aggregated against precomputed H^1..H^4 so each 64-byte span
 * pays for a single shift-and-reduce, and the result is reduced
 * modulo the reflected GCM polynomial.
 *
 * Callers must gate every call on crypto::simdAvailable().
 */

#ifndef MGSEC_CRYPTO_CLMUL_HH
#define MGSEC_CRYPTO_CLMUL_HH

#include <cstddef>
#include <cstdint>

namespace mgsec::crypto::clmul
{

/**
 * Precomputed hash-subkey powers H^1..H^4, stored in the backend's
 * byte-swapped internal form (p[0] is H^1). Plain bytes so the
 * struct is layout-stable across TUs compiled with different flags.
 */
struct GhashPowers
{
    alignas(16) std::uint8_t p[4][16]{};
};

/** Derive H^2..H^4 from the GCM-order hash subkey @p h. */
void initPowers(const std::uint8_t h[16], GhashPowers &out);

/**
 * Fold @p nblocks whole 16-byte blocks of @p data into the GHASH
 * state (@p yhi / @p ylo hold the state's big-endian halves, i.e.
 * exactly U128::hi / U128::lo).
 */
void ghashBlocks(const GhashPowers &key, std::uint64_t &yhi,
                 std::uint64_t &ylo, const std::uint8_t *data,
                 std::size_t nblocks);

} // namespace mgsec::crypto::clmul

#endif // MGSEC_CRYPTO_CLMUL_HH
