/**
 * @file
 * GHASH — the universal hash of GCM (NIST SP 800-38D).
 *
 * Operates over GF(2^128) with the GCM bit ordering (bit 0 of a block
 * is the most-significant bit of byte 0).
 *
 * Two multiplication paths exist: the bit-serial gfmul() reference
 * (SP 800-38D algorithm 1, 128 iterations per block) and GhashKey,
 * a 4-bit Shoup table precomputed per hash subkey that processes a
 * block in 32 table lookups. The streaming Ghash class uses the
 * table; gfmul() is kept as the cross-check oracle for the tests and
 * the perf harness baseline.
 *
 * A third path exists when the build carries the SIMD tier and the
 * CPU has PCLMULQDQ: GhashKey also precomputes the clmul power table
 * and Ghash routes whole-block spans through the 4-block aggregated
 * carry-less-multiply backend whenever crypto::simdActive(). All
 * three paths produce identical digests.
 */

#ifndef MGSEC_CRYPTO_GHASH_HH
#define MGSEC_CRYPTO_GHASH_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "crypto/aes.hh"
#include "crypto/clmul.hh"

namespace mgsec::crypto
{

/** @name Word load/store helpers (big-endian byte order)
 * Shared by GHASH, GCM counter/length formatting, and the OTP seed
 * derivation — the one place byte order is decided.
 */
/// @{
inline std::uint64_t
load64be(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return v;
#else
    return __builtin_bswap64(v);
#endif
}

inline void
store64be(std::uint8_t *p, std::uint64_t v)
{
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ != __ORDER_BIG_ENDIAN__
    v = __builtin_bswap64(v);
#endif
    std::memcpy(p, &v, sizeof(v));
}

inline std::uint32_t
load32be(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return v;
#else
    return __builtin_bswap32(v);
#endif
}

inline void
store32be(std::uint8_t *p, std::uint32_t v)
{
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ != __ORDER_BIG_ENDIAN__
    v = __builtin_bswap32(v);
#endif
    std::memcpy(p, &v, sizeof(v));
}
/// @}

/** A 128-bit value in GCM bit order: hi holds bytes 0-7 big-endian. */
struct U128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const U128 &o) const = default;
};

/** Load/store between Block and U128 (big-endian). */
U128 blockToU128(const Block &b);
Block u128ToBlock(const U128 &v);

/** Bit-serial GF(2^128) multiplication, GCM convention (reference). */
U128 gfmul(const U128 &x, const U128 &y);

/**
 * Precomputed 4-bit multiplication tables for one hash subkey H
 * (Shoup's method): mul() resolves X*H in 32 nibble lookups instead
 * of gfmul's 128 shift/xor rounds. Build once per key, reuse for
 * every block.
 */
class GhashKey
{
  public:
    GhashKey() = default;
    explicit GhashKey(const Block &h);

    /** X * H in GF(2^128). */
    U128 mul(const U128 &x) const;

    /** True when the clmul power table was precomputed. */
    bool simdReady() const { return simd_ready_; }
    const clmul::GhashPowers &powers() const { return powers_; }

  private:
    /** tbl hi/lo words indexed by a 4-bit multiplier nibble. */
    std::uint64_t hh_[16]{};
    std::uint64_t hl_[16]{};
    /**
     * H^1..H^4 for the PCLMUL path, populated whenever the machine
     * can run it so the active tier may change after construction.
     */
    clmul::GhashPowers powers_;
    bool simd_ready_ = false;
};

/**
 * Incremental GHASH with hash subkey H. Feed whole 16-byte blocks;
 * shorter trailing data must be zero-padded by the caller (as GCM
 * itself specifies).
 */
class Ghash
{
  public:
    /** Builds the key tables on the spot (one-shot uses). */
    explicit Ghash(const Block &h) : key_(h) {}
    /** Reuses tables precomputed by a long-lived owner. */
    explicit Ghash(const GhashKey &key) : key_(key) {}

    /** Absorb one block. */
    void update(const Block &b);
    /** Absorb a byte string, zero-padding the final partial block. */
    void updateBytes(const std::uint8_t *data, std::size_t len);
    /** Current state as a block (does not reset). */
    Block digest() const { return u128ToBlock(y_); }
    void reset() { y_ = U128{}; }

  private:
    /** Fold whole blocks through the active multiplication tier. */
    void absorbBlocks(const std::uint8_t *data, std::size_t nblocks);

    GhashKey key_;
    U128 y_{};
};

} // namespace mgsec::crypto

#endif // MGSEC_CRYPTO_GHASH_HH
