/**
 * @file
 * GHASH — the universal hash of GCM (NIST SP 800-38D).
 *
 * Operates over GF(2^128) with the GCM bit ordering (bit 0 of a block
 * is the most-significant bit of byte 0).
 */

#ifndef MGSEC_CRYPTO_GHASH_HH
#define MGSEC_CRYPTO_GHASH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes.hh"

namespace mgsec::crypto
{

/** A 128-bit value in GCM bit order: hi holds bytes 0-7 big-endian. */
struct U128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const U128 &o) const = default;
};

/** Load/store between Block and U128 (big-endian). */
U128 blockToU128(const Block &b);
Block u128ToBlock(const U128 &v);

/** GF(2^128) multiplication, GCM convention. */
U128 gfmul(const U128 &x, const U128 &y);

/**
 * Incremental GHASH with hash subkey H. Feed whole 16-byte blocks;
 * shorter trailing data must be zero-padded by the caller (as GCM
 * itself specifies).
 */
class Ghash
{
  public:
    explicit Ghash(const Block &h) : h_(blockToU128(h)) {}

    /** Absorb one block. */
    void update(const Block &b);
    /** Absorb a byte string, zero-padding the final partial block. */
    void updateBytes(const std::uint8_t *data, std::size_t len);
    /** Current state as a block (does not reset). */
    Block digest() const { return u128ToBlock(y_); }
    void reset() { y_ = U128{}; }

  private:
    U128 h_;
    U128 y_{};
};

} // namespace mgsec::crypto

#endif // MGSEC_CRYPTO_GHASH_HH
