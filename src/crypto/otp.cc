#include "crypto/otp.hh"

#include <cstring>

namespace mgsec::crypto
{

PadFactory::PadFactory(const std::array<std::uint8_t, 16> &session_key)
    : gcm_(session_key)
{}

Iv96
PadFactory::seedIv(NodeId sender, NodeId receiver, std::uint64_t ctr,
                   std::uint8_t domain) const
{
    // 12-byte IV: 8 B counter, then sender/receiver ids (12 bits
    // each) and a 1-byte domain separator (enc vs. auth pad stream).
    Iv96 iv{};
    store64be(iv.data(), ctr);
    iv[8] = static_cast<std::uint8_t>(sender & 0xff);
    iv[9] = static_cast<std::uint8_t>(((sender >> 8) & 0x0f) |
                                      ((receiver & 0x0f) << 4));
    iv[10] = static_cast<std::uint8_t>((receiver >> 4) & 0xff);
    iv[11] = domain;
    return iv;
}

MessagePad
PadFactory::derive(NodeId sender, NodeId receiver,
                   std::uint64_t ctr) const
{
    // Keystream lands straight in the pad: no temporary vectors.
    MessagePad pad;
    gcm_.keystreamTo(seedIv(sender, receiver, ctr, 0x01),
                     pad.encPad.data(), pad.encPad.size());
    gcm_.keystreamTo(seedIv(sender, receiver, ctr, 0x02),
                     pad.authPad.data(), pad.authPad.size());
    return pad;
}

BlockPayload
PadFactory::crypt(const BlockPayload &data, const MessagePad &pad)
{
    // XOR is bytewise, so word-at-a-time needs no endian care.
    BlockPayload out;
    static_assert(std::tuple_size<BlockPayload>::value % 8 == 0);
    for (std::size_t i = 0; i < data.size(); i += 8) {
        std::uint64_t a, k;
        std::memcpy(&a, data.data() + i, 8);
        std::memcpy(&k, pad.encPad.data() + i, 8);
        a ^= k;
        std::memcpy(out.data() + i, &a, 8);
    }
    return out;
}

MsgMac
PadFactory::mac(const BlockPayload &cipher, NodeId sender,
                NodeId receiver, std::uint64_t ctr,
                const MessagePad &pad) const
{
    Ghash gh(gcm_.hashTables());
    gh.updateBytes(cipher.data(), cipher.size());
    // Header block: 8 B counter, then sender and receiver ids as
    // 16-bit fields — all big-endian through the shared store
    // helpers, like every other wire-format block.
    Block hdr{};
    store64be(hdr.data(), ctr);
    store64be(hdr.data() + 8,
              (static_cast<std::uint64_t>(sender) << 48) |
                  (static_cast<std::uint64_t>(receiver) << 32));
    gh.update(hdr);
    const Block digest = gh.digest();
    MsgMac out;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(digest[i] ^ pad.authPad[i]);
    return out;
}

MsgMac
PadFactory::batchMac(const std::vector<MsgMac> &macs,
                     const MessagePad &first_pad) const
{
    Ghash gh(gcm_.hashTables());
    for (const MsgMac &m : macs)
        gh.updateBytes(m.data(), m.size());
    const Block digest = gh.digest();
    MsgMac out;
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(digest[i] ^
                                           first_pad.authPad[8 + i]);
    }
    return out;
}

} // namespace mgsec::crypto
