/**
 * @file
 * Page migration under secure communication.
 *
 * The aes workload streams nearly all of its data through the host
 * as 4 KB page migrations (64-block trains over PCIe). This example
 * shows what protecting those trains costs, and how much the
 * metadata batching recovers — the paper's own example for the
 * batching scheme is exactly the 4 KB page transfer (Sec. IV-C).
 *
 * Usage: page_migration [workload] (default: aes)
 */

#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace mgsec;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "aes";

    std::cout << "page migration cost study on '" << workload
              << "' (4-GPU system)\n\n";

    ExperimentConfig base;
    base.scheme = OtpScheme::Unsecure;
    base.scale = 1.0;
    const RunResult unsec = runWorkload(workload, base);

    Table t({"config", "norm.time", "norm.traffic", "migrations",
             "remote ops", "local ops"});
    t.addRow({"Unsecure", "1.000", "1.000",
              std::to_string(unsec.migrations),
              std::to_string(unsec.remoteOps),
              std::to_string(unsec.localOps)});

    auto row = [&](const char *label, OtpScheme s, bool batching) {
        ExperimentConfig cfg = base;
        cfg.scheme = s;
        cfg.batching = batching;
        const RunResult r = runWorkload(workload, cfg);
        t.addRow({label, fmtDouble(normalizedTime(r, unsec)),
                  fmtDouble(normalizedTraffic(r, unsec)),
                  std::to_string(r.migrations),
                  std::to_string(r.remoteOps),
                  std::to_string(r.localOps)});
    };
    row("Private (4x)", OtpScheme::Private, false);
    row("Dynamic (4x)", OtpScheme::Dynamic, false);
    row("Dynamic+Batching", OtpScheme::Dynamic, true);
    t.print(std::cout);

    // What migration buys: disable it and watch remote traffic grow.
    SystemConfig no_mig = makeSystemConfig(base);
    no_mig.pageTable.migrationEnabled = false;
    MultiGpuSystem sys(no_mig, makeProfile(workload, base.scale));
    const RunResult frozen = sys.run();
    std::cout << "\nwithout page migration: "
              << fmtDouble(normalizedTime(frozen, unsec))
              << "x time, " << frozen.remoteOps
              << " remote ops (vs " << unsec.remoteOps
              << " with migration)\n";

    std::cout << "\neach migration moves " << kBlocksPerPage
              << " blocks of " << kBlockBytes
              << " B through the secure channel; with batching the "
                 "whole train shares one MsgMAC per "
              << 16 << " blocks and one ACK per batch\n";
    return 0;
}
