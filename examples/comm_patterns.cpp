/**
 * @file
 * Explore the communication behaviour that motivates the paper's
 * design (Sec. III-B): the phased destination locality of a workload
 * (Figs. 13/14) and the burstiness of inter-processor data blocks
 * (Figs. 15/16), printed as CSV-ish series ready for plotting.
 *
 * Usage: comm_patterns [workload] (default: mm)
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace mgsec;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mm";

    ExperimentConfig cfg;
    cfg.scheme = OtpScheme::Unsecure;
    cfg.commSampleInterval = 4000;
    cfg.scale = 0.6;
    const RunResult r = runWorkload(workload, cfg);
    if (!r.completed) {
        std::cerr << "run did not complete\n";
        return 1;
    }

    std::cout << "# " << workload
              << ": GPU 1 communication mix over time\n";
    std::cout << "tick,sends,recvs,toCPU,toGPU2,toGPU3,toGPU4\n";
    for (const auto &s : r.commSeries) {
        std::cout << s.tick << "," << s.sends << "," << s.recvs;
        for (NodeId d = 0; d < 5 && d < s.sendsTo.size(); ++d) {
            if (d == 1)
                continue; // self
            std::cout << "," << s.sendsTo[d];
        }
        std::cout << "\n";
    }

    auto summarize = [](const std::vector<Cycles> &v,
                        const char *label) {
        if (v.empty()) {
            std::cout << label << ": no full windows\n";
            return;
        }
        std::vector<Cycles> s = v;
        std::sort(s.begin(), s.end());
        std::uint64_t fast = 0;
        for (Cycles c : s)
            fast += c < 160 ? 1 : 0;
        std::cout << label << ": " << s.size() << " windows, median "
                  << s[s.size() / 2] << " cycles, "
                  << fmtPct(static_cast<double>(fast) /
                            static_cast<double>(s.size()))
                  << " under 160 cycles\n";
    };

    std::cout << "\n# burstiness (cycles for N data blocks to "
                 "accumulate on one pair)\n";
    summarize(r.burst16, "16 blocks");
    summarize(r.burst32, "32 blocks");

    std::cout << "\ntotal: " << r.cycles << " cycles, "
              << r.remoteOps << " remote ops, " << r.migrations
              << " page migrations\n";
    return 0;
}
