/**
 * @file
 * Functional walk-through of the secure communication pipeline
 * (paper Figs. 4, 5, 19, 20) using the real cryptography:
 *
 *   1. sender derives a one-time pad from (MsgCTR, sender,
 *      receiver), encrypts a cache block with one XOR, and MACs it;
 *   2. receiver re-derives the pad, decrypts, verifies;
 *   3. a tampered block and a replayed counter are both caught;
 *   4. sixteen blocks form a batch whose single batched MsgMAC
 *      verifies them all at once (Sec. IV-C).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "crypto/otp.hh"

using namespace mgsec;
using namespace mgsec::crypto;

namespace
{

void
hexdump(const char *label, const std::uint8_t *data, std::size_t n)
{
    std::printf("%-18s", label);
    for (std::size_t i = 0; i < n; ++i)
        std::printf("%02x", data[i]);
    std::printf("%s\n", n < 16 ? "" : "...");
}

} // anonymous namespace

int
main()
{
    std::cout << "mgsec secure pipeline demo (functional layer)\n\n";

    // The CPU and GPUs exchange this key at boot (Sec. IV-A).
    std::array<std::uint8_t, 16> session_key{};
    for (int i = 0; i < 16; ++i)
        session_key[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(0x42 + i);
    PadFactory gpu1(session_key);
    PadFactory gpu2(session_key);

    const NodeId src = 1, dst = 2;
    std::uint64_t ctr = 0;

    // --- one protected cache block ------------------------------
    BlockPayload plaintext;
    for (std::size_t i = 0; i < plaintext.size(); ++i)
        plaintext[i] = static_cast<std::uint8_t>(i);

    const MessagePad pad = gpu1.derive(src, dst, ctr);
    const BlockPayload cipher = PadFactory::crypt(plaintext, pad);
    const MsgMac mac = gpu1.mac(cipher, src, dst, ctr, pad);

    hexdump("plaintext:", plaintext.data(), 8);
    hexdump("ciphertext:", cipher.data(), 8);
    hexdump("MsgMAC:", mac.data(), mac.size());

    // Receiver side: same pad from the same counter.
    const MessagePad rpad = gpu2.derive(src, dst, ctr);
    const bool mac_ok = gpu2.mac(cipher, src, dst, ctr, rpad) == mac;
    const BlockPayload recovered = PadFactory::crypt(cipher, rpad);
    std::cout << "receiver MAC check: "
              << (mac_ok ? "PASS" : "FAIL") << ", payload "
              << (recovered == plaintext ? "intact" : "CORRUPT")
              << "\n\n";

    // --- tamper detection ----------------------------------------
    BlockPayload tampered = cipher;
    tampered[13] ^= 0x80;
    const bool tamper_caught =
        gpu2.mac(tampered, src, dst, ctr, rpad) != mac;
    std::cout << "bit-flipped block detected: "
              << (tamper_caught ? "YES" : "NO") << "\n";

    // --- replay detection ----------------------------------------
    // An attacker resends (cipher, mac) later. The receiver's
    // freshness rule: counters must strictly increase per pair, so
    // seeing ctr 0 again is rejected without any crypto work.
    std::uint64_t last_seen = ctr;
    const bool replay_caught = ctr <= last_seen;
    std::cout << "replayed counter rejected: "
              << (replay_caught ? "YES" : "NO") << "\n\n";

    // --- batched MsgMAC (Sec. IV-C) -------------------------------
    const std::size_t n = 16;
    std::vector<MsgMac> macs;
    MessagePad first_pad{};
    std::vector<BlockPayload> wire;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t c = ++ctr;
        const MessagePad p = gpu1.derive(src, dst, c);
        if (i == 0)
            first_pad = p;
        BlockPayload blk;
        for (std::size_t b = 0; b < blk.size(); ++b)
            blk[b] = static_cast<std::uint8_t>(i * 64 + b);
        const BlockPayload cb = PadFactory::crypt(blk, p);
        wire.push_back(cb);
        macs.push_back(gpu1.mac(cb, src, dst, c, p));
    }
    const MsgMac batched = gpu1.batchMac(macs, first_pad);
    hexdump("batched MsgMAC:", batched.data(), batched.size());

    // Receiver recomputes per-block MACs into its MsgMAC storage,
    // concatenates in order, and checks once (lazy verification).
    std::vector<MsgMac> recomputed;
    std::uint64_t c = ctr - n;
    for (std::size_t i = 0; i < n; ++i) {
        ++c;
        const MessagePad p = gpu2.derive(src, dst, c);
        recomputed.push_back(gpu2.mac(wire[i], src, dst, c, p));
    }
    const bool batch_ok =
        gpu2.batchMac(recomputed, gpu2.derive(src, dst, ctr - n + 1)) ==
        batched;
    std::cout << "batch of " << n << " blocks verified with one MAC: "
              << (batch_ok ? "YES" : "NO") << "\n";
    std::cout << "wire cost: " << n << " MsgMACs ("
              << n * sizeof(MsgMac) << " B) replaced by one ("
              << sizeof(MsgMac) << " B) plus a 1 B length field\n";
    return batch_ok && mac_ok && tamper_caught ? 0 : 1;
}
