/**
 * @file
 * Quickstart: build a 4-GPU secure system, run one workload under
 * the unsecure baseline and under every protection scheme, and print
 * the headline numbers (normalized execution time, traffic, OTP hit
 * rates).
 *
 * Usage: quickstart [workload] (default: mm)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace mgsec;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mm";

    std::cout << "mgsec quickstart: workload '" << workload
              << "' on a 4-GPU system (OTP 4x, AES-GCM 40 cycles)\n\n";

    ExperimentConfig base;
    base.numGpus = 4;
    base.scheme = OtpScheme::Unsecure;
    const RunResult unsec = runWorkload(workload, base);
    if (!unsec.completed) {
        std::cerr << "baseline did not complete\n";
        return 1;
    }

    Table t({"config", "norm.time", "norm.traffic", "enc.hidden",
             "dec.hidden", "migrations"});

    auto row = [&](const char *label, const ExperimentConfig &cfg) {
        const RunResult r = runWorkload(workload, cfg);
        const double enc_hidden =
            r.otp.frac(Direction::Send, OtpOutcome::Hit) +
            r.otp.frac(Direction::Send, OtpOutcome::Partial);
        const double dec_hidden =
            r.otp.frac(Direction::Recv, OtpOutcome::Hit) +
            r.otp.frac(Direction::Recv, OtpOutcome::Partial);
        t.addRow({label, fmtDouble(normalizedTime(r, unsec)),
                  fmtDouble(normalizedTraffic(r, unsec)),
                  fmtPct(enc_hidden), fmtPct(dec_hidden),
                  std::to_string(r.migrations)});
    };

    t.addRow({"Unsecure", "1.000", "1.000", "-", "-",
              std::to_string(unsec.migrations)});

    ExperimentConfig cfg = base;
    cfg.scheme = OtpScheme::Private;
    row("Private (4x)", cfg);
    cfg.scheme = OtpScheme::Shared;
    row("Shared", cfg);
    cfg.scheme = OtpScheme::Cached;
    row("Cached (4x)", cfg);
    cfg.scheme = OtpScheme::Dynamic;
    row("Dynamic (4x)", cfg);
    cfg.batching = true;
    row("Dynamic+Batching", cfg);

    t.print(std::cout);

    std::cout << "\nbaseline: " << unsec.cycles << " cycles, "
              << fmtBytes(static_cast<double>(unsec.totalBytes))
              << " moved, " << unsec.remoteOps << " remote ops, "
              << unsec.localOps << " local ops\n";
    return 0;
}
