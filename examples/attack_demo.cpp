/**
 * @file
 * The threat model, live: a physical attacker on the exposed
 * interconnect meddles with traffic while the system runs with real
 * cryptography (functional-crypto mode). Every manipulation is
 * caught by the receivers' MAC checks; the timing results are
 * unaffected because verification is off the critical path.
 *
 * Usage: attack_demo [workload] (default: mm)
 */

#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "sim/rng.hh"

using namespace mgsec;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mm";

    ExperimentConfig e;
    e.scheme = OtpScheme::Dynamic;
    e.batching = true;
    e.scale = 0.3;
    SystemConfig sc = makeSystemConfig(e);
    sc.security.functionalCrypto = true;

    std::cout << "attack demo on '" << workload
              << "': Dynamic+Batching with real AES-GCM-derived "
                 "pads and MACs on every message\n\n";

    Table t({"attacker", "messages", "verified", "failed",
             "decrypt errors"});

    auto run = [&](const char *label, Network::Tamper tamper) {
        MultiGpuSystem sys(sc, makeProfile(workload, e.scale));
        if (tamper)
            sys.network().setTamper(std::move(tamper));
        const RunResult r = sys.run();
        std::uint64_t verified = 0, failed = 0, bad = 0, msgs = 0;
        for (NodeId n = 0; n < sys.numNodes(); ++n) {
            verified += sys.node(n).channel().macsVerified();
            failed += sys.node(n).channel().macsFailed();
            bad += sys.node(n).channel().decryptsBad();
        }
        msgs = r.packets;
        t.addRow({label, std::to_string(msgs),
                  std::to_string(verified), std::to_string(failed),
                  std::to_string(bad)});
        return r;
    };

    run("none (clean run)", nullptr);

    // Sparse bit flips in ciphertexts crossing the wire.
    {
        auto rng = std::make_shared<Rng>(7);
        run("bit-flip 1 in 500 blocks", [rng](Packet &p) {
            if (p.func && p.func->hasCipher && rng->chance(0.002))
                p.func->cipher[rng->range(0, 63)] ^= 0x01;
        });
    }

    // Forge every 100th MsgMAC/batched MAC.
    {
        auto rng = std::make_shared<Rng>(11);
        run("MAC forgery 1 in 100", [rng](Packet &p) {
            if (p.func && p.func->hasMac && rng->chance(0.01))
                p.func->mac[0] ^= 0xff;
        });
    }

    // Strip the crypto material from occasional packets entirely.
    {
        auto rng = std::make_shared<Rng>(13);
        run("payload stripping 1 in 1000", [rng](Packet &p) {
            if (p.func && rng->chance(0.001))
                p.func.reset();
        });
    }

    t.print(std::cout);
    std::cout << "\nevery manipulation lands in the 'failed' column;"
                 " a deployment would fence the GPU context on the "
                 "first failure (lazy verification, Sec. IV-C)\n";
    return 0;
}
