#!/usr/bin/env sh
# Scale-out sweep preset: the full workload x scheme matrix at 8, 16
# and 64 GPUs on one fabric. Companion to bench_scale (which compares
# the headline schemes); this runs mgsec_sweep's full six-config
# matrix per system size and writes one JSON per size.
#
# Usage: scripts/sweep_scale.sh [topology] [outdir] [extra args...]
#   topology   p2p | nvswitch | hier      (default nvswitch)
#   outdir     where SWEEP_scale_g<N>.json land (default .)
#   extra args forwarded to mgsec_sweep, e.g. --scale 0.1 --seeds 1
#              --sim-threads 4 --workloads mm,fft
#
# The binary is looked up next to this script's repo layout
# (build/tools/mgsec_sweep) unless MGSEC_SWEEP points elsewhere.
set -eu

topo="${1:-nvswitch}"
outdir="${2:-.}"
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sweep="${MGSEC_SWEEP:-$repo_root/build/tools/mgsec_sweep}"
[ -x "$sweep" ] || {
    echo "mgsec_sweep not found at $sweep (build it or set MGSEC_SWEEP)" >&2
    exit 1
}
mkdir -p "$outdir"

for gpus in 8 16 64; do
    echo "== $gpus GPUs on $topo"
    "$sweep" --gpus "$gpus" --topology "$topo" \
        --json "$outdir/SWEEP_scale_g$gpus.json" "$@"
done
