#!/usr/bin/env python3
"""Plot the paper's figures from recorded bench output.

Reads the text tables produced by the bench binaries (either a file
captured with `for b in build/bench/*; do $b; done > bench_output.txt`
or individual bench outputs) and renders matplotlib bar charts that
mirror the paper's figures.

Usage:
    python3 scripts/plot_figures.py bench_output.txt -o plots/

matplotlib is optional at build time — this script is the only thing
that needs it.
"""

import argparse
import os
import re
import sys


def parse_sections(path):
    """Split a combined bench capture into {bench_name: lines}."""
    sections = {}
    current = None
    with open(path) as f:
        for line in f:
            m = re.match(r"#+\s*(bench_\w+)", line)
            if m:
                current = m.group(1)
                sections[current] = []
            elif current:
                sections[current].append(line.rstrip("\n"))
    if not sections:
        # A single bench's output: key it by its banner.
        with open(path) as f:
            lines = [l.rstrip("\n") for l in f]
        sections["bench"] = lines
    return sections


def parse_table(lines):
    """Parse an aligned-column table into (headers, rows)."""
    headers = None
    rows = []
    for i, line in enumerate(lines):
        if set(line.strip()) == {"-"} and i > 0:
            headers = lines[i - 1].split()
            for row_line in lines[i + 1:]:
                if not row_line.strip():
                    break
                cells = row_line.split()
                if len(cells) >= 2:
                    rows.append(cells)
            break
    return headers, rows


def numeric(cell):
    try:
        return float(cell.rstrip("%x"))
    except ValueError:
        return None


def plot_grouped_bars(headers, rows, title, ylabel, out_path, plt):
    workloads = [r[0] for r in rows]
    series = headers[1:]
    fig, ax = plt.subplots(figsize=(max(8, len(workloads) * 0.6), 4))
    width = 0.8 / max(1, len(series))
    for si, s in enumerate(series):
        vals = []
        for r in rows:
            v = numeric(r[si + 1]) if si + 1 < len(r) else None
            vals.append(v if v is not None else 0.0)
        xs = [i + si * width for i in range(len(workloads))]
        ax.bar(xs, vals, width=width, label=s)
    ax.set_xticks([i + 0.4 for i in range(len(workloads))])
    ax.set_xticklabels(workloads, rotation=60, ha="right",
                       fontsize=8)
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.axhline(1.0, color="gray", lw=0.5)
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


FIGS = {
    "bench_fig8_otp_entries": ("Fig. 8 — Private vs OTP entries",
                               "normalized time"),
    "bench_fig9_prior_schemes": ("Fig. 9 — prior schemes",
                                 "normalized time"),
    "bench_fig12_traffic": ("Fig. 12 — traffic ratio",
                            "normalized traffic"),
    "bench_fig21_main": ("Fig. 21 — main comparison",
                         "normalized time"),
    "bench_fig23_traffic_ours": ("Fig. 23 — traffic w/ batching",
                                 "normalized traffic"),
    "bench_fig26_aes_latency": ("Fig. 26 — AES latency",
                                "normalized time"),
}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("input", help="captured bench output")
    ap.add_argument("-o", "--outdir", default="plots")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.outdir, exist_ok=True)
    sections = parse_sections(args.input)
    made = 0
    for name, (title, ylabel) in FIGS.items():
        if name not in sections:
            continue
        headers, rows = parse_table(sections[name])
        if not headers or not rows:
            print(f"skipping {name}: no table found")
            continue
        out = os.path.join(args.outdir, f"{name}.png")
        plot_grouped_bars(headers, rows, title, ylabel, out, plt)
        made += 1
    if made == 0:
        sys.exit("no plottable sections found")


if __name__ == "__main__":
    main()
