/**
 * @file
 * mgsec_fuzz — randomized adversarial campaigns over the secure
 * channel, suitable as a CI smoke gate.
 *
 *   mgsec_fuzz --budget 60 --seed 7          # one timed campaign
 *   mgsec_fuzz --max-runs 40 --seed 7        # deterministic run cap
 *   mgsec_fuzz --repro "v1;seed=..;..."      # replay one case
 *   mgsec_fuzz --inject-bug counterskip ...  # oracle mutation check
 *
 * Exit status: 0 when every case passed (or, with --inject-bug, when
 * the oracle caught the bug), 1 on a security-property failure, 2 on
 * usage errors. On failure the shrunk repro string and the findings
 * go to stdout and, with --artifact PATH, to a file CI can upload.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verify/fuzz.hh"

namespace
{

using namespace mgsec::verify;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--budget SECONDS] [--seed N] [--max-runs N]\n"
        "          [--repro STRING] [--inject-bug counterskip|"
        "stalecipher]\n"
        "          [--artifact PATH] [--sim-threads N]\n"
        "          [--topology p2p|nvswitch|hier] [--nodes N]\n"
        "          [--verbose]\n"
        "  --sim-threads N   run every case on the domain-sharded\n"
        "                    event kernel (repros still replay "
        "serially)\n"
        "  --topology T      fabric for every case (default p2p;\n"
        "                    part of the repro, unlike --sim-threads)\n"
        "  --nodes N         fix the node count of every case\n"
        "                    (default: generator's choice, 2..4)\n",
        argv0);
    return 2;
}

void
printFindings(const std::vector<Finding> &findings, std::FILE *out)
{
    for (const Finding &f : findings) {
        std::fprintf(out, "  [%s] %s\n", findingKindName(f.kind),
                     f.detail.c_str());
    }
}

void
writeArtifact(const std::string &path, const std::string &repro,
              const std::vector<Finding> &findings)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write artifact %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "repro: %s\n", repro.c_str());
    printFindings(findings, f);
    std::fclose(f);
}

int
replayRepro(const std::string &repro, const std::string &artifact)
{
    TestbedConfig cfg;
    if (!decodeRepro(repro, cfg)) {
        std::fprintf(stderr, "malformed repro string\n");
        return 2;
    }
    const CaseOutcome oc = runCase(cfg);
    std::printf("repro: %s\n", encodeRepro(cfg).c_str());
    std::printf("attacks=%llu steps=%zu/%zu delivered=%llu "
                "findings=%zu\n",
                static_cast<unsigned long long>(
                    oc.result.attacksMounted),
                oc.result.stepsFired, cfg.script.size(),
                static_cast<unsigned long long>(oc.result.delivered),
                oc.result.findings.size());
    for (const std::string &a : oc.result.attackLog)
        std::printf("  attack: %s\n", a.c_str());
    for (const std::string &n : oc.result.neutralized)
        std::printf("  neutralized: %s\n", n.c_str());
    printFindings(oc.result.findings, stdout);
    if (oc.failed && !artifact.empty())
        writeArtifact(artifact, repro, oc.result.findings);
    return oc.failed ? 1 : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CampaignConfig cc;
    cc.budgetSeconds = 0;
    std::string repro;
    std::string artifact;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--budget") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            cc.budgetSeconds = std::atof(v);
        } else if (arg == "--seed") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            cc.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--max-runs") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            cc.maxRuns = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--repro") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            repro = v;
        } else if (arg == "--inject-bug") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            if (std::strcmp(v, "counterskip") == 0) {
                cc.injectBug = SeededBug::CounterSkip;
            } else if (std::strcmp(v, "stalecipher") == 0) {
                cc.injectBug = SeededBug::StaleCipher;
            } else {
                return usage(argv[0]);
            }
        } else if (arg == "--artifact") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            artifact = v;
        } else if (arg == "--sim-threads") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            const unsigned long t = std::strtoul(v, nullptr, 10);
            if (t < 1 || t > 256)
                return usage(argv[0]);
            cc.simThreads = static_cast<std::uint32_t>(t);
        } else if (arg == "--topology") {
            const char *v = value();
            if (v == nullptr ||
                !mgsec::parseTopologyKind(v, cc.topology.kind))
                return usage(argv[0]);
        } else if (arg == "--nodes") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            const unsigned long n = std::strtoul(v, nullptr, 10);
            if (n < 2 || n > 256)
                return usage(argv[0]);
            cc.numNodes = static_cast<std::uint32_t>(n);
        } else if (arg == "--verbose") {
            cc.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            return usage(argv[0]);
        }
    }

    if (!repro.empty())
        return replayRepro(repro, artifact);

    if (cc.budgetSeconds <= 0 && cc.maxRuns == 0)
        cc.budgetSeconds = 60;

    const CampaignResult r = runCampaign(cc);
    std::printf("campaign: seed=%llu runs=%llu attacks=%llu "
                "coverage=%zu\n",
                static_cast<unsigned long long>(cc.seed),
                static_cast<unsigned long long>(r.runs),
                static_cast<unsigned long long>(r.attacksMounted),
                r.coverage);

    if (cc.injectBug != SeededBug::None) {
        // Mutation check: the campaign must CATCH the seeded channel
        // bug — an all-green result means the oracle went blind.
        if (!r.failed) {
            std::printf("MUTATION CHECK FAILED: seeded bug '%s' was "
                        "never caught\n",
                        seededBugName(cc.injectBug));
            if (!artifact.empty())
                writeArtifact(artifact, "(no failing case)", {});
            return 1;
        }
        std::printf("seeded bug '%s' caught; repro: %s\n",
                    seededBugName(cc.injectBug), r.repro.c_str());
        printFindings(r.findings, stdout);
        return 0;
    }

    if (r.failed) {
        std::printf("FAILURE; shrunk repro: %s\n", r.repro.c_str());
        printFindings(r.findings, stdout);
        if (!artifact.empty())
            writeArtifact(artifact, r.repro, r.findings);
        return 1;
    }
    std::printf("all cases passed\n");
    return 0;
}
