/**
 * @file
 * Offline analyzer for the simulator's observability artifacts.
 *
 * Report mode (one input): print a Fig. 11-shaped per-stage latency
 * breakdown table from the "attr" histogram group of a stats/hist
 * JSON dump, or from every run indexed in an --observe directory.
 *
 * Compare mode (--compare OLD NEW): flatten every numeric leaf of
 * both documents into dotted paths, flag any value that moved by
 * more than --threshold percent, and write a machine-readable
 * BENCH_report.json verdict. Exit status 1 when the gate trips, so
 * CI can use it directly as a regression gate.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/json_in.hh"
#include "sim/json_writer.hh"

namespace
{

using mgsec::JsonValue;

int
usage(const char *argv0, int status)
{
    std::ostream &os = status == 0 ? std::cout : std::cerr;
    os << "usage: " << argv0 << " [options] INPUT\n"
       << "       " << argv0 << " [options] --compare OLD NEW\n"
       << "\n"
       << "INPUT, OLD, NEW are stats/histogram JSON files "
       << "(--stats-json dumps,\n"
       << "sweep --json results, HIST_*.json) or --observe "
       << "directories holding\n"
       << "an OBSERVE_INDEX.json.\n"
       << "\n"
       << "  --compare OLD NEW  diff two inputs instead of printing "
       << "a breakdown\n"
       << "  --threshold PCT    flag leaves moving more than PCT% "
       << "(default 10)\n"
       << "  --out FILE         compare verdict JSON (default "
       << "BENCH_report.json)\n"
       << "  --ignore SUBSTR    skip paths containing SUBSTR "
       << "(repeatable;\n"
       << "                     wall-clock rates are always "
       << "ignored)\n";
    return status;
}

bool
isObserveDir(const std::string &path)
{
    std::ifstream is(path + "/OBSERVE_INDEX.json");
    return static_cast<bool>(is);
}

double
num(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    return f ? f->asNumber() : 0.0;
}

/** One row of the breakdown table, read from a histogram object. */
struct Row
{
    std::string label;
    bool present = false;
    double count = 0, sum = 0, mean = 0;
    double p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0;
};

Row
makeRow(const std::string &label, const JsonValue *h)
{
    Row r;
    r.label = label;
    if (!h || !h->isObject())
        return r;
    r.present = true;
    r.count = num(*h, "count");
    r.sum = num(*h, "sum");
    r.mean = num(*h, "mean");
    r.p50 = num(*h, "p50");
    r.p90 = num(*h, "p90");
    r.p99 = num(*h, "p99");
    r.p999 = num(*h, "p999");
    r.max = num(*h, "max");
    return r;
}

const char *const kStages[] = {"padClaim", "padWait", "xmit", "wire",
                               "recvVerify"};
const char *const kLinks[] = {"pcie", "nvlink"};

/** Print the per-stage breakdown of one "attr" group object. */
void
printAttrTable(const JsonValue &attr)
{
    for (const char *link : kLinks) {
        const Row e2e =
            makeRow("e2e", attr.find(std::string(link) + ".e2e"));
        if (!e2e.present || e2e.count == 0)
            continue;
        std::printf("\n%s (%.0f messages)\n", link, e2e.count);
        std::printf("  %-12s %10s %10s %10s %10s %10s %10s %7s\n",
                    "stage", "mean", "p50", "p90", "p99", "p99.9",
                    "max", "%e2e");
        auto line = [&](const Row &r) {
            if (!r.present)
                return;
            const double share =
                e2e.sum > 0 ? 100.0 * r.sum / e2e.sum : 0.0;
            std::printf(
                "  %-12s %10.1f %10.0f %10.0f %10.0f %10.0f %10.0f "
                "%6.1f%%\n",
                r.label.c_str(), r.mean, r.p50, r.p90, r.p99, r.p999,
                r.max, share);
        };
        for (const char *st : kStages)
            line(makeRow(st,
                         attr.find(std::string(link) + "." + st)));
        std::printf(
            "  %-12s %10.1f %10.0f %10.0f %10.0f %10.0f %10.0f "
            "%6.1f%%\n",
            "e2e", e2e.mean, e2e.p50, e2e.p90, e2e.p99, e2e.p999,
            e2e.max, 100.0);
    }
}

/** Report mode over one parsed document. */
bool
reportDocument(const JsonValue &doc, const std::string &what)
{
    const JsonValue *attr = doc.find("attr");
    if (!attr || !attr->isObject()) {
        std::fprintf(stderr,
                     "%s: no \"attr\" histogram group (was the run "
                     "made with --attr on?)\n",
                     what.c_str());
        return false;
    }
    if (const JsonValue *scheme = doc.find("scheme"))
        std::printf("scheme: %s", scheme->string.c_str());
    if (const JsonValue *folds = doc.find("folds"))
        std::printf("  folds: %.0f", folds->asNumber());
    if (doc.find("scheme") || doc.find("folds"))
        std::printf("\n");
    printAttrTable(*attr);
    return true;
}

/** The runs an OBSERVE_INDEX.json names, as (hash, key) pairs. */
bool
loadIndex(const std::string &dir,
          std::vector<std::pair<std::string, std::string>> &out)
{
    JsonValue idx;
    std::string err;
    if (!mgsec::jsonParseFile(dir + "/OBSERVE_INDEX.json", idx,
                              err)) {
        std::fprintf(stderr, "%s/OBSERVE_INDEX.json: %s\n",
                     dir.c_str(), err.c_str());
        return false;
    }
    const JsonValue *runs = idx.find("runs");
    if (!runs || !runs->isArray()) {
        std::fprintf(stderr, "%s: index has no \"runs\" array\n",
                     dir.c_str());
        return false;
    }
    for (const JsonValue &r : runs->items) {
        const JsonValue *h = r.find("hash");
        const JsonValue *k = r.find("key");
        if (h && h->isString())
            out.emplace_back(h->string,
                             k && k->isString() ? k->string : "");
    }
    return true;
}

/**
 * Flatten every numeric leaf into (dotted path, value). Histogram
 * bucket arrays are skipped: any bucket movement also moves the
 * count/percentile summary fields, and path-per-bucket noise would
 * drown the report.
 */
void
flatten(const JsonValue &v, const std::string &path,
        std::vector<std::pair<std::string, double>> &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Number:
        out.emplace_back(path, v.number);
        break;
      case JsonValue::Kind::Object:
        for (const auto &[k, child] : v.fields) {
            if (k == "buckets")
                continue;
            flatten(child, path.empty() ? k : path + "." + k, out);
        }
        break;
      case JsonValue::Kind::Array:
        for (std::size_t i = 0; i < v.items.size(); ++i)
            flatten(v.items[i],
                    path + "[" + std::to_string(i) + "]", out);
        break;
      default:
        break;
    }
}

struct Flagged
{
    std::string path;
    double oldVal, newVal, deltaPct;
};

struct CompareStats
{
    std::uint64_t checked = 0;
    std::uint64_t onlyOld = 0;
    std::uint64_t onlyNew = 0;
    std::vector<Flagged> flagged;
};

bool
ignored(const std::string &path,
        const std::vector<std::string> &ignores)
{
    for (const std::string &s : ignores) {
        if (path.find(s) != std::string::npos)
            return true;
    }
    return false;
}

void
compareDocs(const JsonValue &oldDoc, const JsonValue &newDoc,
            const std::string &prefix, double threshold,
            const std::vector<std::string> &ignores,
            CompareStats &cs)
{
    std::vector<std::pair<std::string, double>> a, b;
    flatten(oldDoc, prefix, a);
    flatten(newDoc, prefix, b);
    std::map<std::string, double> bmap(b.begin(), b.end());
    std::set<std::string> matched;
    for (const auto &[path, ov] : a) {
        if (ignored(path, ignores))
            continue;
        auto it = bmap.find(path);
        if (it == bmap.end()) {
            ++cs.onlyOld;
            continue;
        }
        matched.insert(path);
        ++cs.checked;
        const double nv = it->second;
        double delta = 0.0;
        if (ov != 0.0)
            delta = (nv - ov) / std::fabs(ov) * 100.0;
        else if (nv != 0.0)
            delta = nv > 0 ? 1e9 : -1e9; // appeared from zero
        if (std::fabs(delta) > threshold)
            cs.flagged.push_back(Flagged{path, ov, nv, delta});
    }
    for (const auto &[path, nv] : b) {
        if (!ignored(path, ignores) && !matched.count(path))
            ++cs.onlyNew;
    }
}

/**
 * The per-thread-count speedups of a document's "simThreads" bench
 * section, as (point key, speedup) pairs in document order. Empty
 * when the document has no such section (sweep dumps, HIST files).
 */
std::vector<std::pair<std::string, double>>
simThreadsSpeedups(const JsonValue &doc)
{
    std::vector<std::pair<std::string, double>> out;
    const JsonValue *st = doc.find("simThreads");
    if (!st || !st->isObject())
        return out;
    for (const auto &[k, v] : st->fields) {
        if (!v.isObject())
            continue;
        if (const JsonValue *s = v.find("speedup"))
            out.emplace_back(k, s->asNumber());
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::vector<std::string> ignores = {
        // Wall-clock-derived rates vary run to run on a shared CI
        // host; the simulated counters are the deterministic gate.
        "wallSec", "PerSec", "MBps", "perSec", "speedup",
        "overheadPct",
    };
    double threshold = 10.0;
    std::string outPath = "BENCH_report.json";
    bool compare = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for '%s'\n",
                             arg.c_str());
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg == "--threshold") {
            threshold = std::atof(value());
            if (!(threshold >= 0.0)) {
                std::fprintf(stderr, "bad --threshold value\n");
                return 2;
            }
        } else if (arg == "--out") {
            outPath = value();
        } else if (arg == "--ignore") {
            ignores.push_back(value());
        } else if (arg == "--stats-json" || arg == "--observe") {
            inputs.push_back(value());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        } else {
            inputs.push_back(arg);
        }
    }

    if (compare ? inputs.size() != 2 : inputs.size() != 1)
        return usage(argv[0], 2);

    // Resolve each input to named JSON documents: a file is one
    // document; an --observe directory is one per indexed run,
    // matched across inputs by config hash.
    auto loadDocs =
        [&](const std::string &in,
            std::vector<std::pair<std::string, JsonValue>> &docs) {
            std::string err;
            if (isObserveDir(in)) {
                std::vector<std::pair<std::string, std::string>> idx;
                if (!loadIndex(in, idx))
                    return false;
                for (const auto &[hash, key] : idx) {
                    JsonValue doc;
                    const std::string path =
                        in + "/STATS_" + hash + ".json";
                    if (!mgsec::jsonParseFile(path, doc, err)) {
                        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                                     err.c_str());
                        return false;
                    }
                    docs.emplace_back(hash, std::move(doc));
                }
                return true;
            }
            JsonValue doc;
            if (!mgsec::jsonParseFile(in, doc, err)) {
                std::fprintf(stderr, "%s: %s\n", in.c_str(),
                             err.c_str());
                return false;
            }
            docs.emplace_back("", std::move(doc));
            return true;
        };

    std::vector<std::pair<std::string, JsonValue>> oldDocs;
    if (!loadDocs(inputs[0], oldDocs))
        return 2;

    if (!compare) {
        bool any = false;
        for (const auto &[name, doc] : oldDocs) {
            if (!name.empty())
                std::printf("== run %s ==\n", name.c_str());
            any |= reportDocument(doc, name.empty() ? inputs[0]
                                                    : name);
        }
        return any ? 0 : 2;
    }

    std::vector<std::pair<std::string, JsonValue>> newDocs;
    if (!loadDocs(inputs[1], newDocs))
        return 2;

    // Sharded-kernel scaling column: speedups are wall-clock derived
    // and therefore never gated, but a scaling regression should be
    // visible in the CI log right next to the verdict.
    struct StRow
    {
        std::string key;
        double oldSp = 0.0, newSp = 0.0;
    };
    std::vector<StRow> stRows;

    CompareStats cs;
    for (const auto &[name, oldDoc] : oldDocs) {
        const JsonValue *newDoc = nullptr;
        for (const auto &[nname, nd] : newDocs) {
            if (nname == name) {
                newDoc = &nd;
                break;
            }
        }
        if (!newDoc) {
            std::fprintf(stderr,
                         "run '%s' only present in old input\n",
                         name.c_str());
            ++cs.onlyOld;
            continue;
        }
        compareDocs(oldDoc, *newDoc, name, threshold, ignores, cs);

        const auto oldSp = simThreadsSpeedups(oldDoc);
        const auto newSp = simThreadsSpeedups(*newDoc);
        for (const auto &[k, ov] : oldSp) {
            StRow row;
            row.key = name.empty() ? k : name + "." + k;
            row.oldSp = ov;
            for (const auto &[nk, nv] : newSp) {
                if (nk == k)
                    row.newSp = nv;
            }
            stRows.push_back(std::move(row));
        }
    }

    const bool regressed = !cs.flagged.empty();
    std::printf("compared %llu leaves at threshold %.3g%%: %zu "
                "flagged (%llu only-old, %llu only-new paths)\n",
                static_cast<unsigned long long>(cs.checked),
                threshold, cs.flagged.size(),
                static_cast<unsigned long long>(cs.onlyOld),
                static_cast<unsigned long long>(cs.onlyNew));
    for (const Flagged &f : cs.flagged)
        std::printf("  %-50s %14g -> %14g  (%+.2f%%)\n",
                    f.path.c_str(), f.oldVal, f.newVal, f.deltaPct);

    if (!stRows.empty()) {
        std::printf("sim-threads speedup (informational, never "
                    "gated):\n");
        std::printf("  %-16s %12s %12s\n", "threads", "old", "new");
        for (const StRow &r : stRows)
            std::printf("  %-16s %11.2fx %11.2fx\n", r.key.c_str(),
                        r.oldSp, r.newSp);
    }

    std::ofstream os(outPath);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", outPath.c_str());
        return 2;
    }
    mgsec::JsonWriter w(os);
    w.beginObject();
    w.field("verdict", std::string(regressed ? "regressed" : "ok"));
    w.field("threshold", threshold);
    w.field("checked", cs.checked);
    w.field("onlyOld", cs.onlyOld);
    w.field("onlyNew", cs.onlyNew);
    w.beginArray("flagged");
    for (const Flagged &f : cs.flagged) {
        w.beginObject();
        w.field("path", f.path);
        w.field("old", f.oldVal);
        w.field("new", f.newVal);
        w.field("deltaPct", f.deltaPct);
        w.endObject();
    }
    w.endArray();
    if (!stRows.empty()) {
        w.key("simThreads");
        w.beginObject();
        for (const StRow &r : stRows) {
            w.key(r.key);
            w.beginObject();
            w.field("oldSpeedup", r.oldSp);
            w.field("newSpeedup", r.newSp);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    os << "\n";

    return regressed ? 1 : 0;
}
