/**
 * @file
 * Offline analyzer for the simulator's observability artifacts.
 *
 * Report mode (one input): print a Fig. 11-shaped per-stage latency
 * breakdown table from the "attr" histogram group of a stats/hist
 * JSON dump, or from every run indexed in an --observe directory.
 *
 * Compare mode (--compare OLD NEW): flatten every numeric leaf of
 * both documents into dotted paths (core/compare.hh), flag any value
 * that moved by more than --threshold percent, and write a
 * machine-readable BENCH_report.json verdict. Exit status 1 when the
 * gate trips, so CI can use it directly as a regression gate.
 *
 * Leakage mode: an --observe directory whose runs carry WIRE_*.json
 * wire-observer dumps additionally gets a "leakage" section — per
 * configuration signature and shaping policy, the wire-timing
 * workload classifier's accuracy (src/verify/observer_adversary.hh),
 * the gap-distribution channel capacity, and the time/traffic cost
 * of the policy relative to the unshaped runs: the leakage-vs-
 * overhead frontier. --leakage-json FILE writes it machine-readably.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/compare.hh"
#include "core/json_in.hh"
#include "sim/json_writer.hh"
#include "verify/observer_adversary.hh"

namespace
{

using mgsec::CompareStats;
using mgsec::JsonValue;

int
usage(const char *argv0, int status)
{
    std::ostream &os = status == 0 ? std::cout : std::cerr;
    os << "usage: " << argv0 << " [options] INPUT\n"
       << "       " << argv0 << " [options] --compare OLD NEW\n"
       << "\n"
       << "INPUT, OLD, NEW are stats/histogram JSON files "
       << "(--stats-json dumps,\n"
       << "sweep --json results, HIST_*.json) or --observe "
       << "directories holding\n"
       << "an OBSERVE_INDEX.json.\n"
       << "\n"
       << "  --compare OLD NEW  diff two inputs instead of printing "
       << "a breakdown\n"
       << "  --threshold PCT    flag leaves moving more than PCT% "
       << "(default 10)\n"
       << "  --out FILE         compare verdict JSON (default "
       << "BENCH_report.json)\n"
       << "  --ignore SUBSTR    skip paths containing SUBSTR "
       << "(repeatable;\n"
       << "                     wall-clock rates are always "
       << "ignored)\n"
       << "  --leakage-json FILE  also write the leakage/frontier "
       << "section as JSON\n"
       << "                     (report mode on an --observe "
       << "directory with WIRE files)\n"
       << "  --prof             INPUT is a PROF_*.json self-profiler "
       << "dump (or an\n"
       << "                     --observe directory with PROF files): "
       << "print the\n"
       << "                     host phase breakdown and PDES "
       << "efficiency verdict\n";
    return status;
}

bool
isObserveDir(const std::string &path)
{
    std::ifstream is(path + "/OBSERVE_INDEX.json");
    return static_cast<bool>(is);
}

double
num(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    return f ? f->asNumber() : 0.0;
}

/** One row of the breakdown table, read from a histogram object. */
struct Row
{
    std::string label;
    bool present = false;
    double count = 0, sum = 0, mean = 0;
    double p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0;
};

Row
makeRow(const std::string &label, const JsonValue *h)
{
    Row r;
    r.label = label;
    if (!h || !h->isObject())
        return r;
    r.present = true;
    r.count = num(*h, "count");
    r.sum = num(*h, "sum");
    r.mean = num(*h, "mean");
    r.p50 = num(*h, "p50");
    r.p90 = num(*h, "p90");
    r.p99 = num(*h, "p99");
    r.p999 = num(*h, "p999");
    r.max = num(*h, "max");
    return r;
}

const char *const kStages[] = {"padClaim", "padWait", "xmit", "wire",
                               "recvVerify"};
const char *const kLinks[] = {"pcie", "nvlink"};

/** Print the per-stage breakdown of one "attr" group object. */
void
printAttrTable(const JsonValue &attr)
{
    for (const char *link : kLinks) {
        const Row e2e =
            makeRow("e2e", attr.find(std::string(link) + ".e2e"));
        if (!e2e.present || e2e.count == 0)
            continue;
        std::printf("\n%s (%.0f messages)\n", link, e2e.count);
        std::printf("  %-12s %10s %10s %10s %10s %10s %10s %7s\n",
                    "stage", "mean", "p50", "p90", "p99", "p99.9",
                    "max", "%e2e");
        auto line = [&](const Row &r) {
            if (!r.present)
                return;
            const double share =
                e2e.sum > 0 ? 100.0 * r.sum / e2e.sum : 0.0;
            std::printf(
                "  %-12s %10.1f %10.0f %10.0f %10.0f %10.0f %10.0f "
                "%6.1f%%\n",
                r.label.c_str(), r.mean, r.p50, r.p90, r.p99, r.p999,
                r.max, share);
        };
        for (const char *st : kStages)
            line(makeRow(st,
                         attr.find(std::string(link) + "." + st)));
        std::printf(
            "  %-12s %10.1f %10.0f %10.0f %10.0f %10.0f %10.0f "
            "%6.1f%%\n",
            "e2e", e2e.mean, e2e.p50, e2e.p90, e2e.p99, e2e.p999,
            e2e.max, 100.0);
    }
}

/** Report mode over one parsed document. */
bool
reportDocument(const JsonValue &doc, const std::string &what)
{
    const JsonValue *attr = doc.find("attr");
    if (!attr || !attr->isObject()) {
        std::fprintf(stderr,
                     "%s: no \"attr\" histogram group (was the run "
                     "made with --attr on?)\n",
                     what.c_str());
        return false;
    }
    if (const JsonValue *scheme = doc.find("scheme"))
        std::printf("scheme: %s", scheme->string.c_str());
    if (const JsonValue *folds = doc.find("folds"))
        std::printf("  folds: %.0f", folds->asNumber());
    if (doc.find("scheme") || doc.find("folds"))
        std::printf("\n");
    printAttrTable(*attr);
    return true;
}

/**
 * Self-profiler report mode over one PROF_*.json document: phase
 * breakdown plus the PDES efficiency verdict. Times in the document
 * are nanoseconds; the table prints microseconds/milliseconds.
 */
bool
reportProf(const JsonValue &doc, const std::string &what)
{
    const JsonValue *phases = doc.find("phases");
    if (!phases || !phases->isObject()) {
        std::fprintf(stderr,
                     "%s: no \"phases\" group (not a PROF_*.json "
                     "self-profiler dump?)\n",
                     what.c_str());
        return false;
    }
    std::printf("host profile: %.0f worker(s), %.0f domain(s), "
                "%.1f ms wall, %.0f spans",
                num(doc, "threads"), num(doc, "domains"),
                num(doc, "wallNs") / 1e6, num(doc, "spans"));
    if (const double dropped = num(doc, "droppedTraceSpans"))
        std::printf(" (%.0f trace spans dropped)", dropped);
    std::printf("\n");

    // Share is of summed phase time. cryptoSeal/cryptoOpen enclose
    // padGen, so the column can exceed 100% in crypto-heavy runs —
    // it ranks phases, it is not a partition of wall time.
    std::vector<Row> rows;
    double totalSum = 0.0;
    for (const auto &[name, h] : phases->fields) {
        Row r = makeRow(name, &h);
        if (r.present && r.count > 0) {
            totalSum += r.sum;
            rows.push_back(std::move(r));
        }
    }
    std::printf("  %-13s %10s %11s %11s %11s %11s %7s\n", "phase",
                "spans", "mean us", "p50 us", "p99 us", "total ms",
                "%time");
    for (const Row &r : rows)
        std::printf("  %-13s %10.0f %11.1f %11.1f %11.1f %11.2f "
                    "%6.1f%%\n",
                    r.label.c_str(), r.count, r.mean / 1e3,
                    r.p50 / 1e3, r.p99 / 1e3, r.sum / 1e6,
                    totalSum > 0 ? 100.0 * r.sum / totalSum : 0.0);

    const JsonValue *pdes = doc.find("pdes");
    if (!pdes || num(*pdes, "windows") == 0) {
        std::printf("pdes: serial run (no barrier windows)\n");
        return true;
    }
    const JsonValue *stall = pdes->find("topStallPhase");
    std::printf("pdes: %.0f windows, parallel efficiency %.1f%%, "
                "imbalance %.2fx,\n"
                "      barrier-wait %.1f%% of exec+wait, top stall: "
                "%s\n",
                num(*pdes, "windows"),
                num(*pdes, "parallelEfficiencyPct"),
                num(*pdes, "imbalance"),
                100.0 * num(*pdes, "barrierFrac"),
                stall && stall->isString() ? stall->string.c_str()
                                           : "none");
    if (const JsonValue *workers = pdes->find("workers")) {
        std::printf("  %-8s %14s %12s %14s\n", "worker", "events",
                    "busy ms", "events/s");
        for (const JsonValue &wv : workers->items)
            std::printf("  %-8.0f %14.0f %12.2f %14.0f\n",
                        num(wv, "worker"), num(wv, "events"),
                        num(wv, "busyNs") / 1e6,
                        num(wv, "eventsPerSec"));
    }
    if (const JsonValue *doms = pdes->find("domains")) {
        std::printf("  %-8s %14s %12s %14s\n", "domain", "events",
                    "busy ms", "windows");
        for (const JsonValue &dv : doms->items)
            std::printf("  %-8.0f %14.0f %12.2f %14.0f\n",
                        num(dv, "domain"), num(dv, "events"),
                        num(dv, "busyNs") / 1e6,
                        num(dv, "windowsActive"));
    }
    return true;
}

/** The runs an OBSERVE_INDEX.json names, as (hash, key) pairs. */
bool
loadIndex(const std::string &dir,
          std::vector<std::pair<std::string, std::string>> &out)
{
    JsonValue idx;
    std::string err;
    if (!mgsec::jsonParseFile(dir + "/OBSERVE_INDEX.json", idx,
                              err)) {
        std::fprintf(stderr, "%s/OBSERVE_INDEX.json: %s\n",
                     dir.c_str(), err.c_str());
        return false;
    }
    const JsonValue *runs = idx.find("runs");
    if (!runs || !runs->isArray()) {
        std::fprintf(stderr, "%s: index has no \"runs\" array\n",
                     dir.c_str());
        return false;
    }
    for (const JsonValue &r : runs->items) {
        const JsonValue *h = r.find("hash");
        const JsonValue *k = r.find("key");
        if (h && h->isString())
            out.emplace_back(h->string,
                             k && k->isString() ? k->string : "");
    }
    return true;
}

/**
 * @name Leakage section
 * Built from the WIRE_*.json dumps of an --observe directory. Runs
 * are grouped by configuration signature (configKey minus its
 * workload, seed and shape segments) x shaping policy; within a
 * group the workload is the class label and the seed the LOSO fold.
 */
/// @{

/** One observed run with everything the frontier table needs. */
struct LeakRun
{
    std::string hash;
    std::string workload;
    std::string shape = "none";
    std::string signature; ///< configKey minus workload/seed/shape
    std::uint64_t seed = 0;
    double bytes = 0.0;
    double duration = 0.0;
    mgsec::verify::ObservedRun obs;
    /** pcie+nvlink merged inter-packet-gap buckets (lo -> count). */
    std::map<double, std::uint64_t> gapBuckets;
};

/** Split a configKey into workload/seed/shape and the signature. */
void
parseConfigKey(const std::string &key, LeakRun &run)
{
    std::string signature;
    std::size_t pos = 0;
    bool first = true;
    while (pos <= key.size()) {
        const std::size_t bar = key.find('|', pos);
        const std::string seg = key.substr(
            pos,
            bar == std::string::npos ? std::string::npos : bar - pos);
        if (first) {
            run.workload = seg;
            first = false;
        } else if (seg.rfind("seed=", 0) == 0) {
            run.seed = std::strtoull(seg.c_str() + 5, nullptr, 10);
        } else if (seg.rfind("shape=", 0) == 0) {
            // "constant-rate/64/128/96" -> policy name only
            const std::string v = seg.substr(6);
            const std::size_t slash = v.find('/');
            run.shape = slash == std::string::npos
                            ? v
                            : v.substr(0, slash);
        } else {
            if (!signature.empty())
                signature += "|";
            signature += seg;
        }
        if (bar == std::string::npos)
            break;
        pos = bar + 1;
    }
    run.signature = signature;
}

/** Accumulate a histogram object's [lo, count] buckets into @p out. */
void
addGapBuckets(const JsonValue *hist,
              std::map<double, std::uint64_t> &out)
{
    const JsonValue *buckets = hist ? hist->find("buckets") : nullptr;
    if (!buckets || !buckets->isArray())
        return;
    for (const JsonValue &b : buckets->items) {
        if (b.isArray() && b.items.size() == 2)
            out[b.items[0].asNumber()] += static_cast<std::uint64_t>(
                b.items[1].asNumber());
    }
}

/** Load WIRE_<hash>.json into @p run. False when absent/invalid. */
bool
loadWire(const std::string &dir, const std::string &hash,
         const std::string &key, LeakRun &run)
{
    JsonValue doc;
    std::string err;
    if (!mgsec::jsonParseFile(dir + "/WIRE_" + hash + ".json", doc,
                              err))
        return false;
    run.hash = hash;
    parseConfigKey(key, run);
    run.bytes = num(doc, "bytes");
    run.duration = num(doc, "durationCycles");
    run.obs.label = run.workload;
    run.obs.seed = run.seed;
    const JsonValue *features = doc.find("features");
    if (!features || !features->isObject())
        return false;
    for (const auto &[name, v] : features->fields)
        run.obs.features.emplace_back(name, v.asNumber());
    if (const JsonValue *links = doc.find("links")) {
        for (const char *link : kLinks)
            if (const JsonValue *cls = links->find(link))
                addGapBuckets(cls->find("gap"), run.gapBuckets);
    }
    return true;
}

/** One frontier row: a (signature, shape) cell's scores. */
struct FrontierRow
{
    std::string shape;
    mgsec::verify::LeakageReport rep;
    double capacityBits = 0.0;
    double timeX = 1.0;    ///< mean duration vs the unshaped runs
    double trafficX = 1.0; ///< mean bytes vs the unshaped runs
    bool hasOverhead = false;
};

/** "none" sorts first so every table leads with the baseline. */
bool
shapeBefore(const std::string &a, const std::string &b)
{
    if (a == b)
        return false;
    if (a == "none")
        return true;
    if (b == "none")
        return false;
    return a < b;
}

std::vector<FrontierRow>
frontierRows(const std::vector<const LeakRun *> &group)
{
    // Partition by shape.
    std::map<std::string, std::vector<const LeakRun *>> by_shape;
    for (const LeakRun *r : group)
        by_shape[r->shape].push_back(r);
    const auto *none_runs = by_shape.count("none")
                                ? &by_shape.at("none")
                                : nullptr;

    std::vector<FrontierRow> rows;
    for (const auto &[shape, runs] : by_shape) {
        FrontierRow row;
        row.shape = shape;

        std::vector<mgsec::verify::ObservedRun> obs;
        std::map<std::string,
                 std::map<double, std::uint64_t>> class_gaps;
        for (const LeakRun *r : runs) {
            obs.push_back(r->obs);
            for (const auto &[lo, n] : r->gapBuckets)
                class_gaps[r->workload][lo] += n;
        }
        row.rep = mgsec::verify::classifyLeaveOneSeedOut(obs);
        std::vector<std::vector<std::pair<double, std::uint64_t>>>
            hists;
        for (const auto &[wl, buckets] : class_gaps)
            hists.emplace_back(buckets.begin(), buckets.end());
        row.capacityBits = mgsec::verify::jsdCapacityBits(hists);

        // Overhead vs the matching unshaped (workload, seed) runs.
        if (none_runs) {
            double time_sum = 0.0, traf_sum = 0.0;
            std::size_t matches = 0;
            for (const LeakRun *r : runs) {
                for (const LeakRun *base : *none_runs) {
                    if (base->workload != r->workload ||
                        base->seed != r->seed)
                        continue;
                    if (base->duration > 0.0 && base->bytes > 0.0) {
                        time_sum += r->duration / base->duration;
                        traf_sum += r->bytes / base->bytes;
                        ++matches;
                    }
                    break;
                }
            }
            if (matches) {
                row.timeX = time_sum / static_cast<double>(matches);
                row.trafficX =
                    traf_sum / static_cast<double>(matches);
                row.hasOverhead = true;
            }
        }
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const FrontierRow &a, const FrontierRow &b) {
                  return shapeBefore(a.shape, b.shape);
              });
    return rows;
}

/**
 * Print the leakage section (and optionally write it as JSON) from
 * an observe directory's indexed WIRE dumps. Returns false only on
 * a write failure of @p jsonOut.
 */
bool
reportLeakage(
    const std::string &dir,
    const std::vector<std::pair<std::string, std::string>> &idx,
    const std::string &jsonOut)
{
    std::vector<LeakRun> runs;
    for (const auto &[hash, key] : idx) {
        LeakRun run;
        if (loadWire(dir, hash, key, run))
            runs.push_back(std::move(run));
    }
    if (runs.empty())
        return true; // no WIRE dumps -> no section

    std::map<std::string, std::vector<const LeakRun *>> groups;
    for (const LeakRun &r : runs)
        groups[r.signature].push_back(&r);

    std::printf("\n== leakage (passive wire observer) ==\n");
    std::printf("classifier: nearest-centroid, leave-one-seed-out, "
                "timing-shape features only\n");
    for (const auto &[signature, group] : groups) {
        const auto rows = frontierRows(group);
        std::printf("\nconfig: %s\n", signature.c_str());
        std::printf("  %-15s %5s %4s %7s %7s %10s %7s %7s\n",
                    "shape", "runs", "cls", "acc", "chance",
                    "cap(bits)", "timeX", "trafX");
        for (const FrontierRow &r : rows) {
            std::printf(
                "  %-15s %5zu %4zu %7.3f %7.3f %10.3f %7.3f %7.3f\n",
                r.shape.c_str(), r.rep.runs, r.rep.classes,
                r.rep.accuracy, r.rep.chance, r.capacityBits,
                r.timeX, r.trafficX);
        }
    }

    if (jsonOut.empty())
        return true;
    std::ofstream os(jsonOut);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", jsonOut.c_str());
        return false;
    }
    mgsec::JsonWriter w(os);
    w.beginObject();
    w.field("classifier",
            std::string("nearest-centroid-loso-timing"));
    w.beginArray("groups");
    for (const auto &[signature, group] : groups) {
        w.beginObject();
        w.field("signature", signature);
        w.beginArray("rows");
        for (const FrontierRow &r : frontierRows(group)) {
            w.beginObject();
            w.field("shape", r.shape);
            w.field("runs", static_cast<std::uint64_t>(r.rep.runs));
            w.field("classes",
                    static_cast<std::uint64_t>(r.rep.classes));
            w.field("evaluated",
                    static_cast<std::uint64_t>(r.rep.evaluated));
            w.field("correct",
                    static_cast<std::uint64_t>(r.rep.correct));
            w.field("accuracy", r.rep.accuracy);
            w.field("chance", r.rep.chance);
            w.field("capacityBits", r.capacityBits);
            w.field("timeX", r.timeX);
            w.field("trafficX", r.trafficX);
            w.field("hasOverhead", r.hasOverhead);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return true;
}

/// @}

/**
 * The per-thread-count speedups of a document's "simThreads" bench
 * section, as (point key, speedup) pairs in document order. Empty
 * when the document has no such section (sweep dumps, HIST files).
 */
std::vector<std::pair<std::string, double>>
simThreadsSpeedups(const JsonValue &doc)
{
    std::vector<std::pair<std::string, double>> out;
    const JsonValue *st = doc.find("simThreads");
    if (!st || !st->isObject())
        return out;
    for (const auto &[k, v] : st->fields) {
        if (!v.isObject())
            continue;
        if (const JsonValue *s = v.find("speedup"))
            out.emplace_back(k, s->asNumber());
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    // Wall-clock-derived keys vary run to run on a shared CI host;
    // the simulated counters are the deterministic gate.
    std::vector<std::string> ignores = mgsec::defaultCompareIgnores();
    double threshold = 10.0;
    std::string outPath = "BENCH_report.json";
    std::string leakageJson;
    bool compare = false;
    bool prof = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for '%s'\n",
                             arg.c_str());
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg == "--prof") {
            prof = true;
        } else if (arg == "--threshold") {
            threshold = std::atof(value());
            if (!(threshold >= 0.0)) {
                std::fprintf(stderr, "bad --threshold value\n");
                return 2;
            }
        } else if (arg == "--out") {
            outPath = value();
        } else if (arg == "--ignore") {
            ignores.push_back(value());
        } else if (arg == "--leakage-json") {
            leakageJson = value();
        } else if (arg == "--stats-json" || arg == "--observe") {
            inputs.push_back(value());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        } else {
            inputs.push_back(arg);
        }
    }

    if (compare ? inputs.size() != 2 : inputs.size() != 1)
        return usage(argv[0], 2);

    // Resolve each input to named JSON documents: a file is one
    // document; an --observe directory is one per indexed run,
    // matched across inputs by config hash.
    auto loadDocs =
        [&](const std::string &in,
            std::vector<std::pair<std::string, JsonValue>> &docs) {
            std::string err;
            if (isObserveDir(in)) {
                std::vector<std::pair<std::string, std::string>> idx;
                if (!loadIndex(in, idx))
                    return false;
                for (const auto &[hash, key] : idx) {
                    JsonValue doc;
                    const std::string path = in + "/" +
                        (prof ? "PROF_" : "STATS_") + hash + ".json";
                    if (prof &&
                        !static_cast<bool>(std::ifstream(path))) {
                        // mgsec_run --observe-dir bundles carry no
                        // PROF file; a killed sweep may index runs
                        // it never profiled. Report what exists.
                        std::fprintf(stderr, "%s: absent, skipped\n",
                                     path.c_str());
                        continue;
                    }
                    if (!mgsec::jsonParseFile(path, doc, err)) {
                        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                                     err.c_str());
                        return false;
                    }
                    docs.emplace_back(hash, std::move(doc));
                }
                return true;
            }
            JsonValue doc;
            if (!mgsec::jsonParseFile(in, doc, err)) {
                std::fprintf(stderr, "%s: %s\n", in.c_str(),
                             err.c_str());
                return false;
            }
            docs.emplace_back("", std::move(doc));
            return true;
        };

    std::vector<std::pair<std::string, JsonValue>> oldDocs;
    if (!loadDocs(inputs[0], oldDocs))
        return 2;

    if (!compare) {
        bool any = false;
        for (const auto &[name, doc] : oldDocs) {
            if (!name.empty())
                std::printf("== run %s ==\n", name.c_str());
            const std::string what =
                name.empty() ? inputs[0] : name;
            any |= prof ? reportProf(doc, what)
                        : reportDocument(doc, what);
        }
        if (prof)
            return any ? 0 : 2;
        if (isObserveDir(inputs[0])) {
            std::vector<std::pair<std::string, std::string>> idx;
            if (loadIndex(inputs[0], idx)) {
                if (!reportLeakage(inputs[0], idx, leakageJson))
                    return 2;
                any = true;
            }
        }
        return any ? 0 : 2;
    }

    std::vector<std::pair<std::string, JsonValue>> newDocs;
    if (!loadDocs(inputs[1], newDocs))
        return 2;

    // Sharded-kernel scaling column: speedups are wall-clock derived
    // and therefore never gated, but a scaling regression should be
    // visible in the CI log right next to the verdict.
    struct StRow
    {
        std::string key;
        double oldSp = 0.0, newSp = 0.0;
    };
    std::vector<StRow> stRows;

    CompareStats cs;
    for (const auto &[name, oldDoc] : oldDocs) {
        const JsonValue *newDoc = nullptr;
        for (const auto &[nname, nd] : newDocs) {
            if (nname == name) {
                newDoc = &nd;
                break;
            }
        }
        if (!newDoc) {
            std::fprintf(stderr,
                         "run '%s' only present in old input\n",
                         name.c_str());
            ++cs.onlyOld;
            continue;
        }
        mgsec::compareDocs(oldDoc, *newDoc, name, threshold, ignores,
                           cs);

        const auto oldSp = simThreadsSpeedups(oldDoc);
        const auto newSp = simThreadsSpeedups(*newDoc);
        for (const auto &[k, ov] : oldSp) {
            StRow row;
            row.key = name.empty() ? k : name + "." + k;
            row.oldSp = ov;
            for (const auto &[nk, nv] : newSp) {
                if (nk == k)
                    row.newSp = nv;
            }
            stRows.push_back(std::move(row));
        }
    }

    const bool regressed = !cs.flagged.empty();
    std::printf("compared %llu leaves at threshold %.3g%%: %zu "
                "flagged (%llu only-old, %llu only-new paths)\n",
                static_cast<unsigned long long>(cs.checked),
                threshold, cs.flagged.size(),
                static_cast<unsigned long long>(cs.onlyOld),
                static_cast<unsigned long long>(cs.onlyNew));
    for (const mgsec::FlaggedLeaf &f : cs.flagged)
        std::printf("  %-50s %14g -> %14g  (%+.2f%%)\n",
                    f.path.c_str(), f.oldVal, f.newVal, f.deltaPct);

    if (!stRows.empty()) {
        std::printf("sim-threads speedup (informational, never "
                    "gated):\n");
        std::printf("  %-16s %12s %12s\n", "threads", "old", "new");
        for (const StRow &r : stRows)
            std::printf("  %-16s %11.2fx %11.2fx\n", r.key.c_str(),
                        r.oldSp, r.newSp);
    }

    std::ofstream os(outPath);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", outPath.c_str());
        return 2;
    }
    mgsec::JsonWriter w(os);
    w.beginObject();
    w.field("verdict", std::string(regressed ? "regressed" : "ok"));
    w.field("threshold", threshold);
    w.field("checked", cs.checked);
    w.field("onlyOld", cs.onlyOld);
    w.field("onlyNew", cs.onlyNew);
    w.beginArray("flagged");
    for (const mgsec::FlaggedLeaf &f : cs.flagged) {
        w.beginObject();
        w.field("path", f.path);
        w.field("old", f.oldVal);
        w.field("new", f.newVal);
        w.field("deltaPct", f.deltaPct);
        w.endObject();
    }
    w.endArray();
    if (!stRows.empty()) {
        w.key("simThreads");
        w.beginObject();
        for (const StRow &r : stRows) {
            w.key(r.key);
            w.beginObject();
            w.field("oldSpeedup", r.oldSp);
            w.field("newSpeedup", r.newSp);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    os << "\n";

    return regressed ? 1 : 0;
}
