/**
 * @file
 * mgsec_sweep — the full workload x scheme matrix in one run:
 * normalized execution time for every paper workload under every
 * protection scheme, plus traffic ratios. This is the "is the model
 * calibrated?" dashboard used while developing the reproduction.
 *
 * Usage: mgsec_sweep [--gpus N] [--scale F] [--seeds N]
 */

#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace mgsec;

int
main(int argc, char **argv)
{
    std::uint32_t gpus = 4;
    double scale = 1.0;
    int seeds = 2;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gpus") == 0 && i + 1 < argc)
            gpus = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            scale = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc)
            seeds = std::atoi(argv[++i]);
    }
    if (seeds < 1)
        seeds = 1;

    struct Config
    {
        const char *label;
        OtpScheme scheme;
        bool batching;
        std::uint32_t mult;
    };
    const std::vector<Config> configs = {
        {"Priv4x", OtpScheme::Private, false, 4},
        {"Priv16x", OtpScheme::Private, false, 16},
        {"Shared", OtpScheme::Shared, false, 4},
        {"Cached4x", OtpScheme::Cached, false, 4},
        {"Dyn4x", OtpScheme::Dynamic, false, 4},
        {"Ours4x", OtpScheme::Dynamic, true, 4},
    };

    std::cout << "normalized execution time, " << gpus
              << "-GPU system, " << seeds << " seed(s), scale "
              << scale << "\n\n";

    Table t({"workload", "Priv4x", "Priv16x", "Shared", "Cached4x",
             "Dyn4x", "Ours4x", "trafP4x", "trafOurs"});
    std::map<std::string, std::vector<double>> agg;
    std::vector<double> traf_p, traf_o;

    for (const auto &wl : workloadNames()) {
        std::vector<std::string> row = {wl};
        double tp = 0, to = 0;
        for (const auto &c : configs) {
            double nt = 0, tr = 0;
            for (int s = 1; s <= seeds; ++s) {
                ExperimentConfig e;
                e.numGpus = gpus;
                e.scale = scale;
                e.seed = static_cast<std::uint64_t>(s);
                ExperimentConfig base = e;
                base.scheme = OtpScheme::Unsecure;
                const RunResult b = runWorkload(wl, base);
                e.scheme = c.scheme;
                e.batching = c.batching;
                e.otpMult = c.mult;
                const RunResult r = runWorkload(wl, e);
                nt += normalizedTime(r, b) / seeds;
                tr += normalizedTraffic(r, b) / seeds;
            }
            row.push_back(fmtDouble(nt));
            agg[c.label].push_back(nt);
            if (std::strcmp(c.label, "Priv4x") == 0)
                tp = tr;
            if (std::strcmp(c.label, "Ours4x") == 0)
                to = tr;
        }
        row.push_back(fmtDouble(tp));
        row.push_back(fmtDouble(to));
        traf_p.push_back(tp);
        traf_o.push_back(to);
        t.addRow(row);
    }
    std::vector<std::string> avg = {"MEAN"};
    for (const auto &c : configs)
        avg.push_back(fmtDouble(mean(agg[c.label])));
    avg.push_back(fmtDouble(mean(traf_p)));
    avg.push_back(fmtDouble(mean(traf_o)));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\npaper (4 GPUs): Private 1.195, Private16x 1.140, "
                 "Shared 2.663, Cached 1.163, Dynamic 1.147, Ours "
                 "1.079; traffic 1.365 -> ~1.09\n";
    return 0;
}
