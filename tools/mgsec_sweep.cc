/**
 * @file
 * mgsec_sweep — the full workload x scheme matrix in one run:
 * normalized execution time for every paper workload under every
 * protection scheme, plus traffic ratios. This is the "is the model
 * calibrated?" dashboard used while developing the reproduction.
 *
 * Usage: mgsec_sweep [--gpus N] [--scale F] [--seeds N] [--jobs N]
 *                    [--json FILE] [--observe DIR] [--debug FLAGS]
 *                    [--shape P[,P..]] [--workloads W[,W..]]
 *
 * The matrix runs on the parallel job pool; the unsecure baseline of
 * each (workload, seed) is simulated once and shared by all six
 * configurations, and results are keyed by submission order, so any
 * --jobs value emits identical tables.
 *
 * --shape repeats the matrix once per traffic-shaping policy (one
 * table per policy; JSON rows gain a "shape" field), sharing the
 * unshaped baselines. The default (--shape none) reproduces the
 * historical output byte for byte.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/json_out.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace mgsec;

namespace
{

struct Config
{
    const char *label;
    OtpScheme scheme;
    bool batching;
    std::uint32_t mult;
};

const std::vector<Config> kConfigs = {
    {"Priv4x", OtpScheme::Private, false, 4},
    {"Priv16x", OtpScheme::Private, false, 16},
    {"Shared", OtpScheme::Shared, false, 4},
    {"Cached4x", OtpScheme::Cached, false, 4},
    {"Dyn4x", OtpScheme::Dynamic, false, 4},
    {"Ours4x", OtpScheme::Dynamic, true, 4},
};

/** handles[shape][workload][config]; shaped = --shape was given. */
void
writeJson(std::ostream &os, const SweepArgs &args, const Sweep &sweep,
          const std::vector<std::string> &names, bool shaped,
          const std::vector<std::vector<std::vector<std::size_t>>>
              &handles)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("gpus", static_cast<std::uint64_t>(args.gpus));
    if (args.topology.kind != TopologyKind::P2p)
        w.field("topology",
                std::string(topologyKindName(args.topology.kind)));
    w.field("scale", args.scale);
    w.field("seeds", static_cast<std::uint64_t>(args.seeds));
    w.field("jobs", static_cast<std::uint64_t>(sweep.jobs()));
    w.field("baselineRuns", sweep.baselineRuns());
    w.field("baselineHits", sweep.baselineHits());
    w.beginArray("rows");
    for (std::size_t sh = 0; sh < args.shapes.size(); ++sh) {
        for (std::size_t wl = 0; wl < names.size(); ++wl) {
            w.beginObject();
            w.field("workload", names[wl]);
            if (shaped)
                w.field("shape",
                        std::string(
                            shapingPolicyName(args.shapes[sh])));
            for (std::size_t c = 0; c < kConfigs.size(); ++c) {
                const NormResult &n =
                    sweep.normalized(handles[sh][wl][c]);
                w.key(std::string("time") + kConfigs[c].label);
                w.value(n.time);
                w.key(std::string("traffic") + kConfigs[c].label);
                w.value(n.traffic);
            }
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SweepArgs args;
    args.scale = 1.0;
    args.acceptGpus = true;
    args.acceptJson = true;
    args.acceptObserve = true;
    args.acceptShape = true;
    args.acceptWorkloads = true;
    args.acceptTopology = true;
    args.parseArgs(argc, argv);

    // With the default --shape none / all-workloads arguments the
    // loops below degenerate to the historical single matrix and the
    // output stays byte-identical.
    const bool shaped = args.shapes.size() > 1 ||
                        args.shapes[0] != ShapingPolicy::None;
    const std::vector<std::string> names =
        args.workloads.empty() ? workloadNames() : args.workloads;

    std::cout << "normalized execution time, " << args.gpus
              << "-GPU system, " << args.seeds << " seed(s), scale "
              << args.scale;
    if (args.topology.kind != TopologyKind::P2p)
        std::cout << ", topology "
                  << topologyKindName(args.topology.kind);
    std::cout << "\n\n";

    Sweep sweep(args);
    std::vector<std::vector<std::vector<std::size_t>>> handles;
    for (const ShapingPolicy shape : args.shapes) {
        std::vector<std::vector<std::size_t>> per_wl;
        for (const auto &wl : names) {
            std::vector<std::size_t> hs;
            for (const auto &c : kConfigs) {
                ExperimentConfig e;
                e.numGpus = args.gpus;
                e.scheme = c.scheme;
                e.batching = c.batching;
                e.otpMult = c.mult;
                e.shaping = shape;
                e.topology = args.topology;
                hs.push_back(sweep.addNormalized(wl, e));
            }
            per_wl.push_back(std::move(hs));
        }
        handles.push_back(std::move(per_wl));
    }
    sweep.run();

    for (std::size_t sh = 0; sh < args.shapes.size(); ++sh) {
        if (shaped)
            std::cout << "shape: "
                      << shapingPolicyName(args.shapes[sh]) << "\n";
        Table t({"workload", "Priv4x", "Priv16x", "Shared",
                 "Cached4x", "Dyn4x", "Ours4x", "trafP4x",
                 "trafOurs"});
        std::map<std::string, std::vector<double>> agg;
        std::vector<double> traf_p, traf_o;

        for (std::size_t wl = 0; wl < names.size(); ++wl) {
            std::vector<std::string> row = {names[wl]};
            double tp = 0, to = 0;
            for (std::size_t c = 0; c < kConfigs.size(); ++c) {
                const NormResult &n =
                    sweep.normalized(handles[sh][wl][c]);
                row.push_back(fmtDouble(n.time));
                agg[kConfigs[c].label].push_back(n.time);
                if (std::string("Priv4x") == kConfigs[c].label)
                    tp = n.traffic;
                if (std::string("Ours4x") == kConfigs[c].label)
                    to = n.traffic;
            }
            row.push_back(fmtDouble(tp));
            row.push_back(fmtDouble(to));
            traf_p.push_back(tp);
            traf_o.push_back(to);
            t.addRow(row);
        }
        std::vector<std::string> avg = {"MEAN"};
        for (const auto &c : kConfigs)
            avg.push_back(fmtDouble(mean(agg[c.label])));
        avg.push_back(fmtDouble(mean(traf_p)));
        avg.push_back(fmtDouble(mean(traf_o)));
        t.addRow(avg);
        t.print(std::cout);
        if (shaped && sh + 1 < args.shapes.size())
            std::cout << "\n";
    }

    std::cout << "\nbaseline cache: " << sweep.baselineRuns()
              << " baseline run(s), " << sweep.baselineHits()
              << " hit(s); " << sweep.jobs() << " job(s)\n";
    if (!args.observeDir.empty())
        std::cout << "observability files written to "
                  << args.observeDir << "/ (see OBSERVE_INDEX.json)\n";
    std::cout << "\npaper (4 GPUs): Private 1.195, Private16x 1.140, "
                 "Shared 2.663, Cached 1.163, Dynamic 1.147, Ours "
                 "1.079; traffic 1.365 -> ~1.09\n";

    if (!args.jsonOut.empty()) {
        if (args.jsonOut == "-") {
            writeJson(std::cout, args, sweep, names, shaped, handles);
        } else {
            std::ofstream os(args.jsonOut);
            if (!os) {
                std::cerr << "cannot write " << args.jsonOut << "\n";
                return 1;
            }
            writeJson(os, args, sweep, names, shaped, handles);
        }
    }
    return 0;
}
