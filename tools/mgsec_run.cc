/**
 * @file
 * mgsec_run — the command-line front end of the simulator.
 *
 * Examples:
 *   mgsec_run --workload spmv --scheme dynamic --batching on
 *   mgsec_run --config my.cfg --stats-out stats.txt
 *   mgsec_run --workload mm --trace-record /tmp/mm   # write traces
 *   mgsec_run --trace-play /tmp/mm.gpu1.trace        # replay GPU 1
 */

#include <fstream>
#include <iostream>
#include <memory>

#include "core/json_out.hh"
#include "core/options.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "sim/json_writer.hh"
#include "workload/trace_io.hh"

using namespace mgsec;

int
main(int argc, char **argv)
{
    RunOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    opts.finalizeProfiler();
    if (!opts.finalizeObservability())
        return 1;

    const double scale = opts.exp.strongScaling
        ? opts.exp.scale * kScalingBaselineGpus / opts.exp.numGpus
        : opts.exp.scale;
    const WorkloadProfile profile =
        makeProfile(opts.workload, scale, opts.exp.numGpus);

    if (!opts.traceRecord.empty()) {
        for (NodeId g = 1; g <= opts.exp.numGpus; ++g) {
            const std::string path = strformat(
                "%s.gpu%u.trace", opts.traceRecord.c_str(), g);
            const std::uint64_t n = recordTrace(
                path, profile, g, opts.exp.numGpus + 1,
                opts.exp.seed);
            std::cout << "wrote " << n << " ops to " << path << "\n";
        }
        return 0;
    }

    auto build = [&](OtpScheme scheme, bool batching, bool observe) {
        ExperimentConfig e = opts.exp;
        e.scheme = scheme;
        e.batching = batching;
        if (!observe)
            e.observe = ObserveConfig{};
        auto sys = std::make_unique<MultiGpuSystem>(
            makeSystemConfig(e), profile);
        if (!opts.tracePlay.empty()) {
            sys->replaceWorkload(
                1, std::make_unique<TraceFileSource>(opts.tracePlay));
        }
        return sys;
    };

    auto sys = build(opts.exp.scheme, opts.exp.batching, true);
    const RunResult r = sys->run();
    if (!r.completed) {
        std::cerr << "run did not complete\n";
        return 1;
    }

    std::cout << "workload " << opts.workload << " on "
              << opts.exp.numGpus << " GPUs, scheme "
              << otpSchemeName(opts.exp.scheme)
              << (opts.exp.batching ? "+Batching" : "") << "\n";
    std::cout << "  cycles:        " << r.cycles << "\n";
    std::cout << "  traffic:       "
              << fmtBytes(static_cast<double>(r.totalBytes)) << "\n";
    std::cout << "  remote ops:    " << r.remoteOps << "\n";
    std::cout << "  local ops:     " << r.localOps << "\n";
    std::cout << "  migrations:    " << r.migrations << "\n";
    std::cout << "  avg latency:   "
              << fmtDouble(r.avgRemoteLatency, 0) << " cycles\n";
    if (opts.exp.scheme != OtpScheme::Unsecure) {
        for (Direction d : {Direction::Send, Direction::Recv}) {
            std::cout << "  OTP " << directionName(d) << ":      "
                      << fmtPct(r.otp.frac(d, OtpOutcome::Hit))
                      << " hit / "
                      << fmtPct(r.otp.frac(d, OtpOutcome::Partial))
                      << " partial / "
                      << fmtPct(r.otp.frac(d, OtpOutcome::Miss))
                      << " miss\n";
        }
    }

    if (opts.baseline && opts.exp.scheme != OtpScheme::Unsecure) {
        // The baseline never re-opens the primary run's sinks.
        auto base_sys = build(OtpScheme::Unsecure, false, false);
        const RunResult base = base_sys->run();
        if (base.completed) {
            std::cout << "  vs unsecure:   "
                      << fmtDouble(normalizedTime(r, base))
                      << "x time, "
                      << fmtDouble(normalizedTraffic(r, base))
                      << "x traffic\n";
        }
    }

    if (!opts.jsonOut.empty()) {
        if (opts.jsonOut == "-") {
            writeResultJson(std::cout, r);
        } else {
            std::ofstream os(opts.jsonOut);
            if (!os) {
                std::cerr << "cannot write " << opts.jsonOut << "\n";
                return 1;
            }
            writeResultJson(os, r);
        }
    }

    if (!opts.statsOut.empty()) {
        if (opts.statsOut == "-") {
            sys->dumpStats(std::cout);
        } else {
            std::ofstream os(opts.statsOut);
            if (!os) {
                std::cerr << "cannot write " << opts.statsOut << "\n";
                return 1;
            }
            sys->dumpStats(os);
            std::cout << "stats written to " << opts.statsOut << "\n";
        }
    }

    const ObserveConfig &obs = opts.exp.observe;
    if (!obs.metricsOut.empty())
        std::cout << "metrics written to " << obs.metricsOut << "\n";
    if (!obs.traceOut.empty())
        std::cout << "trace written to " << obs.traceOut << "\n";
    if (!obs.statsJsonOut.empty())
        std::cout << "stats JSON written to " << obs.statsJsonOut
                  << "\n";
    if (!obs.wireOut.empty())
        std::cout << "wire observer written to " << obs.wireOut
                  << "\n";
    if (!obs.profOut.empty())
        std::cout << "profiler written to " << obs.profOut
                  << (obs.profHostTrack ? " (host track in trace)"
                                        : "")
                  << "\n";

    if (!opts.observeDir.empty()) {
        // Single-entry manifest in the same schema mgsec_sweep
        // emits, so mgsec_report can consume either directory.
        const std::string path =
            opts.observeDir + "/OBSERVE_INDEX.json";
        std::ofstream os(path);
        if (!os) {
            std::cerr << "cannot write " << path << "\n";
            return 1;
        }
        JsonWriter w(os);
        w.beginObject();
        w.field("interval", static_cast<std::uint64_t>(
                                obs.metricsInterval));
        w.key("runs");
        w.beginArray();
        w.beginObject();
        w.field("hash", configHash(opts.workload, opts.exp));
        w.field("key", configKey(opts.workload, opts.exp));
        w.endObject();
        w.endArray();
        w.endObject();
        os << "\n";
        std::cout << "observability bundle in " << opts.observeDir
                  << "\n";
    }
    return 0;
}
