/**
 * @file
 * Adversarial tests: the channel runs with real cryptography and a
 * physical attacker (the Network tamper hook) meddles with packets
 * on the exposed interconnect. Every manipulation the threat model
 * cares about must be detected.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "net/network.hh"
#include "secure/secure_channel.hh"
#include "sim/event_queue.hh"

using namespace mgsec;

namespace
{

struct Rig
{
    EventQueue eq;
    Network net;
    std::vector<std::unique_ptr<SecureChannel>> ch;
    std::vector<std::vector<Packet>> delivered;

    explicit Rig(bool batching)
        : net("net", eq, 3, LinkParams{16.0, 50},
              LinkParams{25.0, 10}),
          delivered(3)
    {
        SecurityConfig cfg;
        cfg.scheme = OtpScheme::Private;
        cfg.batching = batching;
        cfg.batchSize = 4;
        cfg.functionalCrypto = true;
        for (NodeId n = 0; n < 3; ++n) {
            ch.push_back(std::make_unique<SecureChannel>(
                strformat("ch%u", n), eq, net, n, cfg));
            ch.back()->setDeliver([this, n](PacketPtr p) {
                delivered[n].push_back(std::move(*p));
            });
        }
    }

    void
    sendData(NodeId src, NodeId dst, int count)
    {
        for (int i = 0; i < count; ++i) {
            auto p = makePacket();
            p->type = PacketType::ReadResp;
            p->src = src;
            p->dst = dst;
            p->payloadBytes = kBlockBytes;
            ch[src]->send(std::move(p));
        }
    }

    std::uint64_t
    verified()
    {
        std::uint64_t n = 0;
        for (auto &c : ch)
            n += c->macsVerified();
        return n;
    }

    std::uint64_t
    failed()
    {
        std::uint64_t n = 0;
        for (auto &c : ch)
            n += c->macsFailed();
        return n;
    }
};

} // anonymous namespace

TEST(FunctionalCrypto, CleanChannelVerifiesEverything)
{
    Rig rig(false);
    rig.sendData(1, 2, 10);
    rig.eq.run();
    EXPECT_EQ(rig.verified(), 10u);
    EXPECT_EQ(rig.failed(), 0u);
    std::uint64_t ok = 0;
    for (auto &c : rig.ch)
        ok += c->decryptsOk();
    EXPECT_EQ(ok, 10u);
}

TEST(FunctionalCrypto, PacketsCarryRealCiphertext)
{
    Rig rig(false);
    rig.sendData(1, 2, 1);
    rig.eq.run();
    ASSERT_EQ(rig.delivered[2].size(), 1u);
    const Packet &p = rig.delivered[2][0];
    ASSERT_NE(p.func, nullptr);
    EXPECT_TRUE(p.func->hasCipher);
    EXPECT_TRUE(p.func->hasMac);
    // The ciphertext must not be the deterministic plaintext.
    bool any_diff = false;
    for (std::size_t i = 0; i < 8; ++i)
        any_diff |= p.func->cipher[i] !=
                    static_cast<std::uint8_t>(i * 7);
    EXPECT_TRUE(any_diff);
}

TEST(FunctionalCrypto, FlippedCiphertextBitIsDetected)
{
    Rig rig(false);
    int hit = 0;
    rig.net.setTamper([&](Packet &p) {
        if (p.func && p.func->hasCipher && hit++ == 3)
            p.func->cipher[17] ^= 0x01;
    });
    rig.sendData(1, 2, 10);
    rig.eq.run();
    EXPECT_EQ(rig.failed(), 1u);
    EXPECT_EQ(rig.verified(), 9u);
    std::uint64_t bad = 0;
    for (auto &c : rig.ch)
        bad += c->decryptsBad();
    EXPECT_EQ(bad, 1u);
}

TEST(FunctionalCrypto, ForgedMacIsDetected)
{
    Rig rig(false);
    rig.net.setTamper([&](Packet &p) {
        if (p.func && p.func->hasMac)
            p.func->mac[0] ^= 0xff;
    });
    rig.sendData(1, 2, 5);
    rig.eq.run();
    EXPECT_EQ(rig.verified(), 0u);
    EXPECT_EQ(rig.failed(), 5u);
}

TEST(FunctionalCrypto, StrippedPayloadIsDetected)
{
    Rig rig(false);
    rig.net.setTamper([&](Packet &p) {
        // The attacker drops the crypto material entirely.
        p.func.reset();
    });
    rig.sendData(1, 2, 4);
    rig.eq.run();
    EXPECT_EQ(rig.verified(), 0u);
    EXPECT_EQ(rig.failed(), 4u);
}

TEST(FunctionalCrypto, CleanBatchVerifiesOnce)
{
    Rig rig(true);
    rig.sendData(1, 2, 4); // exactly one batch
    rig.eq.run();
    EXPECT_EQ(rig.verified(), 1u); // one batched MAC
    EXPECT_EQ(rig.failed(), 0u);
}

TEST(FunctionalCrypto, TamperedBatchMemberBreaksBatchMac)
{
    Rig rig(true);
    int n = 0;
    rig.net.setTamper([&](Packet &p) {
        if (p.func && p.func->hasCipher && n++ == 1)
            p.func->cipher[0] ^= 0x80;
    });
    rig.sendData(1, 2, 4);
    rig.eq.run();
    EXPECT_EQ(rig.verified(), 0u);
    EXPECT_EQ(rig.failed(), 1u); // the whole batch fails
}

TEST(FunctionalCrypto, FlushedShortBatchStillVerifies)
{
    Rig rig(true);
    rig.sendData(1, 2, 2); // below batch size
    rig.eq.run(30);
    rig.ch[1]->drainBatches(); // standalone trailer
    rig.eq.run();
    EXPECT_EQ(rig.verified(), 1u);
    EXPECT_EQ(rig.failed(), 0u);
}

TEST(FunctionalCrypto, TamperedTrailerDetected)
{
    Rig rig(true);
    rig.net.setTamper([&](Packet &p) {
        if (p.type == PacketType::BatchMac && p.func)
            p.func->mac[3] ^= 0x10;
    });
    rig.sendData(1, 2, 2);
    rig.eq.run(30);
    rig.ch[1]->drainBatches();
    rig.eq.run();
    EXPECT_EQ(rig.failed(), 1u);
}

TEST(FunctionalCrypto, EndToEndSystemRunStaysClean)
{
    // A whole multi-GPU run with real crypto on every message: all
    // MACs verify, every payload decrypts to what was sent.
    ExperimentConfig e;
    e.scheme = OtpScheme::Dynamic;
    e.batching = true;
    e.scale = 0.05;
    SystemConfig sc = makeSystemConfig(e);
    sc.security.functionalCrypto = true;
    MultiGpuSystem sys(sc, makeProfile("mm", e.scale));
    const RunResult r = sys.run();
    EXPECT_TRUE(r.completed);
    std::uint64_t verified = 0, failed = 0, bad = 0;
    for (NodeId n = 0; n < sys.numNodes(); ++n) {
        verified += sys.node(n).channel().macsVerified();
        failed += sys.node(n).channel().macsFailed();
        bad += sys.node(n).channel().decryptsBad();
    }
    EXPECT_GT(verified, 0u);
    EXPECT_EQ(failed, 0u);
    EXPECT_EQ(bad, 0u);
}

TEST(FunctionalCrypto, MismatchedSessionKeysFailEverything)
{
    EventQueue eq;
    Network net("net", eq, 3, LinkParams{16.0, 50},
                LinkParams{25.0, 10});
    SecurityConfig a;
    a.scheme = OtpScheme::Private;
    a.functionalCrypto = true;
    SecurityConfig b = a;
    b.sessionKey[0] ^= 0x01; // key exchange went wrong

    std::vector<std::unique_ptr<SecureChannel>> ch;
    ch.push_back(std::make_unique<SecureChannel>("c0", eq, net, 0, a));
    ch.push_back(std::make_unique<SecureChannel>("c1", eq, net, 1, a));
    ch.push_back(std::make_unique<SecureChannel>("c2", eq, net, 2, b));
    for (auto &c : ch)
        c->setDeliver([](PacketPtr) {});

    for (int i = 0; i < 5; ++i) {
        auto p = makePacket();
        p->type = PacketType::ReadResp;
        p->src = 1;
        p->dst = 2;
        p->payloadBytes = kBlockBytes;
        ch[1]->send(std::move(p));
    }
    eq.run();
    EXPECT_EQ(ch[2]->macsVerified(), 0u);
    EXPECT_EQ(ch[2]->macsFailed(), 5u);
    EXPECT_EQ(ch[2]->decryptsOk(), 0u);
}
