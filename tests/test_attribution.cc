/**
 * @file
 * Tests for the per-message latency attribution layer: stage
 * histograms must conserve exactly (components sum to end-to-end)
 * under every scheme, and enabling attribution must never perturb
 * simulated results.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/experiment.hh"
#include "core/json_in.hh"
#include "sim/latency_attr.hh"
#include "sim/logging.hh"
#include "sim/lifecycle.hh"
#include "workload/profile.hh"

using namespace mgsec;

namespace
{

ExperimentConfig
smallConfig(OtpScheme scheme, bool batching, std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.batching = batching;
    cfg.scale = 0.05;
    cfg.seed = seed;
    return cfg;
}

/** Run one config with attribution on; return the system's results. */
RunResult
runAttributed(const ExperimentConfig &cfg, const std::string &wl,
              std::unique_ptr<MultiGpuSystem> &sys_out)
{
    const WorkloadProfile profile =
        makeProfile(wl, cfg.scale, cfg.numGpus);
    sys_out = std::make_unique<MultiGpuSystem>(makeSystemConfig(cfg),
                                               profile);
    sys_out->enableAttribution();
    return sys_out->run();
}

} // namespace

/**
 * The conservation invariant: every delivered message contributes to
 * every stage histogram exactly once, and the telescoping stage
 * durations reconstruct the end-to-end latency tick for tick.
 */
class AttributionConservation
    : public ::testing::TestWithParam<std::tuple<OtpScheme, bool>>
{};

TEST_P(AttributionConservation, StagesSumToEndToEndExactly)
{
    const auto [scheme, batching] = GetParam();
    for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
        std::unique_ptr<MultiGpuSystem> sys;
        const RunResult r = runAttributed(
            smallConfig(scheme, batching, seed), "mm", sys);
        ASSERT_TRUE(r.completed);

        const LatencyAttribution *attr = sys->attribution();
        ASSERT_NE(attr, nullptr);
        EXPECT_GT(attr->folds(), 0u);

        std::uint64_t e2e_count = 0;
        for (std::size_t l = 0; l < attr->numLinks(); ++l) {
            const LinkType link = static_cast<LinkType>(l);
            const stats::Histogram &e2e = attr->e2e(link);
            e2e_count += e2e.count();
            std::uint64_t stage_sum = 0;
            for (std::size_t s = 0; s < kNumLifeStages; ++s) {
                const stats::Histogram &st = attr->stage(link, s);
                // One fold feeds every stage of its link.
                EXPECT_EQ(st.count(), e2e.count())
                    << linkTypeName(link) << "." << lifeStageName(s)
                    << " seed " << seed;
                stage_sum += st.sum();
            }
            EXPECT_EQ(stage_sum, e2e.sum())
                << linkTypeName(link) << " seed " << seed;
        }
        EXPECT_EQ(e2e_count, attr->folds());
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndBatching, AttributionConservation,
    ::testing::Combine(::testing::Values(OtpScheme::Unsecure,
                                         OtpScheme::Private,
                                         OtpScheme::Shared,
                                         OtpScheme::Cached,
                                         OtpScheme::Dynamic),
                       ::testing::Bool()));

/**
 * Scale invariance: the telescope is a per-message identity, so it
 * must survive any GPU count and any fabric — the histograms grow,
 * the invariant does not. Runs the 5-stage conservation check at
 * 4/8/16/64 GPUs on every topology, and pins the active-link-prefix
 * contract (p2p registers 2 classes, nvswitch 3, hier 4).
 */
class AttributionScaleInvariance
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, TopologyKind>>
{};

TEST_P(AttributionScaleInvariance, TelescopeHoldsOnEveryFabric)
{
    const auto [gpus, kind] = GetParam();
    ExperimentConfig cfg = smallConfig(OtpScheme::Dynamic, true, 1);
    cfg.numGpus = gpus;
    cfg.topology.kind = kind;
    // Weak scaling multiplies total work by the GPU count; shrink
    // the per-GPU slice so the 64-GPU points stay test-sized.
    cfg.scale = gpus > 16 ? 0.01 : 0.03;

    std::unique_ptr<MultiGpuSystem> sys;
    const RunResult r = runAttributed(cfg, "mm", sys);
    ASSERT_TRUE(r.completed);

    const LatencyAttribution *attr = sys->attribution();
    ASSERT_NE(attr, nullptr);
    const std::size_t want_links =
        kind == TopologyKind::P2p        ? kP2pLinkClasses
        : kind == TopologyKind::NvSwitch ? 3u
                                         : 4u;
    EXPECT_EQ(attr->numLinks(), want_links);
    EXPECT_GT(attr->folds(), 0u);

    std::uint64_t e2e_count = 0;
    for (std::size_t l = 0; l < attr->numLinks(); ++l) {
        const LinkType link = static_cast<LinkType>(l);
        const stats::Histogram &e2e = attr->e2e(link);
        e2e_count += e2e.count();
        std::uint64_t stage_sum = 0;
        for (std::size_t s = 0; s < kNumLifeStages; ++s) {
            const stats::Histogram &st = attr->stage(link, s);
            EXPECT_EQ(st.count(), e2e.count())
                << linkTypeName(link) << "." << lifeStageName(s)
                << " at " << gpus << " GPUs";
            stage_sum += st.sum();
        }
        EXPECT_EQ(stage_sum, e2e.sum())
            << linkTypeName(link) << " at " << gpus << " GPUs";
    }
    EXPECT_EQ(e2e_count, attr->folds());
}

INSTANTIATE_TEST_SUITE_P(
    GpusAndFabrics, AttributionScaleInvariance,
    ::testing::Combine(::testing::Values(4u, 8u, 16u, 64u),
                       ::testing::Values(TopologyKind::P2p,
                                         TopologyKind::NvSwitch,
                                         TopologyKind::Hier)),
    [](const auto &info) {
        return strformat("g%u_%s", std::get<0>(info.param),
                         topologyKindName(std::get<1>(info.param)));
    });

TEST(Attribution, DoesNotPerturbSimulatedResults)
{
    const ExperimentConfig cfg =
        smallConfig(OtpScheme::Dynamic, true, 3);
    const RunResult plain = runWorkload("mm", cfg);

    std::unique_ptr<MultiGpuSystem> sys;
    const RunResult attributed = runAttributed(cfg, "mm", sys);

    EXPECT_EQ(attributed.cycles, plain.cycles);
    EXPECT_EQ(attributed.totalBytes, plain.totalBytes);
    EXPECT_EQ(attributed.packets, plain.packets);
    EXPECT_EQ(attributed.remoteOps, plain.remoteOps);
    EXPECT_EQ(attributed.standaloneAcks, plain.standaloneAcks);
}

TEST(Attribution, PadStallKnobDelaysOnlySecuredSends)
{
    // The hidden CI fault injector must lengthen the run (it delays
    // departures) — that is what the report gate's self-check keys on.
    ExperimentConfig cfg = smallConfig(OtpScheme::Dynamic, true, 3);
    const RunResult plain = runWorkload("mm", cfg);
    cfg.debugPadStallPct = 50;
    const RunResult stalled = runWorkload("mm", cfg);
    EXPECT_GT(stalled.cycles, plain.cycles);

    // The unsecure path has no pad wait to inflate.
    ExperimentConfig uns = smallConfig(OtpScheme::Unsecure, false, 3);
    const RunResult ubase = runWorkload("mm", uns);
    uns.debugPadStallPct = 50;
    const RunResult ustall = runWorkload("mm", uns);
    EXPECT_EQ(ustall.cycles, ubase.cycles);
}

TEST(Attribution, StatsJsonCarriesAttrGroupOnlyWhenEnabled)
{
    const ExperimentConfig cfg =
        smallConfig(OtpScheme::Private, false, 1);
    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);

    {
        MultiGpuSystem sys(makeSystemConfig(cfg), profile);
        sys.run();
        std::ostringstream os;
        sys.dumpStatsJson(os);
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(jsonParse(os.str(), doc, err)) << err;
        EXPECT_EQ(doc.find("attr"), nullptr);
    }
    {
        MultiGpuSystem sys(makeSystemConfig(cfg), profile);
        sys.enableAttribution();
        sys.run();
        std::ostringstream os;
        sys.dumpStatsJson(os);
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(jsonParse(os.str(), doc, err)) << err;
        const JsonValue *attr = doc.find("attr");
        ASSERT_NE(attr, nullptr);
        EXPECT_NE(attr->find("nvlink.e2e"), nullptr);
        EXPECT_NE(attr->find("pcie.padWait"), nullptr);
    }
}

TEST(Attribution, ResetStatsClearsHistograms)
{
    std::unique_ptr<MultiGpuSystem> sys;
    runAttributed(smallConfig(OtpScheme::Shared, false, 1), "mm",
                  sys);
    ASSERT_GT(sys->attribution()->folds(), 0u);
    sys->resetStats();
    EXPECT_EQ(sys->attribution()->folds(), 0u);
    for (std::size_t l = 0; l < sys->attribution()->numLinks(); ++l)
        EXPECT_EQ(
            sys->attribution()->e2e(static_cast<LinkType>(l)).count(),
            0u);
}
