/**
 * @file
 * Report/table formatting tests, plus logging helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"
#include "sim/logging.hh"

using namespace mgsec;

TEST(Table, PrintsHeaderSeparatorAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlign)
{
    Table t({"a", "b"});
    t.addRow({"longvalue", "x"});
    std::ostringstream os;
    t.print(os);
    std::istringstream is(os.str());
    std::string header, sep, row;
    std::getline(is, header);
    std::getline(is, sep);
    std::getline(is, row);
    // 'b' and 'x' start at the same column.
    EXPECT_EQ(header.find('b'), row.find('x'));
}

TEST(TableDeath, RowWidthMustMatch)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Format, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 3), "2.000");
}

TEST(Format, FmtPct)
{
    EXPECT_EQ(fmtPct(0.1234), "12.3%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(Format, FmtBytes)
{
    EXPECT_EQ(fmtBytes(512), "512.00 B");
    EXPECT_EQ(fmtBytes(2816), "2.75 KB");
    EXPECT_EQ(fmtBytes(3.0 * 1024 * 1024), "3.00 MB");
}

TEST(Logging, StrformatBehavesLikePrintf)
{
    EXPECT_EQ(strformat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strformat("%03u", 7u), "007");
    EXPECT_EQ(strformat("plain"), "plain");
}

TEST(LoggingDeath, AssertMacroPanicsWithContext)
{
    EXPECT_DEATH(MGSEC_ASSERT(1 == 2, "value was %d", 3),
                 "assertion");
}
