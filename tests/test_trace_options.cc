/**
 * @file
 * Trace record/replay and RunOptions tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/options.hh"
#include "core/system.hh"
#include "workload/trace_io.hh"

using namespace mgsec;

// --------------------------------------------------------------- trace IO

TEST(TraceIo, RoundTripPreservesEveryOp)
{
    const WorkloadProfile p = makeProfile("mm", 0.05);
    TraceSource src(p, 1, 5, 42);
    std::stringstream buf;
    const std::uint64_t written = writeTrace(buf, src);
    EXPECT_EQ(written, p.opsPerGpu);

    TraceFileSource replay(buf);
    EXPECT_EQ(replay.totalOps(), p.opsPerGpu);

    TraceSource fresh(p, 1, 5, 42);
    RemoteOp a, b;
    while (fresh.next(a)) {
        ASSERT_TRUE(replay.next(b));
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.dst, b.dst);
        EXPECT_EQ(a.write, b.write);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.migratable, b.migratable);
    }
    EXPECT_FALSE(replay.next(b));
}

TEST(TraceIo, HeaderIsValidated)
{
    std::stringstream bad("not-a-trace v1 3\n");
    EXPECT_DEATH(TraceFileSource{bad}, "mgsec-trace");
}

TEST(TraceIo, TruncationDetected)
{
    std::stringstream buf("mgsec-trace v1 5\n1 0 0 64 0\n");
    EXPECT_DEATH(TraceFileSource{buf}, "truncated");
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/mgsec_test_trace.trace";
    const WorkloadProfile p = makeProfile("fir", 0.2);
    const std::uint64_t n = recordTrace(path, p, 2, 5, 7);
    EXPECT_EQ(n, p.opsPerGpu);
    TraceFileSource replay(path);
    EXPECT_EQ(replay.totalOps(), n);
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayedRunMatchesSyntheticRun)
{
    // Replaying GPU 1's recorded trace must reproduce the original
    // system behaviour exactly (all other GPUs stay synthetic).
    ExperimentConfig e;
    e.scheme = OtpScheme::Private;
    e.scale = 0.05;
    const SystemConfig sc = makeSystemConfig(e);
    const WorkloadProfile p = makeProfile("mm", e.scale);

    MultiGpuSystem direct(sc, p);
    const RunResult a = direct.run();

    std::stringstream buf;
    TraceSource src(p, 1, 5, sc.seed);
    writeTrace(buf, src);
    MultiGpuSystem replayed(sc, p);
    replayed.replaceWorkload(1,
                             std::make_unique<TraceFileSource>(buf));
    const RunResult b = replayed.run();

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalBytes, b.totalBytes);
}

// ---------------------------------------------------------------- options

TEST(RunOptions, DefaultsAreSane)
{
    RunOptions o;
    EXPECT_EQ(o.workload, "mm");
    EXPECT_EQ(o.exp.numGpus, 4u);
    EXPECT_EQ(o.exp.scheme, OtpScheme::Private);
}

TEST(RunOptions, SetKnownKeys)
{
    RunOptions o;
    EXPECT_TRUE(o.set("workload", "spmv"));
    EXPECT_TRUE(o.set("gpus", "8"));
    EXPECT_TRUE(o.set("scheme", "dynamic"));
    EXPECT_TRUE(o.set("batching", "on"));
    EXPECT_TRUE(o.set("otp-mult", "16"));
    EXPECT_TRUE(o.set("aes-latency", "10"));
    EXPECT_TRUE(o.set("scale", "0.5"));
    EXPECT_EQ(o.workload, "spmv");
    EXPECT_EQ(o.exp.numGpus, 8u);
    EXPECT_EQ(o.exp.scheme, OtpScheme::Dynamic);
    EXPECT_TRUE(o.exp.batching);
    EXPECT_EQ(o.exp.otpMult, 16u);
    EXPECT_EQ(o.exp.aesLatency, 10u);
    EXPECT_DOUBLE_EQ(o.exp.scale, 0.5);
}

TEST(RunOptions, RejectsUnknownKey)
{
    RunOptions o;
    EXPECT_FALSE(o.set("frobnicate", "1"));
}

TEST(RunOptions, RejectsBadValues)
{
    RunOptions o;
    EXPECT_FALSE(o.set("scheme", "quantum"));
    EXPECT_FALSE(o.set("batching", "maybe"));
}

TEST(RunOptions, ParseArgv)
{
    RunOptions o;
    const char *argv[] = {"prog", "--workload", "pr", "--scheme",
                          "cached", "--seed", "9"};
    EXPECT_TRUE(o.parse(7, const_cast<char **>(argv)));
    EXPECT_EQ(o.workload, "pr");
    EXPECT_EQ(o.exp.scheme, OtpScheme::Cached);
    EXPECT_EQ(o.exp.seed, 9u);
}

TEST(RunOptions, ParseRejectsDanglingFlag)
{
    RunOptions o;
    const char *argv[] = {"prog", "--workload"};
    EXPECT_FALSE(o.parse(2, const_cast<char **>(argv)));
}

TEST(RunOptions, ConfigFileRoundTrip)
{
    const std::string path = "/tmp/mgsec_test_options.cfg";
    {
        std::ofstream os(path);
        os << "# a comment\n"
           << "workload = syr2k\n"
           << "scheme = shared   # trailing comment\n"
           << "gpus = 16\n"
           << "\n";
    }
    RunOptions o;
    EXPECT_TRUE(o.loadFile(path));
    EXPECT_EQ(o.workload, "syr2k");
    EXPECT_EQ(o.exp.scheme, OtpScheme::Shared);
    EXPECT_EQ(o.exp.numGpus, 16u);
    std::remove(path.c_str());
}

TEST(RunOptions, ConfigFileBadLineFails)
{
    const std::string path = "/tmp/mgsec_test_options_bad.cfg";
    {
        std::ofstream os(path);
        os << "this is not a key value pair\n";
    }
    RunOptions o;
    EXPECT_FALSE(o.loadFile(path));
    std::remove(path.c_str());
}

TEST(ParseScheme, AllNamesCaseInsensitive)
{
    OtpScheme s;
    EXPECT_TRUE(parseScheme("Private", s));
    EXPECT_EQ(s, OtpScheme::Private);
    EXPECT_TRUE(parseScheme("SHARED", s));
    EXPECT_EQ(s, OtpScheme::Shared);
    EXPECT_TRUE(parseScheme("none", s));
    EXPECT_EQ(s, OtpScheme::Unsecure);
    EXPECT_FALSE(parseScheme("", s));
}

// -------------------------------------------------------------- stat dump

TEST(StatsDump, ContainsPrefixedComponentStats)
{
    ExperimentConfig e;
    e.scheme = OtpScheme::Private;
    e.scale = 0.05;
    MultiGpuSystem sys(makeSystemConfig(e),
                       makeProfile("mm", e.scale));
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("net.packets"), std::string::npos);
    EXPECT_NE(s.find("gpu1.remoteOps"), std::string::npos);
    EXPECT_NE(s.find("gpu1.channel.pads.sendHits"),
              std::string::npos);
    EXPECT_NE(s.find("pt.migrations"), std::string::npos);
    EXPECT_NE(s.find("cpu.mem.accesses"), std::string::npos);
}
