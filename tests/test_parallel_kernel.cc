/**
 * @file
 * Tests for the domain-sharded conservative-PDES kernel: raw
 * barrier-window mechanics (lookahead horizons, same-window chains,
 * crossing accounting), serial-vs-parallel result equality across
 * schemes x batching x workloads, run-to-run determinism and
 * thread-count invariance, attribution conservation on sharded runs,
 * and sharded-vs-serial verdict equality on the verify testbed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "sim/domain.hh"
#include "sim/latency_attr.hh"
#include "sim/parallel_kernel.hh"
#include "verify/fuzz.hh"
#include "workload/profile.hh"

using namespace mgsec;

namespace
{

/** A captured cross-domain message for the raw-kernel tests. */
struct Mail
{
    Tick sendTick = 0;
    DomainId dst = 0;
    int payload = 0;
};

/**
 * Minimal two-domain rig: domains post Mail into a shared outbox
 * (only ever touched inside windows by the posting domain and at
 * barriers by the coordinator — the same single-writer discipline the
 * Network's capture lanes use) and the exchange hook replays each
 * mail into its destination queue at sendTick + lookahead.
 */
struct Rig
{
    explicit Rig(std::size_t ndomains)
    {
        domains.push_back(std::make_unique<Domain>(0, host));
        for (DomainId d = 1; d < ndomains; ++d)
            domains.push_back(std::make_unique<Domain>(d));
    }

    ParallelKernelConfig
    kernelConfig(unsigned threads, Tick lookahead)
    {
        ParallelKernelConfig k;
        for (auto &d : domains)
            k.domains.push_back(d.get());
        k.threads = threads;
        k.lookahead = lookahead;
        k.exchange = [this, lookahead]() {
            std::uint64_t n = 0;
            for (const Mail &m : outbox) {
                delivered.push_back(m);
                domains[m.dst]->eq().schedule(
                    m.sendTick + lookahead, [] {});
                ++n;
            }
            outbox.clear();
            return n;
        };
        return k;
    }

    EventQueue host;
    std::vector<std::unique_ptr<Domain>> domains;
    std::vector<Mail> outbox;
    std::vector<Mail> delivered;
};

} // anonymous namespace

TEST(ParallelKernelRaw, DeliveryAtExactLookaheadHorizon)
{
    // A message sent at the very first tick of a window arrives at
    // sendTick + L — exactly the first tick of the *next* window, the
    // tightest landing the conservative contract allows. It must be
    // schedulable (not "into the past") and must execute.
    constexpr Tick kLookahead = 10;
    Rig rig(2);
    std::vector<Tick> arrivals;
    rig.domains[1]->eq().schedule(
        0, [&] { rig.outbox.push_back(Mail{0, 0, 1}); });
    // Observe domain 0 executing the replayed event.
    ParallelKernelConfig k = rig.kernelConfig(2, kLookahead);
    auto exchange = k.exchange;
    k.exchange = [&, exchange]() {
        const std::uint64_t n = exchange();
        return n;
    };
    ParallelKernel kernel(std::move(k));
    kernel.run(0);
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.delivered[0].sendTick, 0u);
    EXPECT_EQ(rig.domains[0]->eq().now(), kLookahead);
    EXPECT_EQ(kernel.domainCrossings(), 1u);
}

TEST(ParallelKernelRaw, WindowEdgeEventsSplitAtTheBarrier)
{
    // Events at ticks L-1 and L sit on opposite sides of the first
    // barrier: with one worker thread the interleaving of event
    // bodies and barrier hooks is observable and must put exactly one
    // barrier between them.
    constexpr Tick kLookahead = 10;
    Rig rig(2);
    std::vector<std::string> log;
    rig.domains[1]->eq().schedule(kLookahead - 1,
                                  [&] { log.push_back("edge"); });
    rig.domains[1]->eq().schedule(kLookahead,
                                  [&] { log.push_back("next"); });
    ParallelKernelConfig k = rig.kernelConfig(1, kLookahead);
    k.atBarrier = [&](Tick) { log.push_back("barrier"); };
    ParallelKernel kernel(std::move(k));
    kernel.run(0);
    ASSERT_GE(log.size(), 3u);
    EXPECT_EQ(log[0], "edge");
    EXPECT_EQ(log[1], "barrier");
    EXPECT_EQ(log[2], "next");
}

TEST(ParallelKernelRaw, SameTickChainRunsInsideOneWindow)
{
    // Zero-latency same-domain work (an event scheduling more work at
    // its own tick) completes within the window — sharding must not
    // defer intra-domain causality to a barrier.
    constexpr Tick kLookahead = 100;
    Rig rig(2);
    int steps = 0;
    rig.domains[0]->eq().schedule(5, [&] {
        ++steps;
        rig.domains[0]->eq().schedule(5, [&] { ++steps; });
    });
    ParallelKernel kernel(rig.kernelConfig(2, kLookahead));
    kernel.run(0);
    EXPECT_EQ(steps, 2);
    EXPECT_EQ(kernel.windows(), 1u);
}

TEST(ParallelKernelRaw, ResumesAcrossKernelLegs)
{
    // The testbed runs one kernel per leg, resuming at the returned
    // window start; a second leg must see events scheduled after the
    // first leg's horizon.
    constexpr Tick kLookahead = 10;
    Rig rig(2);
    int ran = 0;
    rig.domains[1]->eq().schedule(7, [&] { ++ran; });
    ParallelKernel first(rig.kernelConfig(2, kLookahead));
    const Tick next = first.run(0);
    EXPECT_EQ(ran, 1);
    EXPECT_GT(next, 7u);

    rig.domains[1]->eq().schedule(next + 3, [&] { ++ran; });
    ParallelKernel second(rig.kernelConfig(2, kLookahead));
    second.run(next);
    EXPECT_EQ(ran, 2);
}

namespace
{

ExperimentConfig
quickConfig(OtpScheme scheme, bool batching,
            std::uint32_t threads)
{
    ExperimentConfig e;
    e.numGpus = 4;
    e.scheme = scheme;
    e.batching = batching;
    e.scale = 0.05;
    e.simThreads = threads;
    return e;
}

/** Relative-tolerance check for timing-derived aggregates. */
void
expectClose(std::uint64_t serial, std::uint64_t parallel,
            double tol_pct, const char *what)
{
    const double base = static_cast<double>(serial);
    const double delta =
        serial != 0
            ? std::fabs(static_cast<double>(parallel) - base) /
                  base * 100.0
            : (parallel != 0 ? 100.0 : 0.0);
    EXPECT_LE(delta, tol_pct)
        << what << ": serial=" << serial << " parallel=" << parallel;
}

/**
 * The serial-vs-parallel contract: timing-independent results are
 * exactly equal; timing-derived aggregates agree within a small
 * tolerance (same-tick cross-domain ties merge in a different order
 * than the serial global event sequence).
 */
void
expectEquivalent(const RunResult &serial, const RunResult &parallel)
{
    ASSERT_TRUE(serial.completed);
    ASSERT_TRUE(parallel.completed);
    EXPECT_EQ(serial.remoteOps, parallel.remoteOps);
    EXPECT_EQ(serial.localOps, parallel.localOps);
    EXPECT_EQ(serial.migrations, parallel.migrations);
    expectClose(serial.cycles, parallel.cycles, 2.0, "cycles");
    expectClose(serial.totalBytes, parallel.totalBytes, 2.0,
                "totalBytes");
    expectClose(serial.packets, parallel.packets, 2.0, "packets");
}

} // anonymous namespace

class SerialParallelEquality
    : public ::testing::TestWithParam<std::tuple<OtpScheme, bool>>
{};

TEST_P(SerialParallelEquality, ShardedRunMatchesSerial)
{
    const auto [scheme, batching] = GetParam();
    const RunResult serial =
        runWorkload("mm", quickConfig(scheme, batching, 1));
    const RunResult parallel =
        runWorkload("mm", quickConfig(scheme, batching, 2));
    expectEquivalent(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndBatching, SerialParallelEquality,
    ::testing::Combine(::testing::Values(OtpScheme::Unsecure,
                                         OtpScheme::Private,
                                         OtpScheme::Shared,
                                         OtpScheme::Cached,
                                         OtpScheme::Dynamic),
                       ::testing::Bool()));

TEST(ParallelKernel, EquivalentAcrossWorkloads)
{
    for (const char *wl : {"mm", "atax", "spmv"}) {
        const RunResult serial =
            runWorkload(wl, quickConfig(OtpScheme::Dynamic, true, 1));
        const RunResult parallel =
            runWorkload(wl, quickConfig(OtpScheme::Dynamic, true, 2));
        SCOPED_TRACE(wl);
        expectEquivalent(serial, parallel);
    }
}

TEST(ParallelKernel, ParallelRunsAreDeterministic)
{
    const ExperimentConfig cfg =
        quickConfig(OtpScheme::Dynamic, true, 2);
    const RunResult a = runWorkload("mm", cfg);
    const RunResult b = runWorkload("mm", cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalBytes, b.totalBytes);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.remoteOps, b.remoteOps);
    EXPECT_EQ(a.otp.counts, b.otp.counts);
    EXPECT_EQ(a.pdesWindows, b.pdesWindows);
    EXPECT_EQ(a.domainCrossings, b.domainCrossings);
}

TEST(ParallelKernel, ResultsAreThreadCountInvariant)
{
    // 2 vs 4 worker threads: identical domain partition, identical
    // barrier merge order, so byte-identical results.
    const RunResult two =
        runWorkload("mm", quickConfig(OtpScheme::Private, false, 2));
    const RunResult four =
        runWorkload("mm", quickConfig(OtpScheme::Private, false, 4));
    EXPECT_EQ(two.cycles, four.cycles);
    EXPECT_EQ(two.totalBytes, four.totalBytes);
    EXPECT_EQ(two.packets, four.packets);
    EXPECT_EQ(two.remoteOps, four.remoteOps);
    EXPECT_EQ(two.localOps, four.localOps);
    EXPECT_EQ(two.migrations, four.migrations);
    EXPECT_EQ(two.otp.counts, four.otp.counts);
    EXPECT_EQ(two.pdesWindows, four.pdesWindows);
    EXPECT_EQ(two.domainCrossings, four.domainCrossings);
    EXPECT_EQ(two.windowStalls, four.windowStalls);
}

TEST(ParallelKernel, ShardedAccountingIsReported)
{
    const RunResult parallel =
        runWorkload("mm", quickConfig(OtpScheme::Dynamic, true, 2));
    EXPECT_EQ(parallel.simThreads, 2u);
    EXPECT_GT(parallel.pdesWindows, 0u);
    EXPECT_GT(parallel.domainCrossings, 0u);

    const RunResult serial =
        runWorkload("mm", quickConfig(OtpScheme::Dynamic, true, 1));
    EXPECT_EQ(serial.simThreads, 1u);
    EXPECT_EQ(serial.pdesWindows, 0u);
    EXPECT_EQ(serial.domainCrossings, 0u);
}

TEST(ParallelKernel, AttributionConservesOnShardedRun)
{
    // The telescoping invariant must survive sharding: stage
    // histograms still sum to end-to-end tick for tick even when
    // folds happen concurrently on domain threads.
    ExperimentConfig cfg = quickConfig(OtpScheme::Dynamic, true, 2);
    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);
    MultiGpuSystem sys(makeSystemConfig(cfg), profile);
    sys.enableAttribution();
    const RunResult r = sys.run();
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.pdesWindows, 0u);

    const LatencyAttribution *attr = sys.attribution();
    ASSERT_NE(attr, nullptr);
    EXPECT_GT(attr->folds(), 0u);
    std::uint64_t e2e_count = 0;
    for (std::size_t l = 0; l < attr->numLinks(); ++l) {
        const LinkType link = static_cast<LinkType>(l);
        const stats::Histogram &e2e = attr->e2e(link);
        e2e_count += e2e.count();
        std::uint64_t stage_sum = 0;
        for (std::size_t s = 0; s < kNumLifeStages; ++s) {
            const stats::Histogram &st = attr->stage(link, s);
            EXPECT_EQ(st.count(), e2e.count())
                << linkTypeName(link) << "." << lifeStageName(s);
            stage_sum += st.sum();
        }
        EXPECT_EQ(stage_sum, e2e.sum()) << linkTypeName(link);
    }
    EXPECT_EQ(e2e_count, attr->folds());
}

TEST(ParallelKernel, ShardedTestbedVerdictMatchesSerial)
{
    // The verify testbed under attack: every verdict and detection
    // counter must be identical between the serial and sharded
    // kernels — only findings append order and exact delivery ticks
    // may differ.
    using namespace mgsec::verify;
    TestbedConfig cfg;
    cfg.numNodes = 4;
    cfg.scheme = OtpScheme::Private;
    cfg.messages = 60;
    cfg.seed = 11;
    cfg.script.push_back(AttackStep{AttackClass::PayloadFlip, 2, 0});
    cfg.script.push_back(AttackStep{AttackClass::Replay, 1, 0});

    cfg.simThreads = 1;
    const CaseOutcome serial = runCase(cfg);
    cfg.simThreads = 2;
    const CaseOutcome sharded = runCase(cfg);

    EXPECT_EQ(serial.failed, sharded.failed);
    EXPECT_EQ(serial.result.findings.size(),
              sharded.result.findings.size());
    EXPECT_EQ(serial.result.attacksMounted,
              sharded.result.attacksMounted);
    EXPECT_EQ(serial.result.stepsFired, sharded.result.stepsFired);
    EXPECT_EQ(serial.result.delivered, sharded.result.delivered);
    EXPECT_EQ(serial.result.droppedPackets,
              sharded.result.droppedPackets);
    EXPECT_EQ(serial.result.macsFailed, sharded.result.macsFailed);
    EXPECT_EQ(serial.result.macsVerified,
              sharded.result.macsVerified);
    EXPECT_EQ(serial.result.replaySuspects,
              sharded.result.replaySuspects);
    EXPECT_EQ(serial.result.neutralized.size(),
              sharded.result.neutralized.size());
}

TEST(ParallelKernel, ShardedTestbedStillCatchesSeededBugs)
{
    // The oracle must not go blind under sharding: a seeded channel
    // bug has to produce findings on the parallel kernel too.
    using namespace mgsec::verify;
    TestbedConfig cfg;
    cfg.numNodes = 3;
    cfg.scheme = OtpScheme::Private;
    cfg.messages = 48;
    cfg.seed = 5;
    cfg.bug = SeededBug::CounterSkip;
    cfg.simThreads = 2;
    const CaseOutcome oc = runCase(cfg);
    EXPECT_TRUE(oc.failed);
    EXPECT_FALSE(oc.result.findings.empty());
}
