/**
 * @file
 * Observability-layer tests: the trace / metrics / stats-JSON sinks
 * must be deterministic, must never perturb simulated results, the
 * metric ring must wrap correctly, and every JSON emitter must
 * escape hostile stat names and descriptions.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/experiment.hh"
#include "core/json_in.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "sim/event_queue.hh"
#include "sim/json_writer.hh"
#include "sim/metric_sampler.hh"
#include "sim/stats.hh"
#include "sim/trace_sink.hh"

using namespace mgsec;

namespace
{

ExperimentConfig
quick()
{
    ExperimentConfig e;
    e.scheme = OtpScheme::Dynamic;
    e.batching = true;
    e.scale = 0.08;
    return e;
}

struct Captured
{
    RunResult result;
    std::string trace;
    std::string metrics;
    std::string stats;
};

Captured
runObserved(const ExperimentConfig &cfg)
{
    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);
    MultiGpuSystem sys(makeSystemConfig(cfg), profile);

    std::ostringstream trace;
    sys.enableTrace(trace);
    sys.enableMetrics(500, 1024);

    Captured c;
    c.result = sys.run();
    c.trace = trace.str();

    std::ostringstream metrics;
    sys.writeMetricsJson(metrics);
    c.metrics = metrics.str();

    std::ostringstream stats;
    sys.dumpStatsJson(stats);
    c.stats = stats.str();
    return c;
}

} // anonymous namespace

TEST(Observability, IdenticalRunsProduceIdenticalArtifacts)
{
    const Captured a = runObserved(quick());
    const Captured b = runObserved(quick());
    ASSERT_TRUE(a.result.completed);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Observability, SinksDoNotPerturbResults)
{
    const RunResult plain = runWorkload("mm", quick());
    const Captured observed = runObserved(quick());
    ASSERT_TRUE(plain.completed);
    EXPECT_EQ(plain.cycles, observed.result.cycles);
    EXPECT_EQ(plain.totalBytes, observed.result.totalBytes);
    EXPECT_EQ(plain.packets, observed.result.packets);
    EXPECT_EQ(plain.remoteOps, observed.result.remoteOps);
    EXPECT_EQ(plain.migrations, observed.result.migrations);
}

TEST(Observability, TraceIsSealedAndCategorized)
{
    const Captured c = runObserved(quick());
    EXPECT_NE(c.trace.find("\"displayTimeUnit\""), std::string::npos);
    // Sealed JSON: finish() must have closed the event array.
    EXPECT_EQ(c.trace.substr(c.trace.size() - 4), "\n]}\n");
    for (const char *cat : {"\"cat\":\"packet\"", "\"cat\":\"net\"",
                            "\"cat\":\"pad\"", "\"cat\":\"ewma\"",
                            "\"cat\":\"batch\""}) {
        EXPECT_NE(c.trace.find(cat), std::string::npos) << cat;
    }
}

TEST(Observability, MetricsCoverPadsAndEwma)
{
    const Captured c = runObserved(quick());
    EXPECT_NE(c.metrics.find("gpu1.pads.send.gpu2.quota"),
              std::string::npos);
    EXPECT_NE(c.metrics.find("gpu1.ewma.S"), std::string::npos);
    EXPECT_NE(c.metrics.find("gpu1.batch.open"), std::string::npos);
    EXPECT_NE(c.metrics.find("net.inFlight"), std::string::npos);
}

TEST(Observability, ResetStatsMatchesFreshSystem)
{
    const ExperimentConfig cfg = quick();
    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);

    MultiGpuSystem used(makeSystemConfig(cfg), profile);
    ASSERT_TRUE(used.run().completed);
    used.resetStats();
    std::ostringstream after_reset;
    used.dumpStatsJson(after_reset);

    MultiGpuSystem fresh(makeSystemConfig(cfg), profile);
    std::ostringstream never_ran;
    fresh.dumpStatsJson(never_ran);

    EXPECT_EQ(after_reset.str(), never_ran.str());
}

TEST(MetricSampler, RingWrapsAndCountsDropped)
{
    EventQueue eq;
    int calls = 0;
    MetricSampler ms(eq, 10, 4,
                     [&eq]() { return eq.now() < 100; });
    ms.addGauge("n", [&calls](Tick) {
        return static_cast<double>(++calls);
    });
    ms.start();
    eq.run();

    // Samples fire at t = 10, 20, ..., 100: ten rows into a
    // four-row ring keeps the newest four.
    EXPECT_EQ(ms.samples(), 4u);
    EXPECT_EQ(ms.dropped(), 6u);
    EXPECT_EQ(ms.tickAt(0), 70u);
    EXPECT_EQ(ms.tickAt(3), 100u);
    EXPECT_EQ(ms.valueAt(0, 0), 7.0);
    EXPECT_EQ(ms.valueAt(3, 0), 10.0);
}

TEST(MetricSampler, WriteJsonReportsDroppedRows)
{
    EventQueue eq;
    MetricSampler ms(eq, 5, 2, [&eq]() { return eq.now() < 20; });
    ms.addGauge("g", [](Tick t) { return static_cast<double>(t); });
    ms.start();
    eq.run();

    std::ostringstream os;
    ms.writeJson(os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"dropped\":2"), std::string::npos) << j;
    EXPECT_NE(j.find("\"columns\""), std::string::npos);
    // Ticks serialize as integers, not doubles.
    EXPECT_NE(j.find("[15,15]"), std::string::npos) << j;
    EXPECT_NE(j.find("[20,20]"), std::string::npos) << j;
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(JsonWriter::escape("\n\t\r\b\f"),
              "\\n\\t\\r\\b\\f");
    EXPECT_EQ(JsonWriter::escape(std::string("\x01\x1f")),
              "\\u0001\\u001f");
    EXPECT_EQ(JsonWriter::escape("plain text"), "plain text");
}

TEST(JsonWriter, StatDumpEscapesNameAndDesc)
{
    stats::Scalar s("we\"ird\nname", "desc with \x02 control");
    s += 3.0;
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    s.dumpJson(w);
    w.endObject();
    const std::string j = os.str();
    EXPECT_NE(j.find("we\\\"ird\\nname"), std::string::npos) << j;
    EXPECT_NE(j.find("\\u0002"), std::string::npos) << j;
}

TEST(Observability, ConfigHashIgnoresObservePaths)
{
    ExperimentConfig a = quick();
    ExperimentConfig b = quick();
    b.observe.metricsOut = "/tmp/somewhere.json";
    b.observe.traceOut = "/tmp/elsewhere.json";
    EXPECT_EQ(configHash("mm", a), configHash("mm", b));

    ExperimentConfig c = quick();
    c.seed = 7;
    EXPECT_NE(configHash("mm", a), configHash("mm", c));
    EXPECT_NE(configHash("mm", a), configHash("atax", a));
    EXPECT_EQ(configHash("mm", a).size(), 16u);
}

TEST(Observability, AttributionAddsPercentileMetricColumns)
{
    const ExperimentConfig cfg = quick();
    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);
    MultiGpuSystem sys(makeSystemConfig(cfg), profile);
    sys.enableAttribution();
    sys.enableMetrics(500, 1024);
    ASSERT_TRUE(sys.run().completed);
    std::ostringstream os;
    sys.writeMetricsJson(os);
    const std::string j = os.str();
    EXPECT_NE(j.find("attr.nvlink.e2e.p50"), std::string::npos);
    EXPECT_NE(j.find("attr.pcie.padWait.p99"), std::string::npos);
    EXPECT_NE(j.find("gpu1.pads.wasted"), std::string::npos);
}

TEST(Observability, SweepObserveWritesHistogramsMatchingIndex)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "mgsec_test_sweep_hist";
    fs::remove_all(dir);

    Sweep sweep(0.05, 1, 2);
    sweep.setObservability(dir.string());
    ExperimentConfig a;
    a.scheme = OtpScheme::Private;
    ExperimentConfig b;
    b.scheme = OtpScheme::Dynamic;
    b.batching = true;
    sweep.addRaw("mm", a);
    sweep.addRaw("mm", b);
    sweep.addRaw("mm", a); // duplicate: only the first writes sinks
    sweep.run();

    JsonValue idx;
    std::string err;
    ASSERT_TRUE(jsonParseFile((dir / "OBSERVE_INDEX.json").string(),
                              idx, err))
        << err;
    const JsonValue *runs = idx.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 2u);

    // Index entries and histogram files correspond one to one.
    std::set<std::string> indexed;
    for (const JsonValue &r : runs->items) {
        const std::string hash = r.find("hash")->string;
        indexed.insert("HIST_" + hash + ".json");
        JsonValue hist;
        ASSERT_TRUE(jsonParseFile(
            (dir / ("HIST_" + hash + ".json")).string(), hist, err))
            << err;
        const JsonValue *attr = hist.find("attr");
        ASSERT_NE(attr, nullptr);
        EXPECT_NE(attr->find("nvlink.e2e"), nullptr);
        EXPECT_GT(hist.find("folds")->asNumber(), 0.0);
    }
    std::set<std::string> on_disk;
    for (const auto &ent : fs::directory_iterator(dir)) {
        const std::string name = ent.path().filename().string();
        if (name.rfind("HIST_", 0) == 0)
            on_disk.insert(name);
    }
    EXPECT_EQ(on_disk, indexed);
    fs::remove_all(dir);
}

TEST(Observability, AbnormalExitStillYieldsParseableArtifacts)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "mgsec_test_abnormal";
    fs::remove_all(dir);
    fs::create_directories(dir);

    ExperimentConfig cfg = quick();
    cfg.observe.metricsOut = (dir / "metrics.json").string();
    cfg.observe.traceOut = (dir / "trace.json").string();
    cfg.observe.statsJsonOut = (dir / "stats.json").string();
    cfg.observe.histJsonOut = (dir / "hist.json").string();
    cfg.observe.metricsInterval = 100;

    const WorkloadProfile profile =
        makeProfile("mm", cfg.scale, cfg.numGpus);
    {
        MultiGpuSystem sys(makeSystemConfig(cfg), profile);
        sys.eventq().scheduleIn(
            static_cast<Cycles>(500), []() {
                throw std::runtime_error("injected mid-run failure");
            });
        EXPECT_THROW(sys.run(), std::runtime_error);
        // Destruction must flush and seal every sink.
    }

    for (const char *name :
         {"metrics.json", "trace.json", "stats.json", "hist.json"}) {
        JsonValue doc;
        std::string err;
        EXPECT_TRUE(
            jsonParseFile((dir / name).string(), doc, err))
            << name << ": " << err;
    }
    fs::remove_all(dir);
}
