/**
 * @file
 * AES-128, GHASH, and AES-GCM tests against published vectors, plus
 * algebraic property sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/dispatch.hh"
#include "crypto/gcm.hh"
#include "crypto/ghash.hh"

using namespace mgsec::crypto;

namespace
{

std::vector<std::uint8_t>
unhex(const std::string &s)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
        out.push_back(static_cast<std::uint8_t>(
            std::stoul(s.substr(i, 2), nullptr, 16)));
    }
    return out;
}

template <std::size_t N>
std::array<std::uint8_t, N>
unhexArr(const std::string &s)
{
    const auto v = unhex(s);
    EXPECT_EQ(v.size(), N);
    std::array<std::uint8_t, N> a{};
    std::copy(v.begin(), v.end(), a.begin());
    return a;
}

} // anonymous namespace

// ------------------------------------------------------------------- AES

TEST(Aes128, Fips197AppendixCVector)
{
    // FIPS-197 Appendix C.1.
    const auto key =
        unhexArr<16>("000102030405060708090a0b0c0d0e0f");
    const auto pt =
        unhexArr<16>("00112233445566778899aabbccddeeff");
    const auto expect =
        unhexArr<16>("69c4e0d86a7b0430d8cdb78070b4c55a");
    Aes128 aes(key);
    EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, Fips197AppendixBVector)
{
    // FIPS-197 Appendix B worked example.
    const auto key =
        unhexArr<16>("2b7e151628aed2a6abf7158809cf4f3c");
    const auto pt =
        unhexArr<16>("3243f6a8885a308d313198a2e0370734");
    const auto expect =
        unhexArr<16>("3925841d02dc09fbdc118597196a0b32");
    Aes128 aes(key);
    EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, DecryptInvertsEncryptOnVectors)
{
    const auto key =
        unhexArr<16>("000102030405060708090a0b0c0d0e0f");
    const auto ct =
        unhexArr<16>("69c4e0d86a7b0430d8cdb78070b4c55a");
    const auto expect =
        unhexArr<16>("00112233445566778899aabbccddeeff");
    Aes128 aes(key);
    EXPECT_EQ(aes.decrypt(ct), expect);
}

TEST(Aes128, EncryptionIsDeterministic)
{
    const auto key = unhexArr<16>("00000000000000000000000000000000");
    Aes128 aes(key);
    Block b{};
    EXPECT_EQ(aes.encrypt(b), aes.encrypt(b));
}

TEST(Aes128, DifferentKeysDifferentCiphertexts)
{
    auto k1 = unhexArr<16>("00000000000000000000000000000000");
    auto k2 = k1;
    k2[0] = 1;
    Block pt{};
    EXPECT_NE(Aes128(k1).encrypt(pt), Aes128(k2).encrypt(pt));
}

/** Round-trip property over many random blocks and keys. */
class AesRoundTrip : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(AesRoundTrip, DecryptEncryptIsIdentity)
{
    std::mt19937_64 rng(GetParam());
    std::array<std::uint8_t, 16> key;
    Block pt;
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng());
    Aes128 aes(key);
    for (int i = 0; i < 50; ++i) {
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng());
        EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AesRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 12345u));

// ----------------------------------------------------------------- GHASH

TEST(Ghash, MultiplyByZeroIsZero)
{
    U128 x{0x1234567890abcdefULL, 0xfedcba0987654321ULL};
    U128 zero{};
    EXPECT_EQ(gfmul(x, zero), zero);
    EXPECT_EQ(gfmul(zero, x), zero);
}

TEST(Ghash, MultiplyByOneIsIdentity)
{
    // The GF(2^128) multiplicative identity in GCM bit order is the
    // block 0x80 0x00 ... (bit 0 = MSB of byte 0).
    U128 one{0x8000000000000000ULL, 0};
    U128 x{0x1234567890abcdefULL, 0xfedcba0987654321ULL};
    EXPECT_EQ(gfmul(x, one), x);
    EXPECT_EQ(gfmul(one, x), x);
}

TEST(Ghash, MultiplicationCommutes)
{
    U128 a{0xdeadbeefcafebabeULL, 0x0123456789abcdefULL};
    U128 b{0x5555aaaa3333ccccULL, 0x9999666677778888ULL};
    EXPECT_EQ(gfmul(a, b), gfmul(b, a));
}

TEST(Ghash, MultiplicationDistributesOverXor)
{
    U128 a{0x1111, 0x2222}, b{0x3333, 0x4444}, c{0x5555, 0x6666};
    U128 bc{b.hi ^ c.hi, b.lo ^ c.lo};
    const U128 left = gfmul(a, bc);
    const U128 ab = gfmul(a, b);
    const U128 ac = gfmul(a, c);
    const U128 right{ab.hi ^ ac.hi, ab.lo ^ ac.lo};
    EXPECT_EQ(left, right);
}

TEST(Ghash, BlockConversionRoundTrips)
{
    Block b;
    for (int i = 0; i < 16; ++i)
        b[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 7 + 1);
    EXPECT_EQ(u128ToBlock(blockToU128(b)), b);
}

TEST(Ghash, UpdateBytesPadsPartialBlocks)
{
    Block h{};
    h[0] = 0x42;
    Ghash g1(h), g2(h);
    std::uint8_t data[20];
    for (int i = 0; i < 20; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    g1.updateBytes(data, 20);

    Block first{}, second{};
    std::copy(data, data + 16, first.begin());
    std::copy(data + 16, data + 20, second.begin()); // zero padded
    g2.update(first);
    g2.update(second);
    EXPECT_EQ(g1.digest(), g2.digest());
}

// ------------------------------------------------------------------- GCM

TEST(AesGcm, NistTestCase1EmptyPlaintext)
{
    const auto key = unhexArr<16>("00000000000000000000000000000000");
    const Iv96 iv = unhexArr<12>("000000000000000000000000");
    AesGcm gcm(key);
    const auto sealed = gcm.seal(iv, {});
    EXPECT_TRUE(sealed.ciphertext.empty());
    EXPECT_EQ(sealed.tag,
              unhexArr<16>("58e2fccefa7e3061367f1d57a4e7455a"));
}

TEST(AesGcm, NistTestCase2SingleZeroBlock)
{
    const auto key = unhexArr<16>("00000000000000000000000000000000");
    const Iv96 iv = unhexArr<12>("000000000000000000000000");
    AesGcm gcm(key);
    const auto sealed =
        gcm.seal(iv, std::vector<std::uint8_t>(16, 0));
    EXPECT_EQ(sealed.ciphertext,
              unhex("0388dace60b6a392f328c2b971b2fe78"));
    EXPECT_EQ(sealed.tag,
              unhexArr<16>("ab6e47d42cec13bdf53a67b21257bddf"));
}

TEST(AesGcm, FourBlockVectorCrossValidated)
{
    // Cross-validated against the Python `cryptography` (OpenSSL)
    // AESGCM implementation for this exact key/IV/plaintext.
    const auto key = unhexArr<16>("feffe9928665731c6d6a8f9467308308");
    const Iv96 iv = unhexArr<12>("cafebabefacedbaddecaf888");
    const auto pt = unhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a31"
        "8a721c3c0c95956809532fcf0e2449a6b525b16aee5aa0de657ba637b391"
        "aafd255f");
    AesGcm gcm(key);
    const auto sealed = gcm.seal(iv, pt);
    EXPECT_EQ(sealed.ciphertext, unhex(
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329ac"
        "a12e21d514b25466931c7d8f6a5aac84aa051ba3089660d92fbb210c2839"
        "f76dae8f"));
    EXPECT_EQ(sealed.tag,
              unhexArr<16>("d56ea379ee4d9456e0aa96d5573b878a"));
}

TEST(AesGcm, OpenVerifiesAndDecrypts)
{
    const auto key = unhexArr<16>("feffe9928665731c6d6a8f9467308308");
    const Iv96 iv = unhexArr<12>("cafebabefacedbaddecaf888");
    const std::vector<std::uint8_t> pt(48, 0xab);
    AesGcm gcm(key);
    const auto sealed = gcm.seal(iv, pt);
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(gcm.open(iv, sealed.ciphertext, sealed.tag, out));
    EXPECT_EQ(out, pt);
}

TEST(AesGcm, TamperedCiphertextRejected)
{
    const auto key = unhexArr<16>("feffe9928665731c6d6a8f9467308308");
    const Iv96 iv = unhexArr<12>("cafebabefacedbaddecaf888");
    AesGcm gcm(key);
    auto sealed = gcm.seal(iv, std::vector<std::uint8_t>(32, 0x11));
    sealed.ciphertext[5] ^= 0x01;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, sealed.tag, out));
}

TEST(AesGcm, TamperedTagRejected)
{
    const auto key = unhexArr<16>("feffe9928665731c6d6a8f9467308308");
    const Iv96 iv = unhexArr<12>("cafebabefacedbaddecaf888");
    AesGcm gcm(key);
    auto sealed = gcm.seal(iv, std::vector<std::uint8_t>(32, 0x11));
    sealed.tag[0] ^= 0x80;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, sealed.tag, out));
}

TEST(AesGcm, AadIsAuthenticated)
{
    const auto key = unhexArr<16>("feffe9928665731c6d6a8f9467308308");
    const Iv96 iv = unhexArr<12>("cafebabefacedbaddecaf888");
    AesGcm gcm(key);
    const std::vector<std::uint8_t> aad = {1, 2, 3, 4};
    const auto sealed =
        gcm.seal(iv, std::vector<std::uint8_t>(16, 0x22), aad);
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(gcm.open(iv, sealed.ciphertext, sealed.tag, out, aad));
    const std::vector<std::uint8_t> bad_aad = {1, 2, 3, 5};
    EXPECT_FALSE(
        gcm.open(iv, sealed.ciphertext, sealed.tag, out, bad_aad));
}

TEST(AesGcm, KeystreamMatchesSealOfZeros)
{
    const auto key = unhexArr<16>("feffe9928665731c6d6a8f9467308308");
    const Iv96 iv = unhexArr<12>("cafebabefacedbaddecaf888");
    AesGcm gcm(key);
    const auto ks = gcm.keystream(iv, 40);
    const auto sealed =
        gcm.seal(iv, std::vector<std::uint8_t>(40, 0));
    EXPECT_EQ(ks, sealed.ciphertext);
}

/** Round-trip property across many lengths (incl. partial blocks). */
class GcmLengths : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(GcmLengths, SealOpenRoundTrips)
{
    const auto key = unhexArr<16>("000102030405060708090a0b0c0d0e0f");
    Iv96 iv{};
    iv[11] = static_cast<std::uint8_t>(GetParam());
    AesGcm gcm(key);
    std::vector<std::uint8_t> pt(GetParam());
    for (std::size_t i = 0; i < pt.size(); ++i)
        pt[i] = static_cast<std::uint8_t>(i * 31 + 7);
    const auto sealed = gcm.seal(iv, pt);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(gcm.open(iv, sealed.ciphertext, sealed.tag, out));
    EXPECT_EQ(out, pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, GcmLengths,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 31u,
                                           32u, 63u, 64u, 65u, 255u));

// --------------------------------------------------------------------
// Dispatch and portable-vs-SIMD cross-validation.
// --------------------------------------------------------------------

namespace
{

/** Force a crypto tier for one scope, restoring the prior request. */
class ScopedImpl
{
  public:
    explicit ScopedImpl(CryptoImpl impl) : prior_(requestedCryptoImpl())
    {
        setCryptoImpl(impl);
    }
    ~ScopedImpl() { setCryptoImpl(prior_); }

  private:
    CryptoImpl prior_;
};

} // anonymous namespace

TEST(CryptoDispatch, ParseAcceptsCanonicalNames)
{
    CryptoImpl impl = CryptoImpl::Auto;
    EXPECT_TRUE(parseCryptoImpl("portable", impl));
    EXPECT_EQ(impl, CryptoImpl::Portable);
    EXPECT_TRUE(parseCryptoImpl("SIMD", impl));
    EXPECT_EQ(impl, CryptoImpl::Simd);
    EXPECT_TRUE(parseCryptoImpl("Auto", impl));
    EXPECT_EQ(impl, CryptoImpl::Auto);
    EXPECT_FALSE(parseCryptoImpl("avx512", impl));
    EXPECT_STREQ(cryptoImplName(CryptoImpl::Portable), "portable");
    EXPECT_STREQ(cryptoImplName(CryptoImpl::Simd), "simd");
}

TEST(CryptoDispatch, ActiveImplNeverAuto)
{
    ScopedImpl scope(CryptoImpl::Auto);
    EXPECT_NE(activeCryptoImpl(), CryptoImpl::Auto);
}

TEST(CryptoDispatch, ForcedPortableSticksEverywhere)
{
    ScopedImpl scope(CryptoImpl::Portable);
    EXPECT_EQ(activeCryptoImpl(), CryptoImpl::Portable);
    EXPECT_FALSE(simdActive());
}

TEST(CryptoDispatch, ForcedSimdDegradesGracefully)
{
    ScopedImpl scope(CryptoImpl::Simd);
    if (simdAvailable())
        EXPECT_EQ(activeCryptoImpl(), CryptoImpl::Simd);
    else
        EXPECT_EQ(activeCryptoImpl(), CryptoImpl::Portable);
}

TEST(CryptoCross, AesBlocksMatchPortable)
{
    if (!simdAvailable())
        GTEST_SKIP() << "no SIMD tier on this machine/build";
    std::mt19937_64 rng(0xae5);
    for (int trial = 0; trial < 20; ++trial) {
        std::array<std::uint8_t, 16> key;
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng());
        // 0..25 blocks exercises the empty, sub-8 tail, exact-8, and
        // 8+tail paths of the pipelined loop; +1 offset into the heap
        // buffer keeps every load/store unaligned.
        for (std::size_t nblk : {0u, 1u, 3u, 7u, 8u, 9u, 16u, 25u}) {
            std::vector<std::uint8_t> raw(16 * nblk + 1);
            for (auto &b : raw)
                b = static_cast<std::uint8_t>(rng());
            std::vector<std::uint8_t> a(raw.begin() + 1, raw.end());
            std::vector<std::uint8_t> b = a;
            {
                ScopedImpl scope(CryptoImpl::Portable);
                Aes128(key).encryptBlocks(a.data(), nblk);
            }
            {
                ScopedImpl scope(CryptoImpl::Simd);
                Aes128(key).encryptBlocks(raw.data() + 1, nblk);
            }
            EXPECT_EQ(a, std::vector<std::uint8_t>(raw.begin() + 1,
                                                   raw.end()))
                << "nblk=" << nblk;
            // Batch == repeated single-block, portable tier.
            {
                ScopedImpl scope(CryptoImpl::Portable);
                const Aes128 aes(key);
                for (std::size_t i = 0; i < nblk; ++i) {
                    Block blk;
                    std::memcpy(blk.data(), b.data() + 16 * i, 16);
                    aes.encryptBlock(blk);
                    std::memcpy(b.data() + 16 * i, blk.data(), 16);
                }
            }
            EXPECT_EQ(a, b) << "nblk=" << nblk;
        }
    }
}

TEST(CryptoCross, GhashMatchesPortableAndBitSerialOracle)
{
    if (!simdAvailable())
        GTEST_SKIP() << "no SIMD tier on this machine/build";
    std::mt19937_64 rng(0x56a5);
    for (int trial = 0; trial < 8; ++trial) {
        Block h;
        for (auto &b : h)
            b = static_cast<std::uint8_t>(rng());
        for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 48u, 63u, 64u,
                                65u, 128u, 1000u, 4096u}) {
            std::vector<std::uint8_t> raw(len + 1);
            for (auto &b : raw)
                b = static_cast<std::uint8_t>(rng());
            const std::uint8_t *data = raw.data() + 1;
            Block dp, ds;
            {
                ScopedImpl scope(CryptoImpl::Portable);
                Ghash gh{GhashKey(h)};
                gh.updateBytes(data, len);
                dp = gh.digest();
            }
            {
                ScopedImpl scope(CryptoImpl::Simd);
                Ghash gh{GhashKey(h)};
                gh.updateBytes(data, len);
                ds = gh.digest();
            }
            EXPECT_EQ(dp, ds) << "len=" << len;
            // Bit-serial gfmul oracle (SP 800-38D algorithm 1).
            const U128 hw = blockToU128(h);
            U128 y{};
            for (std::size_t off = 0; off < len; off += 16) {
                Block blk{};
                std::memcpy(blk.data(), data + off,
                            std::min<std::size_t>(16, len - off));
                const U128 x = blockToU128(blk);
                y.hi ^= x.hi;
                y.lo ^= x.lo;
                y = gfmul(y, hw);
            }
            EXPECT_EQ(u128ToBlock(y), ds) << "len=" << len;
        }
    }
}

TEST(CryptoCross, KeystreamAndTagMatchPortable)
{
    if (!simdAvailable())
        GTEST_SKIP() << "no SIMD tier on this machine/build";
    std::mt19937_64 rng(0x9c3);
    for (int trial = 0; trial < 8; ++trial) {
        std::array<std::uint8_t, 16> key;
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng());
        Iv96 iv;
        for (auto &b : iv)
            b = static_cast<std::uint8_t>(rng());
        for (std::size_t len : {0u, 1u, 16u, 31u, 64u, 80u, 127u,
                                128u, 129u, 555u, 4096u}) {
            std::vector<std::uint8_t> aad(len / 3 + 1);
            for (auto &b : aad)
                b = static_cast<std::uint8_t>(rng());
            std::vector<std::uint8_t> pt(len + 1);
            for (auto &b : pt)
                b = static_cast<std::uint8_t>(rng());
            std::vector<std::uint8_t> ks_p(len), ks_s(len);
            Block tag_p, tag_s;
            {
                ScopedImpl scope(CryptoImpl::Portable);
                const AesGcm gcm(key);
                gcm.keystreamTo(iv, ks_p.data(), len);
                tag_p = gcm.computeTag(iv, aad.data(), aad.size(),
                                       pt.data() + 1, len);
            }
            {
                ScopedImpl scope(CryptoImpl::Simd);
                const AesGcm gcm(key);
                gcm.keystreamTo(iv, ks_s.data(), len);
                tag_s = gcm.computeTag(iv, aad.data(), aad.size(),
                                       pt.data() + 1, len);
            }
            EXPECT_EQ(ks_p, ks_s) << "len=" << len;
            EXPECT_EQ(tag_p, tag_s) << "len=" << len;
        }
    }
}

TEST(CryptoCross, SealedUnderOneTierOpensUnderTheOther)
{
    if (!simdAvailable())
        GTEST_SKIP() << "no SIMD tier on this machine/build";
    const auto key = unhexArr<16>("000102030405060708090a0b0c0d0e0f");
    Iv96 iv{};
    iv[0] = 0x42;
    std::vector<std::uint8_t> pt(777);
    for (std::size_t i = 0; i < pt.size(); ++i)
        pt[i] = static_cast<std::uint8_t>(i * 131 + 9);
    GcmSealed sealed;
    {
        ScopedImpl scope(CryptoImpl::Simd);
        sealed = AesGcm(key).seal(iv, pt);
    }
    std::vector<std::uint8_t> out;
    {
        ScopedImpl scope(CryptoImpl::Portable);
        ASSERT_TRUE(AesGcm(key).open(iv, sealed.ciphertext,
                                     sealed.tag, out));
    }
    EXPECT_EQ(out, pt);
}
