/**
 * @file
 * Cross-cutting property and stress tests: randomized invariant
 * checks over the event kernel, the network, and the pad tables,
 * plus end-to-end conservation laws of whole-system runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <random>
#include <tuple>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "net/network.hh"
#include "secure/pad_table.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace mgsec;

// ------------------------------------------------------ event queue stress

class EventQueueStress : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(EventQueueStress, RandomScheduleCancelNeverReorders)
{
    std::mt19937_64 rng(GetParam());
    EventQueue eq;
    Tick last_seen = 0;
    std::uint64_t executed = 0;
    std::vector<EventId> live;

    for (int round = 0; round < 50; ++round) {
        // Schedule a batch at random future ticks.
        for (int i = 0; i < 40; ++i) {
            const Tick when = eq.now() + 1 + rng() % 500;
            live.push_back(eq.schedule(when, [&, when]() {
                EXPECT_GE(when, last_seen);
                last_seen = when;
                ++executed;
            }));
        }
        // Cancel a random third of what we remember.
        std::shuffle(live.begin(), live.end(), rng);
        const std::size_t cut = live.size() / 3;
        for (std::size_t i = 0; i < cut; ++i)
            eq.cancel(live[i]);
        live.erase(live.begin(),
                   live.begin() + static_cast<std::ptrdiff_t>(cut));
        // Run a random slice of time.
        eq.run(eq.now() + rng() % 300);
    }
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_GT(executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueStress,
                         ::testing::Values(1u, 7u, 42u));

// ----------------------------------------------------------- network laws

class NetworkConservation
    : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(NetworkConservation, EverySentPacketArrivesExactlyOnce)
{
    std::mt19937_64 rng(GetParam());
    EventQueue eq;
    Network net("net", eq, 5, LinkParams{12.0, 500},
                LinkParams{18.0, 100});
    std::uint64_t delivered = 0;
    Bytes delivered_bytes = 0;
    for (NodeId n = 0; n < 5; ++n) {
        net.setHandler(n, [&](PacketPtr p) {
            ++delivered;
            delivered_bytes += p->wireBytes();
        });
    }
    const int kPackets = 500;
    Bytes sent_bytes = 0;
    for (int i = 0; i < kPackets; ++i) {
        auto p = makePacket();
        p->src = static_cast<NodeId>(rng() % 5);
        do {
            p->dst = static_cast<NodeId>(rng() % 5);
        } while (p->dst == p->src);
        p->headerBytes = 8 + rng() % 100;
        p->payloadBytes = (rng() % 2) ? kBlockBytes : 0;
        sent_bytes += p->wireBytes();
        // Interleave with time advancement.
        if (rng() % 4 == 0)
            eq.run(eq.now() + rng() % 50);
        net.send(std::move(p));
    }
    eq.run();
    EXPECT_EQ(delivered, static_cast<std::uint64_t>(kPackets));
    EXPECT_EQ(delivered_bytes, sent_bytes);
    EXPECT_EQ(net.totalBytes(), sent_bytes);
    EXPECT_EQ(net.totalPackets(),
              static_cast<std::uint64_t>(kPackets));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkConservation,
                         ::testing::Values(3u, 11u, 99u));

// -------------------------------------------------------- pad table fuzzer

class PadTableFuzz
    : public ::testing::TestWithParam<std::pair<OtpScheme, std::uint32_t>>
{};

TEST_P(PadTableFuzz, RandomTrafficKeepsInvariants)
{
    const auto [scheme, seed] = GetParam();
    std::mt19937_64 rng(seed);
    EventQueue eq;
    auto table = makePadTable(scheme, "t", eq, 1, 5, 32, 40);

    // Mirror counters: what a well-behaved remote sender would use.
    std::vector<std::uint64_t> peer_send_ctr(5, 0);

    std::uint64_t acquires = 0;
    for (int i = 0; i < 3000; ++i) {
        eq.schedule(eq.now() + rng() % 20, []() {});
        eq.run(eq.now() + rng() % 20);
        NodeId peer = static_cast<NodeId>(rng() % 5);
        if (peer == 1)
            peer = 0;
        if (rng() % 2 == 0) {
            const SendGrant g = table->acquireSend(peer);
            EXPECT_GE(std::max(eq.now(), g.padReady), eq.now());
            ++acquires;
        } else {
            // In-order arrival stream per peer (FIFO links).
            const RecvGrant g =
                table->acquireRecv(peer, peer_send_ctr[peer]++);
            EXPECT_GE(std::max(eq.now(), g.padReady), eq.now());
            ++acquires;
        }
    }
    const OtpStats &s = table->otpStats();
    EXPECT_EQ(s.total(Direction::Send) + s.total(Direction::Recv),
              acquires);
    // Fractions are a partition of 1 in each direction.
    for (Direction d : {Direction::Send, Direction::Recv}) {
        const double sum = s.frac(d, OtpOutcome::Hit) +
                           s.frac(d, OtpOutcome::Partial) +
                           s.frac(d, OtpOutcome::Miss);
        if (s.total(d) > 0)
            EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PadTableFuzz,
    ::testing::Values(std::make_pair(OtpScheme::Private, 1u),
                      std::make_pair(OtpScheme::Shared, 1u),
                      std::make_pair(OtpScheme::Cached, 1u),
                      std::make_pair(OtpScheme::Dynamic, 1u),
                      std::make_pair(OtpScheme::Private, 2u),
                      std::make_pair(OtpScheme::Cached, 2u)));

// ------------------------------------------------------- system-level laws

class SystemLaws : public ::testing::TestWithParam<std::string>
{};

TEST_P(SystemLaws, RunConservation)
{
    ExperimentConfig e;
    e.scheme = OtpScheme::Dynamic;
    e.batching = true;
    e.scale = 0.04;
    SystemConfig sc = makeSystemConfig(e);
    MultiGpuSystem sys(sc, makeProfile(GetParam(), e.scale));
    const RunResult r = sys.run();
    ASSERT_TRUE(r.completed);

    // Every GPU drained its workload exactly.
    std::uint64_t issued = 0;
    for (NodeId g = 1; g < sys.numNodes(); ++g)
        issued += sys.node(g).remoteOps() + sys.node(g).localOps();
    const WorkloadProfile p = makeProfile(GetParam(), e.scale);
    EXPECT_EQ(issued, p.opsPerGpu * e.numGpus);

    // Send and receive pad claims balance system-wide.
    EXPECT_EQ(r.otp.total(Direction::Send),
              r.otp.total(Direction::Recv));

    // Traffic class sums match the network total.
    EXPECT_EQ(r.classBytes[0] + r.classBytes[1] + r.classBytes[2] +
                  r.classBytes[3],
              r.totalBytes);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SystemLaws,
                         ::testing::Values("mt", "mm", "atax", "km",
                                           "aes"),
                         [](const auto &info) { return info.param; });

// ------------------------------------------------ scale-invariant laws

/**
 * The conservation laws above are per-message identities, so they
 * must hold unchanged at every machine size and on every fabric.
 * This re-runs the whole-system laws at 4/8/16/64 GPUs across
 * p2p/nvswitch/hier — the suite the scale-out work is validated by.
 */
class ScaleInvariantLaws
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, TopologyKind>>
{};

TEST_P(ScaleInvariantLaws, ConservationHoldsAtEveryScale)
{
    const auto [gpus, kind] = GetParam();
    ExperimentConfig e;
    e.scheme = OtpScheme::Dynamic;
    e.batching = true;
    e.numGpus = gpus;
    e.topology.kind = kind;
    // Weak scaling: total work grows with the GPU count, so shrink
    // the per-GPU slice to keep the 64-GPU points test-sized.
    e.scale = gpus > 16 ? 0.01 : 0.04;
    SystemConfig sc = makeSystemConfig(e);
    MultiGpuSystem sys(sc, makeProfile("mm", e.scale, gpus));
    const RunResult r = sys.run();
    ASSERT_TRUE(r.completed);

    std::uint64_t issued = 0;
    for (NodeId g = 1; g < sys.numNodes(); ++g)
        issued += sys.node(g).remoteOps() + sys.node(g).localOps();
    const WorkloadProfile p = makeProfile("mm", e.scale, gpus);
    EXPECT_EQ(issued, p.opsPerGpu * gpus);

    EXPECT_EQ(r.otp.total(Direction::Send),
              r.otp.total(Direction::Recv));
    EXPECT_EQ(r.classBytes[0] + r.classBytes[1] + r.classBytes[2] +
                  r.classBytes[3],
              r.totalBytes);
}

INSTANTIATE_TEST_SUITE_P(
    GpusAndFabrics, ScaleInvariantLaws,
    ::testing::Combine(::testing::Values(4u, 8u, 16u, 64u),
                       ::testing::Values(TopologyKind::P2p,
                                         TopologyKind::NvSwitch,
                                         TopologyKind::Hier)),
    [](const auto &info) {
        return strformat("g%u_%s", std::get<0>(info.param),
                         topologyKindName(std::get<1>(info.param)));
    });

// --------------------------------------- strong-scaling profile sizing

TEST(ScalingRegression, StrongVsWeakProfileSizingAt64Gpus)
{
    // Regression for the once-hardcoded "4.0 / numGpus" sites: both
    // the workload scale factor and the inter-burst gap compression
    // must derive from the named baseline constants, and they must
    // agree at 64 GPUs.
    static_assert(kScalingBaselineGpus == 4,
                  "the paper's reference machine has 4 GPUs");

    const WorkloadProfile base =
        makeProfile("mm", 1.0, kScalingBaselineGpus);
    const WorkloadProfile weak = makeProfile("mm", 1.0, 64);

    // Weak scaling: per-GPU work is constant; only the gaps move.
    EXPECT_EQ(weak.opsPerGpu, base.opsPerGpu);
    const double g = std::pow(
        static_cast<double>(kScalingBaselineGpus) / 64.0,
        kScalingGapExponent);
    ASSERT_EQ(weak.phases.size(), base.phases.size());
    for (std::size_t i = 0; i < base.phases.size(); ++i) {
        const auto want = std::max<Cycles>(
            1, static_cast<Cycles>(std::llround(
                   static_cast<double>(base.phases[i].interGap) * g)));
        EXPECT_EQ(weak.phases[i].interGap, want) << "phase " << i;
    }

    // Strong scaling: the fixed problem is cut 16x finer, so the
    // per-GPU slice shrinks by baseline/numGpus (modulo the integer
    // rounding makeProfile applies to each slice independently).
    const double strong_scale =
        1.0 * kScalingBaselineGpus / 64.0;
    const WorkloadProfile strong =
        makeProfile("mm", strong_scale, 64);
    const auto want_ops = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(std::llround(
                static_cast<double>(base.opsPerGpu) *
                static_cast<double>(kScalingBaselineGpus) / 64.0)));
    EXPECT_EQ(strong.opsPerGpu, want_ops);
    EXPECT_LT(strong.opsPerGpu, weak.opsPerGpu);
}

// ------------------------------------- Dynamic-scheme conservation laws

namespace
{

/**
 * Small confidence scales plus a short interval make every
 * monitoring window trusted, so skewed traffic forces real EWMA
 * movement and frequent re-partitions — the regime the invariants
 * below must survive.
 */
DynamicPadTable
makeTwitchyDynamic(EventQueue &eq, std::uint32_t num_nodes,
                   std::uint32_t entries)
{
    DynamicPadTable::Params prm;
    prm.interval = 50;
    prm.confidenceDir = 8;
    prm.confidencePeer = 4;
    return DynamicPadTable("dyn", eq, 1, num_nodes, entries, 40, prm);
}

} // anonymous namespace

TEST(DynamicInvariants, WeightsStayProbabilitiesUnderSkewedTraffic)
{
    std::mt19937_64 rng(31);
    EventQueue eq;
    DynamicPadTable t = makeTwitchyDynamic(eq, 5, 32);

    std::vector<std::uint64_t> peer_ctr(5, 0);
    for (int i = 0; i < 2500; ++i) {
        // Drag simulated time forward so the adjust() timer fires.
        const Tick upto = eq.now() + 1 + rng() % 10;
        eq.schedule(upto, []() {});
        eq.run(upto);
        // Heavily skewed: 80% sends, and peer 0 gets most traffic.
        NodeId peer = (rng() % 4 == 0)
                          ? static_cast<NodeId>(2 + rng() % 3)
                          : 0;
        if (rng() % 5 != 0)
            t.acquireSend(peer);
        else
            t.acquireRecv(peer, peer_ctr[peer]++);

        EXPECT_GE(t.sendWeight(), 0.0);
        EXPECT_LE(t.sendWeight(), 1.0);
        for (NodeId p = 0; p < 5; ++p) {
            if (p == 1)
                continue;
            for (Direction d : {Direction::Send, Direction::Recv}) {
                EXPECT_GE(t.peerWeight(p, d), 0.0);
                EXPECT_LE(t.peerWeight(p, d), 1.0);
            }
        }
    }
    EXPECT_GT(t.adjustments(), 0u);
}

TEST(DynamicInvariants, QuotasAlwaysPartitionThePool)
{
    // Formula 2/4 conservation: after every adjustment step the
    // per-(peer, direction) quotas must sum to exactly the pool
    // size — largest-remainder rounding may shift entries between
    // pipes but can never mint or leak one — and every live pipe
    // keeps its one-entry floor.
    std::mt19937_64 rng(77);
    EventQueue eq;
    const std::uint32_t entries = 32;
    DynamicPadTable t = makeTwitchyDynamic(eq, 5, entries);

    std::vector<std::uint64_t> peer_ctr(5, 0);
    std::uint64_t repartitions = 0;
    std::uint64_t last_adjust = 0;
    for (int i = 0; i < 2500; ++i) {
        const Tick upto = eq.now() + 1 + rng() % 10;
        eq.schedule(upto, []() {});
        eq.run(upto);
        // Alternate which peer dominates so the applied partition
        // keeps drifting past the churn threshold.
        const bool phase = (i / 400) % 2 == 0;
        NodeId peer = phase ? 0 : 4;
        if (rng() % 8 == 0)
            peer = static_cast<NodeId>(2 + rng() % 2);
        if ((rng() % 4 != 0) == phase)
            t.acquireSend(peer);
        else
            t.acquireRecv(peer, peer_ctr[peer]++);

        std::uint32_t sum = 0;
        for (NodeId p = 0; p < 5; ++p) {
            if (p == 1)
                continue;
            for (Direction d : {Direction::Send, Direction::Recv}) {
                const std::uint32_t q = t.quota(p, d);
                EXPECT_GE(q, 1u) << "pipe (" << p << ") lost its floor";
                sum += q;
            }
        }
        EXPECT_EQ(sum, entries) << "after " << t.adjustments()
                                << " adjustments";
        if (t.adjustments() != last_adjust) {
            last_adjust = t.adjustments();
            ++repartitions;
        }
    }
    // The traffic phases above must have exercised the interesting
    // path, or this test proves nothing.
    EXPECT_GT(repartitions, 4u);
}

/**
 * The quota-partition law at scaled-out node counts (4/8/16/64 GPUs
 * plus the host): largest-remainder rounding over 64 peers has far
 * more ties and remainders than over 4, so the conservation proof
 * at the paper's machine size says nothing about 65 nodes unless we
 * run it there.
 */
class DynamicScaleInvariants
    : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(DynamicScaleInvariants, QuotasPartitionPoolAtEveryNodeCount)
{
    const std::uint32_t nodes = GetParam();
    std::mt19937_64 rng(7);
    EventQueue eq;
    // Pool sized like totalOtpEntries(): a few entries per pair.
    const std::uint32_t entries = (nodes - 1) * 8;
    DynamicPadTable t = makeTwitchyDynamic(eq, nodes, entries);

    std::vector<std::uint64_t> peer_ctr(nodes, 0);
    for (int i = 0; i < 1200; ++i) {
        const Tick upto = eq.now() + 1 + rng() % 10;
        eq.schedule(upto, []() {});
        eq.run(upto);
        // A rotating hot peer keeps the EWMAs moving at any size.
        NodeId peer = (rng() % 4 == 0)
                          ? static_cast<NodeId>(rng() % nodes)
                          : static_cast<NodeId>((i / 200) % nodes);
        if (peer == 1)
            peer = 0;
        if (rng() % 3 != 0)
            t.acquireSend(peer);
        else
            t.acquireRecv(peer, peer_ctr[peer]++);

        EXPECT_GE(t.sendWeight(), 0.0);
        EXPECT_LE(t.sendWeight(), 1.0);
        std::uint32_t sum = 0;
        for (NodeId p = 0; p < nodes; ++p) {
            if (p == 1)
                continue;
            for (Direction d : {Direction::Send, Direction::Recv}) {
                const std::uint32_t q = t.quota(p, d);
                EXPECT_GE(q, 1u)
                    << "pipe (" << p << ") lost its floor";
                sum += q;
            }
        }
        EXPECT_EQ(sum, entries)
            << "after " << t.adjustments() << " adjustments at "
            << nodes << " nodes";
    }
    EXPECT_GT(t.adjustments(), 0u);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DynamicScaleInvariants,
                         ::testing::Values(5u, 9u, 17u, 65u),
                         [](const auto &info) {
                             return strformat("n%u", info.param);
                         });

TEST(DynamicInvariants, RepartitionNeverStrandsInFlightPads)
{
    // A resize may discard *staged* pads (the receiver regenerates
    // them on demand, a miss), but counters drawn before the
    // re-partition must stay serviceable: the mirror receiver makes
    // progress on every outstanding counter, in order, no matter how
    // often the quotas moved while those messages were in flight.
    std::mt19937_64 rng(19);
    EventQueue eq;
    DynamicPadTable sender = makeTwitchyDynamic(eq, 3, 16);

    // ctrs drawn towards peer 0 but not yet "received" there.
    std::deque<std::uint64_t> in_flight;
    std::uint64_t peer2_recv_ctr = 0;
    std::uint64_t expected_next = 0;
    std::uint64_t received = 0;
    for (int round = 0; round < 40; ++round) {
        // Background traffic on the *other* pair (self=1 <-> 2),
        // alternating direction each round so the EWMAs and quotas
        // keep moving while pair (1 -> 0) has messages in flight.
        const bool send_heavy = round % 2 == 0;
        for (int i = 0; i < 30; ++i) {
            if ((rng() % 4 != 0) == send_heavy)
                sender.acquireSend(2);
            else
                sender.acquireRecv(2, peer2_recv_ctr++);
            const Tick upto = eq.now() + 1 + rng() % 5;
            eq.schedule(upto, []() {});
            eq.run(upto);
        }
        // Draws on the mirrored pair (1 -> 0).
        for (int i = 0; i < 5; ++i) {
            const SendGrant g = sender.acquireSend(0);
            EXPECT_EQ(g.ctr, expected_next)
                << "send counters must stay gapless across resizes";
            ++expected_next;
            in_flight.push_back(g.ctr);
        }
        // Drain a random amount of the in-flight window late, after
        // further adjustments have resized the pipes.
        const std::size_t drain = rng() % (in_flight.size() + 1);
        for (std::size_t i = 0; i < drain; ++i) {
            const std::uint64_t ctr = in_flight.front();
            in_flight.pop_front();
            const RecvGrant rg = sender.acquireRecv(0, ctr);
            EXPECT_GE(std::max(eq.now(), rg.padReady), eq.now());
            ++received;
        }
    }
    while (!in_flight.empty()) {
        sender.acquireRecv(0, in_flight.front());
        in_flight.pop_front();
        ++received;
    }
    // Every drawn counter for the mirrored pair was eventually
    // served; the stats saw each claim exactly once (plus the
    // background pair's in-order receive stream).
    EXPECT_EQ(received, expected_next);
    const OtpStats &s = sender.otpStats();
    EXPECT_EQ(s.total(Direction::Recv), received + peer2_recv_ctr);
    // And the adjust timer genuinely ran while messages were out.
    EXPECT_GT(sender.adjustments(), 0u);
}
