/**
 * @file
 * Cross-cutting property and stress tests: randomized invariant
 * checks over the event kernel, the network, and the pad tables,
 * plus end-to-end conservation laws of whole-system runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "net/network.hh"
#include "secure/pad_table.hh"
#include "sim/event_queue.hh"

using namespace mgsec;

// ------------------------------------------------------ event queue stress

class EventQueueStress : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(EventQueueStress, RandomScheduleCancelNeverReorders)
{
    std::mt19937_64 rng(GetParam());
    EventQueue eq;
    Tick last_seen = 0;
    std::uint64_t executed = 0;
    std::vector<EventId> live;

    for (int round = 0; round < 50; ++round) {
        // Schedule a batch at random future ticks.
        for (int i = 0; i < 40; ++i) {
            const Tick when = eq.now() + 1 + rng() % 500;
            live.push_back(eq.schedule(when, [&, when]() {
                EXPECT_GE(when, last_seen);
                last_seen = when;
                ++executed;
            }));
        }
        // Cancel a random third of what we remember.
        std::shuffle(live.begin(), live.end(), rng);
        const std::size_t cut = live.size() / 3;
        for (std::size_t i = 0; i < cut; ++i)
            eq.cancel(live[i]);
        live.erase(live.begin(),
                   live.begin() + static_cast<std::ptrdiff_t>(cut));
        // Run a random slice of time.
        eq.run(eq.now() + rng() % 300);
    }
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_GT(executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueStress,
                         ::testing::Values(1u, 7u, 42u));

// ----------------------------------------------------------- network laws

class NetworkConservation
    : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(NetworkConservation, EverySentPacketArrivesExactlyOnce)
{
    std::mt19937_64 rng(GetParam());
    EventQueue eq;
    Network net("net", eq, 5, LinkParams{12.0, 500},
                LinkParams{18.0, 100});
    std::uint64_t delivered = 0;
    Bytes delivered_bytes = 0;
    for (NodeId n = 0; n < 5; ++n) {
        net.setHandler(n, [&](PacketPtr p) {
            ++delivered;
            delivered_bytes += p->wireBytes();
        });
    }
    const int kPackets = 500;
    Bytes sent_bytes = 0;
    for (int i = 0; i < kPackets; ++i) {
        auto p = makePacket();
        p->src = static_cast<NodeId>(rng() % 5);
        do {
            p->dst = static_cast<NodeId>(rng() % 5);
        } while (p->dst == p->src);
        p->headerBytes = 8 + rng() % 100;
        p->payloadBytes = (rng() % 2) ? kBlockBytes : 0;
        sent_bytes += p->wireBytes();
        // Interleave with time advancement.
        if (rng() % 4 == 0)
            eq.run(eq.now() + rng() % 50);
        net.send(std::move(p));
    }
    eq.run();
    EXPECT_EQ(delivered, static_cast<std::uint64_t>(kPackets));
    EXPECT_EQ(delivered_bytes, sent_bytes);
    EXPECT_EQ(net.totalBytes(), sent_bytes);
    EXPECT_EQ(net.totalPackets(),
              static_cast<std::uint64_t>(kPackets));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkConservation,
                         ::testing::Values(3u, 11u, 99u));

// -------------------------------------------------------- pad table fuzzer

class PadTableFuzz
    : public ::testing::TestWithParam<std::pair<OtpScheme, std::uint32_t>>
{};

TEST_P(PadTableFuzz, RandomTrafficKeepsInvariants)
{
    const auto [scheme, seed] = GetParam();
    std::mt19937_64 rng(seed);
    EventQueue eq;
    auto table = makePadTable(scheme, "t", eq, 1, 5, 32, 40);

    // Mirror counters: what a well-behaved remote sender would use.
    std::vector<std::uint64_t> peer_send_ctr(5, 0);

    std::uint64_t acquires = 0;
    for (int i = 0; i < 3000; ++i) {
        eq.schedule(eq.now() + rng() % 20, []() {});
        eq.run(eq.now() + rng() % 20);
        NodeId peer = static_cast<NodeId>(rng() % 5);
        if (peer == 1)
            peer = 0;
        if (rng() % 2 == 0) {
            const SendGrant g = table->acquireSend(peer);
            EXPECT_GE(std::max(eq.now(), g.padReady), eq.now());
            ++acquires;
        } else {
            // In-order arrival stream per peer (FIFO links).
            const RecvGrant g =
                table->acquireRecv(peer, peer_send_ctr[peer]++);
            EXPECT_GE(std::max(eq.now(), g.padReady), eq.now());
            ++acquires;
        }
    }
    const OtpStats &s = table->otpStats();
    EXPECT_EQ(s.total(Direction::Send) + s.total(Direction::Recv),
              acquires);
    // Fractions are a partition of 1 in each direction.
    for (Direction d : {Direction::Send, Direction::Recv}) {
        const double sum = s.frac(d, OtpOutcome::Hit) +
                           s.frac(d, OtpOutcome::Partial) +
                           s.frac(d, OtpOutcome::Miss);
        if (s.total(d) > 0)
            EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PadTableFuzz,
    ::testing::Values(std::make_pair(OtpScheme::Private, 1u),
                      std::make_pair(OtpScheme::Shared, 1u),
                      std::make_pair(OtpScheme::Cached, 1u),
                      std::make_pair(OtpScheme::Dynamic, 1u),
                      std::make_pair(OtpScheme::Private, 2u),
                      std::make_pair(OtpScheme::Cached, 2u)));

// ------------------------------------------------------- system-level laws

class SystemLaws : public ::testing::TestWithParam<std::string>
{};

TEST_P(SystemLaws, RunConservation)
{
    ExperimentConfig e;
    e.scheme = OtpScheme::Dynamic;
    e.batching = true;
    e.scale = 0.04;
    SystemConfig sc = makeSystemConfig(e);
    MultiGpuSystem sys(sc, makeProfile(GetParam(), e.scale));
    const RunResult r = sys.run();
    ASSERT_TRUE(r.completed);

    // Every GPU drained its workload exactly.
    std::uint64_t issued = 0;
    for (NodeId g = 1; g < sys.numNodes(); ++g)
        issued += sys.node(g).remoteOps() + sys.node(g).localOps();
    const WorkloadProfile p = makeProfile(GetParam(), e.scale);
    EXPECT_EQ(issued, p.opsPerGpu * 4);

    // Send and receive pad claims balance system-wide.
    EXPECT_EQ(r.otp.total(Direction::Send),
              r.otp.total(Direction::Recv));

    // Traffic class sums match the network total.
    EXPECT_EQ(r.classBytes[0] + r.classBytes[1] + r.classBytes[2] +
                  r.classBytes[3],
              r.totalBytes);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SystemLaws,
                         ::testing::Values("mt", "mm", "atax", "km",
                                           "aes"),
                         [](const auto &info) { return info.param; });
